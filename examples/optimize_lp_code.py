"""Optimize an LDPC code with no known hand-designed SM circuit.

This is PropHunt's real value proposition (paper §6.1): for lifted
product and quantum Tanner codes nobody has designed good schedules by
hand, and the coloration baseline leaves 2.5-4x of logical error rate on
the table.  The script optimizes the [[39,3,3]] lifted product code and
decodes with BP+OSD.

Usage:  python examples/optimize_lp_code.py  [--code rqt60]
Runtime: several minutes.
"""

import argparse

import numpy as np

from repro.analysis.deff import estimate_effective_distance
from repro.circuits import coloration_schedule
from repro.codes import load_benchmark_code
from repro.core import PropHunt, PropHuntConfig
from repro.decoders import estimate_logical_error_rate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--code", default="lp39", help="benchmark code name")
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--samples", type=int, default=30)
    parser.add_argument("--shots", type=int, default=4000)
    parser.add_argument("--p", type=float, default=1e-3)
    args = parser.parse_args()

    code = load_benchmark_code(args.code)
    weights = code.stabilizer_weights()
    print(
        f"Code: {code.label()}, stabilizer weights "
        f"{sorted(set(weights['x'] + weights['z']))}"
    )

    start = coloration_schedule(code)
    print(f"Coloration circuit: CNOT depth {start.cnot_depth()}")

    rng = np.random.default_rng(0)
    deff0 = estimate_effective_distance(code, start, samples=30, rng=rng)
    print(f"Starting d_eff estimate: {deff0.deff} (weights seen: {deff0.weights_seen})")

    config = PropHuntConfig(
        iterations=args.iterations, samples_per_iteration=args.samples, seed=1
    )
    print(
        f"\nRunning PropHunt ({config.iterations} x {config.samples_per_iteration})..."
    )
    result = PropHunt(code, config).optimize(start)
    for record in result.history:
        print(
            f"  iteration {record.iteration}: {record.ambiguous_found} subgraphs, "
            f"min weight {record.min_logical_weight}, "
            f"applied {record.changes_applied}, depth {record.cnot_depth}"
        )

    deff1 = estimate_effective_distance(
        code, result.final_schedule, samples=30, rng=rng
    )
    print(f"Final d_eff estimate: {deff1.deff} (weights seen: {deff1.weights_seen})")

    print(f"\nEvaluating at p = {args.p:g} with BP+OSD ({args.shots} shots/basis)...")
    before = estimate_logical_error_rate(
        code, start, p=args.p, shots=args.shots, decoder="bposd", rng=rng
    )
    after = estimate_logical_error_rate(
        code,
        result.final_schedule,
        p=args.p,
        shots=args.shots,
        decoder="bposd",
        rng=rng,
    )
    print(f"  coloration : LER = {before.rate:.3e}")
    print(f"  PropHunt   : LER = {after.rate:.3e}")
    if after.rate > 0:
        print(f"  improvement: {before.rate / after.rate:.2f}x "
              f"(paper reports 2.5-4x at p=0.1% with paper-scale budgets)")


if __name__ == "__main__":
    main()
