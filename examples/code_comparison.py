"""Fair code comparison: disentangling the code from its SM circuit.

The paper's motivation section (§3) warns that comparing QEC codes with
unoptimized SM circuits conflates circuit quality with code quality.
This script compares benchmark codes twice — once with the generic
coloration circuit and once after PropHunt — and shows how the ranking
tightens (or flips) once every code gets an optimized circuit.

Usage:  python examples/code_comparison.py [--p 1e-3] [--shots 3000]
Runtime: several minutes (optimizes three codes).
"""

import argparse

import numpy as np

from repro.circuits import coloration_schedule
from repro.codes import load_benchmark_code
from repro.core import PropHunt, PropHuntConfig
from repro.decoders import estimate_logical_error_rate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--codes", nargs="+", default=["surface_d3", "lp39", "rqt60"])
    parser.add_argument("--p", type=float, default=1e-3)
    parser.add_argument("--shots", type=int, default=3000)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    print(
        f"{'code':>12s} {'n':>5s} {'k':>3s} "
        f"{'coloration':>12s} {'prophunt':>12s} {'gain':>6s}"
    )
    for name in args.codes:
        code = load_benchmark_code(name)
        start = coloration_schedule(code)
        config = PropHuntConfig(iterations=3, samples_per_iteration=24, seed=1)
        optimized = PropHunt(code, config).optimize(start).final_schedule
        before = estimate_logical_error_rate(
            code, start, p=args.p, shots=args.shots, rng=rng, max_failures=300
        ).rate
        after = estimate_logical_error_rate(
            code, optimized, p=args.p, shots=args.shots, rng=rng, max_failures=300
        ).rate
        gain = before / after if after > 0 else float("inf")
        print(
            f"{name:>12s} {code.n:>5d} {code.k:>3d} "
            f"{before:>12.3e} {after:>12.3e} {gain:>5.1f}x"
        )
    print(
        "\nPer-logical-qubit comparisons should use the optimized column — "
        "otherwise the SM circuit, not the code, is being measured (§3)."
    )


if __name__ == "__main__":
    main()
