"""Hook-ZNE: error mitigation from intermediate SM circuits (paper §7).

Two parts:

1. the paper's Figure 16b evaluation — DS-ZNE vs Hook-ZNE bias under a
   shared 20,000-shot budget at suppression factor Lambda = 2;
2. the systems path — run PropHunt on a real code and show that its
   intermediate schedules form a monotone ladder of logical error rates,
   i.e. genuine fine-grained noise dials at fixed distance and qubit
   count.

Usage:  python examples/hook_zne_demo.py
Runtime: a couple of minutes.
"""

import numpy as np

from repro.circuits import poor_schedule
from repro.codes import rotated_surface_code
from repro.core import PropHunt, PropHuntConfig
from repro.zne import (
    DS_ZNE_DISTANCE_SETS,
    DistanceScalingZNE,
    HOOK_ZNE_DISTANCE_SETS,
    HookZNE,
    noise_dials_from_prophunt,
)


def bias_comparison() -> None:
    lam, shots, trials = 2.0, 20_000, 50
    rng = np.random.default_rng(0)
    ds = DistanceScalingZNE(lam=lam)
    hook = HookZNE(lam=lam)
    print(f"DS-ZNE vs Hook-ZNE bias (Lambda={lam}, {shots} shots, {trials} trials)")
    print(
        f"{'DS distances':>18s} {'DS bias':>10s} "
        f"{'Hook distances':>22s} {'Hook bias':>10s}"
    )
    for ds_set, hook_set in zip(DS_ZNE_DISTANCE_SETS, HOOK_ZNE_DISTANCE_SETS):
        ds_bias = np.mean([ds.run(ds_set, shots, rng).bias for _ in range(trials)])
        hook_bias = np.mean(
            [hook.run(hook_set, shots, rng).bias for _ in range(trials)]
        )
        print(
            f"{str(ds_set):>18s} {ds_bias:10.4f} {str(hook_set):>22s} "
            f"{hook_bias:10.4f}   ({ds_bias / hook_bias:.1f}x better)"
        )


def real_noise_dials() -> None:
    print("\nReal noise dials from a PropHunt run (d=3 surface, p=3e-3):")
    code = rotated_surface_code(3)
    config = PropHuntConfig(iterations=4, samples_per_iteration=30, seed=1)
    result = PropHunt(code, config).optimize(poor_schedule(code))
    dials = noise_dials_from_prophunt(
        result, p=3e-3, shots=6000, rng=np.random.default_rng(0)
    )
    for iteration, rate in dials:
        bar = "#" * max(1, int(rate * 2500))
        print(f"  circuit {iteration}: LER = {rate:.3e}  {bar}")
    print(
        "Each intermediate circuit is a noise setting at fixed d and fixed "
        "qubit count — the dial Hook-ZNE turns."
    )


if __name__ == "__main__":
    bias_comparison()
    real_noise_dials()
