"""Quickstart: optimize a surface-code syndrome measurement circuit.

Runs PropHunt on the d=3 rotated surface code starting from a
deliberately poor CNOT schedule and shows the logical error rate
recovering to the hand-designed 'N-Z' schedule's level.

Usage:  python examples/quickstart.py
Runtime: about a minute on a laptop.
"""

import numpy as np

from repro.circuits import nz_schedule, poor_schedule
from repro.codes import rotated_surface_code
from repro.core import PropHunt, PropHuntConfig
from repro.decoders import estimate_logical_error_rate


def main() -> None:
    code = rotated_surface_code(3)
    print(f"Code: {code.label()}")

    start = poor_schedule(code)
    print(f"Starting schedule: depth {start.cnot_depth()}, valid={start.is_valid()}")

    config = PropHuntConfig(iterations=5, samples_per_iteration=40, seed=1)
    print(f"\nRunning PropHunt ({config.iterations} iterations x "
          f"{config.samples_per_iteration} subgraph samples)...")
    result = PropHunt(code, config).optimize(start)

    for record in result.history:
        print(
            f"  iteration {record.iteration}: "
            f"{record.ambiguous_found} ambiguous subgraphs, "
            f"min logical weight {record.min_logical_weight}, "
            f"{record.changes_applied} changes applied, "
            f"depth {record.cnot_depth}"
        )

    print("\nEvaluating logical error rates at p = 3e-3 (20k shots each)...")
    rng = np.random.default_rng(0)
    p = 3e-3
    for label, sched in (
        ("poor start", start),
        ("PropHunt", result.final_schedule),
        ("hand-designed N-Z", nz_schedule(code)),
    ):
        rate = estimate_logical_error_rate(
            code, sched, p=p, shots=20_000, rng=rng
        ).rate
        print(f"  {label:20s}  LER = {rate:.3e}")

    print(
        "\nPropHunt recovered the hand-designed circuit's performance "
        "automatically — the paper's §6.1 surface-code result."
    )


if __name__ == "__main__":
    main()
