"""Flag qubits vs PropHunt: two routes out of hook errors.

The paper's related work (§8) discusses flag fault tolerance as the
alternative fix for hook errors: detect them with extra ancillas rather
than reorder them away.  This script takes the d=3 surface code with the
*poor* schedule (effective distance reduced to 2 by hooks) and compares:

1. the broken baseline,
2. flag-augmented extraction (extra qubits + layers, d_eff restored),
3. PropHunt's reordering (same qubits, d_eff restored).

Usage:  python examples/flag_circuits.py
Runtime: about two minutes.
"""


from repro.experiments.ablations import run_flags_vs_prophunt


def main() -> None:
    result = run_flags_vs_prophunt(p=3e-3, shots=8000)
    result.print()
    rows = {r["approach"]: r for r in result.rows}
    ph = rows["prophunt"]
    fl = rows["poor + flag qubits"]
    print(
        f"\nBoth remedies restore d_eff = 3; flags cost "
        f"{fl['qubits'] - ph['qubits']} extra qubits, PropHunt costs none."
    )


if __name__ == "__main__":
    main()
