"""Classical binary linear codes.

These are the ingredients of the quantum constructions: hypergraph and
lifted products take classical parity-check matrices, and quantum Tanner
codes take small local codes (here: repetition codes and their duals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import gf2


@dataclass(frozen=True)
class ClassicalCode:
    """An [n, k] binary linear code given by a parity-check matrix.

    ``check_matrix`` has one row per parity check; the code is its right
    nullspace.
    """

    check_matrix: np.ndarray
    name: str = "classical"
    _generator: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        h = np.asarray(self.check_matrix, dtype=np.uint8) & 1
        if h.ndim != 2:
            raise ValueError(f"check matrix must be 2-D, got shape {h.shape}")
        object.__setattr__(self, "check_matrix", h)

    @property
    def n(self) -> int:
        return self.check_matrix.shape[1]

    @property
    def k(self) -> int:
        return self.n - gf2.rank(self.check_matrix)

    @property
    def generator_matrix(self) -> np.ndarray:
        """A (k, n) basis of codewords."""
        return gf2.nullspace(self.check_matrix)

    def dual(self) -> "ClassicalCode":
        """The dual code: codewords are the rows of our parity checks."""
        return ClassicalCode(self.generator_matrix, name=f"{self.name}^perp")

    def contains(self, word: np.ndarray) -> bool:
        word = np.asarray(word, dtype=np.uint8) & 1
        return not (self.check_matrix.astype(int) @ word % 2).any()

    def distance(self) -> int:
        """Exact minimum distance by exhaustive search (small codes only)."""
        gen = self.generator_matrix
        if gen.shape[0] == 0:
            return 0
        return int(gf2.min_weight_in_affine(gen).sum())

    def __repr__(self) -> str:
        return f"ClassicalCode(name={self.name!r}, n={self.n}, k={self.k})"


def repetition_code(n: int) -> ClassicalCode:
    """The [n, 1, n] repetition code."""
    if n < 2:
        raise ValueError("repetition code needs n >= 2")
    h = np.zeros((n - 1, n), dtype=np.uint8)
    for i in range(n - 1):
        h[i, i] = h[i, i + 1] = 1
    return ClassicalCode(h, name=f"rep{n}")


def hamming_code() -> ClassicalCode:
    """The [7, 4, 3] Hamming code (columns are 1..7 in binary)."""
    h = np.array(
        [
            [0, 0, 0, 1, 1, 1, 1],
            [0, 1, 1, 0, 0, 1, 1],
            [1, 0, 1, 0, 1, 0, 1],
        ],
        dtype=np.uint8,
    )
    return ClassicalCode(h, name="hamming7")


def parity_code(n: int) -> ClassicalCode:
    """The [n, n-1, 2] single-parity-check code."""
    if n < 2:
        raise ValueError("parity code needs n >= 2")
    return ClassicalCode(np.ones((1, n), dtype=np.uint8), name=f"parity{n}")


def random_regular_code(
    n: int, m: int, row_weight: int, rng: np.random.Generator
) -> ClassicalCode:
    """A random LDPC-like code with fixed row weight (for tests/demos)."""
    if row_weight > n:
        raise ValueError("row weight cannot exceed length")
    h = np.zeros((m, n), dtype=np.uint8)
    for i in range(m):
        cols = rng.choice(n, size=row_weight, replace=False)
        h[i, cols] = 1
    return ClassicalCode(h, name=f"random[{n},{m},w{row_weight}]")
