"""QEC code constructions: CSS framework, surface / LP / RQT codes."""

from .classical import (
    ClassicalCode,
    hamming_code,
    parity_code,
    random_regular_code,
    repetition_code,
)
from .css import CSSCode, CSSCodeError
from .distance import MinWeightResult, estimate_distance, min_weight_logical
from .groups import Group, RingMatrix, cyclic_group, dihedral_group
from .hypergraph_product import hypergraph_product, toric_like_code
from .library import (
    BENCHMARK_CODES,
    EXPECTED_PARAMETERS,
    load_benchmark_code,
    lp39_code,
    rqt54_code,
    rqt60_code,
    rqt108_code,
)
from .lifted_product import lifted_product
from .steane import steane_code
from .surface import plaquette_neighbors, rotated_surface_code
from .tanner import quantum_tanner_code, random_quantum_tanner_code, search_rqt_code
from .two_block import gb18_code, gb24_code, gb_code_cyclic, two_block_code

__all__ = [
    "ClassicalCode",
    "hamming_code",
    "parity_code",
    "random_regular_code",
    "repetition_code",
    "CSSCode",
    "CSSCodeError",
    "MinWeightResult",
    "estimate_distance",
    "min_weight_logical",
    "Group",
    "RingMatrix",
    "cyclic_group",
    "dihedral_group",
    "hypergraph_product",
    "toric_like_code",
    "BENCHMARK_CODES",
    "EXPECTED_PARAMETERS",
    "load_benchmark_code",
    "lp39_code",
    "rqt54_code",
    "rqt60_code",
    "rqt108_code",
    "lifted_product",
    "steane_code",
    "rotated_surface_code",
    "plaquette_neighbors",
    "quantum_tanner_code",
    "random_quantum_tanner_code",
    "search_rqt_code",
    "gb18_code",
    "gb24_code",
    "gb_code_cyclic",
    "two_block_code",
]
