"""The [[7, 1, 3]] Steane code.

Included because the paper (§3.1) uses it as the example where *every*
CNOT ordering produces distance-reducing hook errors — a useful negative
control for PropHunt's ambiguity analysis.
"""

from __future__ import annotations

import numpy as np

from .classical import hamming_code
from .css import CSSCode


def steane_code() -> CSSCode:
    h = hamming_code().check_matrix
    code = CSSCode(hx=h.copy(), hz=h.copy(), name="steane", distance=3)
    logical = np.ones((1, 7), dtype=np.uint8)  # X^7 / Z^7 are logical reps
    code.set_logicals(logical.copy(), logical.copy())
    return code
