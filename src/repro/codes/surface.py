"""Rotated surface codes (paper §2.2, Figure 2).

Layout: data qubits on a d x d grid at integer coordinates (row, col);
ancillas on the dual grid at plaquette corners (i, j) with
0 <= i, j <= d.  A plaquette at (i, j) acts on the (up to four) data qubits
of the cell above-left of it: (i-1, j-1), (i-1, j), (i, j-1), (i, j).
Plaquettes are X-type when (i + j) is even, Z-type otherwise, which
reproduces the paper's d=3 matrices exactly.  Boundary (weight-2)
plaquettes alternate so that X-type half-plaquettes sit on the left/right
edges and Z-type on the top/bottom edges.
"""

from __future__ import annotations

import numpy as np

from .css import CSSCode


def _plaquette_positions(d: int) -> list[tuple[int, int]]:
    positions: list[tuple[int, int]] = []
    for i in range(d + 1):
        for j in range(d + 1):
            interior = 1 <= i <= d - 1 and 1 <= j <= d - 1
            top = i == 0 and 1 <= j <= d - 1 and j % 2 == 1
            bottom = i == d and 1 <= j <= d - 1 and (i + j) % 2 == 1
            left = j == 0 and 1 <= i <= d - 1 and i % 2 == 0
            right = j == d and 1 <= i <= d - 1 and (i + j) % 2 == 0
            if interior or top or bottom or left or right:
                positions.append((i, j))
    return positions


def _plaquette_support(d: int, i: int, j: int) -> list[int]:
    support = []
    for r in (i - 1, i):
        for c in (j - 1, j):
            if 0 <= r < d and 0 <= c < d:
                support.append(r * d + c)
    return support


def rotated_surface_code(d: int) -> CSSCode:
    """Build the distance-``d`` rotated surface code ([[d^2, 1, d]]).

    ``d`` must be odd (the rotated layout needs odd distance for the
    alternating boundary to close up).
    """
    if d < 2 or d % 2 == 0:
        raise ValueError("rotated surface code requires odd d >= 3")

    x_rows, z_rows = [], []
    x_coords, z_coords = [], []
    for (i, j) in _plaquette_positions(d):
        row = np.zeros(d * d, dtype=np.uint8)
        row[_plaquette_support(d, i, j)] = 1
        # Plaquette coordinates are offset by 0.5 onto the dual lattice so
        # they render between the data qubits they touch.
        coord = (i - 0.5, j - 0.5)
        if (i + j) % 2 == 0:
            x_rows.append(row)
            x_coords.append(coord)
        else:
            z_rows.append(row)
            z_coords.append(coord)

    hx = np.array(x_rows, dtype=np.uint8)
    hz = np.array(z_rows, dtype=np.uint8)

    code = CSSCode(
        hx=hx,
        hz=hz,
        name=f"surface_d{d}",
        distance=d,
        qubit_coords=[(float(r), float(c)) for r in range(d) for c in range(d)],
        x_stab_coords=x_coords,
        z_stab_coords=z_coords,
    )

    # Logical X is any horizontal row of X's; logical Z any vertical column
    # of Z's (§3.1).  Use the middle row/column like the paper's Figure 2.
    mid = (d - 1) // 2
    lx = np.zeros((1, d * d), dtype=np.uint8)
    lx[0, [mid * d + c for c in range(d)]] = 1
    lz = np.zeros((1, d * d), dtype=np.uint8)
    lz[0, [r * d + mid for r in range(d)]] = 1
    code.set_logicals(lx, lz)
    return code


def plaquette_neighbors(code: CSSCode, kind: str, index: int) -> dict[str, int | None]:
    """Map a surface-code plaquette's data qubits to compass directions.

    Returns ``{"nw": q, "ne": q, "sw": q, "se": q}`` with ``None`` for
    directions that fall off the boundary.  Used by the hand-designed
    schedule (§3.1) to order CNOTs geometrically.
    """
    coords = code.x_stab_coords if kind == "x" else code.z_stab_coords
    if coords is None or code.qubit_coords is None:
        raise ValueError("code has no geometric layout")
    ci, cj = coords[index]
    support = (
        code.x_stab_support(index) if kind == "x" else code.z_stab_support(index)
    )
    by_coord = {code.qubit_coords[q]: q for q in support}
    return {
        "nw": by_coord.get((ci - 0.5, cj - 0.5)),
        "ne": by_coord.get((ci - 0.5, cj + 0.5)),
        "sw": by_coord.get((ci + 0.5, cj - 0.5)),
        "se": by_coord.get((ci + 0.5, cj + 0.5)),
    }
