"""The paper's benchmark code suite (Table 1).

Every entry reproduces the construction family and [[n, k, d]] of Table 1:

===========  ==========================  =====================
Construction Code                        How it is built here
===========  ==========================  =====================
Surface      [[9,1,3]] ... [[81,1,9]]    rotated layout (§2.2)
LP           [[39,3,3]]                  C3 protograph, weights {4,5,6}
RQT          [[60,2,6]]                  C15, |A|=|B|=2, rep-2 local codes
RQT          [[54,11,4]]                 dihedral order 6, rep-3/parity-3
RQT          [[108,18,4]]                dihedral order 12, rep-3/parity-3
===========  ==========================  =====================

Random generator sets for the RQT codes were seed-searched to hit the
paper's k (and verified distance); the frozen seeds make the suite
deterministic.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .classical import parity_code, repetition_code
from .css import CSSCode
from .groups import cyclic_group, dihedral_group
from .lifted_product import lp39_code
from .surface import rotated_surface_code
from .tanner import random_quantum_tanner_code


def rqt60_code() -> CSSCode:
    """The [[60, 2, 6]] RQT code: C15 with length-2 repetition local codes."""
    code = random_quantum_tanner_code(
        cyclic_group(15), 2, 2,
        repetition_code(2), repetition_code(2),
        np.random.default_rng(2), name="rqt60",
    )
    code.distance = 6
    return code


def rqt54_code() -> CSSCode:
    """The [[54, 11, 4]] RQT code: dihedral order 6, weight-6 stabilizers."""
    code = random_quantum_tanner_code(
        dihedral_group(3), 3, 3,
        repetition_code(3), parity_code(3),
        np.random.default_rng(5), name="rqt54",
    )
    code.distance = 4
    return code


def rqt108_code() -> CSSCode:
    """The [[108, 18, 4]] RQT code: dihedral order 12, weight-6 stabilizers."""
    code = random_quantum_tanner_code(
        dihedral_group(6), 3, 3,
        repetition_code(3), parity_code(3),
        np.random.default_rng(1), name="rqt108",
    )
    code.distance = 4
    return code


BENCHMARK_CODES: dict[str, Callable[[], CSSCode]] = {
    "surface_d3": lambda: rotated_surface_code(3),
    "surface_d5": lambda: rotated_surface_code(5),
    "surface_d7": lambda: rotated_surface_code(7),
    "surface_d9": lambda: rotated_surface_code(9),
    "lp39": lp39_code,
    "rqt60": rqt60_code,
    "rqt54": rqt54_code,
    "rqt108": rqt108_code,
}

EXPECTED_PARAMETERS: dict[str, tuple[int, int, int]] = {
    "surface_d3": (9, 1, 3),
    "surface_d5": (25, 1, 5),
    "surface_d7": (49, 1, 7),
    "surface_d9": (81, 1, 9),
    "lp39": (39, 3, 3),
    "rqt60": (60, 2, 6),
    "rqt54": (54, 11, 4),
    "rqt108": (108, 18, 4),
}


def load_benchmark_code(name: str) -> CSSCode:
    """Instantiate a Table 1 code by name."""
    if name not in BENCHMARK_CODES:
        raise KeyError(
            f"unknown benchmark code {name!r}; choose from {sorted(BENCHMARK_CODES)}"
        )
    return BENCHMARK_CODES[name]()
