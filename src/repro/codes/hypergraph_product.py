"""Hypergraph product codes (Tillich-Zemor).

Given classical checks H1 (m1 x n1) and H2 (m2 x n2), the hypergraph
product has n = n1*n2 + m1*m2 qubits and

    hx = [ H1 (x) I_n2 | I_m1 (x) H2^T ]
    hz = [ I_n1 (x) H2  | H1^T (x) I_m2 ]

The paper cites the fact (§3.1, [34]) that hypergraph-product codes have
``d_eff = d`` for *every* SM circuit, making them a calibration point for
PropHunt (optimization should find little to improve).
"""

from __future__ import annotations

import numpy as np

from .classical import ClassicalCode
from .css import CSSCode


def hypergraph_product(
    c1: ClassicalCode, c2: ClassicalCode, name: str | None = None
) -> CSSCode:
    h1 = c1.check_matrix
    h2 = c2.check_matrix
    m1, n1 = h1.shape
    m2, n2 = h2.shape
    hx = np.concatenate(
        [
            np.kron(h1, np.eye(n2, dtype=np.uint8)),
            np.kron(np.eye(m1, dtype=np.uint8), h2.T),
        ],
        axis=1,
    )
    hz = np.concatenate(
        [
            np.kron(np.eye(n1, dtype=np.uint8), h2),
            np.kron(h1.T, np.eye(m2, dtype=np.uint8)),
        ],
        axis=1,
    )
    return CSSCode(
        hx=hx % 2,
        hz=hz % 2,
        name=name or f"hgp({c1.name},{c2.name})",
    )


def toric_like_code(d: int) -> CSSCode:
    """Hypergraph product of two repetition codes: an unrotated surface code."""
    from .classical import repetition_code

    rep = repetition_code(d)
    code = hypergraph_product(rep, rep, name=f"hgp_surface_d{d}")
    code.distance = d
    return code
