"""Finite groups and group algebras for lifted-product / Tanner codes.

A :class:`Group` stores its multiplication table; elements are integer
indices.  Lifting a group-algebra element to a binary matrix uses the
left- or right-regular representation — the two commute, which is what
makes lifted products work over *nonabelian* groups (e.g. dihedral)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Group:
    """A finite group given by its multiplication table.

    ``mul_table[a, b]`` is the index of the product ``a * b``;
    ``labels`` are human-readable element names.
    """

    mul_table: np.ndarray
    labels: tuple[str, ...]
    name: str

    def __post_init__(self):
        t = np.asarray(self.mul_table, dtype=np.int64)
        n = t.shape[0]
        if t.shape != (n, n):
            raise ValueError("multiplication table must be square")
        object.__setattr__(self, "mul_table", t)

    @property
    def order(self) -> int:
        return self.mul_table.shape[0]

    @property
    def identity(self) -> int:
        # The identity is the unique e with e*x = x for all x.
        for e in range(self.order):
            if np.array_equal(self.mul_table[e], np.arange(self.order)):
                return e
        raise ValueError("multiplication table has no identity")

    def mul(self, a: int, b: int) -> int:
        return int(self.mul_table[a, b])

    def inv(self, a: int) -> int:
        e = self.identity
        hits = np.nonzero(self.mul_table[a] == e)[0]
        if hits.size != 1:
            raise ValueError(f"element {a} has no unique inverse")
        return int(hits[0])

    def is_abelian(self) -> bool:
        return np.array_equal(self.mul_table, self.mul_table.T)

    def left_regular(self, g: int) -> np.ndarray:
        """Permutation matrix of h -> g*h (L(g)[g*h, h] = 1)."""
        n = self.order
        mat = np.zeros((n, n), dtype=np.uint8)
        for h in range(n):
            mat[self.mul(g, h), h] = 1
        return mat

    def right_regular(self, g: int) -> np.ndarray:
        """Permutation matrix of h -> h*g (R(g)[h*g, h] = 1).

        Left- and right-regular matrices commute for any pair of elements,
        which the lifted product relies on.
        """
        n = self.order
        mat = np.zeros((n, n), dtype=np.uint8)
        for h in range(n):
            mat[self.mul(h, g), h] = 1
        return mat

    def __repr__(self) -> str:
        return f"Group({self.name}, order={self.order})"


def cyclic_group(n: int) -> Group:
    """The cyclic group C_n (element i is the rotation x^i)."""
    if n < 1:
        raise ValueError("cyclic group needs n >= 1")
    idx = np.arange(n)
    table = (idx[:, None] + idx[None, :]) % n
    return Group(table, tuple(f"x^{i}" for i in range(n)), name=f"C{n}")


def dihedral_group(n: int) -> Group:
    """The dihedral group of order 2n: rotations r^i and reflections r^i s.

    Element ``2*i + j`` encodes ``r^i s^j`` with the relation
    ``s r = r^{-1} s``.
    """
    if n < 1:
        raise ValueError("dihedral group needs n >= 1")

    def compose(i1, j1, i2, j2):
        # (r^i1 s^j1)(r^i2 s^j2) = r^(i1 + (-1)^j1 i2) s^(j1 xor j2)
        i = (i1 + (i2 if j1 == 0 else -i2)) % n
        return i, j1 ^ j2

    order = 2 * n
    table = np.zeros((order, order), dtype=np.int64)
    for a in range(order):
        for b in range(order):
            i, j = compose(a // 2, a % 2, b // 2, b % 2)
            table[a, b] = 2 * i + j
    labels = tuple(
        f"r^{a // 2}" + ("s" if a % 2 else "") for a in range(order)
    )
    return Group(table, labels, name=f"D{n}")


class RingMatrix:
    """A matrix over the group algebra F2[G].

    Entries are frozensets of group-element indices (a subset = a sum of
    group elements with coefficient 1).
    """

    def __init__(self, group: Group, entries: list[list[frozenset[int]]]):
        self.group = group
        self.entries = [[frozenset(e) for e in row] for row in entries]
        widths = {len(row) for row in self.entries}
        if len(widths) > 1:
            raise ValueError("ragged ring matrix")

    @classmethod
    def from_monomials(
        cls, group: Group, spec: list[list[int | None]]
    ) -> "RingMatrix":
        """Build from a protograph of single group elements (None = 0)."""
        return cls(
            group,
            [
                [frozenset() if e is None else frozenset({int(e)}) for e in row]
                for row in spec
            ],
        )

    @classmethod
    def identity(cls, group: Group, n: int) -> "RingMatrix":
        e = group.identity
        return cls(
            group,
            [
                [frozenset({e}) if i == j else frozenset() for j in range(n)]
                for i in range(n)
            ],
        )

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.entries), len(self.entries[0]) if self.entries else 0)

    def conjugate_transpose(self) -> "RingMatrix":
        """Transpose with entry-wise group inversion (the ring adjoint)."""
        m, n = self.shape
        inv = self.group.inv
        out = [
            [frozenset(inv(g) for g in self.entries[i][j]) for i in range(m)]
            for j in range(n)
        ]
        return RingMatrix(self.group, out)

    def kron(self, other: "RingMatrix") -> "RingMatrix":
        """Kronecker product; entries multiply as formal products.

        Only valid when at least one factor is the identity pattern (which
        is how the lifted product uses it) — general entry products are not
        needed and are rejected.
        """
        m1, n1 = self.shape
        m2, n2 = other.shape
        e = self.group.identity
        out: list[list[frozenset[int]]] = []
        for i1 in range(m1):
            for i2 in range(m2):
                row: list[frozenset[int]] = []
                for j1 in range(n1):
                    for j2 in range(n2):
                        a, b = self.entries[i1][j1], other.entries[i2][j2]
                        if not a or not b:
                            row.append(frozenset())
                        elif a == frozenset({e}):
                            row.append(b)
                        elif b == frozenset({e}):
                            row.append(a)
                        else:
                            raise ValueError(
                                "kron only supports identity-patterned factors"
                            )
                out.append(row)
        return RingMatrix(self.group, out)

    def lift(self, side: str) -> np.ndarray:
        """Binary lift: each entry becomes a sum of regular-rep matrices.

        ``side`` is ``"left"`` or ``"right"``; mixed sides across the two
        blocks of a lifted product is what guarantees commutation for
        nonabelian groups.
        """
        if side not in ("left", "right"):
            raise ValueError("side must be 'left' or 'right'")
        rep = self.group.left_regular if side == "left" else self.group.right_regular
        m, n = self.shape
        ell = self.group.order
        out = np.zeros((m * ell, n * ell), dtype=np.uint8)
        for i in range(m):
            for j in range(n):
                for g in self.entries[i][j]:
                    out[i * ell : (i + 1) * ell, j * ell : (j + 1) * ell] ^= rep(g)
        return out

    def __repr__(self) -> str:
        return f"RingMatrix(shape={self.shape}, group={self.group.name})"
