"""Randomized minimum-distance estimation (information-set decoding).

This is the QDistRnd-style sampler the paper references in §6.2: draw a
random information set, row-reduce the generator matrix, and harvest
low-weight codewords from the reduced rows (and pairs of rows,
Lee-Brickell order 2).  The result is an upper bound that converges to the
true distance rapidly for the small-to-moderate codes used here.

The same routine doubles as the *code-level* d_eff reference; circuit-level
d_eff uses PropHunt's subgraph machinery instead because the global
circuit-level problem is intractable (paper Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import gf2
from ..gf2.bitmat import BitMatrix
from ..gf2.kernels import popcount_u64
from .css import CSSCode


@dataclass(frozen=True)
class MinWeightResult:
    """Outcome of a randomized min-weight logical search."""

    weight: int
    vector: np.ndarray
    iterations_used: int

    def found(self) -> bool:
        return self.weight < np.iinfo(np.int64).max


def min_weight_logical(
    stabilizer_kernel_of: np.ndarray,
    logicals: np.ndarray,
    iterations: int = 100,
    rng: np.random.Generator | None = None,
    early_stop_weight: int | None = None,
    pair_search: bool = True,
) -> MinWeightResult:
    """Estimate min{|v| : stabilizer_kernel_of @ v = 0, logicals @ v != 0}.

    ``stabilizer_kernel_of`` is the check matrix whose kernel contains the
    candidate operators (e.g. ``hz`` when searching X-type logicals) and
    ``logicals`` the opposing logical matrix used to reject stabilizers
    (e.g. ``lz``).
    """
    rng = rng or np.random.default_rng()
    gen = gf2.nullspace(stabilizer_kernel_of)
    n = stabilizer_kernel_of.shape[1]
    logicals = np.atleast_2d(np.asarray(logicals, dtype=np.uint8))
    best_w = np.iinfo(np.int64).max
    best_v = np.zeros(n, dtype=np.uint8)
    if gen.shape[0] == 0:
        return MinWeightResult(best_w, best_v, 0)

    log_int = logicals.astype(np.int64)

    def consider(rows_dense: np.ndarray, used: int) -> tuple[int, np.ndarray]:
        nonlocal best_w, best_v
        flips = log_int @ rows_dense.T.astype(np.int64) % 2
        is_logical = flips.any(axis=0)
        weights = rows_dense.sum(axis=1)
        for idx in np.nonzero(is_logical)[0]:
            if weights[idx] < best_w:
                best_w = int(weights[idx])
                best_v = rows_dense[idx].copy()
        return best_w, best_v

    it = 0
    for it in range(1, iterations + 1):
        perm = rng.permutation(n)
        permuted = BitMatrix.from_dense(gen[:, perm])
        permuted.row_reduce()
        reduced = permuted.to_dense()
        reduced = reduced[reduced.any(axis=1)]
        # Undo the permutation so harvested rows are codewords of the code.
        unperm = np.empty_like(reduced)
        unperm[:, perm] = reduced
        consider(unperm, it)
        if pair_search and reduced.shape[0] >= 2:
            packed = BitMatrix.from_dense(unperm)
            m = packed.nrows
            # Lee-Brickell order 2: XOR of each pair of reduced rows.
            pair_rows = []
            for i in range(m - 1):
                xors = packed.words[i + 1 :] ^ packed.words[i]
                w = popcount_u64(xors).sum(axis=1)
                keep = np.nonzero(w < best_w)[0]
                for j in keep:
                    pair_rows.append(unperm[i] ^ unperm[i + 1 + j])
            if pair_rows:
                consider(np.array(pair_rows, dtype=np.uint8), it)
        if early_stop_weight is not None and best_w <= early_stop_weight:
            break
    return MinWeightResult(best_w, best_v, it)


def estimate_distance(
    code: CSSCode,
    iterations: int = 100,
    rng: np.random.Generator | None = None,
) -> int:
    """Upper-bound estimate of the code distance min(d_X, d_Z)."""
    rng = rng or np.random.default_rng()
    dx = min_weight_logical(
        code.hz,
        code.lz,
        iterations=iterations,
        rng=rng,
        early_stop_weight=code.distance,
    )
    dz = min_weight_logical(
        code.hx,
        code.lx,
        iterations=iterations,
        rng=rng,
        early_stop_weight=code.distance,
    )
    return int(min(dx.weight, dz.weight))
