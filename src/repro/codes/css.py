"""CSS stabilizer codes.

A CSS code is specified by two parity-check matrices over GF(2):
``hx`` (X-type stabilizers, detect Z errors) and ``hz`` (Z-type, detect X
errors) with the commutation condition ``hx @ hz.T = 0 (mod 2)`` (§2.1-2.3
of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import gf2


class CSSCodeError(ValueError):
    """Raised when matrices do not define a valid CSS code."""


def _logical_basis(kernel_of: np.ndarray, modulo: np.ndarray) -> np.ndarray:
    """Basis of ker(kernel_of) / rowspace(modulo).

    Returns k vectors that are in the kernel of ``kernel_of`` and jointly
    independent of the row space of ``modulo`` — i.e. representatives of the
    logical operators.
    """
    kernel = gf2.nullspace(kernel_of)
    picked: list[np.ndarray] = []
    stack = gf2.row_basis(modulo)
    current_rank = stack.shape[0]
    for vec in kernel:
        candidate = np.vstack([stack, vec[None, :]]) if stack.size else vec[None, :]
        r = gf2.rank(candidate)
        if r > current_rank:
            picked.append(vec)
            stack = candidate
            current_rank = r
    if picked:
        return np.array(picked, dtype=np.uint8)
    return np.zeros((0, kernel_of.shape[1]), dtype=np.uint8)


@dataclass
class CSSCode:
    """An [[n, k, d]] CSS code.

    Parameters
    ----------
    hx, hz:
        X- and Z-type parity check matrices (rows = stabilizers).
    name:
        Human-readable identifier (used in benchmark output).
    distance:
        The design distance if known (``None`` -> unknown; estimate with
        :func:`repro.codes.distance.estimate_distance`).
    qubit_coords / x_stab_coords / z_stab_coords:
        Optional geometric layout (used by surface-code schedules).
    """

    hx: np.ndarray
    hz: np.ndarray
    name: str = "css"
    distance: int | None = None
    qubit_coords: list[tuple[float, float]] | None = None
    x_stab_coords: list[tuple[float, float]] | None = None
    z_stab_coords: list[tuple[float, float]] | None = None
    _lx: np.ndarray | None = field(default=None, repr=False)
    _lz: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self):
        self.hx = np.asarray(self.hx, dtype=np.uint8) & 1
        self.hz = np.asarray(self.hz, dtype=np.uint8) & 1
        if self.hx.ndim != 2 or self.hz.ndim != 2:
            raise CSSCodeError("check matrices must be 2-D")
        if self.hx.shape[1] != self.hz.shape[1]:
            raise CSSCodeError(
                f"hx acts on {self.hx.shape[1]} qubits but hz on {self.hz.shape[1]}"
            )
        if gf2.matmul(self.hx, self.hz.T).any():
            raise CSSCodeError("stabilizers do not commute: hx @ hz^T != 0")

    # -- parameters ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of physical data qubits."""
        return self.hx.shape[1]

    @property
    def k(self) -> int:
        """Number of logical qubits: n - rank(hx) - rank(hz)."""
        return self.n - gf2.rank(self.hx) - gf2.rank(self.hz)

    @property
    def num_x_stabs(self) -> int:
        return self.hx.shape[0]

    @property
    def num_z_stabs(self) -> int:
        return self.hz.shape[0]

    @property
    def lx(self) -> np.ndarray:
        """Logical X operators: k rows, in ker(hz) independent of rowspace(hx)."""
        if self._lx is None:
            self._lx = _logical_basis(self.hz, self.hx)
        return self._lx

    @property
    def lz(self) -> np.ndarray:
        """Logical Z operators: k rows, in ker(hx) independent of rowspace(hz)."""
        if self._lz is None:
            self._lz = _logical_basis(self.hx, self.hz)
        return self._lz

    def set_logicals(self, lx: np.ndarray, lz: np.ndarray) -> None:
        """Install explicit logical representatives (validated)."""
        lx = np.atleast_2d(np.asarray(lx, dtype=np.uint8)) & 1
        lz = np.atleast_2d(np.asarray(lz, dtype=np.uint8)) & 1
        if gf2.matmul(self.hz, lx.T).any():
            raise CSSCodeError("lx must commute with all Z stabilizers")
        if gf2.matmul(self.hx, lz.T).any():
            raise CSSCodeError("lz must commute with all X stabilizers")
        if gf2.in_rowspace(self.hx, lx) and lx.size:
            raise CSSCodeError("lx lies in the stabilizer group")
        if gf2.in_rowspace(self.hz, lz) and lz.size:
            raise CSSCodeError("lz lies in the stabilizer group")
        self._lx, self._lz = lx, lz

    # -- structure queries ----------------------------------------------------

    def stabilizer_weights(self) -> dict[str, list[int]]:
        return {
            "x": sorted(int(r.sum()) for r in self.hx),
            "z": sorted(int(r.sum()) for r in self.hz),
        }

    def x_stab_support(self, i: int) -> list[int]:
        """Data qubits in the support of X stabilizer ``i``."""
        return [int(q) for q in np.nonzero(self.hx[i])[0]]

    def z_stab_support(self, i: int) -> list[int]:
        """Data qubits in the support of Z stabilizer ``i``."""
        return [int(q) for q in np.nonzero(self.hz[i])[0]]

    def data_qubit_x_stabs(self, q: int) -> list[int]:
        return [int(s) for s in np.nonzero(self.hx[:, q])[0]]

    def data_qubit_z_stabs(self, q: int) -> list[int]:
        return [int(s) for s in np.nonzero(self.hz[:, q])[0]]

    def syndrome(
        self, x_errors: np.ndarray, z_errors: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Code-level syndromes s_x = hx @ e_z, s_z = hz @ e_x (§2.3)."""
        e_z = np.asarray(z_errors, dtype=np.uint8).reshape(-1, 1)
        e_x = np.asarray(x_errors, dtype=np.uint8).reshape(-1, 1)
        return {
            "x": gf2.matmul(self.hx, e_z).ravel(),
            "z": gf2.matmul(self.hz, e_x).ravel(),
        }

    def logical_effect(
        self, x_errors: np.ndarray, z_errors: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Logical flips l_z = lx @ e_z, l_x = lz @ e_x (§2.4)."""
        e_z = np.asarray(z_errors, dtype=np.uint8).reshape(-1, 1)
        e_x = np.asarray(x_errors, dtype=np.uint8).reshape(-1, 1)
        return {
            "z": gf2.matmul(self.lx, e_z).ravel(),
            "x": gf2.matmul(self.lz, e_x).ravel(),
        }

    def label(self) -> str:
        d = "?" if self.distance is None else str(self.distance)
        return f"[[{self.n},{self.k},{d}]] {self.name}"

    def __repr__(self) -> str:
        return f"CSSCode({self.label()})"
