"""Two-block group-algebra (2BGA) / generalized bicycle codes.

The paper's related work ([28] Lin et al., [29] Lin & Pryadko) studies
SM circuits for generalized bicycle codes; this module adds the family
so PropHunt can be exercised on it.

Construction: pick two *commuting* elements a, b of a group algebra
F2[G] (any two elements commute when G is abelian; for nonabelian G we
lift a with the left-regular and b with the right-regular representation,
which always commute).  With A = lift(a), B = lift(b):

    hx = [ A | B ],     hz = [ B^T | A^T ]

Commutation: hx @ hz^T = A B + B A = 0 (mod 2) since A and B commute.
n = 2|G|, and k is typically 2 * dim ker(gcd-like intersection).
"""

from __future__ import annotations

import numpy as np

from .css import CSSCode
from .groups import Group, RingMatrix, cyclic_group


def _lift_element(group: Group, element: frozenset[int], side: str) -> np.ndarray:
    matrix = RingMatrix(group, [[element]])
    return matrix.lift(side)


def two_block_code(
    group: Group,
    a_terms: list[int],
    b_terms: list[int],
    name: str | None = None,
) -> CSSCode:
    """Build the 2BGA code from sums of group elements a and b."""
    a = frozenset(a_terms)
    b = frozenset(b_terms)
    if not a or not b:
        raise ValueError("a and b must each have at least one term")
    lift_a = _lift_element(group, a, "left")
    lift_b = _lift_element(group, b, "right")
    hx = np.concatenate([lift_a, lift_b], axis=1)
    hz = np.concatenate([lift_b.T, lift_a.T], axis=1)
    return CSSCode(hx=hx % 2, hz=hz % 2, name=name or f"2bga({group.name})")


def gb_code_cyclic(
    ell: int,
    a_powers: list[int],
    b_powers: list[int],
    name: str | None = None,
) -> CSSCode:
    """Generalized bicycle code over the cyclic group C_ell.

    ``a_powers`` / ``b_powers`` are exponents: a = sum_i x^{a_i}.
    """
    return two_block_code(
        cyclic_group(ell), a_powers, b_powers, name=name or f"gb{2 * ell}"
    )


def gb18_code() -> CSSCode:
    """The [[18, 2, 3]] generalized bicycle code over C9.

    a = 1 + x, b = 1 + x^3; found by exhaustive search over weight-2
    pairs and verified (k = 2, d = 3, weight-4 stabilizers).  A handy
    extra PropHunt benchmark beyond Table 1.
    """
    code = gb_code_cyclic(9, [0, 1], [0, 3], name="gb18")
    code.distance = 3
    return code


def gb24_code() -> CSSCode:
    """The [[24, 2, 4]] generalized bicycle code over C12 (a = 1 + x,
    b = 1 + x^3), found by the same search."""
    code = gb_code_cyclic(12, [0, 1], [0, 3], name="gb24")
    code.distance = 4
    return code
