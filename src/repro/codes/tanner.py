"""Quantum Tanner codes with random generator sets (RQT codes).

Quadripartite construction (Leverrier-Zemor; explicit small instances per
Radebold et al., which the paper's Table 1 follows):

* group ``G`` with generator sets ``A, B``; qubits on *squares*
  ``(g, a, b)``, so ``n = |G| * |A| * |B|``;
* each square touches four vertices ``(g,00), (ag,10), (gb,01), (agb,11)``;
* X-type checks live on vertices ``00``/``11`` with local code
  ``C_A (x) C_B``; Z-type checks on ``10``/``01`` with local code
  ``C_A^perp (x) C_B^perp``.

Orthogonality of ``C`` and ``C^perp`` row/column restrictions makes all
checks commute.  The *random* quantum Tanner codes of the paper draw
``A`` and ``B`` uniformly; we seed-search the draw so the resulting
``[[n, k]]`` matches Table 1 and record the estimated distance.
"""

from __future__ import annotations


import numpy as np

from .classical import ClassicalCode
from .css import CSSCode
from .groups import Group


def _local_tensor_basis(ca: ClassicalCode, cb: ClassicalCode) -> np.ndarray:
    """Basis of C_A (x) C_B as vectors over the |A| x |B| local view."""
    ga = ca.generator_matrix
    gb = cb.generator_matrix
    if ga.shape[0] == 0 or gb.shape[0] == 0:
        return np.zeros((0, ca.n * cb.n), dtype=np.uint8)
    rows = [np.outer(u, w).ravel() % 2 for u in ga for w in gb]
    return np.array(rows, dtype=np.uint8)


def quantum_tanner_code(
    group: Group,
    gen_a: list[int],
    gen_b: list[int],
    code_a: ClassicalCode,
    code_b: ClassicalCode,
    name: str | None = None,
) -> CSSCode:
    """Build the quadripartite quantum Tanner code Q(G, A, B; C_A, C_B)."""
    if len(set(gen_a)) != len(gen_a) or len(set(gen_b)) != len(gen_b):
        raise ValueError("generator sets must not contain repeats")
    if code_a.n != len(gen_a) or code_b.n != len(gen_b):
        raise ValueError("local code lengths must match generator set sizes")

    ell = group.order
    na, nb = len(gen_a), len(gen_b)
    nqubits = ell * na * nb

    def qubit_index(g: int, ai: int, bi: int) -> int:
        return (g * na + ai) * nb + bi

    x_basis = _local_tensor_basis(code_a, code_b)
    z_basis = _local_tensor_basis(code_a.dual(), code_b.dual())

    x_rows: list[np.ndarray] = []
    z_rows: list[np.ndarray] = []

    inv = group.inv
    mul = group.mul

    for v in range(ell):
        # Vertex (v, 00): squares (v, a, b).
        local00 = [
            qubit_index(v, ai, bi) for ai in range(na) for bi in range(nb)
        ]
        # Vertex (v, 11): squares with a*g*b = v, i.e. g = a^-1 v b^-1.
        local11 = [
            qubit_index(mul(mul(inv(gen_a[ai]), v), inv(gen_b[bi])), ai, bi)
            for ai in range(na)
            for bi in range(nb)
        ]
        for basis_vec in x_basis:
            for local in (local00, local11):
                row = np.zeros(nqubits, dtype=np.uint8)
                for pos, q in enumerate(local):
                    row[q] ^= basis_vec[pos]
                x_rows.append(row)
        # Vertex (v, 10): squares with a*g = v, i.e. g = a^-1 v.
        local10 = [
            qubit_index(mul(inv(gen_a[ai]), v), ai, bi)
            for ai in range(na)
            for bi in range(nb)
        ]
        # Vertex (v, 01): squares with g*b = v, i.e. g = v b^-1.
        local01 = [
            qubit_index(mul(v, inv(gen_b[bi])), ai, bi)
            for ai in range(na)
            for bi in range(nb)
        ]
        for basis_vec in z_basis:
            for local in (local10, local01):
                row = np.zeros(nqubits, dtype=np.uint8)
                for pos, q in enumerate(local):
                    row[q] ^= basis_vec[pos]
                z_rows.append(row)

    hx = np.array(x_rows, dtype=np.uint8)
    hz = np.array(z_rows, dtype=np.uint8)
    return CSSCode(hx=hx, hz=hz, name=name or f"qt({group.name})")


def random_quantum_tanner_code(
    group: Group,
    set_size_a: int,
    set_size_b: int,
    code_a: ClassicalCode,
    code_b: ClassicalCode,
    rng: np.random.Generator,
    name: str | None = None,
) -> CSSCode:
    """Draw random generator sets A, B and build the Tanner code."""
    gen_a = sorted(rng.choice(group.order, size=set_size_a, replace=False).tolist())
    gen_b = sorted(rng.choice(group.order, size=set_size_b, replace=False).tolist())
    return quantum_tanner_code(group, gen_a, gen_b, code_a, code_b, name=name)


def search_rqt_code(
    group: Group,
    set_size: int,
    local_code: ClassicalCode,
    target_k: int,
    max_seeds: int = 2000,
    name: str | None = None,
) -> tuple[CSSCode, int]:
    """Seed-search random generator sets until the code has ``target_k``.

    Returns (code, seed).  Raises if no seed within ``max_seeds`` matches —
    callers should then relax the target (documented in EXPERIMENTS.md).
    """
    for seed in range(max_seeds):
        rng = np.random.default_rng(seed)
        code = random_quantum_tanner_code(
            group, set_size, set_size, local_code, local_code, rng, name=name
        )
        if code.k == target_k:
            return code, seed
    raise ValueError(
        f"no seed in [0,{max_seeds}) gives k={target_k} for {group.name}"
    )
