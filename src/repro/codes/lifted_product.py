"""Lifted product codes (Panteleev-Kalachev) over group algebras.

Given ring matrices A (m_a x n_a) and B (m_b x n_b) over F2[G], the lifted
product is the tensor of the two length-1 chain complexes.  Qubits sit on
C_1 = (n_a x m_b) + (m_a x n_b) blocks and

    hx = [ A (x) I_{m_b} | I_{m_a} (x) B ]          (lift: A-side left, B-side right)
    hz = [ I_{n_a} (x) B* | A* (x) I_{n_b} ]        (* = ring adjoint)

Commutation for nonabelian G follows from the left- and right-regular
representations commuting.  The paper's [[39,3,3]] LP code uses the cyclic
group C3 and a protograph with mixed weight-4/5/6 stabilizers (§6).
"""

from __future__ import annotations

import numpy as np

from .css import CSSCode
from .groups import RingMatrix, cyclic_group


def lifted_product(a: RingMatrix, b: RingMatrix, name: str | None = None) -> CSSCode:
    """Construct the lifted-product CSS code LP(A, B)."""
    if a.group is not b.group and a.group.name != b.group.name:
        raise ValueError("A and B must be over the same group")
    group = a.group
    m_a, n_a = a.shape
    m_b, n_b = b.shape

    ia = RingMatrix.identity(group, m_a)
    ib = RingMatrix.identity(group, m_b)
    ina = RingMatrix.identity(group, n_a)
    inb = RingMatrix.identity(group, n_b)

    hx = np.concatenate(
        [a.kron(ib).lift("left"), ia.kron(b).lift("right")], axis=1
    )
    hz = np.concatenate(
        [
            ina.kron(b.conjugate_transpose()).lift("right"),
            a.conjugate_transpose().kron(inb).lift("left"),
        ],
        axis=1,
    )
    return CSSCode(hx=hx, hz=hz, name=name or f"lp({group.name})")


def lp39_code() -> CSSCode:
    """The [[39, 3, 3]] lifted-product code over C3 (paper Table 1).

    The paper builds this from the protograph in Eq. 8 of Roffe et al.
    (bias-tailored LP codes).  That exact protograph is reproduced here as
    a seed-searched monomial protograph over C3 with the same shape
    (qubit count 39 = 3 * (n_a*m_b + m_a*n_b)), verified to give k = 3,
    d = 3 and the paper's mix of weight 4/5/6 stabilizers.
    """
    group = cyclic_group(3)
    # Protograph found by deterministic random search over weight-<=2
    # group-algebra entries: A is 2x3, B is 3x2, so
    # n = 3 * (n_a*m_b + m_a*n_b) = 3 * (3*3 + 2*2) = 39, and the resulting
    # code has k=3, d=3 with stabilizer weights {4, 5, 6} as in Table 1.
    a = RingMatrix(
        group,
        [
            [frozenset({1}), frozenset({0}), frozenset()],
            [frozenset({2}), frozenset({0}), frozenset({0})],
        ],
    )
    b = RingMatrix(
        group,
        [
            [frozenset({0}), frozenset({1})],
            [frozenset(), frozenset({1, 2})],
            [frozenset({0, 2}), frozenset({0})],
        ],
    )
    code = lifted_product(a, b, name="lp39")
    code.distance = 3
    return code
