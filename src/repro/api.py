"""The stable client facade: ``import repro.api as api``.

Everything a *user* of this reproduction needs — evaluating a circuit's
logical error rate, sweeping a campaign grid, running the distributed
service — behind one small, ``__all__``-pinned surface.  The internal
packages (``repro.experiments``, ``repro.decoders``, ...) keep evolving
PR to PR; this module is the compatibility contract, and
``tests/test_api_surface.py`` pins both the name list and the call
signatures so accidental breakage fails CI, not user code.

Two styles:

Functions, for one-shot use::

    import repro.api as api

    ler = api.evaluate("surface_d3", "coloration", p=1e-3, shots=20_000)
    report = api.sweep(api.smoke_spec(), store="results/")

A :class:`Session`, when calls share state — one open
:class:`~repro.experiments.store.ResultStore` handle (parsed once,
tailed incrementally), one compile cache, one
:class:`~repro.experiments.shotrunner.ExecutionConfig`::

    sess = api.Session(store="results/", config=api.ExecutionConfig(workers=4))
    sess.sweep(spec)
    rows = sess.query(code="surface_d3", estimator="direct")

The distributed pair: :func:`serve` publishes a campaign's job queue
into the store directory (and can run an in-process worker fleet);
:func:`worker` attaches a worker to a served store from any process or
machine sharing the filesystem.  See ``repro.experiments.service`` for
the protocol.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from .experiments.campaign import (
    CampaignJob,
    CampaignReport,
    CampaignSpec,
    CompileCache,
    run_campaign,
    smoke_spec,
)
from .experiments.service import (
    ServeReport,
    WorkerReport,
    serve_campaign,
    worker_loop,
)
from .experiments.shotrunner import ExecutionConfig
from .experiments.store import ResultStore

__all__ = [
    "CampaignJob",
    "CampaignSpec",
    "ExecutionConfig",
    "ResultStore",
    "Session",
    "evaluate",
    "serve",
    "smoke_spec",
    "sweep",
    "worker",
]


def evaluate(
    code: str,
    schedule: str | dict[str, Any] = "coloration",
    p: float = 1e-3,
    shots: int = 10_000,
    basis: str | None = None,
    decoder: str = "auto",
    idle_strength: float = 0.0,
    noise: Any = None,
    rounds: int | None = None,
    config: ExecutionConfig | None = None,
):
    """Logical error rate of one (code, schedule) point; no store needed.

    ``code`` and ``schedule`` are campaign tokens (``"surface_d5"``,
    ``"coloration"``, ``"nz"``, an inline serialized schedule dict —
    see :func:`repro.experiments.campaign.resolve_code` /
    :func:`~repro.experiments.campaign.resolve_schedule`).  ``basis``
    restricts to one memory basis; the default simulates both and
    combines them, the paper's convention.  Returns a
    :class:`~repro.decoders.metrics.LogicalErrorRate`.
    """
    from .experiments.campaign import resolve_code, resolve_schedule
    from .experiments.shotrunner import estimate_logical_error_rate_chunked

    code_obj = resolve_code(code)
    return estimate_logical_error_rate_chunked(
        code_obj,
        resolve_schedule(code_obj, schedule),
        p,
        shots=shots,
        bases=(basis,) if basis is not None else ("z", "x"),
        decoder=decoder,
        idle_strength=idle_strength,
        noise=noise,
        rounds=rounds,
        config=config,
    )


def sweep(
    spec: CampaignSpec | Sequence[CampaignJob],
    store: ResultStore | str | os.PathLike | None = None,
    config: ExecutionConfig | None = None,
    labels: dict[str, str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Run a campaign grid in this process, resuming from ``store``."""
    return run_campaign(
        spec, store=store, config=config, labels=labels, progress=progress
    )


def serve(
    spec: CampaignSpec | Sequence[CampaignJob],
    store: str | os.PathLike,
    n_workers: int = 0,
    ttl: float = 60.0,
    poll: float = 0.5,
    wait: bool = True,
    timeout: float | None = None,
    labels: dict[str, str] | None = None,
    config: ExecutionConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> ServeReport:
    """Publish a campaign queue; optionally run in-process workers."""
    return serve_campaign(
        spec,
        store,
        n_workers=n_workers,
        ttl=ttl,
        poll=poll,
        wait=wait,
        timeout=timeout,
        labels=labels,
        config=config,
        progress=progress,
    )


def worker(
    store: str | os.PathLike,
    worker_id: str | None = None,
    ttl: float = 60.0,
    poll: float = 0.5,
    once: bool = False,
    max_jobs: int | None = None,
    timeout: float | None = None,
    config: ExecutionConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> WorkerReport:
    """Attach a worker to a served store until its queue is drained."""
    return worker_loop(
        store,
        worker_id=worker_id,
        ttl=ttl,
        poll=poll,
        once=once,
        max_jobs=max_jobs,
        timeout=timeout,
        config=config,
        progress=progress,
    )


class Session:
    """Shared-state facade: one store handle, one compile cache, one config.

    Figure scripts and notebooks that issue many calls against the same
    store pay the store parse once (the handle tails incrementally
    afterwards — :meth:`reload` folds in records other processes
    appended) and share compiled DEMs/decoders across sweeps.
    """

    def __init__(
        self,
        store: ResultStore | str | os.PathLike | None = None,
        config: ExecutionConfig | None = None,
        cache: CompileCache | None = None,
    ):
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self.config = config or ExecutionConfig()
        self.cache = cache or CompileCache()

    def reload(self) -> None:
        """Fold in records appended by other processes since the last load."""
        self.store.reload()

    def evaluate(self, code: str, schedule: str | dict[str, Any], p: float, **kw):
        """:func:`evaluate`, sharing this session's execution config."""
        kw.setdefault("config", self.config)
        return evaluate(code, schedule, p, **kw)

    def sweep(
        self,
        spec: CampaignSpec | Sequence[CampaignJob],
        labels: dict[str, str] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> CampaignReport:
        """Run a grid against this session's store, cache, and config."""
        return run_campaign(
            spec,
            store=self.store,
            cache=self.cache,
            config=self.config,
            labels=labels,
            progress=progress,
        )

    def serve(
        self,
        spec: CampaignSpec | Sequence[CampaignJob],
        n_workers: int = 0,
        **kw,
    ) -> ServeReport:
        """:func:`serve` against this session's (on-disk) store."""
        if self.store.path is None:
            raise ValueError("serving requires an on-disk store")
        kw.setdefault("config", self.config)
        report = serve(spec, self.store.path, n_workers=n_workers, **kw)
        self.store.reload()
        return report

    def query(self, **filters: Any) -> list[dict[str, Any]]:
        """Store records matching job-field filters (after a reload)."""
        self.store.reload()
        return self.store.query(**filters)

    def compact(self) -> dict[str, int]:
        """Canonicalize the store on disk (sorted, deduplicated, sharded)."""
        return self.store.compact()

    def telemetry(self) -> dict[str, Any]:
        """Fleet telemetry summary from this store's sidecar files.

        Aggregates the ``<store>/telemetry/`` span traces and worker
        heartbeats (written when workers run with ``REPRO_OBS=on``)
        into per-stage time shares, merged metric counters/histograms,
        and per-worker liveness — the programmatic face of ``campaign
        status --telemetry``.  Requires an on-disk store; telemetry is
        sidecar-only and never part of the result records themselves.
        """
        if self.store.path is None:
            raise ValueError("telemetry requires an on-disk store")
        from .obs.dashboard import telemetry_summary

        return telemetry_summary(self.store.path)
