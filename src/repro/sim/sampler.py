"""Monte-Carlo sampling of detector error models.

Sampling works column-wise like Stim's detector sampler: each mechanism
fires independently (Bernoulli with its probability); a shot's detector
and observable bits are the XOR of the fired mechanisms' columns.  The
fire events are drawn per-mechanism as a binomial count plus uniform shot
indices, so the cost is O(E + total_fires) instead of O(E * shots), and
the XOR accumulation is one sparse matrix product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from .dem import DetectorErrorModel


@dataclass
class SampleBatch:
    """One batch of sampled shots."""

    detectors: np.ndarray  # (shots, num_detectors) uint8
    observables: np.ndarray  # (shots, num_observables) uint8

    @property
    def shots(self) -> int:
        return self.detectors.shape[0]


class DemSampler:
    """Compiled sampler for a fixed DEM."""

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem
        self.h, self.l = dem.check_matrices()
        self.probs = dem.probabilities()
        # CSR of the transposed matrices: rows = mechanisms.
        self.h_t = self.h.T.tocsr()
        self.l_t = self.l.T.tocsr()

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> SampleBatch:
        rng = rng or np.random.default_rng()
        num_errors = self.dem.num_errors
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        counts = rng.binomial(shots, self.probs)
        for j in np.nonzero(counts)[0]:
            hit_shots = rng.choice(shots, size=counts[j], replace=False)
            rows.append(hit_shots)
            cols.append(np.full(counts[j], j, dtype=np.int64))
        if rows:
            row_idx = np.concatenate(rows)
            col_idx = np.concatenate(cols)
        else:
            row_idx = np.zeros(0, dtype=np.int64)
            col_idx = np.zeros(0, dtype=np.int64)
        fires = sparse.csr_matrix(
            (np.ones(len(row_idx), dtype=np.int64), (row_idx, col_idx)),
            shape=(shots, num_errors),
        )
        detectors = np.asarray(fires.dot(self.h_t).todense(), dtype=np.int64) % 2
        observables = np.asarray(fires.dot(self.l_t).todense(), dtype=np.int64) % 2
        return SampleBatch(
            detectors=detectors.astype(np.uint8),
            observables=observables.astype(np.uint8),
        )

    def sample_errors(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> tuple[sparse.csr_matrix, SampleBatch]:
        """Sample returning also the raw error pattern (for decoder tests)."""
        rng = rng or np.random.default_rng()
        mask = rng.random((shots, self.dem.num_errors)) < self.probs[None, :]
        fires = sparse.csr_matrix(mask.astype(np.int64))
        detectors = np.asarray(fires.dot(self.h_t).todense(), dtype=np.int64) % 2
        observables = np.asarray(fires.dot(self.l_t).todense(), dtype=np.int64) % 2
        return fires, SampleBatch(
            detectors=detectors.astype(np.uint8),
            observables=observables.astype(np.uint8),
        )
