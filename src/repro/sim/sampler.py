"""Monte-Carlo sampling of detector error models.

Sampling works column-wise like Stim's detector sampler: each mechanism
fires independently (Bernoulli with its probability); a shot's detector
and observable bits are the XOR of the fired mechanisms' columns.  The
fire events are drawn per-mechanism as a binomial count plus uniform shot
indices, so the cost is O(E + total_fires) instead of O(E * shots).

The hot path is bit-packed (:mod:`repro.sim.bitbatch`): fires are
scattered into per-mechanism shot rows of uint64 words and each
detector row is the word-wise XOR of its mechanisms' rows, so the
accumulation never materializes a dense ``(shots, detectors)`` array.
``sample`` returns the dense :class:`SampleBatch` as a thin unpacking
view of the packed batch; ``sample_dense`` keeps the original dense
sparse-matmul path as an independent reference implementation for the
cross-simulator litmus tests and benchmarks.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .. import obs
from .bitbatch import BitSampleBatch, SampleBatch, scatter_fires, xor_accumulate_csr
from .dem import DetectorErrorModel

_SAMPLE_SHOTS = obs.counter("sampler.shots")
_SAMPLE_FIRES = obs.counter("sampler.fires")

__all__ = ["DemSampler", "SampleBatch", "BitSampleBatch"]


class DemSampler:
    """Compiled sampler for a fixed DEM."""

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem
        self.h, self.l = dem.check_matrices()
        self.probs = dem.probabilities()
        # CSR with rows = detectors/observables (packed accumulation).
        self.h_rows = self.h.tocsr()
        self.l_rows = self.l.tocsr()
        # CSR of the transposed matrices: rows = mechanisms (dense path).
        self.h_t = self.h.T.tocsr()
        self.l_t = self.l.T.tocsr()

    # -- fire generation (shared by every path) ------------------------------

    def _sample_fires(
        self, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw fire events as (shot_idx, mechanism_idx) index arrays.

        The draw order is pinned: one vector binomial, then one
        ``choice`` per firing mechanism in index order.  Everything
        else here is non-random bookkeeping and free to change without
        perturbing sampled batches.
        """
        counts = rng.binomial(shots, self.probs)
        fired = np.nonzero(counts)[0]
        fired_counts = counts[fired]
        rows = [
            rng.choice(shots, size=c, replace=False)
            for c in fired_counts.tolist()
        ]
        if rows:
            cols = np.repeat(fired.astype(np.int64), fired_counts)
            return np.concatenate(rows), cols
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)

    # -- packed hot path -----------------------------------------------------

    def sample_packed(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> BitSampleBatch:
        """Sample a batch in packed form — the hot path."""
        rng = rng or np.random.default_rng()
        shot_idx, mech_idx = self._sample_fires(shots, rng)
        _SAMPLE_SHOTS.add(shots)
        _SAMPLE_FIRES.add(len(shot_idx))
        fires = scatter_fires(shot_idx, mech_idx, self.dem.num_errors, shots)
        detectors = xor_accumulate_csr(
            self.h_rows.indptr, self.h_rows.indices, fires, self.dem.num_detectors
        )
        observables = xor_accumulate_csr(
            self.l_rows.indptr, self.l_rows.indices, fires, self.dem.num_observables
        )
        return BitSampleBatch(detectors=detectors, observables=observables, shots=shots)

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> SampleBatch:
        """Dense view of :meth:`sample_packed` (backward-compatible API)."""
        return self.sample_packed(shots, rng).to_dense()

    # -- dense reference path ------------------------------------------------

    def sample_dense(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> SampleBatch:
        """Original dense sparse-matmul path, kept as a reference.

        Consumes the RNG identically to :meth:`sample_packed`, so with
        the same generator state the two are bit-identical — the litmus
        tests pin the packed kernels to this implementation.
        """
        rng = rng or np.random.default_rng()
        shot_idx, mech_idx = self._sample_fires(shots, rng)
        fires = sparse.csr_matrix(
            (np.ones(len(shot_idx), dtype=np.int64), (shot_idx, mech_idx)),
            shape=(shots, self.dem.num_errors),
        )
        return self._dense_from_fires(fires)

    def _dense_from_fires(self, fires: sparse.csr_matrix) -> SampleBatch:
        detectors = np.asarray(fires.dot(self.h_t).todense(), dtype=np.int64) % 2
        observables = np.asarray(fires.dot(self.l_t).todense(), dtype=np.int64) % 2
        return SampleBatch(
            detectors=detectors.astype(np.uint8),
            observables=observables.astype(np.uint8),
        )

    def sample_errors(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> tuple[sparse.csr_matrix, SampleBatch]:
        """Sample returning also the raw error pattern (for decoder tests).

        Uses the same sparse binomial-fires draw as :meth:`sample`, so it
        scales O(E + total_fires) instead of materializing a dense
        ``(shots, num_errors)`` random matrix.
        """
        rng = rng or np.random.default_rng()
        shot_idx, mech_idx = self._sample_fires(shots, rng)
        fires = sparse.csr_matrix(
            (np.ones(len(shot_idx), dtype=np.int64), (shot_idx, mech_idx)),
            shape=(shots, self.dem.num_errors),
        )
        return fires, self._dense_from_fires(fires)
