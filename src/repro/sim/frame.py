"""Direct Pauli-frame Monte-Carlo simulation of noisy circuits.

An independent way to sample detector/observable outcomes: instead of
compiling the circuit to a detector error model and XOR-ing mechanism
columns (:mod:`repro.sim.sampler`), this simulator propagates a random
Pauli frame per shot *through the circuit itself* — exactly Stim's
``FrameSimulator``.  Agreement between the two paths is a strong
end-to-end check of the DEM extraction (see
``tests/test_sim_frame.py``).

All shots advance together: the frame is a pair of (shots, qubits)
boolean matrices, and each gate is a couple of vectorized column ops.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from .sampler import SampleBatch

_TWO_QUBIT_PAULIS = [
    (p1, p2)
    for p1 in ("I", "X", "Y", "Z")
    for p2 in ("I", "X", "Y", "Z")
    if (p1, p2) != ("I", "I")
]


class FrameSimulator:
    """Sample noisy-circuit detector outcomes by Pauli-frame propagation."""

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> SampleBatch:
        rng = rng or np.random.default_rng()
        q = self.num_qubits
        xf = np.zeros((shots, q), dtype=bool)
        zf = np.zeros((shots, q), dtype=bool)
        meas_flips: list[np.ndarray] = []
        detector_cols: list[np.ndarray] = []
        observable_cols: dict[int, np.ndarray] = {}

        for op in self.circuit:
            if op.gate == "CNOT":
                for c, t in op.target_groups():
                    xf[:, t] ^= xf[:, c]
                    zf[:, c] ^= zf[:, t]
            elif op.gate == "H":
                for (qq,) in op.target_groups():
                    tmp = xf[:, qq].copy()
                    xf[:, qq] = zf[:, qq]
                    zf[:, qq] = tmp
            elif op.gate in ("R", "RX"):
                for (qq,) in op.target_groups():
                    xf[:, qq] = False
                    zf[:, qq] = False
            elif op.gate == "M":
                for (qq,) in op.target_groups():
                    meas_flips.append(xf[:, qq].copy())
            elif op.gate == "MX":
                for (qq,) in op.target_groups():
                    meas_flips.append(zf[:, qq].copy())
            elif op.gate == "DEPOLARIZE1":
                p = op.args[0]
                for (qq,) in op.target_groups():
                    draw = rng.random(shots)
                    # Equal thirds: X, Y, Z.
                    is_x = draw < p / 3
                    is_y = (draw >= p / 3) & (draw < 2 * p / 3)
                    is_z = (draw >= 2 * p / 3) & (draw < p)
                    xf[:, qq] ^= is_x | is_y
                    zf[:, qq] ^= is_z | is_y
            elif op.gate == "DEPOLARIZE2":
                p = op.args[0]
                for a, b in op.target_groups():
                    draw = rng.random(shots)
                    idx = np.floor(draw / (p / 15)).astype(np.int64)
                    hit = draw < p
                    for k, (p1, p2) in enumerate(_TWO_QUBIT_PAULIS):
                        sel = hit & (idx == k)
                        if not sel.any():
                            continue
                        if p1 in ("X", "Y"):
                            xf[sel, a] ^= True
                        if p1 in ("Z", "Y"):
                            zf[sel, a] ^= True
                        if p2 in ("X", "Y"):
                            xf[sel, b] ^= True
                        if p2 in ("Z", "Y"):
                            zf[sel, b] ^= True
            elif op.gate == "PAULI_CHANNEL_1":
                px, py, pz = op.args
                total = px + py + pz
                for (qq,) in op.target_groups():
                    draw = rng.random(shots)
                    is_x = draw < px
                    is_y = (draw >= px) & (draw < px + py)
                    is_z = (draw >= px + py) & (draw < total)
                    xf[:, qq] ^= is_x | is_y
                    zf[:, qq] ^= is_z | is_y
            elif op.gate == "DETECTOR":
                col = np.zeros(shots, dtype=bool)
                for idx in op.targets:
                    col ^= meas_flips[idx]
                detector_cols.append(col)
            elif op.gate == "OBSERVABLE_INCLUDE":
                obs = int(op.args[0])
                col = observable_cols.get(obs, np.zeros(shots, dtype=bool))
                for idx in op.targets:
                    col = col ^ meas_flips[idx]
                observable_cols[obs] = col
            # TICK: no-op

        num_obs = max(observable_cols) + 1 if observable_cols else 0
        detectors = (
            np.stack(detector_cols, axis=1).astype(np.uint8)
            if detector_cols
            else np.zeros((shots, 0), dtype=np.uint8)
        )
        observables = np.zeros((shots, num_obs), dtype=np.uint8)
        for obs, col in observable_cols.items():
            observables[:, obs] = col
        return SampleBatch(detectors=detectors, observables=observables)
