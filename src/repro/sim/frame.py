"""Direct Pauli-frame Monte-Carlo simulation of noisy circuits.

An independent way to sample detector/observable outcomes: instead of
compiling the circuit to a detector error model and XOR-ing mechanism
columns (:mod:`repro.sim.sampler`), this simulator propagates a random
Pauli frame per shot *through the circuit itself* — exactly Stim's
``FrameSimulator``.  Agreement between the two paths is a strong
end-to-end check of the DEM extraction (see
``tests/test_sim_frame.py`` and ``tests/test_sim_crosscheck.py``).

All shots advance together and are bit-packed along the shot axis: the
frame is a pair of ``(qubits, ceil(shots/64))`` uint64 matrices, so
every Clifford gate is a couple of word-wise row XOR/swap ops and only
the noise channels (which need one uniform draw per shot) touch
anything shot-length.  ``sample`` unpacks the packed result;
``sample_dense`` keeps the original boolean-matrix walk as a reference
implementation with the identical RNG consumption, so packed and dense
outputs are bit-for-bit equal for the same generator state.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..gf2.bitmat import pack_rows
from .bitbatch import BitSampleBatch, SampleBatch, num_shot_words

_TWO_QUBIT_PAULIS = [
    (p1, p2)
    for p1 in ("I", "X", "Y", "Z")
    for p2 in ("I", "X", "Y", "Z")
    if (p1, p2) != ("I", "I")
]

# Per-category flip tables for DEPOLARIZE2 (entry 15 = not hit).
_DEP2_XA = np.array([p1 in ("X", "Y") for p1, _ in _TWO_QUBIT_PAULIS] + [False])
_DEP2_ZA = np.array([p1 in ("Z", "Y") for p1, _ in _TWO_QUBIT_PAULIS] + [False])
_DEP2_XB = np.array([p2 in ("X", "Y") for _, p2 in _TWO_QUBIT_PAULIS] + [False])
_DEP2_ZB = np.array([p2 in ("Z", "Y") for _, p2 in _TWO_QUBIT_PAULIS] + [False])


def _dep2_flips(draw: np.ndarray, p: float) -> tuple[np.ndarray, ...]:
    """Boolean (xa, za, xb, zb) flip masks for one DEPOLARIZE2 target pair."""
    shots = draw.shape[0]
    if p <= 0:
        zero = np.zeros(shots, dtype=bool)
        return zero, zero, zero, zero
    hit = draw < p
    # Clamp before dividing so the cast never sees huge ratios.
    idx = np.floor(np.minimum(draw, p) / (p / 15)).astype(np.int64)
    idx = np.minimum(idx, 15)
    idx[~hit] = 15
    return (
        _DEP2_XA[idx],
        _DEP2_ZA[idx],
        _DEP2_XB[idx],
        _DEP2_ZB[idx],
    )


def _pauli2_flips(draw: np.ndarray, probs: np.ndarray) -> tuple[np.ndarray, ...]:
    """Flip masks for one PAULI_CHANNEL_2 pair (15 per-Pauli-pair probs).

    ``probs`` follows the canonical ``_TWO_QUBIT_PAULIS`` order; a draw
    past the cumulative total is the identity (table entry 15).
    """
    edges = np.cumsum(probs)
    idx = np.searchsorted(edges, draw, side="right")
    return (
        _DEP2_XA[idx],
        _DEP2_ZA[idx],
        _DEP2_XB[idx],
        _DEP2_ZB[idx],
    )


class FrameSimulator:
    """Sample noisy-circuit detector outcomes by Pauli-frame propagation."""

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits

    # -- packed hot path -----------------------------------------------------

    def sample_packed(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> BitSampleBatch:
        rng = rng or np.random.default_rng()
        q = self.num_qubits
        nwords = num_shot_words(shots)
        xf = np.zeros((q, nwords), dtype=np.uint64)
        zf = np.zeros((q, nwords), dtype=np.uint64)
        meas_flips: list[np.ndarray] = []
        detector_rows: list[np.ndarray] = []
        observable_rows: dict[int, np.ndarray] = {}

        for op in self.circuit:
            if op.gate == "CNOT":
                for c, t in op.target_groups():
                    xf[t] ^= xf[c]
                    zf[c] ^= zf[t]
            elif op.gate == "H":
                for (qq,) in op.target_groups():
                    tmp = xf[qq].copy()
                    xf[qq] = zf[qq]
                    zf[qq] = tmp
            elif op.gate in ("R", "RX"):
                for (qq,) in op.target_groups():
                    xf[qq] = 0
                    zf[qq] = 0
            elif op.gate == "M":
                for (qq,) in op.target_groups():
                    meas_flips.append(xf[qq].copy())
            elif op.gate == "MX":
                for (qq,) in op.target_groups():
                    meas_flips.append(zf[qq].copy())
            elif op.gate == "DEPOLARIZE1":
                p = op.args[0]
                for (qq,) in op.target_groups():
                    draw = rng.random(shots)
                    is_x = draw < p / 3
                    is_y = (draw >= p / 3) & (draw < 2 * p / 3)
                    is_z = (draw >= 2 * p / 3) & (draw < p)
                    flips = pack_rows(np.stack([is_x | is_y, is_z | is_y]))
                    xf[qq] ^= flips[0]
                    zf[qq] ^= flips[1]
            elif op.gate == "DEPOLARIZE2":
                p = op.args[0]
                for a, b in op.target_groups():
                    draw = rng.random(shots)
                    xa, za, xb, zb = _dep2_flips(draw, p)
                    flips = pack_rows(np.stack([xa, za, xb, zb]))
                    xf[a] ^= flips[0]
                    zf[a] ^= flips[1]
                    xf[b] ^= flips[2]
                    zf[b] ^= flips[3]
            elif op.gate == "PAULI_CHANNEL_1":
                px, py, pz = op.args
                total = px + py + pz
                for (qq,) in op.target_groups():
                    draw = rng.random(shots)
                    is_x = draw < px
                    is_y = (draw >= px) & (draw < px + py)
                    is_z = (draw >= px + py) & (draw < total)
                    flips = pack_rows(np.stack([is_x | is_y, is_z | is_y]))
                    xf[qq] ^= flips[0]
                    zf[qq] ^= flips[1]
            elif op.gate == "PAULI_CHANNEL_2":
                probs = np.asarray(op.args, dtype=np.float64)
                for a, b in op.target_groups():
                    draw = rng.random(shots)
                    xa, za, xb, zb = _pauli2_flips(draw, probs)
                    flips = pack_rows(np.stack([xa, za, xb, zb]))
                    xf[a] ^= flips[0]
                    zf[a] ^= flips[1]
                    xf[b] ^= flips[2]
                    zf[b] ^= flips[3]
            elif op.is_noise():
                # A registered noise gate with no lowering here would
                # silently sample the *noiseless* circuit — refuse.
                raise ValueError(
                    f"FrameSimulator has no lowering for noise gate {op.gate!r}"
                )
            elif op.gate == "DETECTOR":
                row = np.zeros(nwords, dtype=np.uint64)
                for idx in op.targets:
                    row ^= meas_flips[idx]
                detector_rows.append(row)
            elif op.gate == "OBSERVABLE_INCLUDE":
                obs = int(op.args[0])
                row = observable_rows.get(obs, np.zeros(nwords, dtype=np.uint64))
                for idx in op.targets:
                    row = row ^ meas_flips[idx]
                observable_rows[obs] = row
            # TICK: no-op

        num_obs = max(observable_rows) + 1 if observable_rows else 0
        detectors = (
            np.stack(detector_rows)
            if detector_rows
            else np.zeros((0, nwords), dtype=np.uint64)
        )
        observables = np.zeros((num_obs, nwords), dtype=np.uint64)
        for obs, row in observable_rows.items():
            observables[obs] = row
        return BitSampleBatch(detectors=detectors, observables=observables, shots=shots)

    def sample(self, shots: int, rng: np.random.Generator | None = None) -> SampleBatch:
        """Dense view of :meth:`sample_packed` (backward-compatible API)."""
        return self.sample_packed(shots, rng).to_dense()

    # -- dense reference path ------------------------------------------------

    def sample_dense(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> SampleBatch:
        """Original boolean-matrix walk, kept as a reference implementation.

        Draws the RNG in exactly the order of :meth:`sample_packed`, so
        the two paths are bit-identical for the same generator state.
        """
        rng = rng or np.random.default_rng()
        q = self.num_qubits
        xf = np.zeros((shots, q), dtype=bool)
        zf = np.zeros((shots, q), dtype=bool)
        meas_flips: list[np.ndarray] = []
        detector_cols: list[np.ndarray] = []
        observable_cols: dict[int, np.ndarray] = {}

        for op in self.circuit:
            if op.gate == "CNOT":
                for c, t in op.target_groups():
                    xf[:, t] ^= xf[:, c]
                    zf[:, c] ^= zf[:, t]
            elif op.gate == "H":
                for (qq,) in op.target_groups():
                    tmp = xf[:, qq].copy()
                    xf[:, qq] = zf[:, qq]
                    zf[:, qq] = tmp
            elif op.gate in ("R", "RX"):
                for (qq,) in op.target_groups():
                    xf[:, qq] = False
                    zf[:, qq] = False
            elif op.gate == "M":
                for (qq,) in op.target_groups():
                    meas_flips.append(xf[:, qq].copy())
            elif op.gate == "MX":
                for (qq,) in op.target_groups():
                    meas_flips.append(zf[:, qq].copy())
            elif op.gate == "DEPOLARIZE1":
                p = op.args[0]
                for (qq,) in op.target_groups():
                    draw = rng.random(shots)
                    # Equal thirds: X, Y, Z.
                    is_x = draw < p / 3
                    is_y = (draw >= p / 3) & (draw < 2 * p / 3)
                    is_z = (draw >= 2 * p / 3) & (draw < p)
                    xf[:, qq] ^= is_x | is_y
                    zf[:, qq] ^= is_z | is_y
            elif op.gate == "DEPOLARIZE2":
                p = op.args[0]
                for a, b in op.target_groups():
                    draw = rng.random(shots)
                    xa, za, xb, zb = _dep2_flips(draw, p)
                    xf[:, a] ^= xa
                    zf[:, a] ^= za
                    xf[:, b] ^= xb
                    zf[:, b] ^= zb
            elif op.gate == "PAULI_CHANNEL_1":
                px, py, pz = op.args
                total = px + py + pz
                for (qq,) in op.target_groups():
                    draw = rng.random(shots)
                    is_x = draw < px
                    is_y = (draw >= px) & (draw < px + py)
                    is_z = (draw >= px + py) & (draw < total)
                    xf[:, qq] ^= is_x | is_y
                    zf[:, qq] ^= is_z | is_y
            elif op.gate == "PAULI_CHANNEL_2":
                probs = np.asarray(op.args, dtype=np.float64)
                for a, b in op.target_groups():
                    draw = rng.random(shots)
                    xa, za, xb, zb = _pauli2_flips(draw, probs)
                    xf[:, a] ^= xa
                    zf[:, a] ^= za
                    xf[:, b] ^= xb
                    zf[:, b] ^= zb
            elif op.is_noise():
                raise ValueError(
                    f"FrameSimulator has no lowering for noise gate {op.gate!r}"
                )
            elif op.gate == "DETECTOR":
                col = np.zeros(shots, dtype=bool)
                for idx in op.targets:
                    col ^= meas_flips[idx]
                detector_cols.append(col)
            elif op.gate == "OBSERVABLE_INCLUDE":
                obs = int(op.args[0])
                col = observable_cols.get(obs, np.zeros(shots, dtype=bool))
                for idx in op.targets:
                    col = col ^ meas_flips[idx]
                observable_cols[obs] = col
            # TICK: no-op

        num_obs = max(observable_cols) + 1 if observable_cols else 0
        detectors = (
            np.stack(detector_cols, axis=1).astype(np.uint8)
            if detector_cols
            else np.zeros((shots, 0), dtype=np.uint8)
        )
        observables = np.zeros((shots, num_obs), dtype=np.uint8)
        for obs, col in observable_cols.items():
            observables[:, obs] = col
        return SampleBatch(detectors=detectors, observables=observables)
