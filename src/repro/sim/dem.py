"""Detector error model (DEM) extraction by symbolic Pauli-frame propagation.

This reproduces Stim's ``circuit.detector_error_model()``: every possible
Pauli fault of every noise channel is propagated through the Clifford
circuit (using the deterministic rules of paper §2.6) to find which
measurements — hence which detectors and logical observables — it flips.
The result is the circuit-level check matrix ``H`` and observable matrix
``L`` of §2.7: columns are error mechanisms, rows are detectors /
observables.

Vectorized over mechanisms: all error frames advance simultaneously as
boolean matrices, so extraction costs one dense column-XOR per gate
rather than one circuit walk per error.

Mechanisms with identical (detector set, observable set) are merged, with
probabilities composed as ``p = p1(1-p2) + p2(1-p1)`` and gate provenance
concatenated — provenance is how PropHunt maps errors back to schedule
edges (§5.3).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from ..circuits.circuit import Circuit

# The 15 non-identity two-qubit Pauli pairs, as (first, second) with
# each in {"I", "X", "Y", "Z"}.
_TWO_QUBIT_PAULIS = [
    (p1, p2)
    for p1 in ("I", "X", "Y", "Z")
    for p2 in ("I", "X", "Y", "Z")
    if (p1, p2) != ("I", "I")
]


@dataclass(frozen=True)
class ErrorSource:
    """Where a mechanism physically comes from: gate label + Pauli."""

    label: tuple
    pauli: str
    qubits: tuple[int, ...]


@dataclass
class ErrorMechanism:
    """A merged circuit-level error: probability, flips, provenance."""

    prob: float
    detectors: tuple[int, ...]
    observables: tuple[int, ...]
    sources: tuple[ErrorSource, ...]


@dataclass
class DetectorErrorModel:
    """Circuit-level H/L in mechanism-list form."""

    mechanisms: list[ErrorMechanism]
    num_detectors: int
    num_observables: int
    detector_labels: list[tuple] = field(default_factory=list)

    @property
    def num_errors(self) -> int:
        return len(self.mechanisms)

    def probabilities(self) -> np.ndarray:
        return np.array([m.prob for m in self.mechanisms], dtype=np.float64)

    def check_matrices(self) -> tuple[sparse.csc_matrix, sparse.csc_matrix]:
        """Sparse H (detectors x errors) and L (observables x errors)."""
        rows_h, cols_h, rows_l, cols_l = [], [], [], []
        for j, m in enumerate(self.mechanisms):
            for d in m.detectors:
                rows_h.append(d)
                cols_h.append(j)
            for o in m.observables:
                rows_l.append(o)
                cols_l.append(j)
        h = sparse.csc_matrix(
            (np.ones(len(rows_h), dtype=np.uint8), (rows_h, cols_h)),
            shape=(self.num_detectors, self.num_errors),
        )
        el = sparse.csc_matrix(
            (np.ones(len(rows_l), dtype=np.uint8), (rows_l, cols_l)),
            shape=(self.num_observables, self.num_errors),
        )
        return h, el

    def undetectable_logical_mechanisms(self) -> list[ErrorMechanism]:
        """Mechanisms that flip an observable but no detector (d_eff = 1!)."""
        return [m for m in self.mechanisms if m.observables and not m.detectors]

    def fingerprint(self) -> str:
        """Content hash of the error model, for content-addressed caches.

        Covers everything that determines decode results: dimensions and
        each mechanism's (probability, detectors, observables), in
        mechanism order — extraction is deterministic, so equal circuits
        yield equal fingerprints.  Provenance (``sources``) and detector
        labels are deliberately excluded: they never affect a decoder's
        output.
        """
        h = hashlib.sha256()
        h.update(f"{self.num_detectors}:{self.num_observables}:".encode())
        for m in self.mechanisms:
            h.update(repr((float(m.prob), m.detectors, m.observables)).encode())
        return h.hexdigest()

    def __repr__(self) -> str:
        return (
            f"DetectorErrorModel(errors={self.num_errors}, "
            f"detectors={self.num_detectors}, observables={self.num_observables})"
        )


def _enumerate_noise_sites(
    circuit: Circuit,
) -> list[tuple[int, float, list[tuple[str, int]], tuple]]:
    """All single-Pauli fault mechanisms: (op_idx, prob, [(P, qubit)...], label)."""
    sites = []
    for op_idx, op in enumerate(circuit):
        if op.gate == "DEPOLARIZE1":
            p = op.args[0] / 3.0
            for (q,) in op.target_groups():
                for pauli in ("X", "Y", "Z"):
                    sites.append((op_idx, p, [(pauli, q)], op.label))
        elif op.gate == "DEPOLARIZE2":
            p = op.args[0] / 15.0
            for (a, b) in op.target_groups():
                for p1, p2 in _TWO_QUBIT_PAULIS:
                    terms = []
                    if p1 != "I":
                        terms.append((p1, a))
                    if p2 != "I":
                        terms.append((p2, b))
                    sites.append((op_idx, p, terms, op.label))
        elif op.gate == "PAULI_CHANNEL_1":
            px, py, pz = op.args
            for (q,) in op.target_groups():
                for pauli, prob in (("X", px), ("Y", py), ("Z", pz)):
                    if prob > 0:
                        sites.append((op_idx, prob, [(pauli, q)], op.label))
        elif op.gate == "PAULI_CHANNEL_2":
            for (a, b) in op.target_groups():
                for (p1, p2), prob in zip(_TWO_QUBIT_PAULIS, op.args):
                    if prob <= 0:
                        continue
                    terms = []
                    if p1 != "I":
                        terms.append((p1, a))
                    if p2 != "I":
                        terms.append((p2, b))
                    sites.append((op_idx, prob, terms, op.label))
        elif op.is_noise():
            # A channel lowering to a noise gate outside this set would
            # otherwise yield a DEM silently missing mechanisms — the
            # decoder would run happily against the wrong error model.
            raise ValueError(
                f"DEM extraction has no lowering for noise gate {op.gate!r}"
            )
    return sites


def extract_dem(circuit: Circuit, merge: bool = True) -> DetectorErrorModel:
    """Propagate every fault through the circuit and assemble the DEM."""
    sites = _enumerate_noise_sites(circuit)
    num_errors = len(sites)
    num_qubits = circuit.num_qubits

    # Frames: xf[e, q] means error e currently carries an X on qubit q.
    xf = np.zeros((num_errors, num_qubits), dtype=bool)
    zf = np.zeros((num_errors, num_qubits), dtype=bool)

    # Group injection points by op index for the single walk.
    inject: dict[int, list[tuple[int, list[tuple[str, int]]]]] = defaultdict(list)
    for e, (op_idx, _, terms, _) in enumerate(sites):
        inject[op_idx].append((e, terms))

    meas_flip_cols: list[np.ndarray] = []
    detector_rows: list[np.ndarray] = []
    detector_labels: list[tuple] = []
    observable_rows: dict[int, np.ndarray] = {}

    for op_idx, op in enumerate(circuit):
        if op.is_noise():
            for e, terms in inject[op_idx]:
                for pauli, q in terms:
                    if pauli in ("X", "Y"):
                        xf[e, q] ^= True
                    if pauli in ("Z", "Y"):
                        zf[e, q] ^= True
            continue
        if op.gate == "CNOT":
            for c, t in op.target_groups():
                xf[:, t] ^= xf[:, c]
                zf[:, c] ^= zf[:, t]
        elif op.gate == "H":
            for (q,) in op.target_groups():
                tmp = xf[:, q].copy()
                xf[:, q] = zf[:, q]
                zf[:, q] = tmp
        elif op.gate in ("R", "RX"):
            for (q,) in op.target_groups():
                xf[:, q] = False
                zf[:, q] = False
        elif op.gate == "M":
            for (q,) in op.target_groups():
                meas_flip_cols.append(xf[:, q].copy())
        elif op.gate == "MX":
            for (q,) in op.target_groups():
                meas_flip_cols.append(zf[:, q].copy())
        elif op.gate == "DETECTOR":
            row = np.zeros(num_errors, dtype=bool)
            for idx in op.targets:
                row ^= meas_flip_cols[idx]
            detector_rows.append(row)
            detector_labels.append(op.label)
        elif op.gate == "OBSERVABLE_INCLUDE":
            obs = int(op.args[0])
            row = observable_rows.get(obs)
            if row is None:
                row = np.zeros(num_errors, dtype=bool)
            for idx in op.targets:
                row = row ^ meas_flip_cols[idx]
            observable_rows[obs] = row

    num_detectors = len(detector_rows)
    num_observables = max(observable_rows) + 1 if observable_rows else 0
    det_matrix = (
        np.array(detector_rows, dtype=bool)
        if detector_rows
        else np.zeros((0, num_errors), dtype=bool)
    )
    obs_matrix = np.zeros((num_observables, num_errors), dtype=bool)
    for obs, row in observable_rows.items():
        obs_matrix[obs] = row

    # Assemble mechanisms, merging identical flip signatures.
    grouped: dict[tuple, ErrorMechanism] = {}
    order: list[tuple] = []
    for e, (op_idx, prob, terms, label) in enumerate(sites):
        dets = tuple(int(d) for d in np.nonzero(det_matrix[:, e])[0])
        obs = tuple(int(o) for o in np.nonzero(obs_matrix[:, e])[0])
        if not dets and not obs:
            continue  # invisible and harmless
        pauli_str = "*".join(f"{p}{q}" for p, q in terms)
        source = ErrorSource(
            label=label, pauli=pauli_str, qubits=tuple(q for _, q in terms)
        )
        key = (dets, obs) if merge else (dets, obs, e)
        if key in grouped:
            m = grouped[key]
            m.prob = m.prob * (1 - prob) + prob * (1 - m.prob)
            m.sources = m.sources + (source,)
        else:
            grouped[key] = ErrorMechanism(
                prob=prob, detectors=dets, observables=obs, sources=(source,)
            )
            order.append(key)

    return DetectorErrorModel(
        mechanisms=[grouped[k] for k in order],
        num_detectors=num_detectors,
        num_observables=num_observables,
        detector_labels=detector_labels,
    )
