"""Simulation substrate: DEM extraction, sampling, tableau verification."""

from .bitbatch import (
    BitSampleBatch,
    SampleBatch,
    pack_shots,
    scatter_unique,
    shot_words,
    unique_shot_words,
    unpack_shots,
)
from .dem import DetectorErrorModel, ErrorMechanism, ErrorSource, extract_dem
from .frame import FrameSimulator
from .sampler import DemSampler
from .tableau import CircuitResult, TableauSimulator, verify_deterministic_detectors

__all__ = [
    "FrameSimulator",
    "DetectorErrorModel",
    "ErrorMechanism",
    "ErrorSource",
    "extract_dem",
    "DemSampler",
    "SampleBatch",
    "BitSampleBatch",
    "pack_shots",
    "unpack_shots",
    "shot_words",
    "unique_shot_words",
    "scatter_unique",
    "CircuitResult",
    "TableauSimulator",
    "verify_deterministic_detectors",
]
