"""Simulation substrate: DEM extraction, sampling, tableau verification."""

from .frame import FrameSimulator
from .dem import DetectorErrorModel, ErrorMechanism, ErrorSource, extract_dem
from .sampler import DemSampler, SampleBatch
from .tableau import CircuitResult, TableauSimulator, verify_deterministic_detectors

__all__ = [
    "FrameSimulator",
    "DetectorErrorModel",
    "ErrorMechanism",
    "ErrorSource",
    "extract_dem",
    "DemSampler",
    "SampleBatch",
    "CircuitResult",
    "TableauSimulator",
    "verify_deterministic_detectors",
]
