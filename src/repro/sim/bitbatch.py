"""Bit-packed shot batches.

The hot path of every experiment is Monte-Carlo shot sampling; this
module gives it a Stim-style representation: detector/observable
outcomes are packed 64 shots per ``uint64`` word along the *shot* axis,
so one row holds one detector across the whole batch.  XOR-accumulating
error-mechanism columns then costs ``ceil(shots / 64)`` word ops per
flip instead of ``shots`` bytes, and failure counting is a popcount.

Packing bottoms out in :mod:`repro.gf2.bitmat`, the same kernels the
elimination routines use; this module adds the shot-axis conventions
(transpose, tail bits) plus the scatter/reduce kernels the samplers
need.  The dense ``SampleBatch`` lives here too and is kept as a thin
unpacked view for code that wants plain ``(shots, k)`` uint8 arrays.

Tail bits (shot positions ``>= shots`` in the last word) are always
zero; every producer in this module preserves that invariant, which is
what makes popcount-based counting exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gf2 import kernels
from ..gf2.bitmat import pack_rows, transpose_words, unpack_rows

# Bits per packed word along the shot axis — the alignment every packed
# producer/consumer (and the chunk planners) share.
WORD_BITS = 64
_WORD = WORD_BITS


def num_shot_words(shots: int) -> int:
    """Words needed to hold ``shots`` bits (at least one)."""
    return max(1, (shots + _WORD - 1) // _WORD)


def pack_shots(dense: np.ndarray) -> np.ndarray:
    """Pack a dense ``(shots, k)`` 0/1 array into ``(k, ceil(shots/64))``
    uint64 words: row ``i`` of the result is column ``i`` of the input,
    bit ``s`` of the row (little-endian per word) is shot ``s``."""
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError(f"expected a (shots, k) array, got shape {dense.shape}")
    return pack_rows(np.ascontiguousarray(dense.T))


def unpack_shots(words: np.ndarray, shots: int) -> np.ndarray:
    """Inverse of :func:`pack_shots`; returns a dense ``(shots, k)`` uint8."""
    return np.ascontiguousarray(unpack_rows(words, shots).T)


def scatter_fires(
    shot_idx: np.ndarray, mech_idx: np.ndarray, num_mechanisms: int, shots: int
) -> np.ndarray:
    """Scatter fire events into packed per-mechanism shot rows.

    Returns ``(num_mechanisms, ceil(shots/64))`` uint64 words with bit
    ``s`` of row ``j`` set iff mechanism ``j`` fired in shot ``s`` an
    odd number of times — XOR accumulation, matching the mod-2
    semantics of the dense sparse-matmul path for any event list.
    """
    nwords = num_shot_words(shots)
    words = np.zeros(num_mechanisms * nwords, dtype=np.uint64)
    if len(shot_idx):
        shot_idx = np.asarray(shot_idx, dtype=np.int64)
        mech_idx = np.asarray(mech_idx, dtype=np.int64)
        flat = mech_idx * nwords + (shot_idx >> 6)
        bits = np.uint64(1) << (shot_idx & 63).astype(np.uint64)
        np.bitwise_xor.at(words, flat, bits)
    return words.reshape(num_mechanisms, nwords)


def xor_accumulate_csr(
    indptr: np.ndarray, indices: np.ndarray, source: np.ndarray, num_rows: int
) -> np.ndarray:
    """Row-wise XOR gather: ``out[r] = XOR of source[indices[indptr[r]:indptr[r+1]]]``.

    ``(indptr, indices)`` is CSR structure (e.g. of a check matrix with
    one row per detector, columns indexing mechanisms); ``source`` holds
    one packed shot-row per mechanism.  The loop is over output rows
    only — detectors, not shots — so it stays cheap at any batch size.
    """
    if source.ndim != 2:
        raise ValueError(f"expected a 2-D source, got shape {source.shape}")
    nwords = source.shape[1]
    out = np.zeros((num_rows, nwords), dtype=np.uint64)
    for r in range(num_rows):
        lo, hi = indptr[r], indptr[r + 1]
        if hi > lo:
            np.bitwise_xor.reduce(source[indices[lo:hi]], axis=0, out=out[r])
    return out


def shot_words(words: np.ndarray, shots: int) -> np.ndarray:
    """Per-shot word view of packed rows: ``(k, ceil(shots/64))`` →
    ``(shots, ceil(k/64))``.

    Row ``s`` of the result packs the ``k`` bits of shot ``s`` into
    words — a hashable per-shot key, computed as a blockwise bit
    transpose (:func:`repro.gf2.bitmat.transpose_words`) so no dense
    ``(shots, k)`` array is materialized.
    """
    return transpose_words(words, shots)


def unique_shot_words(per_shot: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group shots by their packed word key.

    ``per_shot`` is ``(shots, nwords)`` uint64 (one key row per shot, as
    produced by :func:`shot_words`).  Returns ``(unique, inverse)`` with
    ``unique`` the distinct key rows and ``inverse[s]`` the group id of
    shot ``s`` — the unique-syndrome batching core: decode ``unique``
    once, scatter through ``inverse``.  Group *order* is arbitrary by
    contract (kernel backends differ); group 0 is the all-zero key
    whenever any shot has it.  Dispatches to the active kernel backend
    (:mod:`repro.gf2.kernels`).
    """
    if np.asarray(per_shot).ndim != 2:
        raise ValueError(
            f"expected (shots, nwords) keys, got shape {np.asarray(per_shot).shape}"
        )
    return kernels.unique_shot_words(per_shot)


def scatter_unique(values: np.ndarray, inverse: np.ndarray) -> np.ndarray:
    """Scatter per-group rows back into packed per-shot bit rows.

    ``values`` is ``(groups, k)`` uint8 and ``inverse`` maps each shot to
    its group; the result is ``(k, ceil(shots/64))`` uint64 with bit
    ``s`` of row ``i`` equal to ``values[inverse[s], i]``.  The dense
    intermediate is ``(shots, k)`` with ``k`` the number of *observables*
    — a handful of columns, never the detector count.
    """
    return pack_shots(np.ascontiguousarray(values)[inverse])


def popcount_words(words: np.ndarray, axis: int | None = None) -> np.ndarray | int:
    """Total set bits, optionally along one axis.

    Dispatches to the active kernel backend (:mod:`repro.gf2.kernels`).
    """
    return kernels.popcount_words(words, axis)


def mask_shot_tail(words: np.ndarray, shots: int) -> np.ndarray:
    """Zero the tail bits (positions ``>= shots``) of the last word, in place.

    Every producer in this module already maintains the tail-bit
    invariant; this is the defensive re-assertion for consumers that
    popcount words from *outside* sources (e.g. the failure-counting
    path fed by decoder predictions), where a garbage tail bit would
    silently inflate counts.  Returns ``words`` for chaining.
    """
    if words.ndim != 2 or words.shape[1] == 0:
        return words
    tail = shots % _WORD
    if tail:
        keep = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
        words[:, -1] &= keep
    return words


@dataclass
class SampleBatch:
    """One batch of sampled shots, dense layout (unpacked view)."""

    detectors: np.ndarray  # (shots, num_detectors) uint8
    observables: np.ndarray  # (shots, num_observables) uint8

    @property
    def shots(self) -> int:
        return self.detectors.shape[0]


@dataclass
class BitSampleBatch:
    """One batch of sampled shots, bit-packed along the shot axis.

    ``detectors`` is ``(num_detectors, ceil(shots/64))`` uint64 and
    ``observables`` is ``(num_observables, ceil(shots/64))`` uint64; bit
    ``s`` (little-endian within each word) is shot ``s``.  Tail bits are
    zero.
    """

    detectors: np.ndarray
    observables: np.ndarray
    shots: int

    @property
    def num_detectors(self) -> int:
        return self.detectors.shape[0]

    @property
    def num_observables(self) -> int:
        return self.observables.shape[0]

    @property
    def num_words(self) -> int:
        return self.detectors.shape[1]

    # -- conversions ---------------------------------------------------------

    @classmethod
    def from_dense(cls, batch: SampleBatch) -> "BitSampleBatch":
        return cls(
            detectors=pack_shots(batch.detectors),
            observables=pack_shots(batch.observables),
            shots=batch.shots,
        )

    def to_dense(self) -> SampleBatch:
        return SampleBatch(
            detectors=unpack_shots(self.detectors, self.shots),
            observables=unpack_shots(self.observables, self.shots),
        )

    def detectors_dense(self) -> np.ndarray:
        """Just the ``(shots, num_detectors)`` uint8 view (decoder input)."""
        return unpack_shots(self.detectors, self.shots)

    def shot_syndromes(self) -> np.ndarray:
        """Per-shot packed syndrome keys, ``(shots, ceil(num_detectors/64))``.

        The word-hash the packed decoders group shots by; computed by bit
        transpose, never via a dense ``(shots, num_detectors)`` array.
        """
        return shot_words(self.detectors, self.shots)

    # -- counting ------------------------------------------------------------

    def detector_counts(self) -> np.ndarray:
        """Per-detector number of shots in which it fired."""
        return popcount_words(self.detectors, axis=1)

    def observable_counts(self) -> np.ndarray:
        """Per-observable number of shots in which it flipped."""
        return popcount_words(self.observables, axis=1)

    # -- combination ---------------------------------------------------------

    @classmethod
    def concat(cls, batches: "list[BitSampleBatch]") -> "BitSampleBatch":
        """Concatenate batches along the shot axis.

        Word-aligned (every batch but the last a multiple of 64 shots —
        the chunk planner's convention) concatenation is a plain hstack;
        otherwise fall back to an unpack/repack round trip.
        """
        if not batches:
            raise ValueError("need at least one batch")
        if len(batches) == 1:
            return batches[0]
        # A zero-shot batch still carries one (all-zero) word; hstacking it
        # would shift later batches past the shot count.  Drop them first.
        nonempty = [b for b in batches if b.shots > 0]
        if len(nonempty) < 2:
            return nonempty[0] if nonempty else batches[0]
        batches = nonempty
        aligned = all(b.shots % _WORD == 0 for b in batches[:-1])
        total = sum(b.shots for b in batches)
        if aligned:
            return cls(
                detectors=np.hstack([b.detectors for b in batches]),
                observables=np.hstack([b.observables for b in batches]),
                shots=total,
            )
        dense = [b.to_dense() for b in batches]
        return cls(
            detectors=pack_shots(np.vstack([d.detectors for d in dense])),
            observables=pack_shots(np.vstack([d.observables for d in dense])),
            shots=total,
        )
