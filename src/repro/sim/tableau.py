"""Aaronson-Gottesman stabilizer (CHP) simulator.

This is the reproduction's stand-in for Stim's tableau engine.  It is used
as a *correctness oracle*: a well-formed SM circuit must have every
detector deterministically zero when run without noise, which exercises
stabilizer commutation, scheduling, and detector wiring end-to-end.

State: the standard 2n x (2n+1) binary tableau — n destabilizer rows,
n stabilizer rows, columns (x | z | phase).
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit


class TableauSimulator:
    """Simulate Clifford circuits with measurement and reset."""

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None):
        n = num_qubits
        self.n = n
        self.rng = rng or np.random.default_rng()
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        # Destabilizers X_i, stabilizers Z_i: the |0...0> state.
        for i in range(n):
            self.x[i, i] = 1
            self.z[n + i, i] = 1
        self.measurement_record: list[int] = []

    # -- gates -----------------------------------------------------------------

    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def cnot(self, c: int, t: int) -> None:
        self.r ^= self.x[:, c] & self.z[:, t] & (self.x[:, t] ^ self.z[:, c] ^ 1)
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def x_gate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    # -- measurement -------------------------------------------------------------

    def _g(self, x1, z1, x2, z2) -> np.ndarray:
        """Phase exponent contribution of multiplying single-qubit Paulis."""
        x1 = x1.astype(np.int8)
        z1 = z1.astype(np.int8)
        x2 = x2.astype(np.int8)
        z2 = z2.astype(np.int8)
        # Aaronson-Gottesman g function, vectorized over qubits.
        return (
            (x1 & z1) * (z2 - x2)
            + (x1 & (z1 ^ 1)) * z2 * (2 * x2 - 1)
            + ((x1 ^ 1) & z1) * x2 * (1 - 2 * z2)
        )

    def _rowsum(self, h: int, i: int) -> None:
        """Row h *= row i (left-multiplication of Pauli operators)."""
        phase = 2 * self.r[h] + 2 * self.r[i] + self._g(
            self.x[i], self.z[i], self.x[h], self.z[h]
        ).sum()
        self.r[h] = (phase % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def measure_z(self, q: int) -> tuple[int, bool]:
        """Measure Z on qubit q; returns (outcome, was_random)."""
        n = self.n
        stab_hits = np.nonzero(self.x[n:, q])[0]
        if stab_hits.size:
            p = n + int(stab_hits[0])
            for i in np.nonzero(self.x[:, q])[0]:
                if int(i) != p:
                    self._rowsum(int(i), p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            outcome = int(self.rng.integers(0, 2))
            self.r[p] = outcome
            return outcome, True
        # Deterministic: accumulate into a scratch row.
        scratch_x = np.zeros(self.n, dtype=np.uint8)
        scratch_z = np.zeros(self.n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if self.x[i, q]:
                phase = 2 * scratch_r + 2 * self.r[n + i] + self._g(
                    self.x[n + i], self.z[n + i], scratch_x, scratch_z
                ).sum()
                scratch_r = (phase % 4) // 2
                scratch_x ^= self.x[n + i]
                scratch_z ^= self.z[n + i]
        return int(scratch_r), False

    def measure_x(self, q: int) -> tuple[int, bool]:
        self.h(q)
        out = self.measure_z(q)
        self.h(q)
        return out

    def reset_z(self, q: int) -> None:
        outcome, _ = self.measure_z(q)
        if outcome:
            self.x_gate(q)

    def reset_x(self, q: int) -> None:
        self.h(q)
        self.reset_z(q)
        self.h(q)

    # -- circuit execution ---------------------------------------------------------

    def run(self, circuit: Circuit) -> "CircuitResult":
        """Execute a noiseless circuit, returning measurement/detector values."""
        record: list[int] = []
        detector_values: list[int] = []
        observable_values: dict[int, int] = {}
        for op in circuit:
            if op.gate == "H":
                for (q,) in op.target_groups():
                    self.h(q)
            elif op.gate == "CNOT":
                for c, t in op.target_groups():
                    self.cnot(c, t)
            elif op.gate == "R":
                for (q,) in op.target_groups():
                    self.reset_z(q)
            elif op.gate == "RX":
                for (q,) in op.target_groups():
                    self.reset_x(q)
            elif op.gate == "M":
                for (q,) in op.target_groups():
                    record.append(self.measure_z(q)[0])
            elif op.gate == "MX":
                for (q,) in op.target_groups():
                    record.append(self.measure_x(q)[0])
            elif op.gate == "DETECTOR":
                value = 0
                for idx in op.targets:
                    value ^= record[idx]
                detector_values.append(value)
            elif op.gate == "OBSERVABLE_INCLUDE":
                obs = int(op.args[0])
                value = observable_values.get(obs, 0)
                for idx in op.targets:
                    value ^= record[idx]
                observable_values[obs] = value
            elif op.gate == "TICK":
                continue
            elif op.is_noise():
                raise ValueError(
                    "TableauSimulator runs noiseless circuits only "
                    f"(got {op.gate})"
                )
            else:
                raise ValueError(f"unsupported gate {op.gate}")
        self.measurement_record = record
        return CircuitResult(
            measurements=record,
            detectors=detector_values,
            observables=[observable_values[k] for k in sorted(observable_values)],
        )


class CircuitResult:
    """Noiseless execution outcome."""

    def __init__(self, measurements, detectors, observables):
        self.measurements = measurements
        self.detectors = detectors
        self.observables = observables


def verify_deterministic_detectors(
    circuit: Circuit, trials: int = 3, seed: int = 0
) -> bool:
    """Check every detector is deterministically 0 without noise.

    Random measurement outcomes (e.g. first-round X checks in a Z-basis
    memory) must cancel inside every detector; running a few trials with
    different RNG draws exposes any miswired detector or broken
    commutation with overwhelming probability.
    """
    num_qubits = circuit.num_qubits
    for t in range(trials):
        sim = TableauSimulator(num_qubits, rng=np.random.default_rng(seed + t))
        result = sim.run(circuit)
        if any(result.detectors):
            return False
        if any(result.observables):
            return False
    return True
