"""Composable noise scenarios: the :class:`NoiseSpec`.

A ``NoiseSpec`` assembles per-gate-class channels
(:mod:`repro.noise.channels`) into one circuit-level noise scenario:

* ``sq`` — channel after every single-qubit operation (R, RX, H);
* ``cnot`` — channel after every CNOT;
* ``meas`` — gate-error channel just before every measurement;
* ``readout`` — an *independent* readout flip probability ``p_m``,
  decoupled from the gate error: a basis-aligned Pauli just before the
  measurement (X before M, Z before MX), which flips exactly that
  outcome;
* ``idle_strength`` — the Pauli-twirled idle channel of paper §6.3,
  attached to every qubit not acted on in a TICK-delimited layer.

Everything lowers to the labeled Pauli noise ops of the IR, so the
frame simulator, DEM extraction, packed samplers, decoders, and the
rare-event estimator run unchanged on any spec (the Poisson-binomial
weight pmf already handles heterogeneous mechanism probabilities).

Specs are serializable (:meth:`NoiseSpec.to_payload` — the canonical
``noise-spec-v1`` dict) and canonical-JSON-hashable
(:meth:`NoiseSpec.key`): the campaign engine hashes the payload into
``CampaignJob`` keys, so every result-affecting noise knob is content-
addressed.

Caveat shared by every pre-measurement error (including ``readout``):
the injected Pauli stays on the qubit after the measurement.  For the
memory experiments this is exactly Stim-style readout error (ancillas
are reset each round, data qubits are measured last), but on circuits
that keep using a measured qubit without resetting it the flip also
propagates forward — it is a physical error, not a classical
record-only flip.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any

from ..circuits.circuit import Circuit
from ..circuits.gates import GATE_ARITY, MEASURE_GATES, NOISE_GATES
from .channels import (
    BiasedPauliChannel,
    DepolarizingChannel,
    GateChannel,
    channel_from_payload,
)

NOISE_FORMAT = "noise-spec-v1"


def _canonical_json(payload: Any) -> str:
    # Same canonicalization as repro.experiments.store.canonical_json,
    # inlined so the noise layer does not depend on the experiments
    # layer (which imports this module).
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass(frozen=True)
class NoiseSpec:
    """A full noise scenario composed of per-gate-class channels."""

    sq: GateChannel | None = None
    cnot: GateChannel | None = None
    meas: GateChannel | None = None
    readout: float = 0.0
    idle_strength: float = 0.0

    def __post_init__(self):
        if not 0 <= self.readout <= 1:
            raise ValueError(f"readout flip probability {self.readout} outside [0, 1]")
        if self.idle_strength < 0:
            raise ValueError("idle strength must be non-negative")

    # -- constructors --------------------------------------------------------

    @classmethod
    def depolarizing(
        cls, p: float, idle_strength: float = 0.0, readout: float = 0.0
    ) -> "NoiseSpec":
        """The paper's two-knob model: uniform depolarizing + idle.

        Lowers to exactly the circuits the original ``NoiseModel``
        produced, op for op.
        """
        channel = DepolarizingChannel(p) if p > 0 else None
        return cls(
            sq=channel,
            cnot=channel,
            meas=channel,
            readout=readout,
            idle_strength=idle_strength,
        )

    @classmethod
    def biased(
        cls,
        p: float,
        eta: float,
        idle_strength: float = 0.0,
        readout: float = 0.0,
    ) -> "NoiseSpec":
        """Biased Pauli noise at total rate ``p`` on every gate class."""
        channel = BiasedPauliChannel(p, eta) if p > 0 else None
        return cls(
            sq=channel,
            cnot=channel,
            meas=channel,
            readout=readout,
            idle_strength=idle_strength,
        )

    # -- idle lowering -------------------------------------------------------

    @property
    def idle_pauli_prob(self) -> float:
        """Per-Pauli idle probability from the twirling approximation."""
        if self.idle_strength == 0:
            return 0.0
        return (1.0 - math.exp(-self.idle_strength)) / 4.0

    # -- application ---------------------------------------------------------

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a noisy copy of ``circuit``.

        Error channels inherit the ``label`` of the gate they attach to
        so the detector-error-model can trace mechanisms back to
        schedule edges.
        """
        if any(op.is_noise() for op in circuit):
            raise ValueError("circuit already contains noise operations")
        noisy = Circuit()
        all_qubits = frozenset(range(circuit.num_qubits))
        idle_p = self.idle_pauli_prob

        layer_active: set[int] = set()
        layer_had_gates = False

        def emit(channel: GateChannel | None, op) -> None:
            if channel is None:
                return
            arity = GATE_ARITY[op.gate]
            for gate, targets, args in channel.ops(op.targets, arity):
                noisy.append(gate, targets, args=args, label=op.label)

        def close_layer():
            nonlocal layer_had_gates
            if idle_p > 0 and layer_had_gates:
                idle = sorted(all_qubits - layer_active)
                if idle:
                    noisy.append(
                        "PAULI_CHANNEL_1",
                        idle,
                        args=(idle_p, idle_p, idle_p),
                        label=("idle",),
                    )
            layer_active.clear()
            layer_had_gates = False

        for op in circuit:
            if op.gate == "TICK":
                close_layer()
                noisy.operations.append(op)
                continue
            if op.gate in GATE_ARITY and op.gate not in NOISE_GATES:
                layer_active.update(op.targets)
                layer_had_gates = True
            if op.gate in MEASURE_GATES:
                emit(self.meas, op)
                if self.readout > 0:
                    # Basis-aligned flip: X toggles a Z-basis outcome,
                    # Z toggles an X-basis outcome.
                    args = (
                        (self.readout, 0.0, 0.0)
                        if op.gate == "M"
                        else (0.0, 0.0, self.readout)
                    )
                    noisy.append(
                        "PAULI_CHANNEL_1", op.targets, args=args, label=op.label
                    )
                noisy.operations.append(op)
            elif op.gate == "CNOT":
                noisy.operations.append(op)
                emit(self.cnot, op)
            elif op.gate in ("R", "RX", "H"):
                noisy.operations.append(op)
                emit(self.sq, op)
            else:
                noisy.operations.append(op)
        close_layer()
        return noisy

    # -- serialization / hashing ---------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The canonical ``noise-spec-v1`` dict — exactly what hashes."""

        def chan(c: GateChannel | None):
            return None if c is None else c.to_payload()

        return {
            "format": NOISE_FORMAT,
            "sq": chan(self.sq),
            "cnot": chan(self.cnot),
            "meas": chan(self.meas),
            "readout": float(self.readout),
            "idle_strength": float(self.idle_strength),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "NoiseSpec":
        if payload.get("format") != NOISE_FORMAT:
            raise ValueError(f"not a {NOISE_FORMAT} payload")
        known = {"format", "sq", "cnot", "meas", "readout", "idle_strength"}
        unknown = set(payload) - known
        if unknown:
            # A misspelled field would otherwise run different physics
            # silently while still perturbing the content address.
            raise ValueError(f"unknown noise-spec fields: {sorted(unknown)}")

        def chan(value):
            return None if value is None else channel_from_payload(value)

        return cls(
            sq=chan(payload.get("sq")),
            cnot=chan(payload.get("cnot")),
            meas=chan(payload.get("meas")),
            readout=float(payload.get("readout", 0.0)),
            idle_strength=float(payload.get("idle_strength", 0.0)),
        )

    def key(self) -> str:
        """Content address of this spec (hex SHA-256 of canonical JSON)."""
        return hashlib.sha256(
            _canonical_json(self.to_payload()).encode("utf-8")
        ).hexdigest()


# -- campaign-facing resolution ----------------------------------------------


def resolve_noise(
    spec: "NoiseSpec | str | dict[str, Any] | None",
    p: float,
    idle_strength: float = 0.0,
) -> NoiseSpec:
    """Build the noise scenario a campaign job names.

    ``None`` / ``"depolarizing"`` is the paper's two-knob model scaled
    by the job's ``p`` and ``idle_strength``.  String tokens scale with
    the job's ``p`` so a (noise x p) grid sweeps cleanly:

    * ``"biased:<eta>"`` — biased Pauli at total rate ``p``;
    * a ``",pm=<v>"`` suffix sets the independent readout flip —
      absolute (``pm=0.003``) or relative to p (``pm=2p``).  A bare
      ``"pm=<v>"`` token means depolarizing gates plus that readout.

    A dict is an inline serialized ``noise-spec-v1`` payload: fully
    absolute (how hand-built scenarios enter a campaign content-
    addressed); the job's ``p``/``idle_strength`` do not rescale it.
    """
    if isinstance(spec, NoiseSpec):
        return spec
    if isinstance(spec, dict):
        return NoiseSpec.from_payload(spec)
    if spec is None:
        return NoiseSpec.depolarizing(p, idle_strength=idle_strength)
    if not isinstance(spec, str):
        raise TypeError(f"noise spec must be a token, payload dict, or None: {spec!r}")
    family, _, rest = spec.partition(",")
    if family.startswith("pm="):
        family, rest = "depolarizing", spec
    readout = 0.0
    for clause in filter(None, rest.split(",")):
        if clause.startswith("pm="):
            value = clause[3:]
            readout = float(value[:-1]) * p if value.endswith("p") else float(value)
        else:
            raise KeyError(f"unknown noise clause {clause!r} in {spec!r}")
    if family == "depolarizing":
        return NoiseSpec.depolarizing(p, idle_strength=idle_strength, readout=readout)
    if family.startswith("biased:"):
        eta = float(family.split(":", 1)[1])
        return NoiseSpec.biased(p, eta, idle_strength=idle_strength, readout=readout)
    raise KeyError(f"unknown noise token {spec!r}")


def noise_display(spec: "str | dict[str, Any] | None") -> str:
    """Short human-readable form of a job's noise spec for tables."""
    if spec is None:
        return "depolarizing"
    if isinstance(spec, dict):
        digest = hashlib.sha256(_canonical_json(spec).encode("utf-8")).hexdigest()
        return f"inline:{digest[:8]}"
    return spec
