"""Composable noise scenarios: the :class:`NoiseSpec`.

A ``NoiseSpec`` assembles per-gate-class channels
(:mod:`repro.noise.channels`) into one circuit-level noise scenario:

* ``sq`` — channel after every single-qubit operation (R, RX, H);
* ``cnot`` — channel after every CNOT;
* ``meas`` — gate-error channel just before every measurement;
* ``readout`` — an *independent* readout flip probability ``p_m``,
  decoupled from the gate error: a basis-aligned Pauli just before the
  measurement (X before M, Z before MX), which flips exactly that
  outcome;
* ``crosstalk`` — measurement crosstalk: a correlated basis-aligned
  two-qubit Pauli (``XX`` before M pairs, ``ZZ`` before MX pairs)
  chaining consecutive same-basis measurements within a TICK layer, so
  one mechanism flips two neighboring readouts at once;
* ``idle_strength`` — the Pauli-twirled idle channel of paper §6.3,
  attached to every qubit not acted on in a TICK-delimited layer;
* ``profile`` — per-qubit / per-gate-class calibration multipliers
  (:class:`~repro.noise.profile.DeviceProfile`) over every lowered
  instruction;
* ``drift`` — round-indexed rate multipliers
  (:class:`~repro.noise.drift.DriftSchedule`), derived from the circuit
  builder's op labels.

Everything lowers to the labeled Pauli noise ops of the IR, so the
frame simulator, DEM extraction, packed samplers, decoders, and the
rare-event estimator run unchanged on any spec (the Poisson-binomial
weight pmf already handles heterogeneous mechanism probabilities).

Specs are serializable (:meth:`NoiseSpec.to_payload` — the canonical
``noise-spec-v1`` dict) and canonical-JSON-hashable
(:meth:`NoiseSpec.key`): the campaign engine hashes the payload into
``CampaignJob`` keys, so every result-affecting noise knob is content-
addressed.  Uniform (all-ones) profiles and drift schedules are
physically no-ops and are omitted from the payload, so a spec with and
without them content-addresses identically — and pre-existing payloads
keep their keys.

Caveat shared by every pre-measurement error (including ``readout`` and
``crosstalk``): the injected Pauli stays on the qubit after the
measurement.  For the memory experiments this is exactly Stim-style
readout error (ancillas are reset each round, data qubits are measured
last), but on circuits that keep using a measured qubit without
resetting it the flip also propagates forward — it is a physical
error, not a classical record-only flip.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any

from ..circuits.circuit import Circuit
from ..circuits.gates import GATE_ARITY, MEASURE_GATES, NOISE_GATES
from .channels import (
    BiasedPauliChannel,
    CorrelatedPauliChannel,
    DepolarizingChannel,
    GateChannel,
    TWO_QUBIT_PAULI_LABELS,
    channel_from_payload,
)
from .drift import DriftSchedule, label_round
from .profile import DeviceProfile

NOISE_FORMAT = "noise-spec-v1"

# Crosstalk flavor per measurement basis: the Pauli pair that flips
# both outcomes, as an index into the canonical PAULI_CHANNEL_2 args.
_XTALK_INDEX = {
    "M": TWO_QUBIT_PAULI_LABELS.index("XX"),
    "MX": TWO_QUBIT_PAULI_LABELS.index("ZZ"),
}


def _canonical_json(payload: Any) -> str:
    # Same canonicalization as repro.experiments.store.canonical_json,
    # inlined so the noise layer does not depend on the experiments
    # layer (which imports this module).
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _measurement_crosstalk_pairs(
    circuit: Circuit,
) -> dict[int, list[tuple[str, tuple[int, int]]]]:
    """Chain-pair same-basis measurements within each TICK layer.

    Returns ``{first_meas_op_idx: [(basis, (a, b)), ...]}`` — the
    correlated flips to inject just before a layer's first measurement.
    Qubits are paired consecutively in appearance order (overlapping
    chain ``(q0,q1), (q1,q2), ...``), the usual nearest-neighbor
    readout-crosstalk approximation for a multiplexed readout line.
    """
    pairs_at: dict[int, list[tuple[str, tuple[int, int]]]] = {}
    layer_meas: dict[str, list[int]] = {g: [] for g in MEASURE_GATES}
    first_idx: int | None = None

    def flush():
        nonlocal first_idx
        pairs = [
            (gate, (a, b))
            for gate in sorted(layer_meas)
            for a, b in zip(layer_meas[gate], layer_meas[gate][1:])
        ]
        if pairs and first_idx is not None:
            pairs_at[first_idx] = pairs
        for qs in layer_meas.values():
            qs.clear()
        first_idx = None

    for idx, op in enumerate(circuit):
        if op.gate == "TICK":
            flush()
        elif op.gate in MEASURE_GATES:
            if first_idx is None:
                first_idx = idx
            layer_meas[op.gate].extend(op.targets)
    flush()
    return pairs_at


def _scaled_args(gate: str, args: tuple[float, ...], factor: float) -> tuple:
    """Scale a noise op's probabilities, failing loudly past unity."""
    scaled = tuple(a * factor for a in args)
    total = scaled[0] if gate in ("DEPOLARIZE1", "DEPOLARIZE2") else sum(scaled)
    if total > 1.0:
        raise ValueError(
            f"profile/drift scaling (x{factor:g}) pushes {gate} total "
            f"probability to {total:g} > 1"
        )
    return scaled


@dataclass(frozen=True)
class NoiseSpec:
    """A full noise scenario composed of per-gate-class channels."""

    sq: GateChannel | None = None
    cnot: GateChannel | None = None
    meas: GateChannel | None = None
    readout: float = 0.0
    idle_strength: float = 0.0
    crosstalk: float = 0.0
    profile: DeviceProfile | None = None
    drift: DriftSchedule | None = None

    def __post_init__(self):
        if not 0 <= self.readout <= 1:
            raise ValueError(f"readout flip probability {self.readout} outside [0, 1]")
        if not 0 <= self.crosstalk <= 1:
            raise ValueError(
                f"measurement crosstalk probability {self.crosstalk} outside [0, 1]"
            )
        if self.idle_strength < 0:
            raise ValueError("idle strength must be non-negative")
        # Uniform (all-ones) profiles and drift schedules are physical
        # no-ops: normalize them away at construction so equality,
        # payload round-trips, and content addresses all agree that a
        # no-op is a no-op.
        if self.profile is not None and self.profile.is_uniform():
            object.__setattr__(self, "profile", None)
        if self.drift is not None and self.drift.is_uniform():
            object.__setattr__(self, "drift", None)
        # Channels declare which gate arity they attach to; catch a
        # correlated channel in a single-qubit slot at construction,
        # not at apply time deep inside a sweep.
        for slot, channel, arity in (
            ("sq", self.sq, 1),
            ("cnot", self.cnot, 2),
            ("meas", self.meas, 1),
        ):
            if (
                channel is not None
                and channel.ARITY is not None
                and channel.ARITY != arity
            ):
                raise ValueError(
                    f"channel kind {channel.KIND!r} attaches to "
                    f"{channel.ARITY}-qubit gate classes and cannot fill "
                    f"the {slot!r} slot"
                )

    # -- constructors --------------------------------------------------------

    @classmethod
    def depolarizing(
        cls,
        p: float,
        idle_strength: float = 0.0,
        readout: float = 0.0,
        crosstalk: float = 0.0,
        profile: DeviceProfile | None = None,
        drift: DriftSchedule | None = None,
    ) -> "NoiseSpec":
        """The paper's two-knob model: uniform depolarizing + idle.

        Lowers to exactly the circuits the original ``NoiseModel``
        produced, op for op.
        """
        channel = DepolarizingChannel(p) if p > 0 else None
        return cls(
            sq=channel,
            cnot=channel,
            meas=channel,
            readout=readout,
            idle_strength=idle_strength,
            crosstalk=crosstalk,
            profile=profile,
            drift=drift,
        )

    @classmethod
    def biased(
        cls,
        p: float,
        eta: float,
        idle_strength: float = 0.0,
        readout: float = 0.0,
        crosstalk: float = 0.0,
    ) -> "NoiseSpec":
        """Biased Pauli noise at total rate ``p`` on every gate class."""
        channel = BiasedPauliChannel(p, eta) if p > 0 else None
        return cls(
            sq=channel,
            cnot=channel,
            meas=channel,
            readout=readout,
            idle_strength=idle_strength,
            crosstalk=crosstalk,
        )

    @classmethod
    def correlated(
        cls,
        p: float,
        idle_strength: float = 0.0,
        readout: float = 0.0,
        crosstalk: float = 0.0,
    ) -> "NoiseSpec":
        """Depolarizing singles + genuinely correlated two-qubit noise.

        Marginally identical to :meth:`depolarizing` (the correlated
        channel's uniform ``p/15`` split *is* DEPOLARIZE2), but lowered
        through ``PAULI_CHANNEL_2`` — the litmus scenario pinning that
        the correlated path and the legacy path agree.
        """
        return cls(
            sq=DepolarizingChannel(p) if p > 0 else None,
            cnot=CorrelatedPauliChannel.depolarizing(p) if p > 0 else None,
            meas=DepolarizingChannel(p) if p > 0 else None,
            readout=readout,
            idle_strength=idle_strength,
            crosstalk=crosstalk,
        )

    # -- idle lowering -------------------------------------------------------

    @property
    def idle_pauli_prob(self) -> float:
        """Per-Pauli idle probability from the twirling approximation."""
        if self.idle_strength == 0:
            return 0.0
        return (1.0 - math.exp(-self.idle_strength)) / 4.0

    # -- application ---------------------------------------------------------

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a noisy copy of ``circuit``.

        Error channels inherit the ``label`` of the gate they attach to
        so the detector-error-model can trace mechanisms back to
        schedule edges.  When a device profile or drift schedule is
        set, lowered instructions are split by distinct scale factor;
        with neither (or with uniform ones) the lowering is op-for-op
        identical to the unscaled spec.
        """
        if any(op.is_noise() for op in circuit):
            raise ValueError("circuit already contains noise operations")
        noisy = Circuit()
        all_qubits = frozenset(range(circuit.num_qubits))
        idle_p = self.idle_pauli_prob
        profile = self.profile
        drift = self.drift
        xtalk_at = (
            _measurement_crosstalk_pairs(circuit) if self.crosstalk > 0 else {}
        )

        # The QEC round currently being lowered, from builder op labels
        # (monotonic max; unlabeled circuits stay at round 0, making
        # drift a uniform scaling there).
        current_round = 0

        layer_active: set[int] = set()
        layer_had_gates = False

        def append_scaled(gate, targets, args, gate_class, label):
            """Append one lowered noise op, profile/drift-scaled.

            Target groups with distinct scale factors are split into
            separate ops; consecutive equal-factor groups stay fused so
            the uniform case emits the exact legacy op sequence.
            """
            if profile is None and drift is None:
                noisy.append(gate, targets, args=args, label=label)
                return
            arity = GATE_ARITY[gate]
            groups = [
                tuple(targets[i : i + arity]) for i in range(0, len(targets), arity)
            ]
            round_factor = drift.factor(current_round) if drift is not None else 1.0
            factors = [
                round_factor
                * (profile.scale(gate_class, g) if profile is not None else 1.0)
                for g in groups
            ]
            start = 0
            for i in range(1, len(groups) + 1):
                if i < len(groups) and factors[i] == factors[start]:
                    continue
                run = [q for g in groups[start:i] for q in g]
                f = factors[start]
                noisy.append(
                    gate,
                    run,
                    args=args if f == 1.0 else _scaled_args(gate, args, f),
                    label=label,
                )
                start = i

        def emit(channel: GateChannel | None, op, gate_class: str) -> None:
            if channel is None:
                return
            arity = GATE_ARITY[op.gate]
            for gate, targets, args in channel.ops(op.targets, arity):
                append_scaled(gate, targets, args, gate_class, op.label)

        def close_layer():
            nonlocal layer_had_gates
            if idle_p > 0 and layer_had_gates:
                idle = sorted(all_qubits - layer_active)
                if idle:
                    append_scaled(
                        "PAULI_CHANNEL_1",
                        idle,
                        (idle_p, idle_p, idle_p),
                        "idle",
                        ("idle",),
                    )
            layer_active.clear()
            layer_had_gates = False

        for op_idx, op in enumerate(circuit):
            if op.gate == "TICK":
                close_layer()
                noisy.operations.append(op)
                continue
            round_index = label_round(op.label)
            if round_index is not None and round_index > current_round:
                current_round = round_index
            if op.gate in GATE_ARITY and op.gate not in NOISE_GATES:
                layer_active.update(op.targets)
                layer_had_gates = True
            if op.gate in MEASURE_GATES:
                for basis, pair in xtalk_at.get(op_idx, ()):
                    args = [0.0] * 15
                    args[_XTALK_INDEX[basis]] = self.crosstalk
                    append_scaled(
                        "PAULI_CHANNEL_2",
                        pair,
                        tuple(args),
                        "crosstalk",
                        ("crosstalk",) + pair,
                    )
                emit(self.meas, op, "meas")
                if self.readout > 0:
                    # Basis-aligned flip: X toggles a Z-basis outcome,
                    # Z toggles an X-basis outcome.
                    args = (
                        (self.readout, 0.0, 0.0)
                        if op.gate == "M"
                        else (0.0, 0.0, self.readout)
                    )
                    append_scaled(
                        "PAULI_CHANNEL_1", op.targets, args, "readout", op.label
                    )
                noisy.operations.append(op)
            elif op.gate == "CNOT":
                noisy.operations.append(op)
                emit(self.cnot, op, "cnot")
            elif op.gate in ("R", "RX", "H"):
                noisy.operations.append(op)
                emit(self.sq, op, "sq")
            else:
                noisy.operations.append(op)
        close_layer()
        return noisy

    # -- serialization / hashing ---------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The canonical ``noise-spec-v1`` dict — exactly what hashes.

        New scenario fields (``crosstalk``, ``profile``, ``drift``) are
        omitted at their physical no-op values, so payloads — and hence
        campaign job keys — written before those fields existed stay
        byte-identical.
        """

        def chan(c: GateChannel | None):
            return None if c is None else c.to_payload()

        payload: dict[str, Any] = {
            "format": NOISE_FORMAT,
            "sq": chan(self.sq),
            "cnot": chan(self.cnot),
            "meas": chan(self.meas),
            "readout": float(self.readout),
            "idle_strength": float(self.idle_strength),
        }
        if self.crosstalk > 0:
            payload["crosstalk"] = float(self.crosstalk)
        if self.profile is not None:
            payload["profile"] = self.profile.to_payload()
        if self.drift is not None:
            payload["drift"] = self.drift.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "NoiseSpec":
        if payload.get("format") != NOISE_FORMAT:
            raise ValueError(f"not a {NOISE_FORMAT} payload")
        known = {
            "format",
            "sq",
            "cnot",
            "meas",
            "readout",
            "idle_strength",
            "crosstalk",
            "profile",
            "drift",
        }
        unknown = set(payload) - known
        if unknown:
            # A misspelled field would otherwise run different physics
            # silently while still perturbing the content address.
            raise ValueError(f"unknown noise-spec fields: {sorted(unknown)}")

        def chan(value):
            return None if value is None else channel_from_payload(value)

        raw_profile = payload.get("profile")
        raw_drift = payload.get("drift")
        return cls(
            sq=chan(payload.get("sq")),
            cnot=chan(payload.get("cnot")),
            meas=chan(payload.get("meas")),
            readout=float(payload.get("readout", 0.0)),
            idle_strength=float(payload.get("idle_strength", 0.0)),
            crosstalk=float(payload.get("crosstalk", 0.0)),
            profile=(
                None if raw_profile is None else DeviceProfile.from_payload(raw_profile)
            ),
            drift=(
                None if raw_drift is None else DriftSchedule.from_payload(raw_drift)
            ),
        )

    def key(self) -> str:
        """Content address of this spec (hex SHA-256 of canonical JSON)."""
        return hashlib.sha256(
            _canonical_json(self.to_payload()).encode("utf-8")
        ).hexdigest()


# -- campaign-facing resolution ----------------------------------------------


def _clause_rate(name: str, value: str, p: float, spec: str) -> float:
    """Parse a clause value: absolute (``0.003``) or relative (``2p``).

    A bare ``p`` (coefficient omitted) means ``1*p``.  Malformed values
    raise ``ValueError`` naming the offending clause.
    """
    raw = value
    relative = value.endswith("p")
    if relative:
        value = value[:-1]
    try:
        coeff = 1.0 if relative and value == "" else float(value)
    except ValueError:
        raise ValueError(
            f"malformed noise clause {name}={raw!r} in {spec!r}: expected "
            f"a probability or a multiple of p like '2p'"
        ) from None
    return coeff * p if relative else coeff


def resolve_noise(
    spec: "NoiseSpec | str | dict[str, Any] | None",
    p: float,
    idle_strength: float = 0.0,
) -> NoiseSpec:
    """Build the noise scenario a campaign job names.

    ``None`` / ``"depolarizing"`` is the paper's two-knob model scaled
    by the job's ``p`` and ``idle_strength``.  String tokens scale with
    the job's ``p`` so a (noise x p) grid sweeps cleanly:

    * ``"biased:<eta>"`` — biased Pauli at total rate ``p``;
    * ``"correlated"`` — depolarizing singles plus a genuinely
      correlated two-qubit channel at total rate ``p`` on CNOTs;
    * a ``",pm=<v>"`` suffix sets the independent readout flip and a
      ``",ct=<v>"`` suffix the measurement crosstalk — absolute
      (``pm=0.003``) or relative to p (``pm=2p``; a bare ``pm=p`` is
      ``1*p``).  A token starting with a clause (``"pm=<v>"``) means
      depolarizing gates plus that clause.  Duplicate clauses and
      unknown clauses are rejected with ``ValueError``.

    A dict is an inline serialized ``noise-spec-v1`` payload: fully
    absolute (how hand-built scenarios enter a campaign content-
    addressed); the job's ``p``/``idle_strength`` do not rescale it.
    """
    if isinstance(spec, NoiseSpec):
        return spec
    if isinstance(spec, dict):
        return NoiseSpec.from_payload(spec)
    if spec is None:
        return NoiseSpec.depolarizing(p, idle_strength=idle_strength)
    if not isinstance(spec, str):
        raise TypeError(f"noise spec must be a token, payload dict, or None: {spec!r}")
    family, _, rest = spec.partition(",")
    if "=" in family:
        family, rest = "depolarizing", spec
    readout = 0.0
    crosstalk = 0.0
    seen: set[str] = set()
    for clause in filter(None, rest.split(",")):
        name, sep, value = clause.partition("=")
        if not sep or name not in ("pm", "ct"):
            raise ValueError(
                f"unknown noise clause {clause!r} in {spec!r} "
                f"(known clauses: pm=<v>, ct=<v>)"
            )
        if name in seen:
            # Last-wins would silently run different physics than the
            # token appears to name.
            raise ValueError(f"duplicate noise clause {name!r} in {spec!r}")
        seen.add(name)
        rate = _clause_rate(name, value, p, spec)
        if name == "pm":
            readout = rate
        else:
            crosstalk = rate
    if family == "depolarizing":
        return NoiseSpec.depolarizing(
            p, idle_strength=idle_strength, readout=readout, crosstalk=crosstalk
        )
    if family == "correlated":
        return NoiseSpec.correlated(
            p, idle_strength=idle_strength, readout=readout, crosstalk=crosstalk
        )
    if family.startswith("biased:"):
        raw_eta = family.split(":", 1)[1]
        try:
            eta = float(raw_eta)
        except ValueError:
            raise ValueError(
                f"malformed bias eta {raw_eta!r} in noise token {spec!r}"
            ) from None
        return NoiseSpec.biased(
            p, eta, idle_strength=idle_strength, readout=readout, crosstalk=crosstalk
        )
    raise ValueError(
        f"unknown noise token {spec!r} (known families: depolarizing, "
        f"biased:<eta>, correlated)"
    )


def noise_display(spec: "str | dict[str, Any] | None") -> str:
    """Short human-readable form of a job's noise spec for tables."""
    if spec is None:
        return "depolarizing"
    if isinstance(spec, dict):
        digest = hashlib.sha256(_canonical_json(spec).encode("utf-8")).hexdigest()
        return f"inline:{digest[:8]}"
    return spec
