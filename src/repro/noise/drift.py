"""Round-indexed drift: rates that vary over the QEC schedule.

Hardware drifts — a TLS wanders into resonance mid-run, flux noise
accumulates, readout slowly degrades — so the i.i.d.-per-round noise
assumption every uniform scenario makes is itself a scenario choice.  A
:class:`DriftSchedule` is a sequence of dimensionless rate multipliers
indexed by QEC round: round ``r``'s lowered noise instructions are
scaled by ``multipliers[r]`` (``hold`` keeps the last entry for later
rounds; ``cycle`` wraps around).

Because the circuit is fully unrolled before DEM extraction, drift
needs **no** simulator or decoder changes: the lowering simply emits
different probabilities per round, the per-op DEM records them
mechanism by mechanism, and the decoder prior is exact per round.  The
parts of the stack that *do* fold rounds — the streaming
:class:`~repro.streaming.rounds.RoundLayout` and the windowed-commit
contract — are property-tested against drifting DEMs in
``tests/test_streaming.py``: round grouping uses detector labels (which
drift never touches) and committed corrections must stay bit-identical
to the offline decode.

The round index comes from the circuit builder's op labels
(``("cnot", kind, stab, data, round)``, ``("anc_meas", kind, stab,
round)``, ...).  Unlabeled circuits (hand-built, property-test
circuits) never advance past round 0, which makes drift a deterministic
uniform scaling there — still well-defined, still hashable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

DRIFT_MODES = ("hold", "cycle")

# Builder label families whose last element is the QEC round index.
_ROUND_LABEL_HEADS = {"cnot", "anc_meas", "anc_h", "anc_reset"}


@dataclass(frozen=True)
class DriftSchedule:
    """Per-round rate multipliers over the QEC schedule."""

    multipliers: tuple[float, ...]
    mode: str = "hold"

    def __post_init__(self):
        multipliers = tuple(float(m) for m in self.multipliers)
        object.__setattr__(self, "multipliers", multipliers)
        if not multipliers:
            raise ValueError("drift schedule needs at least one multiplier")
        if any(not (math.isfinite(m) and m >= 0) for m in multipliers):
            raise ValueError(
                "drift multipliers must be finite and non-negative: "
                f"{multipliers}"
            )
        if self.mode not in DRIFT_MODES:
            raise ValueError(
                f"unknown drift mode {self.mode!r} (known: {DRIFT_MODES})"
            )

    @classmethod
    def linear(cls, start: float, stop: float, rounds: int) -> "DriftSchedule":
        """A linear ramp over ``rounds`` rounds (then held)."""
        if rounds < 1:
            raise ValueError("need at least one round")
        if rounds == 1:
            return cls(multipliers=(float(start),))
        step = (stop - start) / (rounds - 1)
        return cls(
            multipliers=tuple(
                round(start + step * r, 12) for r in range(rounds)
            )
        )

    def factor(self, round_index: int) -> float:
        """The multiplier for one QEC round (rounds count from 0)."""
        if round_index < 0:
            round_index = 0
        n = len(self.multipliers)
        if round_index < n:
            return self.multipliers[round_index]
        if self.mode == "cycle":
            return self.multipliers[round_index % n]
        return self.multipliers[-1]

    def is_uniform(self) -> bool:
        """True when every round scales identically by exactly 1."""
        return all(m == 1.0 for m in self.multipliers)

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"multipliers": [float(m) for m in self.multipliers]}
        if self.mode != "hold":
            payload["mode"] = self.mode
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "DriftSchedule":
        known = {"multipliers", "mode"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown drift-schedule fields: {sorted(unknown)}")
        if "multipliers" not in payload:
            raise ValueError("drift schedule payload needs 'multipliers'")
        return cls(
            multipliers=tuple(float(m) for m in payload["multipliers"]),
            mode=str(payload.get("mode", "hold")),
        )


def label_round(label: tuple) -> int | None:
    """The QEC round a builder-labeled op belongs to, or ``None``.

    Recognizes the circuit builder's label families; anything else
    (including the final ``("data_meas", q)`` layer, which belongs to
    whatever round came last) returns ``None`` so the caller keeps its
    running round counter.
    """
    if (
        isinstance(label, tuple)
        and label
        and label[0] in _ROUND_LABEL_HEADS
        and isinstance(label[-1], int)
    ):
        return label[-1]
    if isinstance(label, tuple) and label and label[0] == "data_init":
        return 0
    return None


__all__ = ["DRIFT_MODES", "DriftSchedule", "label_round"]
