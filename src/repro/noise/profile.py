"""Per-qubit / per-gate-class calibration: the JSON "device profile".

Real patches are not uniform: one readout resonator runs hot, a corner
qubit has a noisy neighbor, CNOTs are systematically worse than
single-qubit gates.  A :class:`DeviceProfile` captures that as
dimensionless *rate multipliers* over a :class:`~repro.noise.spec
.NoiseSpec`'s base channels:

* ``qubits`` — per-qubit multiplier (missing qubits use ``default``);
* ``gates`` — per-gate-class multiplier over the spec's lowering
  classes (``sq``, ``cnot``, ``meas``, ``readout``, ``idle``,
  ``crosstalk``).

A lowered noise instruction touching qubits ``Q`` under class ``c`` is
scaled by ``gates[c] * mean(qubits[q] for q in Q)`` — the arithmetic
mean for two-qubit applications, so a hot/cold pair lands in between.
Multipliers compose with the round-indexed drift factor
(:mod:`repro.noise.drift`).

Serialization is the ``device-profile-v1`` payload.  It is **inlined**
into the ``noise-spec-v1`` payload (and from there into campaign job
keys) — profiles are never referenced by file path, so campaign
content-addressing holds: two jobs agree on their noise iff their
inlined profiles agree byte-for-byte.  :func:`load_device_profile`
reads and validates a profile JSON file at the CLI boundary; what is
stored and hashed is always the payload.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

PROFILE_FORMAT = "device-profile-v1"

# The gate classes a NoiseSpec lowers through; profile keys must come
# from this set so a typo'd class fails loudly instead of silently
# running uniform physics.
PROFILE_GATE_CLASSES = ("sq", "cnot", "meas", "readout", "idle", "crosstalk")


def _check_multiplier(name: str, value: float) -> float:
    value = float(value)
    if not (math.isfinite(value) and value >= 0):
        raise ValueError(
            f"device-profile multiplier {name} must be finite and "
            f"non-negative, got {value}"
        )
    return value


@dataclass(frozen=True)
class DeviceProfile:
    """Heterogeneous calibration multipliers across the patch."""

    qubits: dict[int, float] = field(default_factory=dict)
    gates: dict[str, float] = field(default_factory=dict)
    default: float = 1.0

    def __post_init__(self):
        object.__setattr__(
            self,
            "qubits",
            {
                int(q): _check_multiplier(f"qubits[{q}]", v)
                for q, v in self.qubits.items()
            },
        )
        for q in self.qubits:
            if q < 0:
                raise ValueError(f"device-profile qubit index {q} is negative")
        unknown = set(self.gates) - set(PROFILE_GATE_CLASSES)
        if unknown:
            raise ValueError(
                f"unknown device-profile gate classes: {sorted(unknown)} "
                f"(known: {', '.join(PROFILE_GATE_CLASSES)})"
            )
        object.__setattr__(
            self,
            "gates",
            {
                str(g): _check_multiplier(f"gates[{g}]", v)
                for g, v in self.gates.items()
            },
        )
        _check_multiplier("default", self.default)
        object.__setattr__(self, "default", float(self.default))

    # Frozen dataclasses with dict fields cannot rely on the generated
    # __hash__; key-based equality is what campaigns use anyway.
    def __hash__(self):
        return hash(
            (
                tuple(sorted(self.qubits.items())),
                tuple(sorted(self.gates.items())),
                self.default,
            )
        )

    def qubit_scale(self, qubit: int) -> float:
        return self.qubits.get(int(qubit), self.default)

    def scale(self, gate_class: str, qubits: tuple[int, ...]) -> float:
        """The multiplier for one lowered instruction.

        ``gate_class * mean(per-qubit)``: single-qubit applications use
        that qubit's multiplier directly; two-qubit applications the
        arithmetic mean of the pair's.
        """
        gate = self.gates.get(gate_class, 1.0)
        if not qubits:
            return gate
        return gate * sum(self.qubit_scale(q) for q in qubits) / len(qubits)

    def is_uniform(self) -> bool:
        """True when every multiplier is exactly 1 (profile is a no-op)."""
        return (
            self.default == 1.0
            and all(v == 1.0 for v in self.qubits.values())
            and all(v == 1.0 for v in self.gates.values())
        )

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"format": PROFILE_FORMAT}
        if self.default != 1.0:
            payload["default"] = float(self.default)
        if self.qubits:
            # JSON object keys are strings; canonical form sorts them.
            payload["qubits"] = {str(q): float(v) for q, v in self.qubits.items()}
        if self.gates:
            payload["gates"] = {g: float(v) for g, v in self.gates.items()}
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "DeviceProfile":
        if payload.get("format") != PROFILE_FORMAT:
            raise ValueError(f"not a {PROFILE_FORMAT} payload")
        known = {"format", "default", "qubits", "gates"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown device-profile fields: {sorted(unknown)}"
            )
        raw_qubits = payload.get("qubits", {})
        try:
            qubits = {int(q): float(v) for q, v in raw_qubits.items()}
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad device-profile qubit map: {exc}") from None
        return cls(
            qubits=qubits,
            gates={str(g): float(v) for g, v in payload.get("gates", {}).items()},
            default=float(payload.get("default", 1.0)),
        )


def load_device_profile(path: str) -> DeviceProfile:
    """Read + validate a profile JSON file (CLI boundary only).

    The returned profile is *inlined* into whatever noise-spec payload
    rides the campaign — the path itself never reaches a job key.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"device profile {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ValueError(f"device profile {path} must be a JSON object")
    return DeviceProfile.from_payload(payload)


def synthetic_profile(
    num_qubits: int,
    seed: int = 0,
    spread: float = 0.35,
    hot_qubits: int = 2,
    hot_factor: float = 2.5,
    cnot_factor: float = 1.4,
    readout_factor: float = 1.6,
) -> DeviceProfile:
    """A deterministic heterogeneous profile for sweeps and tests.

    Models the shape real calibration data takes: a lognormal-ish
    scatter of per-qubit multipliers around 1 (width ``spread``), a few
    distinctly *hot* qubits (``hot_factor``), and systematically worse
    two-qubit gates and readout.  Deterministic in ``seed`` so campaign
    jobs built from it are content-addressed stably.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    scales = np.exp(rng.normal(0.0, spread, size=num_qubits))
    if num_qubits and hot_qubits:
        hot = rng.choice(num_qubits, size=min(hot_qubits, num_qubits), replace=False)
        scales[hot] *= hot_factor
    return DeviceProfile(
        qubits={int(q): round(float(s), 6) for q, s in enumerate(scales)},
        gates={"cnot": cnot_factor, "readout": readout_factor},
    )


__all__ = [
    "PROFILE_FORMAT",
    "PROFILE_GATE_CLASSES",
    "DeviceProfile",
    "load_device_profile",
    "synthetic_profile",
]
