"""Pluggable per-gate-class noise channels.

A *gate channel* describes the Pauli error attached to one class of
circuit operations (single-qubit gates, CNOTs, or the pre-measurement
gate error).  Every channel lowers to the labeled Pauli noise ops of the
circuit IR (``DEPOLARIZE1`` / ``DEPOLARIZE2`` / ``PAULI_CHANNEL_1``), so
the frame simulator, the DEM extractor, the packed samplers, and the
whole decode / rare-event stack run unchanged on any channel mix.

Channels are registered by ``kind`` in :data:`CHANNEL_REGISTRY`; adding
a new one is: subclass :class:`GateChannel`, implement
``ops``/``to_payload``/``from_payload``, and decorate with
:func:`register_channel`.  The payload is the serialization contract —
it is what a :class:`~repro.noise.spec.NoiseSpec` hashes, so every
result-affecting parameter of a channel must appear in it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, ClassVar

# One lowered noise instruction: (gate, targets, args).  The spec's
# ``apply`` stamps the label of the gate the channel attaches to.
LoweredOp = tuple[str, tuple[int, ...], tuple[float, ...]]

CHANNEL_REGISTRY: dict[str, type["GateChannel"]] = {}


def register_channel(cls: type["GateChannel"]) -> type["GateChannel"]:
    """Class decorator: make a channel constructible from payloads."""
    kind = cls.KIND
    if not kind:
        raise ValueError(f"{cls.__name__} must define a non-empty KIND")
    existing = CHANNEL_REGISTRY.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(f"channel kind {kind!r} already registered")
    CHANNEL_REGISTRY[kind] = cls
    return cls


def channel_from_payload(payload: dict[str, Any]) -> "GateChannel":
    """Rebuild a registered channel from its serialized payload."""
    kind = payload.get("kind")
    if kind not in CHANNEL_REGISTRY:
        raise KeyError(
            f"unknown channel kind {kind!r} (registered: "
            f"{sorted(CHANNEL_REGISTRY)})"
        )
    return CHANNEL_REGISTRY[kind].from_payload(payload)


# The 15 non-identity two-qubit Pauli pairs, in the canonical order
# shared with ``PAULI_CHANNEL_2`` args and ``repro.sim.dem``.
TWO_QUBIT_PAULI_LABELS = tuple(
    f"{p1}{p2}"
    for p1 in ("I", "X", "Y", "Z")
    for p2 in ("I", "X", "Y", "Z")
    if (p1, p2) != ("I", "I")
)


@dataclass(frozen=True)
class GateChannel:
    """Base class for per-gate-class Pauli channels."""

    KIND: ClassVar[str] = ""
    # Which gate arity the channel can attach to: None = any, 1 =
    # single-qubit classes only, 2 = two-qubit classes (CNOT) only.
    # ``NoiseSpec`` validates slots against this at construction so a
    # correlated channel in the ``sq`` slot fails loudly, not at
    # apply time deep inside a sweep.
    ARITY: ClassVar[int | None] = None

    def ops(self, targets: tuple[int, ...], arity: int) -> list[LoweredOp]:
        """Lower one gate application's noise to IR instructions.

        ``targets`` are the flattened qubits of the gate op the channel
        attaches to; ``arity`` is the gate class (1 for single-qubit
        gates and measurements, 2 for CNOT).  Returning ``[]`` means the
        channel is a no-op at its current parameters.
        """
        raise NotImplementedError

    def to_payload(self) -> dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "GateChannel":
        """Rebuild from :meth:`to_payload` output.

        Implementations must reject unknown keys (see
        :func:`_require_fields`): a misspelled field in a hand-written
        payload must fail loudly, not silently run different physics —
        the ignored key would still change the content address.
        """
        raise NotImplementedError


def _require_fields(payload: dict[str, Any], allowed: set[str]) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(
            f"unknown channel payload fields for kind "
            f"{payload.get('kind')!r}: {sorted(unknown)}"
        )


@register_channel
@dataclass(frozen=True)
class DepolarizingChannel(GateChannel):
    """Uniform depolarizing noise — the paper's §6.1 gate channel.

    Single-qubit applications draw one of {X, Y, Z} with probability
    ``p/3`` each; two-qubit applications one of the fifteen non-identity
    two-qubit Paulis with probability ``p/15`` each.
    """

    p: float

    KIND: ClassVar[str] = "depolarizing"

    def __post_init__(self):
        if not 0 <= self.p <= 1:
            raise ValueError(f"depolarizing rate {self.p} outside [0, 1]")

    def ops(self, targets: tuple[int, ...], arity: int) -> list[LoweredOp]:
        if self.p <= 0:
            return []
        gate = "DEPOLARIZE1" if arity == 1 else "DEPOLARIZE2"
        return [(gate, targets, (self.p,))]

    def to_payload(self) -> dict[str, Any]:
        return {"kind": self.KIND, "p": float(self.p)}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "DepolarizingChannel":
        _require_fields(payload, {"kind", "p"})
        return cls(p=float(payload["p"]))


@register_channel
@dataclass(frozen=True)
class BiasedPauliChannel(GateChannel):
    """Biased Pauli noise with an eta-parameterized X/Y/Z split.

    The standard bias convention: ``eta = p_z / (p_x + p_y)`` with
    ``p_x = p_y``, at total error probability ``p``::

        p_z = p * eta / (1 + eta)
        p_x = p_y = p / (2 * (1 + eta))

    ``eta = 0.5`` recovers the depolarizing split ``p/3`` each; large
    ``eta`` is dephasing-dominated hardware.  Two-qubit applications
    lower to *independent* single-qubit biased channels on each qubit of
    the pair (the usual circuit-level biased-noise model) — correlated
    two-qubit Paulis are deliberately not part of this channel.
    """

    p: float
    eta: float

    KIND: ClassVar[str] = "biased"

    def __post_init__(self):
        if not 0 <= self.p <= 1:
            raise ValueError(f"biased channel rate {self.p} outside [0, 1]")
        if not (self.eta > 0 and math.isfinite(self.eta)):
            raise ValueError(f"bias eta {self.eta} must be positive and finite")

    def pauli_probs(self) -> tuple[float, float, float]:
        """The lowered (p_x, p_y, p_z) split."""
        pz = self.p * self.eta / (1.0 + self.eta)
        pxy = self.p / (2.0 * (1.0 + self.eta))
        return (pxy, pxy, pz)

    def ops(self, targets: tuple[int, ...], arity: int) -> list[LoweredOp]:
        if self.p <= 0:
            return []
        # PAULI_CHANNEL_1 has arity 1, so a flattened two-qubit target
        # list is exactly the independent per-qubit application.
        return [("PAULI_CHANNEL_1", targets, self.pauli_probs())]

    def to_payload(self) -> dict[str, Any]:
        return {"kind": self.KIND, "p": float(self.p), "eta": float(self.eta)}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "BiasedPauliChannel":
        _require_fields(payload, {"kind", "p", "eta"})
        return cls(p=float(payload["p"]), eta=float(payload["eta"]))


@register_channel
@dataclass(frozen=True)
class CorrelatedPauliChannel(GateChannel):
    """A genuinely correlated two-qubit Pauli channel.

    Unlike every other channel (which lowers two-qubit gate noise to
    *independent* per-qubit Paulis), this one draws a single error from
    the 15 non-identity two-qubit Paulis with an arbitrary probability
    per pair, lowering to one ``PAULI_CHANNEL_2`` instruction — so an
    ``XX`` after a CNOT really is one mechanism flipping both qubits,
    not two coincident singles.  ``probs`` follows the canonical
    :data:`TWO_QUBIT_PAULI_LABELS` order (IX, IY, IZ, XI, XX, ..., ZZ).

    Only attaches to two-qubit gate classes (``ARITY = 2``): there is no
    sensible marginalization to a single-qubit application, and a silent
    one would mask a misconfigured spec.
    """

    probs: tuple[float, ...]

    KIND: ClassVar[str] = "correlated"
    ARITY: ClassVar[int | None] = 2

    def __post_init__(self):
        probs = tuple(float(x) for x in self.probs)
        object.__setattr__(self, "probs", probs)
        if len(probs) != 15:
            raise ValueError(
                f"correlated channel needs 15 pair probabilities "
                f"({', '.join(TWO_QUBIT_PAULI_LABELS)}), got {len(probs)}"
            )
        if any(not (math.isfinite(x) and 0 <= x <= 1) for x in probs):
            raise ValueError("correlated pair probabilities must be in [0, 1]")
        total = sum(probs)
        if not 0 <= total <= 1:
            raise ValueError(
                f"correlated pair probabilities sum to {total}, outside [0, 1]"
            )

    @classmethod
    def depolarizing(cls, p: float) -> "CorrelatedPauliChannel":
        """Uniform p/15 per pair — the DEPOLARIZE2 split, but explicit."""
        if not 0 <= p <= 1:
            raise ValueError(f"correlated channel rate {p} outside [0, 1]")
        return cls(probs=(p / 15.0,) * 15)

    @classmethod
    def from_pairs(cls, pairs: dict[str, float]) -> "CorrelatedPauliChannel":
        """Build from a sparse {\"XX\": 0.001, ...} map (rest zero)."""
        unknown = set(pairs) - set(TWO_QUBIT_PAULI_LABELS)
        if unknown:
            raise ValueError(f"unknown two-qubit Pauli labels: {sorted(unknown)}")
        return cls(
            probs=tuple(
                float(pairs.get(label, 0.0)) for label in TWO_QUBIT_PAULI_LABELS
            )
        )

    def total(self) -> float:
        return float(sum(self.probs))

    def ops(self, targets: tuple[int, ...], arity: int) -> list[LoweredOp]:
        if arity != 2:
            raise ValueError(
                "correlated two-qubit channel cannot attach to a "
                f"{arity}-qubit gate class"
            )
        if self.total() <= 0:
            return []
        return [("PAULI_CHANNEL_2", targets, self.probs)]

    def to_payload(self) -> dict[str, Any]:
        return {"kind": self.KIND, "probs": [float(x) for x in self.probs]}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CorrelatedPauliChannel":
        _require_fields(payload, {"kind", "probs"})
        return cls(probs=tuple(float(x) for x in payload["probs"]))
