"""Circuit-level noise models (paper §6.1 and §6.3).

Gate noise follows the paper exactly:

* after every single-qubit operation (reset, Hadamard): one of
  {X, Y, Z} with probability p/3 each;
* before every measurement: the same single-qubit channel (an error just
  before readout is what flips the outcome);
* after every two-qubit gate: one of the fifteen non-identity two-qubit
  Paulis with probability p/15 each.

Idle noise (§6.3) uses the Pauli-twirling approximation of decoherence
[Tomita & Svore]: a qubit idling for one gate layer of duration ``t_g``
with coherence time ``T`` suffers X, Y, Z each with probability
``(1 - exp(-t_g/T)) / 4``.  ``idle_strength = t_g / T`` is the knob swept
in Figure 15.  Idle channels attach to every qubit not acted on in a
TICK-delimited layer.

:class:`NoiseModel` is the two-knob shorthand for this scenario.  It is
a thin wrapper over the general pluggable :class:`~repro.noise.spec.NoiseSpec`
(biased channels, per-gate-class rates, decoupled readout error):
``NoiseModel(p, idle).apply`` produces op-for-op the same circuit as
``NoiseSpec.depolarizing(p, idle).apply``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from .spec import NoiseSpec


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing gate noise plus optional idle noise.

    ``p`` is the physical gate error rate; ``idle_strength`` is the ratio
    t_gate / T_coherence applied per circuit layer (0 disables idling).
    """

    p: float
    idle_strength: float = 0.0

    def __post_init__(self):
        if not 0 <= self.p <= 1:
            raise ValueError(f"gate error rate {self.p} outside [0, 1]")
        if self.idle_strength < 0:
            raise ValueError("idle strength must be non-negative")

    @property
    def idle_pauli_prob(self) -> float:
        """Per-Pauli idle probability from the twirling approximation."""
        return self.to_spec().idle_pauli_prob

    def to_spec(self) -> NoiseSpec:
        """The equivalent general noise scenario."""
        return NoiseSpec.depolarizing(self.p, idle_strength=self.idle_strength)

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a noisy copy of ``circuit``.

        Error channels inherit the ``label`` of the gate they attach to so
        the detector-error-model can trace mechanisms back to schedule
        edges.
        """
        return self.to_spec().apply(circuit)


# Hardware operating points for the idle-error sensitivity study (§6.3,
# Figure 15).  Idle strength = (two-qubit gate layer time) / (coherence
# time), from the experimental references cited in the paper.
HARDWARE_IDLE_POINTS: dict[str, float] = {
    # Neutral atoms: ~300 ns gates against ~1.5 s coherence.
    "neutral_atom": 300e-9 / 1.5,
    # Superconducting: ~30 ns gates against ~100 us coherence.
    "superconducting": 30e-9 / 100e-6,
    # Movement-based neutral atoms: ~500 us of movement per gate layer
    # against ~1.5 s coherence.
    "neutral_atom_movement": 500e-6 / 1.5,
}
