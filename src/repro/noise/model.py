"""Circuit-level noise models (paper §6.1 and §6.3).

Gate noise follows the paper exactly:

* after every single-qubit operation (reset, Hadamard): one of
  {X, Y, Z} with probability p/3 each;
* before every measurement: the same single-qubit channel (an error just
  before readout is what flips the outcome);
* after every two-qubit gate: one of the fifteen non-identity two-qubit
  Paulis with probability p/15 each.

Idle noise (§6.3) uses the Pauli-twirling approximation of decoherence
[Tomita & Svore]: a qubit idling for one gate layer of duration ``t_g``
with coherence time ``T`` suffers X, Y, Z each with probability
``(1 - exp(-t_g/T)) / 4``.  ``idle_strength = t_g / T`` is the knob swept
in Figure 15.  Idle channels attach to every qubit not acted on in a
TICK-delimited layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..circuits.gates import GATE_ARITY, MEASURE_GATES, NOISE_GATES


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing gate noise plus optional idle noise.

    ``p`` is the physical gate error rate; ``idle_strength`` is the ratio
    t_gate / T_coherence applied per circuit layer (0 disables idling).
    """

    p: float
    idle_strength: float = 0.0

    def __post_init__(self):
        if not 0 <= self.p <= 1:
            raise ValueError(f"gate error rate {self.p} outside [0, 1]")
        if self.idle_strength < 0:
            raise ValueError("idle strength must be non-negative")

    @property
    def idle_pauli_prob(self) -> float:
        """Per-Pauli idle probability from the twirling approximation."""
        if self.idle_strength == 0:
            return 0.0
        return (1.0 - math.exp(-self.idle_strength)) / 4.0

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a noisy copy of ``circuit``.

        Error channels inherit the ``label`` of the gate they attach to so
        the detector-error-model can trace mechanisms back to schedule
        edges.
        """
        if any(op.is_noise() for op in circuit):
            raise ValueError("circuit already contains noise operations")
        noisy = Circuit()
        all_qubits = frozenset(range(circuit.num_qubits))
        idle_p = self.idle_pauli_prob

        layer_active: set[int] = set()
        layer_had_gates = False

        def close_layer():
            nonlocal layer_had_gates
            if idle_p > 0 and layer_had_gates:
                idle = sorted(all_qubits - layer_active)
                if idle:
                    noisy.append(
                        "PAULI_CHANNEL_1",
                        idle,
                        args=(idle_p, idle_p, idle_p),
                        label=("idle",),
                    )
            layer_active.clear()
            layer_had_gates = False

        for op in circuit:
            if op.gate == "TICK":
                close_layer()
                noisy.operations.append(op)
                continue
            if op.gate in GATE_ARITY and op.gate not in NOISE_GATES:
                layer_active.update(op.targets)
                layer_had_gates = True
            if op.gate in MEASURE_GATES:
                if self.p > 0:
                    noisy.append(
                        "DEPOLARIZE1", op.targets, args=(self.p,), label=op.label
                    )
                noisy.operations.append(op)
            elif op.gate == "CNOT":
                noisy.operations.append(op)
                if self.p > 0:
                    noisy.append(
                        "DEPOLARIZE2", op.targets, args=(self.p,), label=op.label
                    )
            elif op.gate in ("R", "RX", "H"):
                noisy.operations.append(op)
                if self.p > 0:
                    noisy.append(
                        "DEPOLARIZE1", op.targets, args=(self.p,), label=op.label
                    )
            else:
                noisy.operations.append(op)
        close_layer()
        return noisy


# Hardware operating points for the idle-error sensitivity study (§6.3,
# Figure 15).  Idle strength = (two-qubit gate layer time) / (coherence
# time), from the experimental references cited in the paper.
HARDWARE_IDLE_POINTS: dict[str, float] = {
    # Neutral atoms: ~300 ns gates against ~1.5 s coherence.
    "neutral_atom": 300e-9 / 1.5,
    # Superconducting: ~30 ns gates against ~100 us coherence.
    "superconducting": 30e-9 / 100e-6,
    # Movement-based neutral atoms: ~500 us of movement per gate layer
    # against ~1.5 s coherence.
    "neutral_atom_movement": 500e-6 / 1.5,
}
