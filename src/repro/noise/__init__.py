"""Circuit-level noise models and the pluggable noise-scenario registry."""

from .channels import (
    CHANNEL_REGISTRY,
    BiasedPauliChannel,
    DepolarizingChannel,
    GateChannel,
    channel_from_payload,
    register_channel,
)
from .model import HARDWARE_IDLE_POINTS, NoiseModel
from .spec import NOISE_FORMAT, NoiseSpec, noise_display, resolve_noise

__all__ = [
    "BiasedPauliChannel",
    "CHANNEL_REGISTRY",
    "DepolarizingChannel",
    "GateChannel",
    "HARDWARE_IDLE_POINTS",
    "NOISE_FORMAT",
    "NoiseModel",
    "NoiseSpec",
    "channel_from_payload",
    "noise_display",
    "register_channel",
    "resolve_noise",
]
