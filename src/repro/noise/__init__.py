"""Circuit-level noise models and the pluggable noise-scenario registry."""

from .channels import (
    CHANNEL_REGISTRY,
    TWO_QUBIT_PAULI_LABELS,
    BiasedPauliChannel,
    CorrelatedPauliChannel,
    DepolarizingChannel,
    GateChannel,
    channel_from_payload,
    register_channel,
)
from .drift import DRIFT_MODES, DriftSchedule, label_round
from .model import HARDWARE_IDLE_POINTS, NoiseModel
from .profile import (
    PROFILE_FORMAT,
    PROFILE_GATE_CLASSES,
    DeviceProfile,
    load_device_profile,
    synthetic_profile,
)
from .spec import NOISE_FORMAT, NoiseSpec, noise_display, resolve_noise

__all__ = [
    "BiasedPauliChannel",
    "CHANNEL_REGISTRY",
    "CorrelatedPauliChannel",
    "DRIFT_MODES",
    "DepolarizingChannel",
    "DeviceProfile",
    "DriftSchedule",
    "GateChannel",
    "HARDWARE_IDLE_POINTS",
    "NOISE_FORMAT",
    "NoiseModel",
    "NoiseSpec",
    "PROFILE_FORMAT",
    "PROFILE_GATE_CLASSES",
    "TWO_QUBIT_PAULI_LABELS",
    "channel_from_payload",
    "label_round",
    "load_device_profile",
    "noise_display",
    "register_channel",
    "resolve_noise",
    "synthetic_profile",
]
