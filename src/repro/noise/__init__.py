"""Circuit-level noise models."""

from .model import HARDWARE_IDLE_POINTS, NoiseModel

__all__ = ["HARDWARE_IDLE_POINTS", "NoiseModel"]
