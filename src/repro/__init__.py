"""PropHunt reproduction: automated optimization of quantum syndrome
measurement circuits (ASPLOS 2026).

Public API quick tour::

    from repro.codes import rotated_surface_code, load_benchmark_code
    from repro.circuits import coloration_schedule, build_memory_experiment
    from repro.core import PropHunt, PropHuntConfig
    from repro.decoders import estimate_logical_error_rate
    from repro.zne import HookZNE, DistanceScalingZNE

See README.md for a narrative quickstart and DESIGN.md for the
system inventory and per-experiment index.
"""

from . import (
    analysis,
    api,
    circuits,
    codes,
    core,
    decoders,
    experiments,
    gf2,
    maxsat,
    noise,
    rareevent,
    sim,
    zne,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "api",
    "circuits",
    "codes",
    "core",
    "decoders",
    "experiments",
    "gf2",
    "maxsat",
    "noise",
    "rareevent",
    "sim",
    "zne",
    "__version__",
]
