"""Analysis helpers: statistics and effective distance."""

from .deff import DeffEstimate, estimate_effective_distance
from .stats import (
    RateEstimate,
    fit_suppression_factor,
    lambda_factor,
    projected_logical_rate,
    wilson_interval,
)

__all__ = [
    "DeffEstimate",
    "estimate_effective_distance",
    "RateEstimate",
    "fit_suppression_factor",
    "lambda_factor",
    "projected_logical_rate",
    "wilson_interval",
]
