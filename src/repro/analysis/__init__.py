"""Analysis helpers: statistics and effective distance."""

from .deff import DeffEstimate, estimate_effective_distance
from .stats import (
    RateEstimate,
    fit_suppression_factor,
    lambda_factor,
    projected_logical_rate,
    rule_of_three_upper,
    wilson_interval,
    z_for_confidence,
)

__all__ = [
    "DeffEstimate",
    "estimate_effective_distance",
    "RateEstimate",
    "fit_suppression_factor",
    "lambda_factor",
    "projected_logical_rate",
    "rule_of_three_upper",
    "wilson_interval",
    "z_for_confidence",
]
