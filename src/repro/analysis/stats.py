"""Statistics helpers for logical-error-rate estimation."""

from __future__ import annotations

import math
from dataclasses import dataclass


def wilson_interval(
    failures: int, shots: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if shots == 0:
        return (0.0, 1.0)
    phat = failures / shots
    denom = 1 + z * z / shots
    center = (phat + z * z / (2 * shots)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / shots + z * z / (4 * shots * shots))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate with its sampling context."""

    failures: int
    shots: int

    @property
    def rate(self) -> float:
        return self.failures / self.shots if self.shots else 0.0

    @property
    def interval(self) -> tuple[float, float]:
        return wilson_interval(self.failures, self.shots)

    def combine_with(self, other: "RateEstimate") -> float:
        """Failure-anywhere rate of two independent experiments."""
        return 1.0 - (1.0 - self.rate) * (1.0 - other.rate)

    def __repr__(self) -> str:
        lo, hi = self.interval
        return f"RateEstimate({self.rate:.3e} [{lo:.1e}, {hi:.1e}], shots={self.shots})"


def lambda_factor(p_l_small: float, p_l_large: float) -> float:
    """Error-suppression factor Lambda between consecutive distances.

    Defined via P_L(d+2) = P_L(d) / Lambda (paper §7.1).
    """
    if p_l_large <= 0:
        return math.inf
    return p_l_small / p_l_large


def projected_logical_rate(lam: float, d: float) -> float:
    """P_L(d) = Lambda^{-(d+1)/2}, the paper's §7 scaling model."""
    return lam ** (-(d + 1) / 2.0)


def fit_suppression_factor(rates_by_distance: dict[int, float]) -> float:
    """Fit Lambda from measured logical error rates at several distances.

    Least-squares on ``log P_L(d) = -((d+1)/2) log Lambda + c`` — the
    inverse of :func:`projected_logical_rate`, used to calibrate
    Hook-ZNE's noise dials from real measurements.
    """
    points = [(d, p) for d, p in rates_by_distance.items() if p > 0]
    if len(points) < 2:
        raise ValueError("need rates at >= 2 distances with nonzero values")
    xs = [-(d + 1) / 2.0 for d, _ in points]
    ys = [math.log(p) for _, p in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        raise ValueError("distances are degenerate")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    return math.exp(slope)
