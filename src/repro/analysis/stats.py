"""Statistics helpers for logical-error-rate estimation."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from scipy.special import ndtri

DEFAULT_CONFIDENCE = 0.95


def z_for_confidence(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level (0.95 -> 1.96)."""
    if not 0 < confidence < 1:
        raise ValueError(f"confidence {confidence} outside (0, 1)")
    return float(ndtri(0.5 + confidence / 2.0))


def wilson_interval(
    failures: int,
    shots: int,
    z: float | None = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    ``z`` overrides ``confidence`` when given (kept for callers that
    already hold a quantile); by default the bound follows the
    requested two-sided confidence level.
    """
    if z is None:
        z = z_for_confidence(confidence)
    if shots == 0:
        return (0.0, 1.0)
    phat = failures / shots
    denom = 1 + z * z / shots
    center = (phat + z * z / (2 * shots)) / denom
    half = (
        z * math.sqrt(phat * (1 - phat) / shots + z * z / (4 * shots * shots)) / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def rule_of_three_upper(shots: int, confidence: float = DEFAULT_CONFIDENCE) -> float:
    """Upper confidence bound on a rate after observing zero failures.

    Exact Clopper-Pearson form ``1 - (1 - confidence)**(1/shots)``; at
    95% this is the classic "rule of three" ``~3/shots``.  Empty strata
    in the rare-event estimator use this as their contribution to the
    upper interval edge.
    """
    if shots <= 0:
        return 1.0
    return 1.0 - (1.0 - confidence) ** (1.0 / shots)


@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate with its sampling context.

    ``failures``/``shots`` are the raw counts.  Derived estimates (a
    combination of independent experiments, or a stratified estimator's
    output) set ``point``/``halfwidth`` explicitly: ``rate`` then
    reports the stored point and ``interval`` the stored normal-theory
    interval instead of the Wilson interval of the raw counts.
    """

    failures: int
    shots: int
    confidence: float = DEFAULT_CONFIDENCE
    point: float | None = None
    halfwidth: float | None = None

    @property
    def rate(self) -> float:
        if self.point is not None:
            return self.point
        return self.failures / self.shots if self.shots else 0.0

    @property
    def interval(self) -> tuple[float, float]:
        if self.point is not None and self.halfwidth is not None:
            return (
                max(0.0, self.point - self.halfwidth),
                min(1.0, self.point + self.halfwidth),
            )
        return wilson_interval(self.failures, self.shots, confidence=self.confidence)

    def with_confidence(self, confidence: float) -> "RateEstimate":
        """Same counts, re-reported at a different confidence level."""
        if self.halfwidth is not None:
            z_old = z_for_confidence(self.confidence)
            z_new = z_for_confidence(confidence)
            return replace(
                self,
                confidence=confidence,
                halfwidth=self.halfwidth * z_new / z_old,
            )
        return replace(self, confidence=confidence)

    def combine_with(self, other: "RateEstimate") -> "RateEstimate":
        """Failure-anywhere estimate of two independent experiments.

        The point is ``1 - (1-r1)(1-r2)``; the interval halfwidth comes
        from first-order error propagation of the two inputs' interval
        halfwidths.  Counts are carried along for reporting: failures
        add, shots follow the smaller experiment (the binding sample
        size, matching ``LogicalErrorRate.shots``).
        """
        r1, r2 = self.rate, other.rate
        lo1, hi1 = self.interval
        lo2, hi2 = other.interval
        hw1 = (hi1 - lo1) / 2.0
        hw2 = (hi2 - lo2) / 2.0
        return RateEstimate(
            failures=self.failures + other.failures,
            shots=min(self.shots, other.shots),
            confidence=self.confidence,
            point=1.0 - (1.0 - r1) * (1.0 - r2),
            halfwidth=math.hypot((1.0 - r2) * hw1, (1.0 - r1) * hw2),
        )

    def to_dict(self) -> dict:
        """JSON-safe encoding (exact: floats round-trip bit-for-bit).

        The campaign result store persists estimates this way;
        :meth:`from_dict` inverts it, so a stored estimate reloads
        byte-identical — the resume-determinism contract.
        """
        data: dict = {
            "failures": int(self.failures),
            "shots": int(self.shots),
            "confidence": float(self.confidence),
        }
        if self.point is not None:
            data["point"] = float(self.point)
        if self.halfwidth is not None:
            data["halfwidth"] = float(self.halfwidth)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RateEstimate":
        return cls(
            failures=data["failures"],
            shots=data["shots"],
            confidence=data.get("confidence", DEFAULT_CONFIDENCE),
            point=data.get("point"),
            halfwidth=data.get("halfwidth"),
        )

    def __repr__(self) -> str:
        lo, hi = self.interval
        return f"RateEstimate({self.rate:.3e} [{lo:.1e}, {hi:.1e}], shots={self.shots})"


def lambda_factor(p_l_small: float, p_l_large: float) -> float:
    """Error-suppression factor Lambda between consecutive distances.

    Defined via P_L(d+2) = P_L(d) / Lambda (paper §7.1).
    """
    if p_l_large <= 0:
        return math.inf
    return p_l_small / p_l_large


def projected_logical_rate(lam: float, d: float) -> float:
    """P_L(d) = Lambda^{-(d+1)/2}, the paper's §7 scaling model."""
    return lam ** (-(d + 1) / 2.0)


def fit_suppression_factor(rates_by_distance: dict[int, float]) -> float:
    """Fit Lambda from measured logical error rates at several distances.

    Least-squares on ``log P_L(d) = -((d+1)/2) log Lambda + c`` — the
    inverse of :func:`projected_logical_rate`, used to calibrate
    Hook-ZNE's noise dials from real measurements.
    """
    points = [(d, p) for d, p in rates_by_distance.items() if p > 0]
    if len(points) < 2:
        raise ValueError("need rates at >= 2 distances with nonzero values")
    xs = [-(d + 1) / 2.0 for d, _ in points]
    ys = [math.log(p) for _, p in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        raise ValueError("distances are degenerate")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    return math.exp(slope)
