"""Resource and wall-clock estimation for SM circuits.

Backs the §6.3 discussion: whether PropHunt's (possibly deeper) circuits
cost real time depends on the hardware's layer durations.  A
:class:`HardwareProfile` carries per-operation times; the estimator walks
a built memory experiment and reports qubit counts, gate counts, layer
counts, and the per-round execution time — the quantity whose ratio to
coherence time is Figure 15's idle strength.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.builder import MemoryExperiment
from ..circuits.gates import MEASURE_GATES, NOISE_GATES


@dataclass(frozen=True)
class HardwareProfile:
    """Per-operation durations in seconds, plus coherence time."""

    name: str
    two_qubit_gate_s: float
    one_qubit_gate_s: float
    measurement_s: float
    reset_s: float
    coherence_s: float
    movement_per_layer_s: float = 0.0


# The paper's three §6.3 reference platforms.
NEUTRAL_ATOM = HardwareProfile(
    name="neutral_atom",
    two_qubit_gate_s=300e-9,
    one_qubit_gate_s=100e-9,
    measurement_s=1e-3,
    reset_s=1e-3,
    coherence_s=1.5,
)
SUPERCONDUCTING = HardwareProfile(
    name="superconducting",
    two_qubit_gate_s=30e-9,
    one_qubit_gate_s=20e-9,
    measurement_s=500e-9,
    reset_s=250e-9,
    coherence_s=100e-6,
)
NEUTRAL_ATOM_MOVEMENT = HardwareProfile(
    name="neutral_atom_movement",
    two_qubit_gate_s=300e-9,
    one_qubit_gate_s=100e-9,
    measurement_s=1e-3,
    reset_s=1e-3,
    coherence_s=1.5,
    movement_per_layer_s=500e-6,
)

PROFILES = {
    p.name: p for p in (NEUTRAL_ATOM, SUPERCONDUCTING, NEUTRAL_ATOM_MOVEMENT)
}


@dataclass(frozen=True)
class ResourceReport:
    """Static resources + estimated timing of one memory experiment."""

    qubits: int
    cnot_count: int
    one_qubit_gate_count: int
    measurement_count: int
    layers: int
    rounds: int
    time_per_round_s: float
    total_time_s: float
    idle_strength: float  # layer time / coherence, Figure 15's x-axis

    def __str__(self) -> str:
        return (
            f"qubits={self.qubits} cnots={self.cnot_count} "
            f"layers={self.layers} time/round={self.time_per_round_s:.3e}s "
            f"idle_strength={self.idle_strength:.2e}"
        )


def estimate_resources(
    experiment: MemoryExperiment, profile: HardwareProfile
) -> ResourceReport:
    """Walk the circuit's TICK layers and price each one."""
    circuit = experiment.circuit
    total = 0.0
    layers = 0
    layer_cost = 0.0
    layer_has_gates = False
    per_layer_times: list[float] = []

    def op_cost(gate: str) -> float:
        if gate == "CNOT":
            return profile.two_qubit_gate_s
        if gate == "H":
            return profile.one_qubit_gate_s
        if gate in MEASURE_GATES:
            return profile.measurement_s
        if gate in ("R", "RX"):
            return profile.reset_s
        return 0.0

    for op in circuit:
        if op.gate == "TICK":
            if layer_has_gates:
                cost = layer_cost + profile.movement_per_layer_s
                per_layer_times.append(cost)
                total += cost
                layers += 1
            layer_cost = 0.0
            layer_has_gates = False
            continue
        if op.gate in NOISE_GATES or op.gate in ("DETECTOR", "OBSERVABLE_INCLUDE"):
            continue
        layer_cost = max(layer_cost, op_cost(op.gate))
        layer_has_gates = True
    if layer_has_gates:
        cost = layer_cost + profile.movement_per_layer_s
        per_layer_times.append(cost)
        total += cost
        layers += 1

    mean_layer = total / layers if layers else 0.0
    return ResourceReport(
        qubits=circuit.num_qubits,
        cnot_count=circuit.count_gate("CNOT"),
        one_qubit_gate_count=circuit.count_gate("H")
        + circuit.count_gate("R")
        + circuit.count_gate("RX"),
        measurement_count=circuit.num_measurements,
        layers=layers,
        rounds=experiment.rounds,
        time_per_round_s=total / experiment.rounds,
        total_time_s=total,
        idle_strength=mean_layer / profile.coherence_s,
    )
