"""Effective code distance estimation (paper §2.9, §6.2).

The circuit-level d_eff is the minimum number of faults causing an
undetected logical error.  Solving this globally is intractable (paper
Table 2), so the estimate samples ambiguous subgraphs and takes the
minimum logical-error weight found — exactly the machinery PropHunt runs,
reused as an analysis tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.schedule import Schedule
from ..codes.css import CSSCode
from ..core.ambiguity import find_ambiguous_subgraph
from ..core.decoding_graph import DecodingGraph
from ..core.minweight import solve_min_weight_logical
from ..decoders.metrics import dem_for
from ..noise.model import NoiseModel


@dataclass(frozen=True)
class DeffEstimate:
    """An upper-bound estimate of the effective distance."""

    deff: int | None
    samples_used: int
    weights_seen: tuple[int, ...]


def estimate_effective_distance(
    code: CSSCode,
    schedule: Schedule,
    samples: int = 40,
    rounds: int = 3,
    p: float = 1e-3,
    bases: tuple[str, ...] = ("z", "x"),
    rng: np.random.Generator | None = None,
    max_subgraph_errors: int = 60,
) -> DeffEstimate:
    """Sample ambiguous subgraphs; d_eff <= min logical-error weight found."""
    rng = rng or np.random.default_rng()
    noise = NoiseModel(p=p)
    weights: list[int] = []
    used = 0
    for basis in bases:
        dem = dem_for(code, schedule, noise, basis=basis, rounds=rounds)
        # A mechanism flipping an observable without any detector is a
        # weight-1 undetected logical error.
        if dem.undetectable_logical_mechanisms():
            weights.append(1)
            continue
        graph = DecodingGraph(dem)
        per_basis = max(1, samples // len(bases))
        for _ in range(per_basis):
            used += 1
            sub = find_ambiguous_subgraph(
                graph, rng, max_errors=max_subgraph_errors
            )
            if sub is None:
                continue
            solution = solve_min_weight_logical(sub, rng)
            if solution is not None:
                weights.append(solution.weight)
    return DeffEstimate(
        deff=min(weights) if weights else None,
        samples_used=used,
        weights_seen=tuple(sorted(set(weights))),
    )
