"""GF(2) linear algebra: bit-packed matrices and dense helpers."""

from .bitmat import BitMatrix, pack_rows, unpack_rows
from .core import (
    in_rowspace,
    matmul,
    min_weight_in_affine,
    nullspace,
    rank,
    row_basis,
    rref,
    solve,
)

__all__ = [
    "BitMatrix",
    "pack_rows",
    "unpack_rows",
    "in_rowspace",
    "matmul",
    "min_weight_in_affine",
    "nullspace",
    "rank",
    "row_basis",
    "rref",
    "solve",
]
