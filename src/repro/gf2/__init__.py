"""GF(2) linear algebra: bit-packed matrices and dense helpers."""

from .bitmat import BitMatrix, pack_rows, unpack_rows
from .core import (
    in_rowspace,
    matmul,
    min_weight_in_affine,
    nullspace,
    rank,
    row_basis,
    rref,
    solve,
)
from .kernels import available_backends, backend_name, set_backend, use_backend

__all__ = [
    "BitMatrix",
    "pack_rows",
    "unpack_rows",
    "available_backends",
    "backend_name",
    "set_backend",
    "use_backend",
    "in_rowspace",
    "matmul",
    "min_weight_in_affine",
    "nullspace",
    "rank",
    "row_basis",
    "rref",
    "solve",
]
