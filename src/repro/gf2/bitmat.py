"""Bit-packed GF(2) matrices.

Rows are packed into ``uint64`` words so that row XOR — the inner loop of
every elimination — touches ``ceil(ncols / 64)`` words instead of ``ncols``
bytes.  All heavy routines in :mod:`repro.gf2.core` bottom out here.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .kernels import popcount_u64

_WORD = 64


def pack_rows(dense: np.ndarray) -> np.ndarray:
    """Pack a dense ``(m, n)`` 0/1 matrix into ``(m, ceil(n/64))`` uint64 words.

    Bit ``j`` of a row lives in word ``j // 64`` at bit position ``j % 64``
    (little-endian within the word).
    """
    dense = np.asarray(dense, dtype=np.uint8) & 1
    if dense.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {dense.shape}")
    m, n = dense.shape
    nwords = max(1, (n + _WORD - 1) // _WORD)
    padded = np.zeros((m, nwords * _WORD), dtype=np.uint8)
    padded[:, :n] = dense
    # np.packbits is big-endian per byte; request little-endian bit order so
    # bit j of the row is bit j of the packed stream, then view as uint64.
    packed_bytes = np.packbits(padded, axis=1, bitorder="little")
    return packed_bytes.view(np.uint64).reshape(m, nwords)


def unpack_rows(packed: np.ndarray, ncols: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`; returns a dense uint8 ``(m, ncols)``."""
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    m = packed.shape[0]
    if m == 0:
        return np.zeros((0, ncols), dtype=np.uint8)
    as_bytes = packed.reshape(m, -1).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :ncols].astype(np.uint8)


def transpose_words(words: np.ndarray, ncols: int) -> np.ndarray:
    """Transpose a bit-packed matrix without unpacking it.

    Dispatches to the active kernel backend (:mod:`repro.gf2.kernels`,
    where the vectorized numpy butterfly reference now lives); kept here
    so existing imports and the packed-layout contract stay in one
    obvious place next to :func:`pack_rows`.
    """
    return kernels.transpose_words(words, ncols)



class BitMatrix:
    """A mutable GF(2) matrix with bit-packed rows.

    Supports the operations the rest of the library needs: in-place row
    reduction, rank, row-space membership, nullspace and linear solving.
    """

    __slots__ = ("words", "ncols")

    def __init__(self, words: np.ndarray, ncols: int):
        self.words = np.ascontiguousarray(words, dtype=np.uint64)
        self.ncols = int(ncols)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        dense = np.asarray(dense, dtype=np.uint8)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {dense.shape}")
        return cls(pack_rows(dense), dense.shape[1])

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "BitMatrix":
        nwords = max(1, (ncols + _WORD - 1) // _WORD)
        return cls(np.zeros((nrows, nwords), dtype=np.uint64), ncols)

    @classmethod
    def identity(cls, n: int) -> "BitMatrix":
        out = cls.zeros(n, n)
        for i in range(n):
            out.set(i, i, 1)
        return out

    def copy(self) -> "BitMatrix":
        return BitMatrix(self.words.copy(), self.ncols)

    # -- basic accessors -----------------------------------------------------

    @property
    def nrows(self) -> int:
        return self.words.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def get(self, i: int, j: int) -> int:
        return int((self.words[i, j // _WORD] >> np.uint64(j % _WORD)) & np.uint64(1))

    def set(self, i: int, j: int, value: int) -> None:
        mask = np.uint64(1) << np.uint64(j % _WORD)
        if value & 1:
            self.words[i, j // _WORD] |= mask
        else:
            self.words[i, j // _WORD] &= ~mask

    def to_dense(self) -> np.ndarray:
        return unpack_rows(self.words, self.ncols)

    def row_weight(self, i: int) -> int:
        return int(popcount_u64(self.words[i]).sum())

    def row_weights(self) -> np.ndarray:
        return popcount_u64(self.words).sum(axis=1).astype(np.int64)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self.ncols == other.ncols and np.array_equal(self.words, other.words)

    def __repr__(self) -> str:
        return f"BitMatrix(shape={self.shape})"

    # -- elimination ---------------------------------------------------------

    def row_reduce(self, ncols: int | None = None) -> list[int]:
        """In-place row-echelon reduction (full RREF); returns pivot columns.

        ``ncols`` limits elimination to the leading columns, which lets
        callers reduce an augmented system ``[A | b]`` over ``A`` only.
        """
        limit = self.ncols if ncols is None else min(ncols, self.ncols)
        words = self.words
        nrows = self.nrows
        pivots: list[int] = []
        rank = 0
        next_liveness_check = 0
        for col in range(limit):
            # Periodically bail out once every remaining row is zero — big
            # win for wide, rank-deficient matrices (OSD's common case).
            if col >= next_liveness_check:
                if not words[rank:].any():
                    break
                next_liveness_check = col + 256
            w, b = col // _WORD, np.uint64(col % _WORD)
            colbits = (words[rank:, w] >> b) & np.uint64(1)
            hits = np.nonzero(colbits)[0]
            if hits.size == 0:
                continue
            pivot_row = rank + int(hits[0])
            if pivot_row != rank:
                words[[rank, pivot_row]] = words[[pivot_row, rank]]
            # Eliminate the pivot column from every other row in one shot.
            col_all = (words[:, w] >> b) & np.uint64(1)
            col_all[rank] = 0
            targets = np.nonzero(col_all)[0]
            if targets.size:
                words[targets] ^= words[rank]
            pivots.append(col)
            rank += 1
            if rank == nrows:
                break
        return pivots

    def rank(self) -> int:
        return len(self.copy().row_reduce())

    def nullspace(self) -> "BitMatrix":
        """Basis of the right nullspace, one basis vector per row."""
        reduced = self.copy()
        pivots = reduced.row_reduce()
        n = self.ncols
        pivot_set = set(pivots)
        free_cols = [j for j in range(n) if j not in pivot_set]
        basis = BitMatrix.zeros(len(free_cols), n)
        dense = reduced.to_dense()
        for k, free in enumerate(free_cols):
            basis.set(k, free, 1)
            for r, pcol in enumerate(pivots):
                if dense[r, free]:
                    basis.set(k, pcol, 1)
        return basis

    # -- derived queries ------------------------------------------------------

    def stack(self, other: "BitMatrix") -> "BitMatrix":
        if self.ncols != other.ncols:
            raise ValueError("column counts differ")
        return BitMatrix(np.vstack([self.words, other.words]), self.ncols)

    def contains_in_rowspace(self, vectors: "BitMatrix") -> bool:
        """True iff every row of ``vectors`` lies in this matrix's row space."""
        base = self.rank()
        return self.stack(vectors).rank() == base

    def solve(self, rhs: np.ndarray) -> np.ndarray | None:
        """One solution ``x`` of ``A^T applied? — here: rows as equations``.

        Treats ``self`` as the coefficient matrix ``A`` of ``A x = rhs`` with
        one *row per equation*.  Returns a dense uint8 solution or ``None``
        if the system is inconsistent.
        """
        rhs = np.asarray(rhs, dtype=np.uint8).ravel() & 1
        if rhs.shape[0] != self.nrows:
            raise ValueError("rhs length must equal the number of rows")
        aug_dense = np.concatenate([self.to_dense(), rhs[:, None]], axis=1)
        aug = BitMatrix.from_dense(aug_dense)
        pivots = aug.row_reduce(ncols=self.ncols)
        dense = aug.to_dense()
        rank = len(pivots)
        # Inconsistent if some zero-row of A has rhs bit 1.
        if np.any(dense[rank:, -1]):
            return None
        x = np.zeros(self.ncols, dtype=np.uint8)
        for r, col in enumerate(pivots):
            x[col] = dense[r, -1]
        return x

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x (mod 2)`` for a dense 0/1 vector ``x``."""
        xm = BitMatrix.from_dense(np.asarray(x, dtype=np.uint8).reshape(1, -1))
        if xm.ncols != self.ncols:
            raise ValueError("vector length must equal the number of columns")
        anded = self.words & xm.words[0]
        return (popcount_u64(anded).sum(axis=1) & 1).astype(np.uint8)
