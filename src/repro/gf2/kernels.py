"""Pluggable backends for the three packed-bit hot-spot kernels.

Profiling the packed sample→decode pipeline (PR 2) puts essentially all
of its non-decoder time in three word-level kernels:

``transpose_words``
    The blockwise 64x64 butterfly bit transpose that turns packed
    detector rows into per-shot syndrome keys.
``popcount_words``
    Set-bit reductions — failure counting, defect weights, row weights.
``unique_shot_words``
    Grouping shots by identical syndrome key (the unique-syndrome
    batching core).

This module gives each of them swappable implementations behind one
dispatch point:

``numpy``
    The original vectorized single-thread implementations — the pinned
    reference every other backend is parity-tested against bit for bit
    (``tests/test_kernels.py``).
``threads``
    The numpy kernels sharded across a thread pool for large inputs
    (numpy releases the GIL inside its ufunc loops), plus a hash-fold
    grouping fast path: multi-word keys are folded to one ``uint64``
    with a splitmix64 mix and sorted on that single key instead of
    lexsorted column by column, with exact collision repair — the
    grouping is identical, only group *order* differs (explicitly
    arbitrary by contract; callers map through ``inverse``).
``cnative``
    A tiny C translation unit (``_kernels.c``) compiled on first use
    with the system compiler (``cc -O3 -shared -fPIC``, with OpenMP
    threading when available), loaded through ctypes, and self-tested
    against the numpy reference before it is ever trusted.  No build
    step, no new dependency: if anything in that chain is missing the
    resolver silently falls back.

Selection happens at import from ``REPRO_KERNELS`` (``auto`` |
``numpy`` | ``threads`` | ``cnative``; default ``auto`` = best
available).  ``REPRO_KERNEL_THREADS`` caps the thread fan-out.  Tests
switch backends with :func:`set_backend` / :func:`use_backend`.

The dense-reference decode paths never route through here — they stay
pinned to plain numpy — so litmus tests compare every backend against
an implementation this module cannot affect.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from .. import obs

_WORD = 64

# Dispatch instruments: per-kernel call counts plus a per-backend call
# counter (rebound by set_backend) so a fleet summary shows which
# implementation actually served the hot path.
_TRANSPOSE_CALLS = obs.counter("kernel.transpose")
_POPCOUNT_CALLS = obs.counter("kernel.popcount")
_UNIQUE_CALLS = obs.counter("kernel.unique")
_BACKEND_CALLS = obs.counter("kernel.backend.numpy")

# -- numpy-version-portable popcount ------------------------------------------

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    popcount_u64 = np.bitwise_count
else:  # numpy 1.x: 8-bit lookup over the byte view

    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount_u64(words: np.ndarray) -> np.ndarray:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        as_bytes = words.reshape(-1).view(np.uint8)
        return _POP8[as_bytes].reshape(words.shape + (8,)).sum(
            axis=-1, dtype=np.int64
        )


# Butterfly masks for the in-register 64x64 bit transpose: at step ``j``
# the mask selects the low ``j`` bit positions of every ``2j`` group.
_TRANSPOSE_STEPS: list[tuple[int, int]] = [
    (32, 0x00000000FFFFFFFF),
    (16, 0x0000FFFF0000FFFF),
    (8, 0x00FF00FF00FF00FF),
    (4, 0x0F0F0F0F0F0F0F0F),
    (2, 0x3333333333333333),
    (1, 0x5555555555555555),
]


# -- shared validation + grouping scaffolding ---------------------------------


def _check_words_2d(words: np.ndarray) -> np.ndarray:
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected packed 2-D words, got shape {words.shape}")
    return words


def _group_nonzero(per_shot: np.ndarray):
    """Zero-key prefilter shared by every grouping implementation.

    Sub-threshold sampling makes the all-zero key the huge majority;
    pulling those shots out first means the sort cost tracks the
    *defective* shots only.  Returns ``(nz_idx, has_zero, inverse)``
    with ``inverse`` pre-zeroed (group 0 is reserved for the zero key
    when present).
    """
    shots = per_shot.shape[0]
    nonzero = per_shot.any(axis=1)
    nz_idx = np.nonzero(nonzero)[0]
    has_zero = nz_idx.size < shots
    inverse = np.zeros(shots, dtype=np.int64)
    return nz_idx, has_zero, inverse


def _assemble_groups(per_shot, nz_idx, has_zero, inverse, unique_nz, inv_nz):
    nwords = per_shot.shape[1]
    offset = 1 if has_zero else 0
    inverse[nz_idx] = inv_nz + offset
    if not has_zero:
        return unique_nz, inverse
    zero_row = np.zeros((1, nwords), dtype=np.uint64)
    return np.vstack([zero_row, unique_nz]), inverse


def _group_sorted(keys: np.ndarray, order: np.ndarray):
    """Run-boundary grouping of ``keys`` under a sort ``order``.

    ``order`` must bring equal rows adjacent.  Returns ``(unique rows,
    inverse)`` over the *nonzero* keys only.
    """
    ordered = keys[order]
    new_group = np.empty(len(ordered), dtype=bool)
    new_group[0] = True
    new_group[1:] = (ordered[1:] != ordered[:-1]).any(axis=1)
    unique_nz = ordered[new_group]
    inv_sorted = np.cumsum(new_group) - 1
    inv_nz = np.empty(len(keys), dtype=np.int64)
    inv_nz[order] = inv_sorted
    return unique_nz, inv_nz


# -- the numpy reference backend ----------------------------------------------


class NumpyBackend:
    """Single-thread vectorized numpy — the pinned reference."""

    name = "numpy"

    def transpose_words(self, words: np.ndarray, ncols: int) -> np.ndarray:
        words = _check_words_2d(words)
        m, nwords = words.shape
        row_blocks = max(1, (m + _WORD - 1) // _WORD)
        padded = np.zeros((row_blocks * _WORD, max(1, nwords)), dtype=np.uint64)
        if m and nwords:
            padded[:m, :nwords] = words
        # blocks[b, c, i] = row 64b+i, word column c.
        blocks = np.ascontiguousarray(
            padded.reshape(row_blocks, _WORD, -1).transpose(0, 2, 1)
        )
        half = np.arange(_WORD)
        for j, mask in _TRANSPOSE_STEPS:
            lo = half[(half & j) == 0]
            hi = lo + j
            shift = np.uint64(j)
            mask = np.uint64(mask)
            # Little-endian bit order flips the classic network: swap the
            # *high* bit-halves of the low rows with the *low* bit-halves
            # of the high rows (the off-diagonal sub-blocks).
            a = blocks[..., lo]
            b = blocks[..., hi]
            t = ((a >> shift) ^ b) & mask
            blocks[..., lo] = a ^ (t << shift)
            blocks[..., hi] = b ^ t
        # Now blocks[b, c, j] holds bit i = element (64b+i, 64c+j): word
        # column b of transposed row 64c+j.
        out = blocks.transpose(1, 2, 0).reshape(-1, row_blocks)
        return np.ascontiguousarray(out[:ncols])

    def popcount_words(
        self, words: np.ndarray, axis: int | None = None
    ) -> np.ndarray | int:
        counts = popcount_u64(words)
        if axis is None:
            return int(counts.sum())
        return counts.sum(axis=axis).astype(np.int64)

    def unique_shot_words(
        self, per_shot: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        per_shot = _check_words_2d(per_shot)
        nwords = per_shot.shape[1]
        nz_idx, has_zero, inverse = _group_nonzero(per_shot)
        if nz_idx.size == 0:
            return np.zeros((1, nwords), dtype=np.uint64), inverse
        keys = per_shot[nz_idx]
        if nwords == 1:
            unique_nz, inv_nz = np.unique(keys[:, 0], return_inverse=True)
            unique_nz = unique_nz[:, None]
            # numpy 2.0 briefly reshaped return_inverse to match the
            # input (reverted in 2.1); flatten so every version agrees.
            inv_nz = np.asarray(inv_nz, dtype=np.int64).reshape(-1)
        else:
            # Multi-word keys: lexsort + run boundaries beats np.unique's
            # void-view row sort by a wide margin.
            order = np.lexsort(keys.T[::-1])
            unique_nz, inv_nz = _group_sorted(keys, order)
        return _assemble_groups(
            per_shot, nz_idx, has_zero, inverse, unique_nz, inv_nz
        )


# -- hash-fold grouping (threads + cnative fast path) --------------------------


def _fold_rows_numpy(keys: np.ndarray) -> np.ndarray:
    """splitmix64-style fold of each row to one uint64 sort key."""
    with np.errstate(over="ignore"):
        h = np.full(keys.shape[0], 0x9E3779B97F4A7C15, dtype=np.uint64)
        for w in range(keys.shape[1]):
            v = keys[:, w] + h
            v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            h = v ^ (v >> np.uint64(31))
    return h


def _unique_hashfold(per_shot: np.ndarray, fold) -> tuple[np.ndarray, np.ndarray]:
    """Group rows by sorting on a 64-bit fold of each row.

    One single-key argsort replaces the column-by-column lexsort.  Hash
    collisions (different rows, equal fold) are detected exactly —
    differing adjacent rows *inside* one fold run — and repaired with a
    local lexsort of that run, so the grouping is always exact; only
    the (contractually arbitrary) group order differs from the
    reference.
    """
    per_shot = _check_words_2d(per_shot)
    nwords = per_shot.shape[1]
    nz_idx, has_zero, inverse = _group_nonzero(per_shot)
    if nz_idx.size == 0:
        return np.zeros((1, nwords), dtype=np.uint64), inverse
    keys = per_shot[nz_idx]
    if nwords == 1:
        order = np.argsort(keys[:, 0], kind="stable")
        unique_nz, inv_nz = _group_sorted(keys, order)
        return _assemble_groups(
            per_shot, nz_idx, has_zero, inverse, unique_nz, inv_nz
        )
    folded = fold(keys)
    order = np.argsort(folded, kind="stable")
    of = folded[order]
    okeys = keys[order]
    run_boundary = np.empty(len(of), dtype=bool)
    run_boundary[0] = True
    run_boundary[1:] = of[1:] != of[:-1]
    row_diff = np.empty(len(of), dtype=bool)
    row_diff[0] = True
    row_diff[1:] = (okeys[1:] != okeys[:-1]).any(axis=1)
    collisions = row_diff & ~run_boundary
    if collisions.any():
        # Genuine 64-bit fold collisions — astronomically rare, so a
        # python loop over the affected runs costs nothing.
        run_ids = np.cumsum(run_boundary) - 1
        for r in np.unique(run_ids[collisions]):
            sel = np.nonzero(run_ids == r)[0]
            sub = okeys[sel]
            sub_order = np.lexsort(sub.T[::-1])
            okeys[sel] = sub[sub_order]
            order[sel] = order[sel][sub_order]
        row_diff[1:] = (okeys[1:] != okeys[:-1]).any(axis=1)
    unique_nz = okeys[row_diff]
    inv_sorted = np.cumsum(row_diff) - 1
    inv_nz = np.empty(len(keys), dtype=np.int64)
    inv_nz[order] = inv_sorted
    return _assemble_groups(per_shot, nz_idx, has_zero, inverse, unique_nz, inv_nz)


# -- threaded backend ----------------------------------------------------------

# Below this many words a kernel runs serially: thread handoff costs
# more than it saves.
_THREAD_MIN_WORDS = 1 << 15


def _thread_count() -> int:
    env = os.environ.get("REPRO_KERNEL_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class ThreadedBackend(NumpyBackend):
    """Numpy kernels sharded across threads + hash-fold grouping."""

    name = "threads"

    def __init__(self, threads: int | None = None):
        self.threads = threads if threads is not None else _thread_count()
        self._pool: ThreadPoolExecutor | None = None

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-kernel"
            )
        return self._pool

    def transpose_words(self, words: np.ndarray, ncols: int) -> np.ndarray:
        words = _check_words_2d(words)
        m, nwords = words.shape
        row_blocks = max(1, (m + _WORD - 1) // _WORD)
        if self.threads <= 1 or m * max(1, nwords) < _THREAD_MIN_WORDS:
            return super().transpose_words(words, ncols)
        # 64-row block groups are independent: transpose each slice with
        # the reference kernel, then stitch the output word columns.
        per = max(1, -(-row_blocks // self.threads))
        spans = [
            (b * _WORD, min(m, (b + per) * _WORD))
            for b in range(0, row_blocks, per)
        ]
        base = super(ThreadedBackend, self)
        futures = [
            self._executor().submit(base.transpose_words, words[lo:hi], ncols)
            for lo, hi in spans
        ]
        return np.ascontiguousarray(np.hstack([f.result() for f in futures]))

    def popcount_words(
        self, words: np.ndarray, axis: int | None = None
    ) -> np.ndarray | int:
        arr = np.asarray(words, dtype=np.uint64)
        if (
            self.threads <= 1
            or arr.ndim != 2
            or axis not in (None, 1)
            or arr.size < _THREAD_MIN_WORDS
        ):
            return super().popcount_words(words, axis)
        per = max(1, -(-arr.shape[0] // self.threads))
        base = super(ThreadedBackend, self)
        futures = [
            self._executor().submit(base.popcount_words, arr[lo : lo + per], 1)
            for lo in range(0, arr.shape[0], per)
        ]
        counts = np.concatenate([f.result() for f in futures])
        if axis is None:
            return int(counts.sum())
        return counts

    def unique_shot_words(
        self, per_shot: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return _unique_hashfold(per_shot, _fold_rows_numpy)


# -- native (C + ctypes) backend ------------------------------------------------


def _native_cache_dir() -> str:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return env
    return os.path.join(tempfile.gettempdir(), "repro-kernels")


def _compile_native() -> ctypes.CDLL | None:
    """Compile ``_kernels.c`` into a cached shared object and load it."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    src = os.path.join(os.path.dirname(__file__), "_kernels.c")
    try:
        with open(src, "rb") as fh:
            source = fh.read()
    except OSError:
        return None
    for extra in (["-fopenmp"], []):
        flags = ["-O3", "-shared", "-fPIC", *extra]
        tag = hashlib.sha256(source + " ".join(flags).encode()).hexdigest()[:16]
        cache_dir = _native_cache_dir()
        so_path = os.path.join(cache_dir, f"repro_kernels_{tag}.so")
        if not os.path.exists(so_path):
            try:
                os.makedirs(cache_dir, exist_ok=True)
                tmp = so_path + f".tmp{os.getpid()}"
                subprocess.run(
                    [compiler, *flags, src, "-o", tmp],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                os.replace(tmp, so_path)  # atomic under concurrent builders
            except (OSError, subprocess.SubprocessError):
                continue
        try:
            return ctypes.CDLL(so_path)
        except OSError:
            continue
    return None


class CNativeBackend(NumpyBackend):
    """ctypes-loaded C kernels (OpenMP-threaded when the compiler has it)."""

    name = "cnative"

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        u64p = ctypes.POINTER(ctypes.c_uint64)
        i64p = ctypes.POINTER(ctypes.c_int64)
        lib.repro_transpose_words.argtypes = [
            u64p,
            u64p,
            ctypes.c_long,
            ctypes.c_long,
        ]
        lib.repro_transpose_words.restype = None
        lib.repro_popcount_rows.argtypes = [
            u64p,
            ctypes.c_long,
            ctypes.c_long,
            i64p,
        ]
        lib.repro_popcount_rows.restype = None
        lib.repro_fold_rows.argtypes = [u64p, ctypes.c_long, ctypes.c_long, u64p]
        lib.repro_fold_rows.restype = None

    @staticmethod
    def _u64p(arr: np.ndarray):
        return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64))

    def transpose_words(self, words: np.ndarray, ncols: int) -> np.ndarray:
        words = _check_words_2d(words)
        m, nwords = words.shape
        row_blocks = max(1, (m + _WORD - 1) // _WORD)
        nwords_eff = max(1, nwords)
        padded = np.zeros((row_blocks * _WORD, nwords_eff), dtype=np.uint64)
        if m and nwords:
            padded[:m, :nwords] = words
        out = np.empty((nwords_eff * _WORD, row_blocks), dtype=np.uint64)
        self._lib.repro_transpose_words(
            self._u64p(padded), self._u64p(out), row_blocks, nwords_eff
        )
        return np.ascontiguousarray(out[:ncols])

    def popcount_words(
        self, words: np.ndarray, axis: int | None = None
    ) -> np.ndarray | int:
        arr = np.asarray(words, dtype=np.uint64)
        if arr.ndim != 2 or axis not in (None, 1) or arr.size == 0:
            return super().popcount_words(words, axis)
        arr = np.ascontiguousarray(arr)
        out = np.empty(arr.shape[0], dtype=np.int64)
        self._lib.repro_popcount_rows(
            self._u64p(arr),
            arr.shape[0],
            arr.shape[1],
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
        )
        if axis is None:
            return int(out.sum())
        return out

    def _fold_rows(self, keys: np.ndarray) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.empty(keys.shape[0], dtype=np.uint64)
        self._lib.repro_fold_rows(
            self._u64p(keys), keys.shape[0], keys.shape[1], self._u64p(out)
        )
        return out

    def unique_shot_words(
        self, per_shot: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return _unique_hashfold(per_shot, self._fold_rows)


def _self_test(backend: NumpyBackend) -> bool:
    """Tiny parity check before a non-reference backend is trusted."""
    try:
        rng = np.random.default_rng(12345)
        ref = NumpyBackend()
        words = rng.integers(0, 2**63, size=(70, 3), dtype=np.uint64)
        if not np.array_equal(
            backend.transpose_words(words, 130), ref.transpose_words(words, 130)
        ):
            return False
        if backend.popcount_words(words) != ref.popcount_words(words):
            return False
        keys = rng.integers(0, 4, size=(97, 2), dtype=np.uint64)
        got_u, got_inv = backend.unique_shot_words(keys)
        want_u, want_inv = ref.unique_shot_words(keys)
        return (
            got_u.shape == want_u.shape
            and np.array_equal(got_u[got_inv], want_u[want_inv])
            and np.array_equal(got_u[got_inv], keys)
        )
    except Exception:
        return False


# -- backend registry / selection ----------------------------------------------

_ACTIVE: NumpyBackend = NumpyBackend()
_NATIVE_RESULT: CNativeBackend | None | bool = False  # False = not tried yet


def _native_backend() -> CNativeBackend | None:
    global _NATIVE_RESULT
    if _NATIVE_RESULT is False:
        lib = _compile_native()
        backend = CNativeBackend(lib) if lib is not None else None
        if backend is not None and not _self_test(backend):
            backend = None
        _NATIVE_RESULT = backend
    return _NATIVE_RESULT


def _make_backend(name: str) -> NumpyBackend | None:
    if name == "numpy":
        return NumpyBackend()
    if name == "threads":
        backend = ThreadedBackend()
        return backend if _self_test(backend) else None
    if name == "cnative":
        return _native_backend()
    if name == "auto":
        native = _native_backend()
        if native is not None:
            return native
        if _thread_count() > 1:
            threaded = ThreadedBackend()
            if _self_test(threaded):
                return threaded
        return NumpyBackend()
    raise ValueError(f"unknown kernel backend {name!r}")


def available_backends() -> list[str]:
    """Names of the backends that actually work on this machine."""
    names = ["numpy"]
    if _self_test(ThreadedBackend()):
        names.append("threads")
    if _native_backend() is not None:
        names.append("cnative")
    return names


def set_backend(name: str) -> str:
    """Activate a backend by name; returns the previous backend's name."""
    backend = _make_backend(name)
    if backend is None:
        raise RuntimeError(f"kernel backend {name!r} is unavailable here")
    global _ACTIVE, _BACKEND_CALLS
    previous = _ACTIVE.name
    _ACTIVE = backend
    _BACKEND_CALLS = obs.counter(f"kernel.backend.{backend.name}")
    return previous


@contextmanager
def use_backend(name: str):
    """Context manager flavor of :func:`set_backend` (for tests)."""
    previous = set_backend(name)
    try:
        yield _ACTIVE
    finally:
        set_backend(previous)


def backend_name() -> str:
    """The active backend's name (reported by campaign status + benches)."""
    return _ACTIVE.name


# -- dispatched public kernels ---------------------------------------------------


def transpose_words(words: np.ndarray, ncols: int) -> np.ndarray:
    """Transpose a bit-packed matrix without unpacking it.

    ``words`` is ``(m, ceil(ncols/64))`` uint64 in
    :func:`repro.gf2.bitmat.pack_rows` layout (bit ``j`` of row ``i`` =
    matrix element ``(i, j)``); the result is ``(ncols, ceil(m/64))`` in
    the same layout, so bit ``i`` of result row ``j`` = element ``(i,
    j)``.  Works blockwise: the matrix is tiled into 64x64 bit blocks
    and each block is transposed with the classic butterfly-swap network
    (Hacker's Delight 7-3) — ``O(m * ncols / 64)`` word ops with no
    dense intermediate.

    Input tail bits (columns ``>= ncols``) are assumed zero, the
    invariant every packer in this package maintains; output tail bits
    (rows ``>= m``) come out zero for the same reason.
    """
    _TRANSPOSE_CALLS.add()
    _BACKEND_CALLS.add()
    return _ACTIVE.transpose_words(words, ncols)


def popcount_words(words: np.ndarray, axis: int | None = None) -> np.ndarray | int:
    """Total set bits, optionally along one axis."""
    _POPCOUNT_CALLS.add()
    _BACKEND_CALLS.add()
    return _ACTIVE.popcount_words(words, axis)


def unique_shot_words(per_shot: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group shots by their packed word key.

    ``per_shot`` is ``(shots, nwords)`` uint64 (one key row per shot).
    Returns ``(unique, inverse)`` with ``unique`` the distinct key rows
    and ``inverse[s]`` the group id of shot ``s`` — the unique-syndrome
    batching core: decode ``unique`` once, scatter through ``inverse``.
    Group order is arbitrary by contract (backends differ); group 0 is
    the all-zero key whenever any shot has it.
    """
    _UNIQUE_CALLS.add()
    _BACKEND_CALLS.add()
    return _ACTIVE.unique_shot_words(per_shot)


set_backend(os.environ.get("REPRO_KERNELS", "auto"))
