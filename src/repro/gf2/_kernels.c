/* Native kernels for the packed-bit hot spots.
 *
 * Compiled at runtime by repro.gf2.kernels (plain `cc -O3 -shared -fPIC`,
 * optionally with -fopenmp) and loaded through ctypes — no build step, no
 * new dependency; if no compiler is available the pure-numpy backends take
 * over.  Every function here is bit-identical to its numpy reference
 * (pinned by tests/test_kernels.py).
 *
 * Bit conventions match repro.gf2.bitmat.pack_rows: bit j of a row lives
 * in word j/64 at little-endian bit position j%64.
 */

#include <stdint.h>

#ifdef _OPENMP
#include <omp.h>
#endif

/* 64x64 bit transpose of one block, little-endian butterfly network
 * (Hacker's Delight 7-3, mirrored for little-endian bit order exactly
 * like the numpy reference in repro.gf2.bitmat). */
static void transpose64(uint64_t w[64]) {
  static const int shifts[6] = {32, 16, 8, 4, 2, 1};
  static const uint64_t masks[6] = {
      0x00000000FFFFFFFFULL, 0x0000FFFF0000FFFFULL, 0x00FF00FF00FF00FFULL,
      0x0F0F0F0F0F0F0F0FULL, 0x3333333333333333ULL, 0x5555555555555555ULL,
  };
  for (int s = 0; s < 6; s++) {
    const int j = shifts[s];
    const uint64_t m = masks[s];
    for (int lo = 0; lo < 64; lo++) {
      if (lo & j) {
        continue;
      }
      const int hi = lo | j;
      const uint64_t a = w[lo];
      const uint64_t b = w[hi];
      const uint64_t t = ((a >> j) ^ b) & m;
      w[lo] = a ^ (t << j);
      w[hi] = b ^ t;
    }
  }
}

/* Blockwise bit transpose.
 *
 * in : (row_blocks * 64, nwords) uint64, row-major, rows >= m zero-padded
 * out: (nwords * 64, row_blocks) uint64, row-major
 *
 * out[(c*64 + j) * row_blocks + b] bit i == in[(b*64 + i) * nwords + c]
 * bit j — the same contract as the vectorized numpy butterfly.
 */
void repro_transpose_words(const uint64_t *in, uint64_t *out,
                           long row_blocks, long nwords) {
  const long nblocks = row_blocks * nwords;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long t = 0; t < nblocks; t++) {
    const long b = t / nwords;
    const long c = t % nwords;
    uint64_t w[64];
    const uint64_t *src = in + (b * 64) * nwords + c;
    for (int i = 0; i < 64; i++) {
      w[i] = src[(long)i * nwords];
    }
    transpose64(w);
    uint64_t *dst = out + (c * 64) * row_blocks + b;
    for (int j = 0; j < 64; j++) {
      dst[(long)j * row_blocks] = w[j];
    }
  }
}

/* Per-row popcount: out[i] = number of set bits in row i of (m, n). */
void repro_popcount_rows(const uint64_t *in, long m, long n, int64_t *out) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long i = 0; i < m; i++) {
    const uint64_t *row = in + i * n;
    int64_t total = 0;
    for (long k = 0; k < n; k++) {
#if defined(__GNUC__) || defined(__clang__)
      total += __builtin_popcountll(row[k]);
#else
      uint64_t v = row[k];
      v = v - ((v >> 1) & 0x5555555555555555ULL);
      v = (v & 0x3333333333333333ULL) + ((v >> 2) & 0x3333333333333333ULL);
      v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
      total += (int64_t)((v * 0x0101010101010101ULL) >> 56);
#endif
    }
    out[i] = total;
  }
}

/* splitmix64-style fold of multi-word rows to one uint64 hash key each —
 * the sort key for the hash-grouped unique_shot_words fast path. */
void repro_fold_rows(const uint64_t *in, long m, long n, uint64_t *out) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long i = 0; i < m; i++) {
    const uint64_t *row = in + i * n;
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (long k = 0; k < n; k++) {
      uint64_t v = row[k] + h;
      v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
      v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
      h = v ^ (v >> 31);
    }
    out[i] = h;
  }
}
