"""Zero-noise extrapolation: DS-ZNE baseline and Hook-ZNE."""

from .ds_zne import DS_ZNE_DISTANCE_SETS, DistanceScalingZNE, ZNEOutcome
from .extrapolate import (
    exponential_extrapolate,
    extrapolate_to_zero,
    linear_extrapolate,
    richardson_extrapolate,
)
from .hook_zne import HOOK_ZNE_DISTANCE_SETS, HookZNE, noise_dials_from_prophunt
from .rb import RBWorkload

__all__ = [
    "DS_ZNE_DISTANCE_SETS",
    "DistanceScalingZNE",
    "ZNEOutcome",
    "exponential_extrapolate",
    "extrapolate_to_zero",
    "linear_extrapolate",
    "richardson_extrapolate",
    "HOOK_ZNE_DISTANCE_SETS",
    "HookZNE",
    "noise_dials_from_prophunt",
    "RBWorkload",
]
