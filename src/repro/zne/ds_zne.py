"""Distance-Scaling ZNE (Wahl et al., the paper's baseline in §7).

DS-ZNE amplifies logical noise by running the application at smaller code
distances: distances ``d, d-2, ..., d-2k`` (odd integers only) give gate
errors ``P_L(d') = Lambda^{-(d'+1)/2}``.  Scale factors are the error
ratios relative to the largest distance; the expectation-vs-scale curve
is extrapolated to zero noise.

Its two §7.1 limitations are visible directly in this implementation:
scale factors jump by factors of Lambda (coarse), and small distance
ranges leave few points with rapidly growing variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.stats import projected_logical_rate
from .extrapolate import extrapolate_to_zero
from .rb import RBWorkload


@dataclass
class ZNEOutcome:
    """One mitigated estimate and its inputs."""

    distances: list[float]
    gate_errors: list[float]
    scale_factors: list[float]
    expectations: list[float]
    estimate: float
    ideal: float

    @property
    def bias(self) -> float:
        """L1 distance between mitigated and ideal (paper's Fig 16b metric)."""
        return abs(self.estimate - self.ideal)


@dataclass
class DistanceScalingZNE:
    """DS-ZNE estimator at suppression factor ``lam``."""

    lam: float
    workload: RBWorkload = field(default_factory=RBWorkload)
    method: str = "exponential"

    def gate_error(self, distance: float) -> float:
        return projected_logical_rate(self.lam, distance)

    def run(
        self,
        distances: list[float],
        total_shots: int,
        rng: np.random.Generator,
    ) -> ZNEOutcome:
        """Split the shot budget evenly over the distances, extrapolate."""
        if len(distances) < 2:
            raise ValueError("ZNE needs at least two noise scales")
        shots_each = total_shots // len(distances)
        errors = [self.gate_error(d) for d in distances]
        base = min(errors)
        scales = [e / base for e in errors]
        expectations = [
            self.workload.sample_expectation(e, shots_each, rng) for e in errors
        ]
        estimate = extrapolate_to_zero(scales, expectations, self.method)
        return ZNEOutcome(
            distances=list(distances),
            gate_errors=errors,
            scale_factors=scales,
            expectations=expectations,
            estimate=float(np.clip(estimate, -1.0, 1.0)),
            ideal=self.workload.ideal_expectation(),
        )


# The paper's three DS-ZNE distance ranges (§7.2).
DS_ZNE_DISTANCE_SETS: list[list[float]] = [
    [13, 11, 9, 7],
    [11, 9, 7, 5],
    [9, 7, 5, 3],
]
