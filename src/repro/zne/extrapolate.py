"""Zero-noise extrapolation fits (mitiq substitute).

Expectation values measured at noise scale factors >= 1 are extrapolated
to the zero-noise limit.  Three standard factories: linear, Richardson
(exact polynomial through all points), and exponential
(``E = a + b * exp(-c * lam)``), the default for logical-error decay.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize


def linear_extrapolate(scales: np.ndarray, values: np.ndarray) -> float:
    """Least-squares line, evaluated at scale 0."""
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    coeffs = np.polyfit(scales, values, 1)
    return float(np.polyval(coeffs, 0.0))


def richardson_extrapolate(scales: np.ndarray, values: np.ndarray) -> float:
    """Polynomial of degree n-1 through all n points, at scale 0."""
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    # Lagrange evaluation at 0: sum_i y_i * prod_{j != i} (-x_j)/(x_i - x_j).
    total = 0.0
    n = len(scales)
    for i in range(n):
        term = values[i]
        for j in range(n):
            if j != i:
                term *= -scales[j] / (scales[i] - scales[j])
        total += term
    return float(total)


def exponential_extrapolate(
    scales: np.ndarray, values: np.ndarray, asymptote: float = 0.0
) -> float:
    """Fit ``E = asymptote + b * exp(-c * lam)``; return value at lam = 0.

    Falls back to linear extrapolation when the fit fails (e.g. values
    not decaying, too noisy) — the same safety net mitiq applies.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)

    def model(lam, b, c):
        return asymptote + b * np.exp(-c * lam)

    try:
        shifted = values - asymptote
        if np.any(shifted <= 0):
            raise RuntimeError("values cross the asymptote")
        # Log-linear seed for the nonlinear fit.
        slope, intercept = np.polyfit(scales, np.log(shifted), 1)
        p0 = (float(np.exp(intercept)), float(-slope))
        params, _ = optimize.curve_fit(
            model, scales, values, p0=p0, maxfev=2000
        )
        return float(model(0.0, *params))
    except (RuntimeError, TypeError, ValueError):
        return linear_extrapolate(scales, values)


_METHODS = {
    "linear": linear_extrapolate,
    "richardson": richardson_extrapolate,
    "exponential": exponential_extrapolate,
}


def extrapolate_to_zero(
    scales, values, method: str = "exponential"
) -> float:
    """Dispatch on the factory name."""
    if method not in _METHODS:
        raise ValueError(f"unknown extrapolation method {method!r}")
    return _METHODS[method](np.asarray(scales), np.asarray(values))
