"""Logical randomized-benchmarking workloads (mitiq-RB substitute).

The paper's §7.2 evaluation runs randomized-benchmarking circuits with a
two-qubit-gate depth of 50, with uniform per-gate noise of magnitude
``P_L(d) = Lambda^{-(d+1)/2}``.  At the logical level an RB circuit's
survival observable under symmetric Pauli noise decays as a Bernoulli
process: each gate flips the observable's frame with probability
``P_L``, so the ideal expectation after ``depth`` gates is
``(1 - 2*P_L)^depth`` and a finite-shot estimate is binomial around it.

``RBWorkload`` reproduces exactly that estimator, including shot noise —
which is the quantity DS-ZNE vs Hook-ZNE trade off (estimator variance at
few, coarse noise scales vs many, fine ones).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RBWorkload:
    """A depth-``depth`` logical RB experiment."""

    depth: int = 50

    def ideal_expectation(self) -> float:
        return 1.0

    def expectation(self, gate_error: float) -> float:
        """Noisy (infinite-shot) survival expectation."""
        if not 0 <= gate_error <= 1:
            raise ValueError(f"gate error {gate_error} outside [0, 1]")
        return float((1.0 - 2.0 * gate_error) ** self.depth)

    def flip_probability(self, gate_error: float) -> float:
        """Per-shot probability the +-1 observable reads -1."""
        return (1.0 - self.expectation(gate_error)) / 2.0

    def sample_expectation(
        self, gate_error: float, shots: int, rng: np.random.Generator
    ) -> float:
        """Finite-shot estimate of the expectation (binomial noise)."""
        if shots <= 0:
            raise ValueError("need at least one shot")
        flips = rng.binomial(shots, self.flip_probability(gate_error))
        return 1.0 - 2.0 * flips / shots
