"""Hook-ZNE: fine-grained noise scaling from intermediate SM circuits (§7.2).

PropHunt's optimization trajectory passes through SM circuits whose
logical error rates interpolate smoothly between the unoptimized and
optimized endpoints *at fixed code distance and qubit count*.  Treating
those intermediate circuits as noise dials gives ZNE finely spaced scale
factors — the paper parameterizes them as fractional effective distances
``d`` in ``P_L(d) = Lambda^{-(d+1)/2}`` (e.g. d = 13, 12.5, 12, 11.5).

Two entry points:

* :class:`HookZNE` — the §7.2 evaluation: fractional-distance dials with
  the same estimator pipeline as DS-ZNE, for the bias comparison.
* :func:`noise_dials_from_prophunt` — the systems path: turn an actual
  :class:`PropHuntResult`'s intermediate schedules into measured logical
  error rates, i.e. real hardware dials instead of the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.stats import projected_logical_rate
from .ds_zne import ZNEOutcome
from .extrapolate import extrapolate_to_zero
from .rb import RBWorkload


@dataclass
class HookZNE:
    """Hook-ZNE estimator at suppression factor ``lam``."""

    lam: float
    workload: RBWorkload = field(default_factory=RBWorkload)
    method: str = "exponential"

    def gate_error(self, effective_distance: float) -> float:
        return projected_logical_rate(self.lam, effective_distance)

    def amplification_range(self, d: int, d_eff_min: float) -> tuple[float, float]:
        """Noise amplification reachable at fixed distance d (Figure 16a).

        Intermediate circuits span effective distances in
        [d_eff_min, d]; the amplification factor relative to the best
        circuit is ``P_L(d_eff) / P_L(d) = Lambda^{(d - d_eff)/2}``.
        """
        top = projected_logical_rate(self.lam, d_eff_min) / projected_logical_rate(
            self.lam, d
        )
        return (1.0, float(top))

    def run(
        self,
        effective_distances: list[float],
        total_shots: int,
        rng: np.random.Generator,
    ) -> ZNEOutcome:
        if len(effective_distances) < 2:
            raise ValueError("ZNE needs at least two noise scales")
        shots_each = total_shots // len(effective_distances)
        errors = [self.gate_error(d) for d in effective_distances]
        base = min(errors)
        scales = [e / base for e in errors]
        expectations = [
            self.workload.sample_expectation(e, shots_each, rng) for e in errors
        ]
        estimate = extrapolate_to_zero(scales, expectations, self.method)
        return ZNEOutcome(
            distances=list(effective_distances),
            gate_errors=errors,
            scale_factors=scales,
            expectations=expectations,
            estimate=float(np.clip(estimate, -1.0, 1.0)),
            ideal=self.workload.ideal_expectation(),
        )


# The paper's three Hook-ZNE dial sets, finely spaced at ~fixed d (§7.2).
HOOK_ZNE_DISTANCE_SETS: list[list[float]] = [
    [13, 12.5, 12, 11.5],
    [11, 10.5, 10, 9.5],
    [9, 8.5, 8, 7.5],
]


def noise_dials_from_prophunt(
    result,
    p: float,
    shots: int = 4000,
    rng: np.random.Generator | None = None,
) -> list[tuple[int, float]]:
    """Measure the logical error rate of every intermediate schedule.

    Returns (iteration, logical_error_rate) dials in optimization order —
    the concrete realization of Hook-ZNE's noise knob.  ``result`` is a
    :class:`repro.core.PropHuntResult`.
    """
    from ..decoders import estimate_logical_error_rate

    rng = rng or np.random.default_rng()
    dials = []
    for i, schedule in enumerate(result.intermediate_schedules):
        rate = estimate_logical_error_rate(
            result.code, schedule, p=p, shots=shots, rng=rng
        ).rate
        dials.append((i, rate))
    return dials
