"""Operation definitions for the SM-circuit intermediate representation.

The IR mirrors the subset of Stim's language the paper's tooling needs:
Clifford gates, resets/measurements in X and Z bases, Pauli noise
channels, layer separators (TICK), and detector/observable annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Gates that act on qubits.
CLIFFORD_GATES = frozenset({"H", "CNOT"})
RESET_GATES = frozenset({"R", "RX"})
MEASURE_GATES = frozenset({"M", "MX"})
NOISE_GATES = frozenset({"DEPOLARIZE1", "DEPOLARIZE2", "PAULI_CHANNEL_1"})
ANNOTATIONS = frozenset({"DETECTOR", "OBSERVABLE_INCLUDE", "TICK"})

ALL_GATES = CLIFFORD_GATES | RESET_GATES | MEASURE_GATES | NOISE_GATES | ANNOTATIONS

# How many qubits each qubit-gate consumes per application.
GATE_ARITY = {
    "H": 1,
    "CNOT": 2,
    "R": 1,
    "RX": 1,
    "M": 1,
    "MX": 1,
    "DEPOLARIZE1": 1,
    "DEPOLARIZE2": 2,
    "PAULI_CHANNEL_1": 1,
}


@dataclass(frozen=True)
class Operation:
    """A single instruction.

    ``targets`` are qubit indices for gates/noise, or *absolute measurement
    indices* for DETECTOR / OBSERVABLE_INCLUDE.  ``args`` carry noise
    probabilities (or the observable index for OBSERVABLE_INCLUDE).
    ``label`` is opaque metadata — the builder stamps detectors with
    ``(round, kind, stab)`` so they can be matched across different
    schedules of the same code (needed by PropHunt's pruning stage §5.4).
    """

    gate: str
    targets: tuple[int, ...] = ()
    args: tuple[float, ...] = ()
    label: tuple = field(default=(), compare=False)

    def __post_init__(self):
        if self.gate not in ALL_GATES:
            raise ValueError(f"unknown gate {self.gate!r}")
        arity = GATE_ARITY.get(self.gate)
        if arity is not None and len(self.targets) % arity != 0:
            raise ValueError(
                f"{self.gate} takes groups of {arity} targets, got {len(self.targets)}"
            )
        if self.gate == "PAULI_CHANNEL_1" and len(self.args) != 3:
            raise ValueError("PAULI_CHANNEL_1 needs (px, py, pz)")
        if self.gate in ("DEPOLARIZE1", "DEPOLARIZE2") and len(self.args) != 1:
            raise ValueError(f"{self.gate} needs a single probability")
        if self.gate == "OBSERVABLE_INCLUDE" and len(self.args) != 1:
            raise ValueError("OBSERVABLE_INCLUDE needs the observable index")

    def target_groups(self) -> list[tuple[int, ...]]:
        """Split flattened targets into per-application groups."""
        arity = GATE_ARITY.get(self.gate, len(self.targets) or 1)
        if arity == 0:
            return []
        return [
            tuple(self.targets[i : i + arity])
            for i in range(0, len(self.targets), arity)
        ]

    def is_noise(self) -> bool:
        return self.gate in NOISE_GATES

    def is_measurement(self) -> bool:
        return self.gate in MEASURE_GATES

    def __str__(self) -> str:
        parts = [self.gate]
        if self.args:
            parts.append("(" + ",".join(f"{a:g}" for a in self.args) + ")")
        if self.targets:
            parts.append(" " + " ".join(str(t) for t in self.targets))
        return "".join(parts)
