"""Operation definitions for the SM-circuit intermediate representation.

The IR mirrors the subset of Stim's language the paper's tooling needs:
Clifford gates, resets/measurements in X and Z bases, Pauli noise
channels, layer separators (TICK), and detector/observable annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Gates that act on qubits.  NOISE_GATES and ALL_GATES are plain
# (mutable) sets so :func:`register_noise_gate` can extend the IR —
# every importer binds the same set objects, so registration is visible
# stack-wide.  The simulators stay strict about it: a registered noise
# gate they cannot lower raises instead of being silently dropped.
CLIFFORD_GATES = frozenset({"H", "CNOT"})
RESET_GATES = frozenset({"R", "RX"})
MEASURE_GATES = frozenset({"M", "MX"})
NOISE_GATES = {"DEPOLARIZE1", "DEPOLARIZE2", "PAULI_CHANNEL_1", "PAULI_CHANNEL_2"}
ANNOTATIONS = frozenset({"DETECTOR", "OBSERVABLE_INCLUDE", "TICK"})

ALL_GATES = set(
    CLIFFORD_GATES | RESET_GATES | MEASURE_GATES | NOISE_GATES | ANNOTATIONS
)

# How many qubits each qubit-gate consumes per application.
GATE_ARITY = {
    "H": 1,
    "CNOT": 2,
    "R": 1,
    "RX": 1,
    "M": 1,
    "MX": 1,
    "DEPOLARIZE1": 1,
    "DEPOLARIZE2": 2,
    "PAULI_CHANNEL_1": 1,
    "PAULI_CHANNEL_2": 2,
}

# Required argument count per noise gate (None = unconstrained).
NOISE_GATE_ARGS = {
    "DEPOLARIZE1": 1,
    "DEPOLARIZE2": 1,
    "PAULI_CHANNEL_1": 3,
    # The 15 non-identity two-qubit Pauli pair probabilities, in the
    # canonical order of repro.sim.dem._TWO_QUBIT_PAULIS (IX, IY, IZ,
    # XI, XX, ..., ZZ).
    "PAULI_CHANNEL_2": 15,
}


def register_noise_gate(name: str, arity: int, num_args: int | None = None) -> None:
    """Register an additional noise-gate name in the IR.

    Extension hook for experimental channels: the circuit layer accepts
    the gate, but any simulator / DEM extractor that has no lowering for
    it must *raise* rather than skip it (``tests/test_sim_dem.py`` pins
    that contract with a stub gate).  Use :func:`unregister_noise_gate`
    to undo (tests should always clean up).
    """
    if name in ALL_GATES and name not in NOISE_GATES:
        raise ValueError(f"{name!r} already names a non-noise gate")
    NOISE_GATES.add(name)
    ALL_GATES.add(name)
    GATE_ARITY[name] = arity
    if num_args is not None:
        NOISE_GATE_ARGS[name] = num_args


def unregister_noise_gate(name: str) -> None:
    """Remove a gate added by :func:`register_noise_gate`."""
    NOISE_GATES.discard(name)
    ALL_GATES.discard(name)
    GATE_ARITY.pop(name, None)
    NOISE_GATE_ARGS.pop(name, None)


@dataclass(frozen=True)
class Operation:
    """A single instruction.

    ``targets`` are qubit indices for gates/noise, or *absolute measurement
    indices* for DETECTOR / OBSERVABLE_INCLUDE.  ``args`` carry noise
    probabilities (or the observable index for OBSERVABLE_INCLUDE).
    ``label`` is opaque metadata — the builder stamps detectors with
    ``(round, kind, stab)`` so they can be matched across different
    schedules of the same code (needed by PropHunt's pruning stage §5.4).
    """

    gate: str
    targets: tuple[int, ...] = ()
    args: tuple[float, ...] = ()
    label: tuple = field(default=(), compare=False)

    def __post_init__(self):
        if self.gate not in ALL_GATES:
            raise ValueError(f"unknown gate {self.gate!r}")
        arity = GATE_ARITY.get(self.gate)
        if arity is not None and len(self.targets) % arity != 0:
            raise ValueError(
                f"{self.gate} takes groups of {arity} targets, got {len(self.targets)}"
            )
        want_args = NOISE_GATE_ARGS.get(self.gate)
        if want_args is not None and len(self.args) != want_args:
            raise ValueError(
                f"{self.gate} needs {want_args} probability argument(s), "
                f"got {len(self.args)}"
            )
        if self.gate == "OBSERVABLE_INCLUDE" and len(self.args) != 1:
            raise ValueError("OBSERVABLE_INCLUDE needs the observable index")

    def target_groups(self) -> list[tuple[int, ...]]:
        """Split flattened targets into per-application groups."""
        arity = GATE_ARITY.get(self.gate, len(self.targets) or 1)
        if arity == 0:
            return []
        return [
            tuple(self.targets[i : i + arity])
            for i in range(0, len(self.targets), arity)
        ]

    def is_noise(self) -> bool:
        return self.gate in NOISE_GATES

    def is_measurement(self) -> bool:
        return self.gate in MEASURE_GATES

    def __str__(self) -> str:
        parts = [self.gate]
        if self.args:
            parts.append("(" + ",".join(f"{a:g}" for a in self.args) + ")")
        if self.targets:
            parts.append(" " + " ".join(str(t) for t in self.targets))
        return "".join(parts)
