"""The coloration baseline circuit (paper §6.1).

Following Algorithm 1 of Tremblay, Delfosse & Beverland (the baseline the
paper optimizes from), each Tanner graph (X checks x data qubits, then Z
checks x data qubits) is properly edge-colored; each color class becomes
one CNOT layer.  Bipartite graphs are Vizing class 1, so Delta colors
suffice (Konig's theorem) — we implement the classic alternating-path
coloring.

All X layers run before all Z layers.  Because overlapping X/Z stabilizer
pairs share an even number of qubits in a CSS code, "X always first"
automatically preserves stabilizer commutation, so every coloration
circuit is valid.  Randomized variants (used for Figure 13) shuffle the
edge insertion order and permute the color classes.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..codes.css import CSSCode
from .schedule import Schedule


def bipartite_edge_coloring(
    edges: list[tuple[int, int]],
) -> dict[tuple[int, int], int]:
    """Properly color edges of a bipartite (multi-free) graph.

    ``edges`` are (left, right) pairs with distinct vertices on each side.
    Returns edge -> color using at most Delta colors (Konig/Vizing class 1
    via alternating-path recoloring).
    """
    left_used: dict[int, dict[int, int]] = defaultdict(dict)  # u -> color -> v
    right_used: dict[int, dict[int, int]] = defaultdict(dict)  # v -> color -> u
    degree: dict[tuple[str, int], int] = defaultdict(int)
    for u, v in edges:
        degree[("l", u)] += 1
        degree[("r", v)] += 1
    max_colors = max(degree.values(), default=0)
    coloring: dict[tuple[int, int], int] = {}

    def free_color(used: dict[int, int]) -> int:
        for c in range(max_colors):
            if c not in used:
                return c
        raise AssertionError("Konig's theorem violated — coloring bug")

    def collect_alternating_path(
        start_right: int, alpha: int, beta: int
    ) -> list[tuple[tuple[int, int], int]]:
        """Edges of the alpha/beta alternating path starting at a right vertex."""
        path: list[tuple[tuple[int, int], int]] = []
        side, vertex, color = "r", start_right, alpha
        while True:
            table = right_used if side == "r" else left_used
            partner = table[vertex].get(color)
            if partner is None:
                return path
            edge = (partner, vertex) if side == "r" else (vertex, partner)
            path.append((edge, color))
            vertex = partner
            side = "l" if side == "r" else "r"
            color = beta if color == alpha else alpha

    for (u, v) in edges:
        cu = free_color(left_used[u])
        cv = free_color(right_used[v])
        if cu != cv:
            # Swap colors cu <-> cv along the alternating path from v; by
            # Konig's theorem the path never reaches u, so afterwards cu is
            # free at both endpoints.  Collect first, then recolor, so the
            # walk never reads entries it has already rewritten.
            path = collect_alternating_path(v, cu, cv)
            for (pu, pv), old in path:
                del left_used[pu][old]
                del right_used[pv][old]
            for (pu, pv), old in path:
                new = cv if old == cu else cu
                left_used[pu][new] = pv
                right_used[pv][new] = pu
                coloring[(pu, pv)] = new
        coloring[(u, v)] = cu
        left_used[u][cu] = v
        right_used[v][cu] = u
    return coloring


def _tanner_edges(matrix: np.ndarray) -> list[tuple[int, int]]:
    return [(int(s), int(q)) for s, q in zip(*np.nonzero(matrix))]


def coloration_schedule(
    code: CSSCode, rng: np.random.Generator | None = None
) -> Schedule:
    """Build the coloration-circuit schedule (optionally randomized).

    Deterministic when ``rng`` is ``None``; otherwise the edge order and
    color-class order are shuffled, producing the "random coloration
    circuits" of Figure 13.
    """
    layer_of: dict[tuple[str, int, int], int] = {}
    offset = 0
    for kind, matrix in (("x", code.hx), ("z", code.hz)):
        edges = _tanner_edges(matrix)
        if rng is not None:
            perm = rng.permutation(len(edges))
            edges = [edges[i] for i in perm]
        coloring = bipartite_edge_coloring(edges)
        ncolors = max(coloring.values(), default=-1) + 1
        color_order = (
            list(rng.permutation(ncolors)) if rng is not None else list(range(ncolors))
        )
        rank = {int(c): i for i, c in enumerate(color_order)}
        for (s, q), c in coloring.items():
            layer_of[(kind, s, q)] = offset + rank[int(c)]
        offset += ncolors
    return Schedule.from_layer_assignment(code, layer_of)
