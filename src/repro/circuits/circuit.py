"""The SM-circuit container.

A :class:`Circuit` is an ordered list of :class:`Operation` with helpers
for appending instructions, counting resources, and validating detector
references.  Layer boundaries are explicit ``TICK`` operations — the noise
model uses them to locate idle qubits and the idle-error study (§6.3)
counts them as gate layers.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .gates import GATE_ARITY, MEASURE_GATES, NOISE_GATES, Operation


class Circuit:
    """A mutable sequence of operations forming one experiment."""

    def __init__(self, operations: Iterable[Operation] | None = None):
        self.operations: list[Operation] = list(operations or [])

    # -- append helpers ------------------------------------------------------

    def append(
        self,
        gate: str,
        targets: Iterable[int] = (),
        args: Iterable[float] = (),
        label: tuple = (),
    ) -> None:
        self.operations.append(
            Operation(gate, tuple(targets), tuple(args), tuple(label))
        )

    def tick(self) -> None:
        self.append("TICK")

    def extend(self, other: "Circuit") -> None:
        self.operations.extend(other.operations)

    # -- iteration / inspection ----------------------------------------------

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.operations == other.operations

    @property
    def num_qubits(self) -> int:
        highest = -1
        for op in self.operations:
            if op.gate in GATE_ARITY and op.targets:
                highest = max(highest, max(op.targets))
        return highest + 1

    @property
    def num_measurements(self) -> int:
        return sum(
            len(op.target_groups())
            for op in self.operations
            if op.gate in MEASURE_GATES
        )

    @property
    def num_detectors(self) -> int:
        return sum(1 for op in self.operations if op.gate == "DETECTOR")

    @property
    def num_observables(self) -> int:
        indices = {
            int(op.args[0])
            for op in self.operations
            if op.gate == "OBSERVABLE_INCLUDE"
        }
        return max(indices) + 1 if indices else 0

    def count_gate(self, gate: str) -> int:
        return sum(
            len(op.target_groups()) for op in self.operations if op.gate == gate
        )

    def num_layers(self) -> int:
        """Number of TICK-delimited layers that contain at least one gate."""
        layers = 0
        seen_gate = False
        for op in self.operations:
            if op.gate == "TICK":
                if seen_gate:
                    layers += 1
                seen_gate = False
            elif op.gate in GATE_ARITY and op.gate not in NOISE_GATES:
                seen_gate = True
        return layers + (1 if seen_gate else 0)

    def detectors(self) -> list[Operation]:
        return [op for op in self.operations if op.gate == "DETECTOR"]

    def observables(self) -> list[Operation]:
        return [op for op in self.operations if op.gate == "OBSERVABLE_INCLUDE"]

    def without_noise(self) -> "Circuit":
        return Circuit(op for op in self.operations if not op.is_noise())

    def validate(self) -> None:
        """Check measurement references and layer structure.

        Raises ``ValueError`` on: detector/observable referencing a
        measurement that does not exist (yet), or a qubit acted on twice
        within one TICK layer.
        """
        measured = 0
        active: set[int] = set()
        for op in self.operations:
            if op.gate == "TICK":
                active.clear()
            elif op.gate in GATE_ARITY and op.gate not in NOISE_GATES:
                for q in op.targets:
                    if q in active:
                        raise ValueError(
                            f"qubit {q} acted on twice in one layer ({op.gate})"
                        )
                    active.add(q)
            if op.gate in MEASURE_GATES:
                measured += len(op.target_groups())
            elif op.gate in ("DETECTOR", "OBSERVABLE_INCLUDE"):
                for idx in op.targets:
                    if not 0 <= idx < measured:
                        raise ValueError(
                            f"{op.gate} references measurement {idx}, "
                            f"only {measured} recorded so far"
                        )

    def __str__(self) -> str:
        return "\n".join(str(op) for op in self.operations)

    def __repr__(self) -> str:
        return (
            f"Circuit(ops={len(self.operations)}, qubits={self.num_qubits}, "
            f"measurements={self.num_measurements}, detectors={self.num_detectors})"
        )
