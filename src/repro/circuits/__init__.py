"""SM-circuit IR, schedules, and builders."""

from .builder import FINAL_ROUND, MemoryExperiment, build_memory_experiment
from .circuit import Circuit
from .coloration import bipartite_edge_coloring, coloration_schedule
from .flags import build_flagged_memory_experiment
from .gates import Operation
from .schedule import Schedule
from .serialize import schedule_from_json, schedule_to_json
from .surface_sched import nz_schedule, poor_schedule
from .text import circuit_from_text, circuit_to_text

__all__ = [
    "FINAL_ROUND",
    "MemoryExperiment",
    "build_memory_experiment",
    "build_flagged_memory_experiment",
    "Circuit",
    "bipartite_edge_coloring",
    "coloration_schedule",
    "Operation",
    "Schedule",
    "schedule_from_json",
    "schedule_to_json",
    "nz_schedule",
    "poor_schedule",
    "circuit_from_text",
    "circuit_to_text",
]
