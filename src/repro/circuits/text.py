"""Text serialization for circuits (a Stim-dialect subset).

``circuit_to_text`` matches ``str(circuit)``; ``circuit_from_text``
parses it back.  Labels are not serialized (they are builder-internal
provenance); round-trips preserve gates, targets, and arguments.
"""

from __future__ import annotations

from .circuit import Circuit
from .gates import ALL_GATES


def circuit_to_text(circuit: Circuit) -> str:
    return str(circuit)


def circuit_from_text(text: str) -> Circuit:
    """Parse the ``GATE(args) targets...`` line format."""
    circuit = Circuit()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        head, *target_tokens = line.split()
        if "(" in head:
            if not head.endswith(")"):
                raise ValueError(f"line {lineno}: malformed arguments in {head!r}")
            gate, arg_text = head[:-1].split("(", 1)
            args = tuple(float(a) for a in arg_text.split(",") if a)
        else:
            gate, args = head, ()
        if gate not in ALL_GATES:
            raise ValueError(f"line {lineno}: unknown gate {gate!r}")
        try:
            targets = tuple(int(t) for t in target_tokens)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad target in {raw!r}") from exc
        circuit.append(gate, targets, args)
    return circuit
