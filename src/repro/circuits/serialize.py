"""Schedule persistence.

An optimized schedule is the valuable artifact of a PropHunt run; this
module saves/loads it as JSON so optimization results survive the
process (used by ``repro.cli optimize --output``).
"""

from __future__ import annotations

import json

from ..codes.css import CSSCode
from .schedule import Schedule


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a schedule (code identity is the caller's concern)."""
    payload = {
        "format": "prophunt-schedule-v1",
        "code_name": schedule.code.name,
        "n": schedule.code.n,
        "stab_orders": [
            {"kind": kind, "stab": stab, "order": list(order)}
            for (kind, stab), order in sorted(schedule.stab_orders.items())
        ],
        "qubit_orders": [
            {"qubit": q, "order": [[kind, stab] for (kind, stab) in order]}
            for q, order in sorted(schedule.qubit_orders.items())
        ],
    }
    return json.dumps(payload, indent=2)


def schedule_from_json(text: str, code: CSSCode) -> Schedule:
    """Rebuild a schedule against ``code`` (validates compatibility)."""
    payload = json.loads(text)
    if payload.get("format") != "prophunt-schedule-v1":
        raise ValueError("not a prophunt schedule file")
    if payload.get("n") != code.n:
        raise ValueError(
            f"schedule was saved for n={payload.get('n')}, code has n={code.n}"
        )
    stab_orders = {
        (entry["kind"], int(entry["stab"])): [int(q) for q in entry["order"]]
        for entry in payload["stab_orders"]
    }
    qubit_orders = {
        int(entry["qubit"]): [(kind, int(stab)) for kind, stab in entry["order"]]
        for entry in payload["qubit_orders"]
    }
    return Schedule(code, stab_orders, qubit_orders)
