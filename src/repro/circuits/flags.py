"""Flag-qubit syndrome measurement circuits.

The paper's related-work section points to flag fault tolerance
(Chao-Reichardt; Chamberland-Beverland) as complementary: "future work
could explore augmenting the circuits output by PropHunt with flag
fault-tolerance".  This module implements that augmentation.

For every stabilizer of weight >= ``min_flag_weight`` a flag qubit is
coupled to the syndrome ancilla *after the first* and *before the last*
data CNOT.  A hook error — an ancilla fault in the middle of the
extraction, the very failure PropHunt reorders away — propagates onto the
flag and fires a dedicated flag detector:

* Z-type check (ancilla is CNOT target): dangerous ancilla Z faults
  propagate onto a |+>-prepared flag via CNOT(flag -> ancilla) and are
  read out by an X-basis flag measurement;
* X-type check (ancilla is CNOT control): dangerous ancilla X faults
  propagate onto a |0>-prepared flag via CNOT(ancilla -> flag) and are
  read out in the Z basis.

With flag detectors in the circuit-level model, previously undetected
weight-floor(w/2) hooks need an extra fault to stay hidden, restoring
``d_eff`` — at the price of extra qubits and two extra CNOT layers,
the trade PropHunt avoids (see ``benchmarks/test_bench_ablation.py``).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..codes.css import CSSCode
from .builder import FINAL_ROUND, MemoryExperiment, _ancilla_index
from .circuit import Circuit
from .schedule import Schedule


def _flag_plan(
    code: CSSCode, schedule: Schedule, min_flag_weight: int
) -> tuple[dict[tuple[str, int], int], dict[int, list], dict[int, list]]:
    """Assign flag qubits and the gaps where their CNOTs go.

    Returns (flag_index per stabilizer, opens per gap, closes per gap)
    where gap ``g`` sits between data CNOT layers ``g`` and ``g+1``.
    """
    layers = schedule.layers()
    first_last: dict[tuple[str, int], tuple[int, int]] = {}
    for (kind, s, q), t in layers.items():
        lo, hi = first_last.get((kind, s), (t, t))
        first_last[(kind, s)] = (min(lo, t), max(hi, t))

    flag_of: dict[tuple[str, int], int] = {}
    opens: dict[int, list] = defaultdict(list)
    closes: dict[int, list] = defaultdict(list)
    next_flag = 0
    for kind in ("x", "z"):
        count = code.num_x_stabs if kind == "x" else code.num_z_stabs
        matrix = code.hx if kind == "x" else code.hz
        for s in range(count):
            if int(matrix[s].sum()) < min_flag_weight:
                continue
            first, last = first_last[(kind, s)]
            if last - first < 2:
                continue  # no interior window: hooks cannot spread
            flag_of[(kind, s)] = next_flag
            opens[first].append((kind, s))
            closes[last - 1].append((kind, s))
            next_flag += 1
    return flag_of, dict(opens), dict(closes)


def build_flagged_memory_experiment(
    code: CSSCode,
    schedule: Schedule,
    rounds: int,
    basis: str = "z",
    min_flag_weight: int = 4,
) -> MemoryExperiment:
    """Memory experiment with per-stabilizer flag qubits.

    Flag qubits are indexed after the syndrome ancillas.  Flag detectors
    carry labels ``(round, "f" + kind, stab)`` so basis filtering (which
    matches ``label[1] == basis``) leaves them out of matching graphs
    while BP+OSD consumes them naturally.
    """
    if basis not in ("x", "z"):
        raise ValueError("basis must be 'x' or 'z'")
    if rounds < 1:
        raise ValueError("need at least one round")
    if not schedule.is_valid():
        raise ValueError("schedule is invalid")

    n = code.n
    mx, mz = code.num_x_stabs, code.num_z_stabs
    flag_of, opens, closes = _flag_plan(code, schedule, min_flag_weight)
    flag_base = n + mx + mz

    circuit = Circuit()
    cnot_layers = schedule.cnot_layers()
    x_ancillas = [_ancilla_index(code, "x", s) for s in range(mx)]
    z_ancillas = [_ancilla_index(code, "z", s) for s in range(mz)]

    meas_index: dict[tuple, int] = {}
    meas_count = 0

    def record(label: tuple) -> None:
        nonlocal meas_count
        meas_index[label] = meas_count
        meas_count += 1

    detector_labels: list[tuple] = []
    observable_labels: list[tuple] = []

    def flag_qubit(kind: str, s: int) -> int:
        return flag_base + flag_of[(kind, s)]

    for r in range(rounds):
        if r == 0:
            circuit.append(
                "R" if basis == "z" else "RX", range(n), label=("data_init",)
            )
        for a in x_ancillas + z_ancillas:
            circuit.append("R", [a], label=("anc_reset", r))
        # Flags: X-check flags start in |0>, Z-check flags in |+>.
        for (kind, s), _ in flag_of.items():
            gate = "R" if kind == "x" else "RX"
            circuit.append(
                gate, [flag_qubit(kind, s)], label=("flag_reset", kind, s, r)
            )
        circuit.tick()

        for s, a in enumerate(x_ancillas):
            circuit.append("H", [a], label=("anc_h", "x", s, r))
        circuit.tick()

        for t, layer in enumerate(cnot_layers):
            for (kind, s, q) in layer:
                anc = _ancilla_index(code, kind, s)
                pair = (anc, q) if kind == "x" else (q, anc)
                circuit.append("CNOT", pair, label=("cnot", kind, s, q, r))
            circuit.tick()
            gap_ops = opens.get(t, []) + closes.get(t, [])
            if gap_ops:
                for (kind, s) in gap_ops:
                    anc = _ancilla_index(code, kind, s)
                    f = flag_qubit(kind, s)
                    # X-check: ancilla controls the flag; Z-check: flag
                    # controls the ancilla.
                    pair = (anc, f) if kind == "x" else (f, anc)
                    circuit.append("CNOT", pair, label=("flag_cnot", kind, s, r))
                circuit.tick()

        for s, a in enumerate(x_ancillas):
            circuit.append("H", [a], label=("anc_h", "x", s, r))
        circuit.tick()

        for s, a in enumerate(x_ancillas):
            circuit.append("M", [a], label=("anc_meas", "x", s, r))
            record((r, "x", s))
        for s, a in enumerate(z_ancillas):
            circuit.append("M", [a], label=("anc_meas", "z", s, r))
            record((r, "z", s))
        for (kind, s), _ in flag_of.items():
            gate = "M" if kind == "x" else "MX"
            circuit.append(gate, [flag_qubit(kind, s)], label=("flag_meas", kind, s, r))
            record((r, "f" + kind, s))

        for kind, count in (("x", mx), ("z", mz)):
            for s in range(count):
                label = (r, kind, s)
                if r == 0:
                    if kind == basis:
                        circuit.append(
                            "DETECTOR", [meas_index[(0, kind, s)]], label=label
                        )
                        detector_labels.append(label)
                else:
                    circuit.append(
                        "DETECTOR",
                        [meas_index[(r, kind, s)], meas_index[(r - 1, kind, s)]],
                        label=label,
                    )
                    detector_labels.append(label)
        # Flag detectors: deterministically 0 every round.
        for (kind, s), _ in flag_of.items():
            label = (r, "f" + kind, s)
            circuit.append("DETECTOR", [meas_index[label]], label=label)
            detector_labels.append(label)
        circuit.tick()

    for q in range(n):
        circuit.append("M" if basis == "z" else "MX", [q], label=("data_meas", q))
        record(("data", q))

    stab_matrix = code.hz if basis == "z" else code.hx
    last = rounds - 1
    for s in range(stab_matrix.shape[0]):
        support = np.nonzero(stab_matrix[s])[0]
        targets = [meas_index[("data", int(q))] for q in support]
        targets.append(meas_index[(last, basis, s)])
        label = (FINAL_ROUND, basis, s)
        circuit.append("DETECTOR", targets, label=label)
        detector_labels.append(label)

    logicals = code.lz if basis == "z" else code.lx
    for i, row in enumerate(logicals):
        support = np.nonzero(row)[0]
        circuit.append(
            "OBSERVABLE_INCLUDE",
            [meas_index[("data", int(q))] for q in support],
            args=[i],
            label=("observable", basis, i),
        )
        observable_labels.append(("observable", basis, i))

    circuit.validate()
    return MemoryExperiment(
        circuit=circuit,
        code=code,
        schedule=schedule,
        rounds=rounds,
        basis=basis,
        detector_labels=detector_labels,
        observable_labels=observable_labels,
    )
