"""CNOT schedules for syndrome measurement circuits.

A :class:`Schedule` is PropHunt's mutable circuit representation (paper
§5.3, Figure 11): for every stabilizer, an *order* over its data qubits,
and for every data qubit, a *relative order* over the stabilizers that
touch it.  Together these define a precedence DAG over Tanner-graph edges
``(kind, stab, qubit)``; an ASAP longest-path layering turns the DAG into
CNOT layers.

Validity (paper §5.4, "Circuit Validity") has two parts:

* **schedulability** — the precedence DAG must be acyclic;
* **stabilizer commutation** — for every overlapping X/Z stabilizer pair,
  the number of shared data qubits on which the X stabilizer acts *first*
  must be even, otherwise the two ancilla measurements entangle and the
  measured operators are no longer the intended stabilizers.

The two rewrite primitives are exactly the paper's: *reordering* (§5.3.1)
moves a data qubit earlier inside one stabilizer's order; *rescheduling*
(§5.3.2) swaps the relative order of two stabilizers on a shared qubit.
"""

from __future__ import annotations

from collections import defaultdict, deque

import numpy as np

from ..codes.css import CSSCode

Edge = tuple[str, int, int]  # (kind "x"/"z", stabilizer index, data qubit)


class Schedule:
    """CNOT ordering state for one code's SM circuit."""

    def __init__(
        self,
        code: CSSCode,
        stab_orders: dict[tuple[str, int], list[int]],
        qubit_orders: dict[int, list[tuple[str, int]]],
    ):
        self.code = code
        self.stab_orders = {k: list(v) for k, v in stab_orders.items()}
        self.qubit_orders = {k: list(v) for k, v in qubit_orders.items()}
        self._check_consistency()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_layer_assignment(
        cls, code: CSSCode, layer_of: dict[Edge, int]
    ) -> "Schedule":
        """Build orders from an explicit edge -> layer map."""
        stab_orders: dict[tuple[str, int], list[int]] = {}
        qubit_orders: dict[int, list[tuple[str, int]]] = defaultdict(list)
        for kind, matrix in (("x", code.hx), ("z", code.hz)):
            for s in range(matrix.shape[0]):
                support = [int(q) for q in np.nonzero(matrix[s])[0]]
                support.sort(key=lambda q: layer_of[(kind, s, q)])
                stab_orders[(kind, s)] = support
        per_qubit: dict[int, list[tuple[int, tuple[str, int]]]] = defaultdict(list)
        for (kind, s, q), layer in layer_of.items():
            per_qubit[q].append((layer, (kind, s)))
        for q, entries in per_qubit.items():
            entries.sort()
            layers = [e[0] for e in entries]
            if len(set(layers)) != len(layers):
                raise ValueError(f"two CNOTs on qubit {q} share a layer")
            qubit_orders[q] = [e[1] for e in entries]
        return cls(code, stab_orders, dict(qubit_orders))

    def copy(self) -> "Schedule":
        return Schedule(self.code, self.stab_orders, self.qubit_orders)

    def _check_consistency(self) -> None:
        code = self.code
        for kind, matrix in (("x", code.hx), ("z", code.hz)):
            for s in range(matrix.shape[0]):
                support = set(int(q) for q in np.nonzero(matrix[s])[0])
                order = self.stab_orders.get((kind, s))
                if order is None or set(order) != support or len(order) != len(support):
                    raise ValueError(
                        f"stab order for ({kind},{s}) must be a permutation of "
                        f"its support"
                    )
        for q in range(code.n):
            touching = {("x", s) for s in code.data_qubit_x_stabs(q)} | {
                ("z", s) for s in code.data_qubit_z_stabs(q)
            }
            order = self.qubit_orders.get(q, [])
            if set(order) != touching or len(order) != len(touching):
                raise ValueError(
                    f"qubit order for {q} must be a permutation of its stabilizers"
                )

    # -- precedence DAG and layering -------------------------------------------

    def edges(self) -> list[Edge]:
        return [
            (kind, s, q)
            for (kind, s), order in self.stab_orders.items()
            for q in order
        ]

    def _precedence(self) -> dict[Edge, list[Edge]]:
        succ: dict[Edge, list[Edge]] = defaultdict(list)
        for (kind, s), order in self.stab_orders.items():
            for a, b in zip(order, order[1:]):
                succ[(kind, s, a)].append((kind, s, b))
        for q, order in self.qubit_orders.items():
            for (k1, s1), (k2, s2) in zip(order, order[1:]):
                succ[(k1, s1, q)].append((k2, s2, q))
        return succ

    def layers(self) -> dict[Edge, int] | None:
        """ASAP layer for every CNOT, or ``None`` if the DAG has a cycle."""
        succ = self._precedence()
        edges = self.edges()
        indeg = {e: 0 for e in edges}
        for e, outs in succ.items():
            for o in outs:
                indeg[o] += 1
        queue = deque(e for e in edges if indeg[e] == 0)
        layer = {e: 0 for e in edges}
        seen = 0
        while queue:
            e = queue.popleft()
            seen += 1
            for o in succ.get(e, ()):
                layer[o] = max(layer[o], layer[e] + 1)
                indeg[o] -= 1
                if indeg[o] == 0:
                    queue.append(o)
        if seen != len(edges):
            return None  # cyclic: unschedulable
        return layer

    def is_schedulable(self) -> bool:
        return self.layers() is not None

    def cnot_depth(self) -> int:
        layers = self.layers()
        if layers is None:
            raise ValueError("schedule is not schedulable (cyclic dependencies)")
        return max(layers.values()) + 1 if layers else 0

    def cnot_layers(self) -> list[list[Edge]]:
        layers = self.layers()
        if layers is None:
            raise ValueError("schedule is not schedulable (cyclic dependencies)")
        depth = max(layers.values()) + 1 if layers else 0
        out: list[list[Edge]] = [[] for _ in range(depth)]
        for e, t in layers.items():
            out[t].append(e)
        for bucket in out:
            bucket.sort()
        return out

    # -- validity ---------------------------------------------------------------

    def commutation_violations(self) -> list[tuple[int, int]]:
        """(x_stab, z_stab) pairs whose measurement operators anticommute."""
        code = self.code
        overlap = (code.hx.astype(np.int64) @ code.hz.T.astype(np.int64))
        position: dict[int, dict[tuple[str, int], int]] = {}
        for q, order in self.qubit_orders.items():
            position[q] = {sk: i for i, sk in enumerate(order)}
        bad = []
        for xs, zs in zip(*np.nonzero(overlap)):
            xs, zs = int(xs), int(zs)
            shared = np.nonzero(code.hx[xs] & code.hz[zs])[0]
            x_first = sum(
                1
                for q in shared
                if position[int(q)][("x", xs)] < position[int(q)][("z", zs)]
            )
            if x_first % 2 == 1:
                bad.append((xs, zs))
        return bad

    def is_valid(self) -> bool:
        """Paper §5.4 circuit validity: commutation preserved and schedulable."""
        return self.is_schedulable() and not self.commutation_violations()

    # -- rewrite primitives (paper §5.3) ----------------------------------------

    def reorder(self, kind: str, stab: int, move: int, before: int) -> None:
        """Reordering change: move data qubit ``move`` before ``before``.

        Mirrors §5.3.1: for a hook error caused by the CNOT with data qubit
        ``q_i = before``, each candidate moves another qubit ``q_j = move``
        in front of it, changing which data qubits the hook spreads to.
        """
        order = self.stab_orders[(kind, stab)]
        if move not in order or before not in order:
            raise ValueError("both qubits must be in the stabilizer's support")
        if move == before:
            raise ValueError("cannot move a qubit before itself")
        order.remove(move)
        order.insert(order.index(before), move)

    def swap_relative_order(
        self, qubit: int, s1: tuple[str, int], s2: tuple[str, int]
    ) -> None:
        """Rescheduling change: swap s1 and s2 in ``qubit``'s relative order.

        Mirrors §5.3.2 / Figure 11: flipping the direction of the edge
        between two syndrome qubits on a shared data qubit.
        """
        order = self.qubit_orders[qubit]
        i, j = order.index(s1), order.index(s2)
        order[i], order[j] = order[j], order[i]

    def relative_position(self, qubit: int, stab: tuple[str, int]) -> int:
        return self.qubit_orders[qubit].index(stab)

    def __repr__(self) -> str:
        return (
            f"Schedule(code={self.code.name}, "
            f"stabs={len(self.stab_orders)}, "
            f"valid={self.is_valid()})"
        )
