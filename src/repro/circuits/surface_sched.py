"""Hand-designed surface-code CNOT schedules (paper §3.1).

The good "N-Z" schedule orders each plaquette's CNOTs so that worst-case
hook errors land *perpendicular* to the logical operator they could
shorten: X-ancilla hooks (X data errors, which build horizontal logical-X
strings) are forced vertical, and Z-ancilla hooks horizontal.  With
compass directions NW/NE/SW/SE for a plaquette's four data qubits:

* X stabilizers:  NW, SW, NE, SE  (an "N" stroke; late pair {NE, SE} is
  vertical)
* Z stabilizers:  NW, NE, SW, SE  (a "Z" stroke; late pair {SW, SE} is
  horizontal)

The poor schedule flips the two patterns, aligning hooks *with* the
logicals and reducing the effective distance (Figure 6).
"""

from __future__ import annotations


from ..codes.css import CSSCode
from ..codes.surface import plaquette_neighbors
from .schedule import Schedule

GOOD_X_ORDER = ("nw", "sw", "ne", "se")
GOOD_Z_ORDER = ("nw", "ne", "sw", "se")


def _surface_layer_assignment(
    code: CSSCode, x_order: tuple[str, ...], z_order: tuple[str, ...]
) -> dict[tuple[str, int, int], int]:
    layer_of: dict[tuple[str, int, int], int] = {}
    for kind, count, order in (
        ("x", code.num_x_stabs, x_order),
        ("z", code.num_z_stabs, z_order),
    ):
        for s in range(count):
            compass = plaquette_neighbors(code, kind, s)
            for layer, direction in enumerate(order):
                q = compass[direction]
                if q is not None:
                    layer_of[(kind, s, q)] = layer
    return layer_of


def nz_schedule(code: CSSCode) -> Schedule:
    """The good hand-designed schedule (depth 4, d_eff = d)."""
    return Schedule.from_layer_assignment(
        code, _surface_layer_assignment(code, GOOD_X_ORDER, GOOD_Z_ORDER)
    )


def poor_schedule(code: CSSCode) -> Schedule:
    """A deliberately bad depth-4 schedule: hooks parallel to logicals."""
    return Schedule.from_layer_assignment(
        code, _surface_layer_assignment(code, GOOD_Z_ORDER, GOOD_X_ORDER)
    )
