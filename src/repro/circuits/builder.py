"""Build memory-experiment circuits from a code + schedule.

A memory experiment prepares all data qubits in the Z (or X) basis, runs
``rounds`` rounds of the SM circuit, measures the data, and declares
detectors (parity checks between consecutive syndrome measurements) and
logical observables — exactly the circuit family the paper simulates for
every logical-error-rate figure ("a standard circuit-level model of d
rounds of the SM circuit", §6.1).

Qubit layout: data qubits ``0 .. n-1``, X ancillas ``n .. n+mx-1``,
Z ancillas ``n+mx .. n+mx+mz-1``.

Every CNOT carries a ``label`` of the Tanner edge it implements,
``("cnot", kind, stab, data_qubit, round)``; the noise model propagates
labels onto the error channels so that PropHunt can map circuit-level
errors back to schedule edges (§5.3).  Detectors are labelled
``(round, kind, stab)`` (with round ``-1`` for the final data-parity
detectors), a naming that is *stable across schedules* of the same code —
the property §5.4's ambiguity-removal check relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codes.css import CSSCode
from .circuit import Circuit
from .schedule import Schedule

FINAL_ROUND = -1


@dataclass
class MemoryExperiment:
    """A built memory circuit plus the bookkeeping to interpret it."""

    circuit: Circuit
    code: CSSCode
    schedule: Schedule
    rounds: int
    basis: str
    detector_labels: list[tuple] = field(default_factory=list)
    observable_labels: list[tuple] = field(default_factory=list)

    def detector_index(self, label: tuple) -> int:
        return self.detector_labels.index(label)


def _ancilla_index(code: CSSCode, kind: str, stab: int) -> int:
    if kind == "x":
        return code.n + stab
    return code.n + code.num_x_stabs + stab


def build_memory_experiment(
    code: CSSCode,
    schedule: Schedule,
    rounds: int,
    basis: str = "z",
) -> MemoryExperiment:
    """Build a noiseless memory experiment (apply a NoiseModel afterwards).

    ``basis="z"`` protects the logical Z observables (detects X errors via
    the Z stabilizers); ``basis="x"`` is the mirror experiment.  The
    paper's reported logical error rates combine both (§6.1).
    """
    if basis not in ("x", "z"):
        raise ValueError("basis must be 'x' or 'z'")
    if rounds < 1:
        raise ValueError("need at least one round")
    if not schedule.is_valid():
        raise ValueError("schedule is invalid (commutation or cyclic dependency)")

    n = code.n
    mx, mz = code.num_x_stabs, code.num_z_stabs
    circuit = Circuit()
    cnot_layers = schedule.cnot_layers()

    x_ancillas = [_ancilla_index(code, "x", s) for s in range(mx)]
    z_ancillas = [_ancilla_index(code, "z", s) for s in range(mz)]

    # Measurement bookkeeping: (round, kind, stab) -> absolute index.
    meas_index: dict[tuple, int] = {}
    meas_count = 0

    def record(label: tuple) -> int:
        nonlocal meas_count
        meas_index[label] = meas_count
        meas_count += 1
        return meas_index[label]

    detector_labels: list[tuple] = []
    observable_labels: list[tuple] = []

    for r in range(rounds):
        # Reset layer: ancillas every round; data only in round 0.
        if r == 0:
            circuit.append(
                "R" if basis == "z" else "RX", range(n), label=("data_init",)
            )
        for a in x_ancillas + z_ancillas:
            circuit.append("R", [a], label=("anc_reset", r))
        circuit.tick()

        # Hadamards put X ancillas in |+> so their CNOTs act as X checks.
        for s, a in enumerate(x_ancillas):
            circuit.append("H", [a], label=("anc_h", "x", s, r))
        circuit.tick()

        for layer in cnot_layers:
            for (kind, s, q) in layer:
                anc = _ancilla_index(code, kind, s)
                # X check: ancilla is control.  Z check: data is control.
                pair = (anc, q) if kind == "x" else (q, anc)
                circuit.append("CNOT", pair, label=("cnot", kind, s, q, r))
            circuit.tick()

        for s, a in enumerate(x_ancillas):
            circuit.append("H", [a], label=("anc_h", "x", s, r))
        circuit.tick()

        for s, a in enumerate(x_ancillas):
            circuit.append("M", [a], label=("anc_meas", "x", s, r))
            record((r, "x", s))
        for s, a in enumerate(z_ancillas):
            circuit.append("M", [a], label=("anc_meas", "z", s, r))
            record((r, "z", s))

        # Detectors: in round 0 only the basis-aligned stabilizers are
        # deterministic; afterwards every stabilizer is compared to its
        # previous-round value.
        for kind, count in (("x", mx), ("z", mz)):
            for s in range(count):
                label = (r, kind, s)
                if r == 0:
                    if kind == basis:
                        circuit.append(
                            "DETECTOR", [meas_index[(0, kind, s)]], label=label
                        )
                        detector_labels.append(label)
                else:
                    circuit.append(
                        "DETECTOR",
                        [meas_index[(r, kind, s)], meas_index[(r - 1, kind, s)]],
                        label=label,
                    )
                    detector_labels.append(label)
        circuit.tick()

    # Final transversal data measurement in the memory basis.
    for q in range(n):
        circuit.append("M" if basis == "z" else "MX", [q], label=("data_meas", q))
        record(("data", q))

    stab_matrix = code.hz if basis == "z" else code.hx
    kind = basis
    last = rounds - 1
    for s in range(stab_matrix.shape[0]):
        support = np.nonzero(stab_matrix[s])[0]
        targets = [meas_index[("data", int(q))] for q in support]
        targets.append(meas_index[(last, kind, s)])
        label = (FINAL_ROUND, kind, s)
        circuit.append("DETECTOR", targets, label=label)
        detector_labels.append(label)

    logicals = code.lz if basis == "z" else code.lx
    for i, row in enumerate(logicals):
        support = np.nonzero(row)[0]
        circuit.append(
            "OBSERVABLE_INCLUDE",
            [meas_index[("data", int(q))] for q in support],
            args=[i],
            label=("observable", basis, i),
        )
        observable_labels.append(("observable", basis, i))

    circuit.validate()
    return MemoryExperiment(
        circuit=circuit,
        code=code,
        schedule=schedule,
        rounds=rounds,
        basis=basis,
        detector_labels=detector_labels,
        observable_labels=observable_labels,
    )
