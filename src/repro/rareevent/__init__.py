"""Rare-event logical-error-rate estimation by weight stratification.

Direct Monte Carlo cannot resolve logical error rates below roughly
one over the shot count — the deep sub-threshold regime the paper's
scaling claims live in.  This package estimates

    ``P_L = sum_k P(W = k) * P(fail | W = k)``

by computing the exact Poisson-binomial weight distribution of the
DEM's error mechanisms (:mod:`.weights`), sampling errors *conditioned
on each Hamming weight* into packed batches that reuse the bit-packed
decode pipeline unchanged (:mod:`.sampler`), choosing which weights to
sample versus bound analytically (:mod:`.planner`), and combining the
per-stratum conditional failure rates with adaptive shot allocation
and honest intervals (:mod:`.estimator`).

Entry point: :func:`estimate_ler_stratified`.  The chunked, parallel,
seed-disciplined execution lives with the other shot loops in
:mod:`repro.experiments.shotrunner`.
"""

from .estimator import (
    StratifiedEstimate,
    StratumEstimate,
    estimate_ler_stratified,
)
from .planner import Stratum, StratumPlan, plan_strata
from .sampler import WeightStratifiedSampler
from .weights import WeightDistribution, log_weight_distribution

__all__ = [
    "StratifiedEstimate",
    "StratumEstimate",
    "estimate_ler_stratified",
    "Stratum",
    "StratumPlan",
    "plan_strata",
    "WeightStratifiedSampler",
    "WeightDistribution",
    "log_weight_distribution",
]
