"""Stratified rare-event logical-error-rate estimation.

Combines the pieces of this package into one estimator::

    P_L = sum_k P(W = k) * P(fail | W = k)

with ``P(W = k)`` exact (:mod:`repro.rareevent.weights`) and
``P(fail | W = k)`` measured by conditional Monte Carlo
(:mod:`repro.rareevent.sampler` via
:func:`repro.experiments.shotrunner.run_stratified_chunks`).  Direct
Monte Carlo cannot resolve rates below ~1/shots; here each stratum only
needs enough shots to pin its *conditional* failure rate, so logical
error rates far below any feasible shot count fall out of thousands of
shots per stratum.

Shots are allocated adaptively across strata: after each round the
next round's budget is split Neyman-style, proportional to
``P(W=k) * sqrt(p_u (1 - p_u))`` with ``p_u`` the stratum's current
Wilson *upper* bound — optimistic for undersampled strata, so
exploration pays down exactly the strata that still dominate the
interval.  The interval combines delta-method stratum variances, exact
rule-of-three bounds for zero-failure strata, and the analytic weight
tail, all at a configurable confidence level.

Determinism: allocations depend only on accumulated per-stratum counts
and every chunk's RNG substream is spawned from the caller's seed root
in a fixed order, so the full adaptive estimate is a pure function of
the seed for any ``workers`` count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..analysis.stats import (
    DEFAULT_CONFIDENCE,
    RateEstimate,
    rule_of_three_upper,
    wilson_interval,
    z_for_confidence,
)
from ..decoders.metrics import make_decoder
from ..sim.bitbatch import WORD_BITS, BitSampleBatch, num_shot_words
from ..sim.dem import DetectorErrorModel
from .planner import StratumPlan, plan_strata
from .sampler import WeightStratifiedSampler

__all__ = ["StratumEstimate", "StratifiedEstimate", "estimate_ler_stratified"]

_ALIGN = WORD_BITS


@dataclass
class StratumEstimate:
    """Accumulated conditional failure statistics for one weight."""

    weight: int
    log_prob: float
    assume_zero: bool
    shots: int = 0
    failures: int = 0
    weighted_failures: float = 0.0
    weighted_sq: float = 0.0
    promoted: bool = False  # audit of an assume-zero stratum found a failure

    @property
    def prob(self) -> float:
        return math.exp(self.log_prob)

    @property
    def estimated(self) -> bool:
        """Does this stratum contribute a sampled term to the estimate?"""
        return not self.assume_zero or self.promoted

    @property
    def cond_rate(self) -> float:
        """Estimated P(fail | W = weight)."""
        if not self.estimated or self.shots == 0:
            return 0.0
        return self.weighted_failures / self.shots

    def cond_variance(self) -> float:
        """Variance of :attr:`cond_rate` (delta method, weighted form)."""
        if not self.estimated or self.shots == 0:
            return 0.0
        mean = self.weighted_failures / self.shots
        second = self.weighted_sq / self.shots
        return max(0.0, second - mean * mean) / self.shots

    def cond_interval(self, confidence: float) -> tuple[float, float]:
        return wilson_interval(self.failures, self.shots, confidence=confidence)


@dataclass
class StratifiedEstimate:
    """A stratified logical-error-rate estimate with full provenance.

    Duck-compatible with :class:`~repro.analysis.stats.RateEstimate`
    (``rate`` / ``interval`` / ``failures`` / ``shots``) so existing
    reporting code consumes it unchanged; :meth:`to_rate_estimate`
    collapses it into a real ``RateEstimate`` for combination across
    bases.
    """

    strata: list[StratumEstimate]
    log_zero: float
    zero_weight_fails: bool  # deterministic decode of the empty syndrome
    log_tail: float
    confidence: float = DEFAULT_CONFIDENCE
    mode: str = "proportional"
    rounds: int = 0
    converged: bool = False
    audit_violations: list[int] = field(default_factory=list)

    @property
    def failures(self) -> int:
        return sum(s.failures for s in self.strata)

    @property
    def shots(self) -> int:
        """Total decoded shots across all strata (the estimator's cost)."""
        return sum(s.shots for s in self.strata)

    @property
    def tail_prob(self) -> float:
        return math.exp(self.log_tail)

    @property
    def rate(self) -> float:
        point = sum(s.prob * s.cond_rate for s in self.strata)
        if self.zero_weight_fails:
            point += math.exp(self.log_zero)
        return point

    def _sampling_halfwidth(self) -> float:
        z = z_for_confidence(self.confidence)
        variance = sum(s.prob * s.prob * s.cond_variance() for s in self.strata)
        return z * math.sqrt(variance)

    def _zero_stratum_upper(self) -> float:
        """Upper-edge mass from sampled strata that saw no failures."""
        return sum(
            s.prob * rule_of_three_upper(s.shots, self.confidence)
            for s in self.strata
            if s.estimated and s.failures == 0
        )

    @property
    def interval(self) -> tuple[float, float]:
        point = self.rate
        hw = self._sampling_halfwidth()
        upper_extra = self._zero_stratum_upper() + self.tail_prob
        return (max(0.0, point - hw), min(1.0, point + hw + upper_extra))

    @property
    def halfwidth(self) -> float:
        lo, hi = self.interval
        return (hi - lo) / 2.0

    def direct_mc_shots_for_same_ci(self) -> float:
        """Shots direct Monte Carlo would need for this absolute halfwidth.

        Normal-approximation shot count ``z^2 p (1-p) / hw^2`` — the
        denominator of the rare-event speedup this estimator reports.
        """
        p = self.rate
        hw = self.halfwidth
        if hw <= 0 or p <= 0:
            return math.inf
        z = z_for_confidence(self.confidence)
        return z * z * p * (1.0 - p) / (hw * hw)

    def to_rate_estimate(self) -> RateEstimate:
        point = self.rate
        lo, hi = self.interval
        return RateEstimate(
            failures=self.failures,
            shots=self.shots,
            confidence=self.confidence,
            point=point,
            halfwidth=max(point - lo, hi - point),
        )

    def to_dict(self) -> dict:
        """JSON-safe summary with full per-stratum provenance.

        What the campaign result store persists for rare-event jobs:
        the combined estimate, its exact interval edges (asymmetric —
        the upper edge carries zero-failure and tail mass), and every
        stratum's counts, so ``status``/``export`` and figure tables
        rebuild their rows without re-running the estimator.
        """
        lo, hi = self.interval
        equiv = self.direct_mc_shots_for_same_ci()
        return {
            "rate": self.rate,
            "lo": lo,
            "hi": hi,
            "decoded_shots": self.shots,
            "failures": self.failures,
            "converged": self.converged,
            "rounds": self.rounds,
            "confidence": self.confidence,
            "mode": self.mode,
            "audit_violations": list(self.audit_violations),
            "direct_mc_equiv": None if math.isinf(equiv) else equiv,
            "strata": self.summary_rows(),
        }

    def summary_rows(self) -> list[dict]:
        """Per-stratum rows for experiment tables / CLI printing."""
        rows = []
        for s in sorted(self.strata, key=lambda s: s.weight):
            status = "sampled" if s.estimated else "assumed-zero"
            if s.promoted:
                status = "promoted"
            rows.append(
                {
                    "weight": s.weight,
                    "prob": s.prob,
                    "shots": s.shots,
                    "failures": s.failures,
                    "cond_rate": s.cond_rate,
                    "contribution": s.prob * s.cond_rate,
                    "status": status,
                }
            )
        return rows

    def __repr__(self) -> str:
        lo, hi = self.interval
        return (
            f"StratifiedEstimate({self.rate:.3e} [{lo:.1e}, {hi:.1e}], "
            f"decoded_shots={self.shots}, strata={len(self.strata)}, "
            f"converged={self.converged})"
        )


def _zero_weight_fails(dem: DetectorErrorModel, dec) -> bool:
    """Does the decoder mispredict the all-zero (no-error) shot?"""
    if dem.num_observables == 0:
        return False
    batch = BitSampleBatch(
        detectors=np.zeros((dem.num_detectors, num_shot_words(1)), dtype=np.uint64),
        observables=np.zeros((dem.num_observables, num_shot_words(1)), dtype=np.uint64),
        shots=1,
    )
    return dec.count_failures_packed(batch) > 0


def _align_down(shots: int) -> int:
    return (shots // _ALIGN) * _ALIGN


def _allocate(
    strata: list[StratumEstimate], budget: int, confidence: float
) -> list[tuple[int, int]]:
    """Neyman-style split of ``budget`` shots across active strata.

    Allocation weight is ``P_k * sqrt(p_u (1 - p_u))`` with ``p_u`` the
    Wilson upper bound of the stratum's conditional rate — optimistic
    where data is thin, proportional to the true standard deviation
    where it is not.  Audited-clean assume-zero strata get nothing.
    """
    active = [s for s in strata if s.estimated]
    if not active or budget < _ALIGN:
        return []
    scores = []
    for s in active:
        _, upper = s.cond_interval(confidence)
        scores.append(s.prob * math.sqrt(max(upper * (1.0 - upper), 0.0)))
    total = sum(scores)
    if total <= 0:
        return []
    allocations = []
    for s, score in zip(active, scores):
        shots = _align_down(int(budget * score / total))
        if shots > 0:
            allocations.append((s.weight, shots))
    if not allocations:
        # Budget too small to split: give it to the neediest stratum.
        best = max(zip(active, scores), key=lambda pair: pair[1])[0]
        allocations.append((best.weight, _align_down(budget)))
    return allocations


def estimate_ler_stratified(
    dem: DetectorErrorModel,
    basis: str = "z",
    decoder: str = "auto",
    rng: np.random.Generator | None = None,
    plan: StratumPlan | None = None,
    min_failure_weight: int = 1,
    tail_epsilon: float = 1e-6,
    max_weight: int | None = None,
    target_rel_halfwidth: float = 0.1,
    target_halfwidth: float | None = None,
    confidence: float = DEFAULT_CONFIDENCE,
    initial_shots: int = 512,
    max_shots: int = 2_000_000,
    max_rounds: int = 16,
    chunk_size: int = 5_000,
    workers: int = 1,
    mode: str = "proportional",
    dec=None,
) -> StratifiedEstimate:
    """Weight-stratified logical error rate of one DEM.

    Runs adaptive rounds of fixed-weight conditional sampling until the
    interval halfwidth drops to ``target_rel_halfwidth * rate`` (or the
    absolute ``target_halfwidth``, when given), the ``max_shots``
    decoded-shot budget is spent, or ``max_rounds`` pass.  See the
    module docstring for the estimator and its guarantees; see
    :func:`~repro.rareevent.planner.plan_strata` for
    ``min_failure_weight`` / ``tail_epsilon`` / ``max_weight``.

    The estimate is a pure function of ``rng``'s seed root for any
    ``workers`` count, which is how the campaign engine re-enters it:
    a resumed campaign re-derives the same seed and gets a
    byte-identical estimate.  ``dec`` injects a pre-built decoder (the
    campaign's compile cache) on the inline path; with ``workers > 1``
    pool workers compile their own.

    ``mode="uniform"`` draws uniform instead of conditional subsets and
    reweights (Horvitz-Thompson); zero-failure bounds are then heuristic,
    so proportional mode is the default and the recommended path.
    """
    # Imported here: shotrunner imports this package's sampler.
    from ..experiments.shotrunner import make_stratified_pool, run_stratified_chunks

    rng = rng or np.random.default_rng()
    if plan is None:
        plan = plan_strata(
            dem,
            min_failure_weight=min_failure_weight,
            tail_epsilon=tail_epsilon,
            max_weight=max_weight,
        )
    strata = [
        StratumEstimate(
            weight=s.weight, log_prob=s.log_prob, assume_zero=s.assume_zero
        )
        for s in plan.strata
    ]
    by_weight = {s.weight: s for s in strata}
    # Compiled once and reused across every adaptive round (and by
    # run_stratified_chunks' inline path); with workers > 1 each pool
    # worker builds its own copies instead.
    if dec is None:
        dec = make_decoder(dem, basis, decoder)
    estimate = StratifiedEstimate(
        strata=strata,
        log_zero=plan.log_zero,
        zero_weight_fails=_zero_weight_fails(dem, dec),
        log_tail=plan.log_tail,
        confidence=confidence,
        mode=mode,
    )
    if not strata:
        estimate.converged = True
        return estimate
    sampler = (
        WeightStratifiedSampler(dem, max_weight=plan.max_weight)
        if workers <= 1
        else None
    )
    # One pool for every adaptive round: per-worker sampler/decoder
    # compile once, not once per round.
    pool = (
        make_stratified_pool(dem, basis, decoder, plan.max_weight, mode, workers)
        if workers > 1
        else None
    )

    def _target() -> float:
        if target_halfwidth is not None:
            return target_halfwidth
        return target_rel_halfwidth * estimate.rate

    def _run_round(allocations: list[tuple[int, int]]) -> None:
        tallies = run_stratified_chunks(
            dem,
            allocations,
            basis=basis,
            decoder=decoder,
            rng=rng,
            chunk_size=chunk_size,
            workers=workers,
            mode=mode,
            max_weight=plan.max_weight,
            sampler=sampler,
            dec=dec if workers <= 1 else None,
            pool=pool,
        )
        for weight, tally in tallies.items():
            s = by_weight[weight]
            s.shots += tally.shots
            s.failures += tally.failures
            s.weighted_failures += tally.weighted_failures
            s.weighted_sq += tally.weighted_sq
            if s.assume_zero and s.failures > 0 and not s.promoted:
                s.promoted = True
                estimate.audit_violations.append(weight)

    try:
        # Round 0: seed every stratum — audit shots for assume-zero
        # strata, a variance bootstrap for the rest.  The seeding
        # respects the total budget: with max_shots below
        # strata * initial_shots, later strata get less (or nothing)
        # rather than overshooting.
        first = max(_ALIGN, _align_down(initial_shots))
        seed_alloc = []
        remaining = max_shots
        for s in strata:
            shots = min(first, _align_down(remaining))
            if shots <= 0:
                break
            seed_alloc.append((s.weight, shots))
            remaining -= shots
        _run_round(seed_alloc)
        estimate.rounds = 1

        while estimate.rounds < max_rounds:
            target = _target()
            if target > 0 and estimate.halfwidth <= target:
                break
            used = estimate.shots
            budget = min(max_shots - used, max(used, _ALIGN))
            allocations = _allocate(strata, budget, confidence)
            if not allocations:
                break
            _run_round(allocations)
            estimate.rounds += 1
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    target = _target()
    estimate.converged = bool(target > 0 and estimate.halfwidth <= target)
    return estimate
