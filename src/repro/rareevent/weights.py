"""Exact Poisson-binomial weight distributions of error mechanisms.

A :class:`~repro.sim.dem.DetectorErrorModel` is a list of independent
Bernoulli mechanisms; the total number that fire in one shot — the
*Hamming weight* ``W`` of the error — follows the Poisson-binomial
distribution of the mechanism probabilities.  The rare-event estimator
stratifies on ``W``: each stratum's exact probability ``P(W = k)`` is
what turns conditional failure rates back into an absolute logical
error rate, so the distribution must be exact, not a Poisson
approximation.

Everything is computed in log space via the suffix recurrence

    ``S[j, m] = P(exactly m of mechanisms j.. fire)``
    ``S[j, m] = (1 - p_j) S[j+1, m] + p_j S[j+1, m-1]``

truncated at a maximum weight ``K`` with the overflow mass ``P(W > K)``
tracked exactly in a separate bucket — stable for tens of thousands of
mechanisms with probabilities spanning many decades.  The full suffix
table (not just row 0, the pmf) is kept because the conditional
fixed-weight sampler consumes it directly
(:mod:`repro.rareevent.sampler`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WeightDistribution", "log_weight_distribution"]

_NEG_INF = float("-inf")


def _logaddexp_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return np.logaddexp(a, b)


@dataclass(frozen=True)
class WeightDistribution:
    """Truncated Poisson-binomial pmf plus the exact suffix table.

    ``log_suffix[j, m]`` is ``log P(exactly m of mechanisms j.. fire)``
    for ``m <= max_weight``; ``log_suffix_tail[j]`` is
    ``log P(more than max_weight of mechanisms j.. fire)``.  Row 0 is
    the weight distribution of the whole model.
    """

    log_suffix: np.ndarray  # (E + 1, max_weight + 1) float64
    log_suffix_tail: np.ndarray  # (E + 1,) float64

    @property
    def num_mechanisms(self) -> int:
        return self.log_suffix.shape[0] - 1

    @property
    def max_weight(self) -> int:
        return self.log_suffix.shape[1] - 1

    @property
    def log_pmf(self) -> np.ndarray:
        """``log P(W = k)`` for ``k = 0..max_weight``."""
        return self.log_suffix[0]

    @property
    def log_tail(self) -> float:
        """``log P(W > max_weight)`` — the truncated mass, exactly."""
        return float(self.log_suffix_tail[0])

    def pmf(self, k: int) -> float:
        """``P(W = k)`` for a weight within the truncation window."""
        if not 0 <= k <= self.max_weight:
            raise ValueError(f"weight {k} outside [0, {self.max_weight}]")
        return float(np.exp(self.log_pmf[k]))

    def log_sf(self, k: int) -> float:
        """``log P(W > k)`` for ``k <= max_weight``."""
        if not 0 <= k <= self.max_weight:
            raise ValueError(f"weight {k} outside [0, {self.max_weight}]")
        terms = np.append(self.log_pmf[k + 1 :], self.log_tail)
        finite = terms[np.isfinite(terms)]
        if finite.size == 0:
            return _NEG_INF
        peak = finite.max()
        return float(peak + np.log(np.exp(finite - peak).sum()))

    def __repr__(self) -> str:
        return (
            f"WeightDistribution(mechanisms={self.num_mechanisms}, "
            f"max_weight={self.max_weight}, tail={np.exp(self.log_tail):.3e})"
        )


def log_weight_distribution(
    probs: np.ndarray, max_weight: int
) -> WeightDistribution:
    """Exact log-space weight distribution of independent mechanisms.

    ``probs`` are per-mechanism fire probabilities in ``[0, 1)``; the
    pmf is truncated at ``max_weight`` with the remaining mass kept in
    the tail bucket.  Cost is ``O(num_mechanisms * max_weight)`` time
    and memory — the table doubles as the conditional sampler's
    lookup, which is why all suffix rows are retained.
    """
    probs = np.asarray(probs, dtype=np.float64).ravel()
    if probs.size and (probs.min() < 0 or probs.max() >= 1):
        raise ValueError("mechanism probabilities must lie in [0, 1)")
    if max_weight < 0:
        raise ValueError("max_weight must be non-negative")
    num = probs.size
    kmax = min(max_weight, num) if num else 0
    with np.errstate(divide="ignore"):
        log_p = np.log(probs)
    log_q = np.log1p(-probs)

    table = np.full((num + 1, kmax + 1), _NEG_INF)
    tail = np.full(num + 1, _NEG_INF)
    table[num, 0] = 0.0
    shifted = np.empty(kmax + 1)
    for j in range(num - 1, -1, -1):
        nxt = table[j + 1]
        shifted[0] = _NEG_INF
        shifted[1:] = log_p[j] + nxt[:-1]
        table[j] = _logaddexp_rows(log_q[j] + nxt, shifted)
        # Mass leaving the window: (was at kmax, fires) joins the tail;
        # tail mass stays tail regardless of what mechanism j does.
        tail[j] = _logaddexp_rows(
            log_q[j] + tail[j + 1],
            log_p[j] + _logaddexp_rows(tail[j + 1], nxt[kmax]),
        )
    if kmax < max_weight:
        # Fewer mechanisms than the requested window: pad impossible
        # weights so callers can index pmf[k] for any k <= max_weight.
        pad = np.full((num + 1, max_weight - kmax), _NEG_INF)
        table = np.hstack([table, pad])
    return WeightDistribution(log_suffix=table, log_suffix_tail=tail)
