"""Stratum planning: which error weights to sample, which to bound.

The planner splits a DEM's weight axis into

* weight 0 — deterministic (the all-zero syndrome is decoded once);
* weights below ``min_failure_weight`` — *assumed-zero* strata: the
  caller asserts the decoder corrects them (e.g. weight < ceil(d/2)
  for a distance-d code under matching), so they contribute nothing to
  the estimate; the estimator still audits them with a small shot
  allocation and promotes them to sampled strata if a failure ever
  shows up;
* weights ``min_failure_weight..max_weight`` — sampled strata;
* weights above ``max_weight`` — bounded analytically: the exact
  truncated mass ``P(W > max_weight)`` is added to the upper interval
  edge with failure probability conservatively taken as 1.

``max_weight`` is grown until that analytic bound is negligible next
to the mass of the strata actually sampled (``tail_epsilon``,
relative), so deeper physical error rates automatically get narrower
windows instead of costing more strata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sim.dem import DetectorErrorModel
from .weights import WeightDistribution, log_weight_distribution

__all__ = ["Stratum", "StratumPlan", "plan_strata"]


@dataclass(frozen=True)
class Stratum:
    """One weight class of the plan."""

    weight: int
    log_prob: float  # log P(W = weight)
    assume_zero: bool  # audited, not estimated (below min_failure_weight)

    @property
    def prob(self) -> float:
        return math.exp(self.log_prob)


@dataclass(frozen=True)
class StratumPlan:
    """The weight decomposition one stratified estimate runs over."""

    strata: tuple[Stratum, ...]  # weights 1..max_weight with P(W=k) > 0
    max_weight: int
    log_zero: float  # log P(W = 0)
    log_tail: float  # log P(W > max_weight), bounded analytically
    min_failure_weight: int
    num_mechanisms: int
    distribution: WeightDistribution

    @property
    def sampled(self) -> tuple[Stratum, ...]:
        return tuple(s for s in self.strata if not s.assume_zero)

    @property
    def audited(self) -> tuple[Stratum, ...]:
        return tuple(s for s in self.strata if s.assume_zero)

    def __repr__(self) -> str:
        return (
            f"StratumPlan(sampled={[s.weight for s in self.sampled]}, "
            f"audited={[s.weight for s in self.audited]}, "
            f"tail={math.exp(self.log_tail):.3e})"
        )


def plan_strata(
    dem: DetectorErrorModel,
    min_failure_weight: int = 1,
    tail_epsilon: float = 1e-6,
    max_weight: int | None = None,
) -> StratumPlan:
    """Pick the weight window for a stratified estimate of one DEM.

    ``min_failure_weight`` marks weights the decoder provably (or by
    assumption) corrects; 1 means "no assumption".  ``max_weight``
    overrides the adaptive window; by default the window grows until
    ``P(W > max_weight) <= tail_epsilon * P(W >= min_failure_weight)``
    — i.e. the analytic tail bound cannot move the estimate's upper
    edge by more than a ``tail_epsilon`` fraction of the mass being
    estimated, even if every tail error failed.
    """
    if min_failure_weight < 1:
        raise ValueError("min_failure_weight must be at least 1")
    if not 0 < tail_epsilon < 1:
        raise ValueError("tail_epsilon must lie in (0, 1)")
    probs = dem.probabilities()
    probs = probs[probs > 0]
    num = probs.size
    if num == 0:
        dist = log_weight_distribution(probs, 0)
        return StratumPlan(
            strata=(),
            max_weight=0,
            log_zero=0.0,
            log_tail=float("-inf"),
            min_failure_weight=min_failure_weight,
            num_mechanisms=0,
            distribution=dist,
        )

    if max_weight is not None:
        if max_weight < 1:
            raise ValueError("max_weight must be at least 1")
        dist = log_weight_distribution(probs, min(max_weight, num))
    else:
        # Start past the bulk of the distribution, then widen until the
        # tail criterion holds; each extra weight multiplies the tail by
        # roughly mean_weight / K, so this converges in a step or two.
        mean = float(probs.sum())
        window = max(min_failure_weight, 4, math.ceil(mean + 6 * math.sqrt(mean)))
        while True:
            window = min(window, num)
            dist = log_weight_distribution(probs, window)
            mfw = min(min_failure_weight, dist.max_weight)
            threshold = math.log(tail_epsilon) + dist.log_sf(mfw - 1)
            if window == num or dist.log_tail <= threshold:
                break
            window = min(2 * window, num)

    strata = tuple(
        Stratum(
            weight=k,
            log_prob=float(dist.log_pmf[k]),
            assume_zero=k < min_failure_weight,
        )
        for k in range(1, dist.max_weight + 1)
        if np.isfinite(dist.log_pmf[k])
    )
    return StratumPlan(
        strata=strata,
        max_weight=dist.max_weight,
        log_zero=float(dist.log_pmf[0]),
        log_tail=dist.log_tail,
        min_failure_weight=min_failure_weight,
        num_mechanisms=num,
        distribution=dist,
    )
