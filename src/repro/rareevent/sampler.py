"""Conditional fixed-weight error sampling.

Draws error subsets of a :class:`~repro.sim.dem.DetectorErrorModel`
*conditioned on exactly k mechanisms firing* and emits them as packed
:class:`~repro.sim.bitbatch.BitSampleBatch` shots, so the packed
decode/count hot path (``decode_batch_packed`` /
``count_failures_packed``) runs on rare-event strata completely
unchanged.

Two conditioning modes:

``proportional`` (default)
    The exact conditional distribution ``P(S | |S| = k)`` of the
    model's independent Bernoulli mechanisms — conditional-Bernoulli
    sampling.  Stratum failure frequencies are then directly unbiased
    estimates of ``P(fail | W = k)`` with no reweighting.

``uniform``
    Uniform over all k-subsets of mechanisms, with per-shot log
    importance weights (relative to the conditional distribution)
    returned alongside, for Horvitz-Thompson-style reweighted
    estimates.

Sampling uses *first-fire jumping*: conditioned on needing ``m`` more
fires from mechanisms ``j..``, the position of the next fired mechanism
has an explicit distribution built from the Poisson-binomial suffix
table (:mod:`repro.rareevent.weights`), so each shot costs ``k`` binary
searches instead of a Bernoulli walk over all mechanisms.  Uniform mode
is the same machinery run on constant probabilities (conditioning any
i.i.d. Bernoulli vector on weight k is uniform over k-subsets).
"""

from __future__ import annotations

import math

import numpy as np

from ..sim.bitbatch import BitSampleBatch, scatter_fires, xor_accumulate_csr
from ..sim.dem import DetectorErrorModel
from .weights import WeightDistribution, log_weight_distribution

__all__ = ["WeightStratifiedSampler"]


def _jump_tables(
    log_p: np.ndarray, log_q: np.ndarray, dist: WeightDistribution
) -> list[np.ndarray | None]:
    """Per-remaining-count cumulative first-fire mass tables.

    Entry ``m`` is the inclusive cumulative sum over positions ``j`` of
    ``P(no fire in 0..j-1) * p_j * P(exactly m-1 fires in j+1..)`` —
    proportional to "the next fire is at j" when ``m`` fires are still
    needed.  Each table is normalized by its peak before
    exponentiating, so spans of hundreds of log-decades stay finite.
    """
    num = log_p.size
    prefix_q = np.concatenate([[0.0], np.cumsum(log_q)])  # log P(no fire < j)
    tables: list[np.ndarray | None] = [None]  # m = 0 never jumps
    for m in range(1, dist.max_weight + 1):
        log_mass = prefix_q[:num] + log_p + dist.log_suffix[1:, m - 1]
        finite = log_mass[np.isfinite(log_mass)]
        if finite.size == 0:
            tables.append(None)  # weight m unreachable
            continue
        tables.append(np.cumsum(np.exp(log_mass - finite.max())))
    return tables


class WeightStratifiedSampler:
    """Compiled fixed-weight sampler for one DEM.

    ``max_weight`` bounds the strata this instance can draw from (it
    sizes the suffix/jump tables).  Zero-probability mechanisms are
    dropped up front; indices returned by the fire-level API refer to
    the original DEM mechanism order.
    """

    def __init__(self, dem: DetectorErrorModel, max_weight: int):
        if max_weight < 1:
            raise ValueError("max_weight must be at least 1")
        self.dem = dem
        all_probs = dem.probabilities()
        self.mech_index = np.nonzero(all_probs > 0)[0]
        self.probs = all_probs[self.mech_index]
        if self.probs.size and self.probs.max() >= 1.0:
            raise ValueError("deterministic (p >= 1) mechanisms are not supported")
        self.max_weight = max_weight
        with np.errstate(divide="ignore"):
            self._log_p = np.log(self.probs)
        self._log_q = np.log1p(-self.probs)
        self.dist = log_weight_distribution(self.probs, max_weight)
        self._jump = _jump_tables(self._log_p, self._log_q, self.dist)
        self._uniform_jump: list[np.ndarray | None] | None = None
        h, l = dem.check_matrices()
        self._h_rows = h.tocsr()
        self._l_rows = l.tocsr()

    # -- fire-level API ------------------------------------------------------

    def _tables_for(self, mode: str) -> list[np.ndarray | None]:
        if mode == "proportional":
            return self._jump
        if mode == "uniform":
            if self._uniform_jump is None:
                # Constant-probability Bernoullis conditioned on weight k
                # are uniform over k-subsets; 1/2 keeps the tables tame.
                num = self.probs.size
                const = np.full(num, 0.5)
                dist = log_weight_distribution(const, self.max_weight)
                self._uniform_jump = _jump_tables(
                    np.log(const), np.log1p(-const), dist
                )
            return self._uniform_jump
        raise ValueError(f"unknown sampling mode {mode!r}")

    def sample_fires_at_weight(
        self,
        k: int,
        shots: int,
        rng: np.random.Generator,
        mode: str = "proportional",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``shots`` subsets of exactly ``k`` mechanisms.

        Returns ``(shot_idx, mech_idx)`` fire-event arrays (mechanism
        indices in original DEM order, ``k`` per shot), the same format
        :func:`~repro.sim.bitbatch.scatter_fires` consumes.
        """
        if not 1 <= k <= self.max_weight:
            raise ValueError(f"weight {k} outside [1, {self.max_weight}]")
        tables = self._tables_for(mode)
        if k > self.probs.size or tables[k] is None:
            raise ValueError(f"weight-{k} errors are impossible for this model")
        if shots <= 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        position = np.zeros(shots, dtype=np.int64)  # next candidate mechanism
        picks = np.empty((k, shots), dtype=np.int64)
        for t in range(k):
            cum = tables[k - t]
            base = np.where(position > 0, cum[position - 1], 0.0)
            tail_mass = cum[-1] - base
            if not (tail_mass > 0).all():
                raise RuntimeError(
                    "conditional mass underflowed; split the stratum or "
                    "rescale mechanism probabilities"
                )
            target = base + rng.random(shots) * tail_mass
            chosen = np.searchsorted(cum, target, side="right")
            np.minimum(chosen, cum.size - 1, out=chosen)
            picks[t] = chosen
            position = chosen + 1
        shot_idx = np.repeat(np.arange(shots, dtype=np.int64), k)
        mech_idx = self.mech_index[picks.T.ravel()]
        return shot_idx, mech_idx

    def log_importance_weights(
        self, shot_idx: np.ndarray, mech_idx: np.ndarray, k: int, shots: int
    ) -> np.ndarray:
        """Per-shot ``log[P_conditional(S) / P_uniform(S)]``.

        For fires drawn in ``uniform`` mode, multiplying the failure
        indicator by ``exp`` of this weight makes the stratum mean an
        unbiased estimate under the conditional distribution.
        """
        local = np.searchsorted(self.mech_index, mech_idx)
        log_odds = self._log_p[local] - self._log_q[local]
        per_shot = np.zeros(shots)
        np.add.at(per_shot, shot_idx, log_odds)
        num = self.probs.size
        log_binom = (
            math.lgamma(num + 1) - math.lgamma(k + 1) - math.lgamma(num - k + 1)
        )
        log_cond_norm = self.dist.log_pmf[k] - self._log_q.sum()
        return per_shot - log_cond_norm + log_binom

    # -- packed batches ------------------------------------------------------

    def sample_at_weight(
        self,
        k: int,
        shots: int,
        rng: np.random.Generator,
        mode: str = "proportional",
    ) -> BitSampleBatch:
        """Packed detector/observable batch of ``shots`` weight-``k`` errors."""
        batch, _ = self.sample_at_weight_with_log_weights(
            k, shots, rng, mode=mode, want_weights=False
        )
        return batch

    def sample_at_weight_with_log_weights(
        self,
        k: int,
        shots: int,
        rng: np.random.Generator,
        mode: str = "proportional",
        want_weights: bool = True,
    ) -> tuple[BitSampleBatch, np.ndarray | None]:
        """Like :meth:`sample_at_weight`, optionally with per-shot log
        importance weights (zeros in ``proportional`` mode)."""
        shot_idx, mech_idx = self.sample_fires_at_weight(k, shots, rng, mode=mode)
        fires = scatter_fires(shot_idx, mech_idx, self.dem.num_errors, shots)
        detectors = xor_accumulate_csr(
            self._h_rows.indptr, self._h_rows.indices, fires, self.dem.num_detectors
        )
        observables = xor_accumulate_csr(
            self._l_rows.indptr, self._l_rows.indices, fires, self.dem.num_observables
        )
        batch = BitSampleBatch(
            detectors=detectors, observables=observables, shots=shots
        )
        if not want_weights:
            return batch, None
        if mode == "proportional":
            return batch, np.zeros(shots)
        return batch, self.log_importance_weights(shot_idx, mech_idx, k, shots)
