"""Fleet observability: metrics, span traces, heartbeats, structured logs.

The stack runs as a coordinator-free distributed service over
native-speed kernels and a persistent syndrome cache — but a fleet that
is slow, churning leases, or missing its cache used to be opaque: ~40
scattered ``print()`` calls and ad-hoc ``time.monotonic()`` timers.
This package is the measurement substrate, built around two hard
constraints:

**Telemetry never touches results.**  Everything here rides *sidecar
files* (``<store>/telemetry/``) and the record ``meta`` envelope — both
outside ``compact()``/``content_digest()`` — so an instrumented fleet
run is byte-identical to an uninstrumented single-process run
(``tests/test_obs.py`` asserts it; the ``service-smoke`` CI job asserts
it across real crashed-and-raced worker processes).

**Off means free.**  Observability is opt-in (``REPRO_OBS=on`` or
:func:`configure`); when off — the default, and what benches run under —
every instrument call is a single flag check, no allocation, no I/O, so
the bench-smoke regression gate stays green.

The pieces (each its own module, re-exported here):

:mod:`~repro.obs.metrics`
    Process-local registry of named counters, gauges, and fixed
    log-bin histograms (p50/p99 without storing samples).
:mod:`~repro.obs.trace`
    ``span("decode", job=...)`` context managers appending to
    ``trace-<worker>.jsonl`` sidecars, plus a Chrome ``trace_event``
    exporter for flame-chart viewing and the per-stage aggregator
    behind ``campaign status --telemetry``.
:mod:`~repro.obs.heartbeat`
    Atomic per-worker liveness files (pid, current group, jobs done,
    metrics snapshot) consumed by ``campaign top``.
:mod:`~repro.obs.log`
    A tiny structured stderr logger (level via ``REPRO_LOG``) replacing
    ad-hoc progress prints; stdout stays reserved for CLI tables.

Convention for new code (see ROADMAP): name instruments
``<subsystem>.<thing>`` (``syncache.hits``, ``lease.takeovers``), fetch
them once at module scope via :func:`counter`/:func:`gauge`/
:func:`histogram`, and wrap orchestration-layer stages in
:func:`span` — never instrument per-shot inner loops.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ._state import state
from .heartbeat import read_heartbeats, write_heartbeat
from .log import get_logger, log
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    registry,
)
from .timing import StopWatch, timed
from .trace import (
    NULL_SPAN,
    Span,
    aggregate_stages,
    chrome_trace,
    emit_metrics,
    read_trace_dir,
    span,
    worker_context,
    write_chrome_trace,
)


def enabled() -> bool:
    """Whether instruments record (``REPRO_OBS`` / :func:`configure`)."""
    return state.enabled


def configure(
    enabled: bool | None = None,
    telemetry_dir: str | os.PathLike | None = "keep",
) -> None:
    """Override the env-derived switchboard (tests, embedding callers).

    ``telemetry_dir="keep"`` (default) leaves the sidecar root
    unchanged; pass a path to set it or ``None`` to clear it.
    """
    if enabled is not None:
        state.enabled = bool(enabled)
    if telemetry_dir != "keep":
        state.telemetry_dir = (
            os.fspath(telemetry_dir) if telemetry_dir is not None else None
        )


@contextmanager
def enabled_to(value: bool, telemetry_dir: str | os.PathLike | None = None):
    """Scoped :func:`configure` — restores the previous switchboard."""
    prev_enabled, prev_dir = state.enabled, state.telemetry_dir
    configure(enabled=value, telemetry_dir=telemetry_dir)
    try:
        yield
    finally:
        state.enabled = prev_enabled
        state.telemetry_dir = prev_dir


def telemetry_dir_for(store_path: str | os.PathLike | None) -> str | None:
    """The sidecar directory of a store: ``<store>/telemetry/``.

    The PR-7 convention — the store directory is the protocol — extends
    to telemetry: every worker appends its trace/heartbeat sidecars
    here, so fleet-wide traces aggregate with zero coordination.
    Returns ``None`` for in-memory stores.
    """
    if store_path is None:
        return None
    return os.path.join(os.fspath(store_path), "telemetry")


# Registry facade: the process-local default registry's instruments.


def counter(name: str) -> Counter:
    return registry.counter(name)


def gauge(name: str) -> Gauge:
    return registry.gauge(name)


def histogram(name: str) -> Histogram:
    return registry.histogram(name)


def snapshot() -> dict:
    """JSON-safe snapshot of every instrument in the default registry."""
    return registry.snapshot()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "StopWatch",
    "aggregate_stages",
    "chrome_trace",
    "configure",
    "counter",
    "emit_metrics",
    "enabled",
    "enabled_to",
    "gauge",
    "get_logger",
    "histogram",
    "log",
    "merge_snapshots",
    "read_heartbeats",
    "read_trace_dir",
    "registry",
    "snapshot",
    "span",
    "state",
    "telemetry_dir_for",
    "timed",
    "worker_context",
    "write_chrome_trace",
    "write_heartbeat",
]
