"""Process-local metrics registry: counters, gauges, log-bin histograms.

Instruments are named (``<subsystem>.<thing>``), created on first use,
and live for the process — the idiom is one module-level fetch::

    _HITS = obs.counter("syncache.hits")
    ...
    _HITS.add(n)

Every mutator checks the global enable flag first (``repro.obs.state``),
so a disabled instrument costs one attribute load and a branch — the
zero-overhead contract the bench gate holds us to.  There is no label /
tag system and no export protocol: a snapshot is a plain JSON dict that
rides heartbeat files and trace sidecars, and aggregation across
workers is summing snapshots (:func:`merge_snapshots`).

Histograms use fixed logarithmic bins (factor ~2 per bin over
``[1 µs, ~1 h]``) so p50/p99 come from ~32 ints per instrument instead
of stored samples — the quantile error is bounded by the bin ratio,
plenty for "where did the time go".
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

from ._state import state as _state

# Log-bin edges in seconds: 1 µs doubling up to ~4500 s.  Everything
# below the first edge lands in bin 0, everything above the last in the
# final overflow bin.
_EDGE_COUNT = 32
BIN_EDGES: tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(_EDGE_COUNT))


class Counter:
    """Monotonic add-only count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        if not _state.enabled:
            return
        # int += is not atomic across threads, but a torn telemetry
        # count is a cosmetic error and a lock here would sit on the
        # decode hot path; the registry lock protects structure only.
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-set value (queue depths, warm-cache sizes, worker counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        if not _state.enabled:
            return
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed log-bin duration histogram with count/sum/min/max."""

    __slots__ = ("name", "counts", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.counts = [0] * (_EDGE_COUNT + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if not _state.enabled:
            return
        seconds = float(seconds)
        if seconds < 0.0 or seconds != seconds:  # negative or NaN
            return
        self.counts[_bin_index(seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, q: float) -> float:
        """Approximate quantile (``q`` in [0, 1]) from the bins.

        Returns the upper edge of the bin holding the q-th sample —
        within one bin ratio (2x) of the true value by construction;
        0.0 when empty.
        """
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return BIN_EDGES[i] if i < _EDGE_COUNT else self.max
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.counts = [0] * (_EDGE_COUNT + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def to_dict(self) -> dict[str, Any]:
        # min is None (JSON null) when unknown: an empty histogram, or a
        # merge that never saw a usable min.  Emitting the internal
        # ``math.inf`` sentinel would serialize as the non-standard
        # ``Infinity`` token, which strict JSON parsers reject.
        has_min = self.count > 0 and math.isfinite(self.min)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if has_min else None,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "bins": list(self.counts),
        }


def _bin_index(seconds: float) -> int:
    if seconds <= BIN_EDGES[0]:
        return 0
    if seconds > BIN_EDGES[-1]:
        return _EDGE_COUNT
    # frexp beats a bisect: bins are exact powers of two over 1e-6, and
    # bin i spans (2^(i-1), 2^i] µs, i.e. i = ceil(log2(µs)).
    mantissa, exponent = math.frexp(seconds / 1e-6)
    index = exponent - 1 if mantissa == 0.5 else exponent
    return min(_EDGE_COUNT - 1, max(0, index))


class MetricsRegistry:
    """Named instruments, created on first use, snapshot as one dict."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state of every instrument: the heartbeat payload."""
        with self._lock:
            return {
                "counters": {
                    n: c.value for n, c in sorted(self._counters.items())
                },
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Zero every instrument (tests; instruments stay registered)."""
        with self._lock:
            for inst in (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            ):
                inst.reset()


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Sum per-worker snapshots into one fleet view.

    Counters and histogram counts/sums/bins add; gauges keep the last
    value seen (they are point-in-time by nature); histogram min/max
    combine; p50/p99 are recomputed from the merged bins.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, Histogram] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in (snap.get("gauges") or {}).items():
            gauges[name] = float(value)
        for name, data in (snap.get("histograms") or {}).items():
            if not isinstance(data, dict):
                continue
            hist = hists.get(name)
            if hist is None:
                hist = hists[name] = Histogram(name)
            bins = data.get("bins") or []
            for i, c in enumerate(bins[: _EDGE_COUNT + 1]):
                hist.counts[i] += int(c)
            snap_count = int(data.get("count", 0))
            hist.count += snap_count
            hist.total += float(data.get("sum", 0.0))
            if snap_count:
                # Fold min/max only from snapshots that actually recorded
                # samples — an *empty* snapshot carries no extremes, and
                # folding its placeholder min would drag a merged
                # nonempty histogram's min to 0.  Tolerate both the
                # ``null`` min of current writers and the 0.0/inf of
                # older ones.
                snap_min = data.get("min")
                if (
                    isinstance(snap_min, (int, float))
                    and not isinstance(snap_min, bool)
                    and math.isfinite(snap_min)
                ):
                    hist.min = min(hist.min, float(snap_min))
                hist.max = max(hist.max, float(data.get("max", 0.0)))
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {n: h.to_dict() for n, h in sorted(hists.items())},
    }


registry = MetricsRegistry()
