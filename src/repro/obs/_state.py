"""The observability switchboard — a leaf module every instrument reads.

Kept import-free (stdlib ``os`` only) so :mod:`repro.obs.metrics`,
:mod:`repro.obs.trace`, and the package ``__init__`` can all depend on
it without cycles.  ``state.enabled`` is THE flag the zero-overhead
no-op path checks; ``state.telemetry_dir`` roots the sidecar files.
"""

from __future__ import annotations

import os

_ON_VALUES = ("1", "on", "true", "yes")


def env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "off").strip().lower() in _ON_VALUES


class ObsState:
    """Process-global observability configuration."""

    __slots__ = ("enabled", "telemetry_dir")

    def __init__(self):
        self.enabled = env_enabled()
        self.telemetry_dir: str | None = None


state = ObsState()
