"""Worker heartbeat files: the liveness half of the telemetry sidecars.

Each worker periodically rewrites ``heartbeat-<worker>.json`` in
``<store>/telemetry/`` (tmp + ``os.replace`` so readers never see a
torn file — same discipline as the lease takeover path).  The payload
is self-describing: pid, host, current lease group, jobs done, uptime,
and a full metrics snapshot.  ``campaign top`` renders these; staleness
is judged by the reader from file ``ts`` vs. now, mirroring how lease
expiry is judged.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any

from ._state import state
from .trace import _safe_name


def write_heartbeat(
    worker_id: str,
    *,
    group: str | None = None,
    jobs_done: int = 0,
    started_at: float | None = None,
    metrics: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> None:
    """Atomically (re)write this worker's heartbeat file.

    No-op unless observability is on and a telemetry dir is configured;
    never raises (a full disk must not kill a worker).
    """
    if not state.enabled or state.telemetry_dir is None:
        return
    now = time.time()
    payload: dict[str, Any] = {
        "worker": worker_id,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "ts": now,
        "group": group,
        "jobs_done": jobs_done,
        "uptime_s": (now - started_at) if started_at is not None else None,
    }
    if metrics is not None:
        payload["metrics"] = metrics
    if extra:
        payload.update(extra)
    path = os.path.join(
        state.telemetry_dir, f"heartbeat-{_safe_name(worker_id)}.json"
    )
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        os.makedirs(state.telemetry_dir, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, default=str)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def read_heartbeats(telemetry_dir: str | os.PathLike) -> list[dict[str, Any]]:
    """All parseable heartbeat files, sorted by worker id.

    Each dict gains ``age_s`` (now - its ``ts``); the caller decides
    what counts as stale (``campaign top`` uses 3x the poll interval).
    """
    telemetry_dir = os.fspath(telemetry_dir)
    now = time.time()
    beats: list[dict[str, Any]] = []
    try:
        names = sorted(os.listdir(telemetry_dir))
    except OSError:
        return beats
    for name in names:
        if not (name.startswith("heartbeat-") and name.endswith(".json")):
            continue
        try:
            with open(
                os.path.join(telemetry_dir, name), encoding="utf-8"
            ) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        ts = payload.get("ts")
        payload["age_s"] = (
            (now - ts) if isinstance(ts, (int, float)) else None
        )
        beats.append(payload)
    beats.sort(key=lambda b: str(b.get("worker", "")))
    return beats
