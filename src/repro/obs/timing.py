"""Tiny timing helpers: the one replacement for ``t0 = time.monotonic()``.

Four modules had the same copy-pasted block (``t0 = time.monotonic()
... elapsed = time.monotonic() - t0``); :func:`timed` is that block as a
context manager.  It is deliberately *not* gated on the observability
flag — callers use the elapsed value functionally (record ``meta``,
solver budgets), so it must tick even with ``REPRO_OBS=off``.  Pass a
histogram name to additionally feed the metrics registry (which is
gated, so the feed is free when off).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from .metrics import registry


class StopWatch:
    """A started monotonic clock; read ``.elapsed`` at any point."""

    __slots__ = ("_t0",)

    def __init__(self):
        self._t0 = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def restart(self) -> None:
        self._t0 = time.monotonic()


@contextmanager
def timed(histogram: str | None = None) -> Iterator[StopWatch]:
    """Time a block; optionally record the duration to a named histogram.

    >>> with timed("campaign.job_s") as clock:
    ...     do_work()
    >>> clock.elapsed  # final duration, still readable after the block
    """
    clock = StopWatch()
    try:
        yield clock
    finally:
        if histogram is not None:
            registry.histogram(histogram).record(clock.elapsed)
