"""Fleet dashboard rendering for ``campaign top`` / ``status --telemetry``.

Pure functions from sidecar files to lines of text: readers pull the
``<store>/telemetry/`` traces and heartbeats (:mod:`repro.obs.trace`,
:mod:`repro.obs.heartbeat`), renderers return line lists the CLI
prints.  Nothing here mutates state or requires live workers — a
finished (or crashed) fleet renders from what its sidecars captured.
"""

from __future__ import annotations

import os
from typing import Any

from .heartbeat import read_heartbeats
from .metrics import merge_snapshots
from .trace import aggregate_stages, fold_latest_snapshot, read_trace_dir


def telemetry_dir_of(store_path: str | os.PathLike) -> str:
    return os.path.join(os.fspath(store_path), "telemetry")


def telemetry_summary(store_path: str | os.PathLike) -> dict[str, Any]:
    """Everything the dashboards need, from one store's sidecars.

    Returns ``{"dir", "stages", "metrics", "workers", "wall_s",
    "heartbeats", "span_records"}``; heartbeat metrics snapshots are
    merged into the trace-borne ones (a crashed worker leaves no final
    trace metrics line, but its last heartbeat survives).
    """
    tdir = telemetry_dir_of(store_path)
    records = read_trace_dir(tdir)
    agg = aggregate_stages(records)
    beats = read_heartbeats(tdir)
    # Registry snapshots are cumulative per *process*; fold trace-borne
    # and heartbeat-borne ones into one newest-per-(host, pid) view so
    # a crashed worker's last heartbeat still counts, without summing
    # the same process twice.
    latest: dict = {}
    for record in records:
        if record.get("kind") == "metrics" and isinstance(
            record.get("metrics"), dict
        ):
            fold_latest_snapshot(latest, record, record["metrics"])
    for b in beats:
        if isinstance(b.get("metrics"), dict):
            fold_latest_snapshot(latest, b, b["metrics"])
    if latest:
        agg["metrics"] = merge_snapshots(s for _, s in latest.values())
    return {
        "dir": tdir,
        "stages": agg["stages"],
        "metrics": agg["metrics"],
        "workers": agg["workers"],
        "wall_s": agg["wall_s"],
        "heartbeats": beats,
        "span_records": sum(1 for r in records if r.get("kind") == "span"),
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 120.0:
        return f"{seconds / 60.0:.1f}m"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


def render_stage_table(summary: dict[str, Any]) -> list[str]:
    """Per-stage time breakdown lines from span aggregation."""
    stages = summary["stages"]
    if not stages:
        return ["no span records (run with REPRO_OBS=on to collect traces)"]
    lines = [
        f"{'stage':<10} {'count':>7} {'total':>9} {'mean':>9} "
        f"{'max':>9} {'share':>6}"
    ]
    for name, entry in stages.items():
        mean = _ratio(entry["total_s"], entry["count"])
        lines.append(
            f"{name:<10} {entry['count']:>7d} "
            f"{_fmt_seconds(entry['total_s']):>9} {_fmt_seconds(mean):>9} "
            f"{_fmt_seconds(entry['max_s']):>9} {entry['share']:>5.0%}"
        )
    if summary.get("wall_s"):
        lines.append(
            f"wall span {_fmt_seconds(summary['wall_s'])} across "
            f"{len(summary['workers'])} worker(s), "
            f"{summary['span_records']} spans"
        )
    return lines


def render_counters(summary: dict[str, Any]) -> list[str]:
    """Derived-rate lines: cache hits, dedup ratio, lease traffic."""
    counters = summary["metrics"].get("counters") or {}
    if not counters:
        return []
    lines: list[str] = []
    hits = counters.get("syncache.hits", 0)
    misses = counters.get("syncache.misses", 0)
    if hits or misses:
        lines.append(
            f"syndrome cache: {hits} hits / {misses} misses "
            f"({_ratio(hits, hits + misses):.0%} hit rate), "
            f"{counters.get('syncache.inserts', 0)} inserts"
        )
    shots = counters.get("decode.shots", 0)
    unique = counters.get("decode.unique", 0)
    if shots:
        lines.append(
            f"decode dedup: {unique} unique syndromes for {shots} shots "
            f"({_ratio(unique, shots):.2%} reach a decoder)"
        )
    if counters.get("sampler.shots"):
        lines.append(
            f"sampler: {counters['sampler.shots']} shots, "
            f"{counters.get('sampler.fires', 0)} error fires"
        )
    lease = {
        k.split(".", 1)[1]: v
        for k, v in counters.items()
        if k.startswith("lease.") and v
    }
    if lease:
        lines.append(
            "leases: "
            + ", ".join(f"{v} {k}" for k, v in sorted(lease.items()))
        )
    if counters.get("store.appends"):
        lines.append(f"store: {counters['store.appends']} appends")
    backends = {
        k.split(".", 2)[2]: v
        for k, v in counters.items()
        if k.startswith("kernel.backend.") and v
    }
    if backends:
        lines.append(
            "kernel dispatch: "
            + ", ".join(f"{v} via {k}" for k, v in sorted(backends.items()))
        )
    return lines


def render_histograms(summary: dict[str, Any]) -> list[str]:
    """p50/p99 latency lines for the chunk/store instruments."""
    hists = summary["metrics"].get("histograms") or {}
    lines: list[str] = []
    for name, data in sorted(hists.items()):
        if not isinstance(data, dict) or not data.get("count"):
            continue
        lines.append(
            f"{name:<20} n={data['count']:<8d} "
            f"p50={_fmt_seconds(data['p50']):>8} "
            f"p99={_fmt_seconds(data['p99']):>8} "
            f"total={_fmt_seconds(data['sum'])}"
        )
    return lines


def render_top(
    store_path: str | os.PathLike, stale_after: float = 10.0
) -> list[str]:
    """The ``campaign top`` screen: one line per worker heartbeat."""
    beats = read_heartbeats(telemetry_dir_of(store_path))
    if not beats:
        return [
            "no worker heartbeats "
            "(fleet not running, or REPRO_OBS not 'on' in workers)"
        ]
    lines = [
        f"{'worker':<24} {'pid':>7} {'state':<6} {'group':<18} "
        f"{'jobs':>5} {'uptime':>8} {'beat age':>9}"
    ]
    for b in beats:
        age = b.get("age_s")
        if b.get("done"):
            state_s = "done"
        elif age is not None and age > stale_after:
            state_s = "STALE"
        else:
            state_s = "live"
        uptime = b.get("uptime_s")
        lines.append(
            f"{str(b.get('worker', '?')):<24} {b.get('pid', 0):>7} "
            f"{state_s:<6} {str(b.get('group') or '-'):<18} "
            f"{b.get('jobs_done', 0):>5} "
            f"{_fmt_seconds(uptime) if uptime is not None else '-':>8} "
            f"{_fmt_seconds(age) if age is not None else '-':>9}"
        )
    return lines


def render_telemetry(store_path: str | os.PathLike) -> list[str]:
    """The full ``campaign status --telemetry`` report."""
    summary = telemetry_summary(store_path)
    lines = [f"telemetry sidecars: {summary['dir']}"]
    lines += render_stage_table(summary)
    counters = render_counters(summary)
    if counters:
        lines.append("")
        lines += counters
    hists = render_histograms(summary)
    if hists:
        lines.append("")
        lines += hists
    if summary["heartbeats"]:
        lines.append("")
        lines += render_top(store_path)
    return lines
