"""Span tracing to append-only ``trace-<worker>.jsonl`` sidecar files.

Rides the PR-7 "store directory is the protocol" convention: every
worker — local thread, remote process, crashed-and-taken-over — appends
spans to its own file under ``<store>/telemetry/``, so a fleet-wide
trace needs zero coordination and survives any crash (each line is a
complete JSON record; a torn final line is skipped on read).

Record kinds:

``{"kind": "span", "stage": ..., "worker": ..., "pid": ..., "ts": ...,
"dur_s": ..., ...attrs}``
    One completed stage (``sample``/``decode``/``job``/``lease``/...).
    ``ts`` is wall-clock epoch seconds at span start (so records from
    different hosts/processes line up), ``dur_s`` monotonic duration.

``{"kind": "metrics", "worker": ..., "ts": ..., "metrics": {...}}``
    A registry snapshot, emitted at worker exit — how cache hit rates
    and counter totals reach ``campaign status --telemetry`` on a
    finished run without a live process to ask.

Spans only write when observability is enabled AND a telemetry dir is
configured; otherwise :func:`span` yields the shared no-op
:data:`NULL_SPAN` (no allocation, no I/O).  Worker identity is
thread-local (:func:`worker_context`) so in-process fleets attribute
spans per worker thread; unadopted threads fall back to ``pid<pid>``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from ._state import state
from .metrics import merge_snapshots

_tls = threading.local()


def current_worker() -> str:
    """Thread-local worker id, falling back to a per-process default."""
    worker = getattr(_tls, "worker", None)
    if worker is not None:
        return worker
    return f"pid{os.getpid()}"


@contextmanager
def worker_context(worker_id: str) -> Iterator[None]:
    """Attribute this thread's spans/metrics lines to ``worker_id``.

    Used by in-process fleets (``serve_campaign`` threads) so each
    worker thread writes its own ``trace-<worker>.jsonl``.  Helper
    threads the worker spawns (e.g. streaming prefetch) are not
    adopted and fall back to the process default — attribution is
    best-effort, aggregation is per-directory so nothing is lost.
    """
    prev = getattr(_tls, "worker", None)
    _tls.worker = worker_id
    try:
        yield
    finally:
        _tls.worker = prev


def _safe_name(worker: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in worker)


def _trace_path(worker: str) -> str | None:
    if state.telemetry_dir is None:
        return None
    return os.path.join(state.telemetry_dir, f"trace-{_safe_name(worker)}.jsonl")


def _append_record(record: dict[str, Any]) -> None:
    path = _trace_path(record.get("worker") or current_worker())
    if path is None:
        return
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
    except OSError:
        pass  # telemetry never takes down the run


class Span:
    """A live span; ``set()`` adds attributes before it closes."""

    __slots__ = ("stage", "attrs", "_t0", "_ts", "_worker")

    def __init__(self, stage: str, attrs: dict[str, Any]):
        self.stage = stage
        self.attrs = attrs
        self._worker = current_worker()
        self._ts = time.time()
        self._t0 = time.monotonic()

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def _finish(self, error: str | None = None) -> None:
        record: dict[str, Any] = {
            "kind": "span",
            "stage": self.stage,
            "worker": self._worker,
            "pid": os.getpid(),
            "ts": self._ts,
            "dur_s": time.monotonic() - self._t0,
        }
        if error is not None:
            record["error"] = error
        record.update(self.attrs)
        _append_record(record)


class _NullSpan:
    """Shared do-nothing span returned when tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


@contextmanager
def span(stage: str, **attrs: Any) -> Iterator[Span | _NullSpan]:
    """Trace a stage; appends one record on exit (errors tagged).

    >>> with obs.span("decode", job=job.key[:12]) as sp:
    ...     out = decode(...)
    ...     sp.set(shots=out.shots)
    """
    if not state.enabled or state.telemetry_dir is None:
        yield NULL_SPAN
        return
    live = Span(stage, attrs)
    try:
        yield live
    except BaseException as exc:
        live._finish(error=type(exc).__name__)
        raise
    else:
        live._finish()


def emit_metrics(snapshot: dict[str, Any], worker: str | None = None) -> None:
    """Append a registry snapshot line to this worker's trace file.

    Called at worker exit so a finished run's sidecars carry final
    counter/histogram state with no live process to query.
    """
    if not state.enabled or state.telemetry_dir is None:
        return
    _append_record(
        {
            "kind": "metrics",
            "worker": worker or current_worker(),
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "ts": time.time(),
            "metrics": snapshot,
        }
    )


# ---------------------------------------------------------------------------
# Readers / aggregation (the `campaign status --telemetry` backend)


def fold_latest_snapshot(
    latest: dict[tuple[str, Any], tuple[float, dict[str, Any]]],
    record: dict[str, Any],
    snapshot: dict[str, Any],
) -> None:
    """Keep only the newest registry snapshot per process.

    The metrics registry is process-global and snapshots are
    *cumulative*: an in-process fleet's workers (threads) all snapshot
    the same registry, so summing their lines would multiply every
    count by the worker count.  The newest snapshot per (host, pid)
    supersedes all earlier ones; distinct processes then merge by
    summation as usual.
    """
    key = (str(record.get("host", "")), record.get("pid"))
    ts = record.get("ts")
    ts = float(ts) if isinstance(ts, (int, float)) else 0.0
    current = latest.get(key)
    if current is None or ts >= current[0]:
        latest[key] = (ts, snapshot)


def read_trace_dir(telemetry_dir: str | os.PathLike) -> list[dict[str, Any]]:
    """All records from every ``trace-*.jsonl`` sidecar, ts-ordered.

    Corrupt lines (a worker killed mid-write) are skipped — the
    append-only format makes partial data usable by construction.
    """
    telemetry_dir = os.fspath(telemetry_dir)
    records: list[dict[str, Any]] = []
    try:
        names = sorted(os.listdir(telemetry_dir))
    except OSError:
        return records
    for name in names:
        if not (name.startswith("trace-") and name.endswith(".jsonl")):
            continue
        try:
            with open(
                os.path.join(telemetry_dir, name), encoding="utf-8"
            ) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        records.append(record)
        except OSError:
            continue
    records.sort(key=lambda r: r.get("ts", 0.0))
    return records


def aggregate_stages(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Roll spans + metrics lines into the per-stage fleet summary.

    Returns ``{"stages": {stage: {count, total_s, share}}, "metrics":
    <merged snapshot>, "workers": [...], "wall_s": ...}``.  ``share`` is
    the stage's fraction of summed span time — note nested spans (a
    ``job`` span wrapping ``sample``/``decode``) each count their own
    wall time, so shares answer "where did the time go" per stage, not
    a partition of wall clock.
    """
    stages: dict[str, dict[str, Any]] = {}
    latest: dict[tuple[str, Any], tuple[float, dict[str, Any]]] = {}
    workers: set[str] = set()
    t_min, t_max = None, None
    for record in records:
        worker = record.get("worker")
        if worker:
            workers.add(str(worker))
        if record.get("kind") == "metrics":
            snap = record.get("metrics")
            if isinstance(snap, dict):
                fold_latest_snapshot(latest, record, snap)
            continue
        if record.get("kind") != "span":
            continue
        stage = str(record.get("stage", "?"))
        dur = float(record.get("dur_s", 0.0))
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = ts + dur if t_max is None else max(t_max, ts + dur)
        entry = stages.setdefault(
            stage, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += dur
        entry["max_s"] = max(entry["max_s"], dur)
    total = sum(e["total_s"] for e in stages.values())
    for entry in stages.values():
        entry["share"] = entry["total_s"] / total if total > 0 else 0.0
    return {
        "stages": dict(sorted(stages.items())),
        "metrics": merge_snapshots(snap for _, snap in latest.values()),
        "workers": sorted(workers),
        "wall_s": (t_max - t_min) if t_min is not None else 0.0,
    }


def chrome_trace(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert span records to Chrome ``trace_event`` JSON (``ph: X``).

    Load the result in ``chrome://tracing`` / Perfetto: one row per
    worker, one slice per span, timestamps in µs relative to the
    earliest span so the view starts at t=0.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    t0 = min(
        (r["ts"] for r in spans if isinstance(r.get("ts"), (int, float))),
        default=0.0,
    )
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for record in spans:
        worker = str(record.get("worker", "?"))
        tid = tids.setdefault(worker, len(tids) + 1)
        args = {
            k: v
            for k, v in record.items()
            if k not in ("kind", "stage", "worker", "pid", "ts", "dur_s")
        }
        events.append(
            {
                "name": str(record.get("stage", "?")),
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": (float(record.get("ts", t0)) - t0) * 1e6,
                "dur": float(record.get("dur_s", 0.0)) * 1e6,
                "args": args,
            }
        )
    for worker, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": worker},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    telemetry_dir: str | os.PathLike, out_path: str | os.PathLike
) -> int:
    """Merge a telemetry dir's sidecars into one Chrome trace file.

    Returns the number of span events written.
    """
    records = read_trace_dir(telemetry_dir)
    doc = chrome_trace(records)
    out_path = os.fspath(out_path)
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
