"""Structured stderr logger for progress/diagnostic lines.

Replaces the ad-hoc ``print()`` progress lines in the runner and the
service worker loop.  Contract: **stdout belongs to CLI tables and
results**; everything a human reads while a run is in flight goes to
stderr through here, one ``key=value``-suffixed line per event, so
fleet logs stay greppable across interleaved workers.

Level comes from ``REPRO_LOG`` (``debug``/``info``/``warn``/``error``;
default ``info``).  Unlike metrics/traces this is NOT gated on
``REPRO_OBS`` — progress lines were visible before this layer existed
and stay visible; set ``REPRO_LOG=error`` to quiet them.

No stdlib-``logging`` dependency by choice: no handler/config global
state to collide with embedding applications, and the no-op path is one
integer compare.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, TextIO

_LEVELS = {"debug": 10, "info": 20, "warn": 30, "warning": 30, "error": 40}


def _env_level() -> int:
    return _LEVELS.get(
        os.environ.get("REPRO_LOG", "info").strip().lower(), 20
    )


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    text = str(value)
    return repr(text) if " " in text else text


class Logger:
    """Leveled ``name: message key=value ...`` lines on one stream."""

    __slots__ = ("name", "level", "stream")

    def __init__(
        self,
        name: str,
        level: int | None = None,
        stream: TextIO | None = None,
    ):
        self.name = name
        self.level = _env_level() if level is None else level
        self.stream = stream  # None = sys.stderr resolved at call time

    def _emit(self, level: int, tag: str, message: str, fields: dict) -> None:
        if level < self.level:
            return
        suffix = "".join(
            f" {key}={_format_value(value)}" for key, value in fields.items()
        )
        stamp = time.strftime("%H:%M:%S")
        stream = self.stream if self.stream is not None else sys.stderr
        try:
            print(
                f"{stamp} {tag:<5} {self.name}: {message}{suffix}",
                file=stream,
                flush=True,
            )
        except (OSError, ValueError):
            pass  # a closed/broken stderr never takes down a worker

    def debug(self, message: str, **fields: Any) -> None:
        self._emit(10, "debug", message, fields)

    def info(self, message: str, **fields: Any) -> None:
        self._emit(20, "info", message, fields)

    def warn(self, message: str, **fields: Any) -> None:
        self._emit(30, "warn", message, fields)

    def error(self, message: str, **fields: Any) -> None:
        self._emit(40, "error", message, fields)


_loggers: dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """Named logger, cached per process (idiom: one per module)."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger


log = get_logger("repro")
