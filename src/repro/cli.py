"""Command-line face of the PropHunt tool.

Optimize a benchmark code's SM circuit and report before/after metrics::

    python -m repro.cli optimize surface_d3 --iterations 5 --samples 40
    python -m repro.cli evaluate lp39 --p 1e-3 --shots 4000
    python -m repro.cli codes
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.deff import estimate_effective_distance
from .circuits import coloration_schedule
from .codes import BENCHMARK_CODES, load_benchmark_code
from .core import PropHunt, PropHuntConfig
from .decoders import estimate_logical_error_rate


def cmd_codes(_args) -> int:
    for name in BENCHMARK_CODES:
        code = load_benchmark_code(name)
        weights = code.stabilizer_weights()
        print(
            f"{name:12s} {code.label():28s} "
            f"stab weights {sorted(set(weights['x']) | set(weights['z']))}"
        )
    return 0


def cmd_evaluate(args) -> int:
    code = load_benchmark_code(args.code)
    schedule = coloration_schedule(code)
    rng = np.random.default_rng(args.seed)
    deff = estimate_effective_distance(code, schedule, samples=args.samples, rng=rng)
    print(f"code            : {code.label()}")
    print(f"circuit         : coloration, CNOT depth {schedule.cnot_depth()}")
    print(f"d_eff estimate  : {deff.deff}")
    if args.rare_event:
        _evaluate_rare_event(code, schedule, args, rng)
    else:
        ler = estimate_logical_error_rate(
            code, schedule, p=args.p, shots=args.shots, rng=rng, workers=args.workers
        )
        print(f"LER @ p={args.p:g} : {ler.rate:.3e} ({ler.shots} shots/basis)")
    return 0


def _evaluate_rare_event(code, schedule, args, rng: np.random.Generator) -> None:
    """Weight-stratified LER: resolves rates far below 1/shots.

    ``--shots`` caps the decoded-shot budget per basis; the estimator
    stops early once the interval half-width reaches
    ``--target-rel-ci`` of the estimate.
    """
    from .decoders.metrics import dem_for
    from .noise.model import NoiseModel
    from .rareevent import estimate_ler_stratified

    noise = NoiseModel(p=args.p)
    combined = None
    for basis in ("z", "x"):
        dem = dem_for(code, schedule, noise, basis=basis)
        est = estimate_ler_stratified(
            dem,
            basis=basis,
            rng=rng,
            min_failure_weight=args.min_failure_weight,
            target_rel_halfwidth=args.target_rel_ci,
            max_shots=args.shots,
            workers=args.workers,
        )
        lo, hi = est.interval
        print(
            f"stratified {basis}-basis LER @ p={args.p:g}: {est.rate:.3e} "
            f"[{lo:.1e}, {hi:.1e}] ({est.shots} decoded shots, "
            f"{'converged' if est.converged else 'budget-limited'})"
        )
        for row in est.summary_rows():
            print(
                f"    w={row['weight']:2d} P={row['prob']:.3e} "
                f"shots={row['shots']:7d} fails={row['failures']:5d} "
                f"contribution={row['contribution']:.3e} [{row['status']}]"
            )
        print(
            f"    direct MC would need ~{est.direct_mc_shots_for_same_ci():.2e} "
            "shots for the same CI"
        )
        rate_est = est.to_rate_estimate()
        combined = rate_est if combined is None else combined.combine_with(rate_est)
    lo, hi = combined.interval
    print(f"combined LER    : {combined.rate:.3e} [{lo:.1e}, {hi:.1e}]")


def cmd_optimize(args) -> int:
    code = load_benchmark_code(args.code)
    start = coloration_schedule(code)
    config = PropHuntConfig(
        iterations=args.iterations,
        samples_per_iteration=args.samples,
        seed=args.seed,
        workers=args.workers,
    )
    print(f"Optimizing {code.label()} from the coloration circuit "
          f"({config.iterations} x {config.samples_per_iteration})...")
    result = PropHunt(code, config).optimize(start)
    for r in result.history:
        print(
            f"  it{r.iteration}: ambiguous={r.ambiguous_found} "
            f"min_weight={r.min_logical_weight} applied={r.changes_applied} "
            f"depth={r.cnot_depth} ({r.elapsed:.1f}s)"
        )
    rng = np.random.default_rng(args.seed)
    before = estimate_logical_error_rate(
        code, start, p=args.p, shots=args.shots, rng=rng, workers=args.workers
    )
    after = estimate_logical_error_rate(
        code,
        result.final_schedule,
        p=args.p,
        shots=args.shots,
        rng=rng,
        workers=args.workers,
    )
    print(f"\nLER @ p={args.p:g}: {before.rate:.3e} -> {after.rate:.3e}")
    if after.rate > 0:
        print(f"improvement: {before.rate / after.rate:.2f}x")
    if args.output:
        from .circuits import schedule_to_json

        with open(args.output, "w") as fh:
            fh.write(schedule_to_json(result.final_schedule))
        print(f"optimized schedule written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("codes", help="list benchmark codes").set_defaults(fn=cmd_codes)

    ev = sub.add_parser("evaluate", help="evaluate a code's coloration circuit")
    ev.add_argument("code")
    ev.add_argument("--p", type=float, default=1e-3)
    ev.add_argument("--shots", type=int, default=4000)
    ev.add_argument("--samples", type=int, default=30)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--workers", type=int, default=1, help="shot-runner worker processes"
    )
    ev.add_argument(
        "--rare-event",
        action="store_true",
        help="weight-stratified importance sampling (resolves LERs far "
        "below 1/shots; --shots becomes the decoded-shot budget)",
    )
    ev.add_argument(
        "--target-rel-ci",
        type=float,
        default=0.1,
        help="rare-event mode stops when the CI half-width reaches this "
        "fraction of the estimate (default 0.1)",
    )
    ev.add_argument(
        "--min-failure-weight",
        type=int,
        default=1,
        help="assert error weights below this never fail (ceil(d/2) for "
        "an unambiguous distance-d circuit; audited, default: no "
        "assumption — coloration circuits can fail at weight 1)",
    )
    ev.set_defaults(fn=cmd_evaluate)

    opt = sub.add_parser("optimize", help="run PropHunt on a benchmark code")
    opt.add_argument("code")
    opt.add_argument("--iterations", type=int, default=4)
    opt.add_argument("--samples", type=int, default=30)
    opt.add_argument("--p", type=float, default=1e-3)
    opt.add_argument("--shots", type=int, default=4000)
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument("--workers", type=int, default=1)
    opt.add_argument(
        "--output", default=None, help="write the optimized schedule as JSON"
    )
    opt.set_defaults(fn=cmd_optimize)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
