"""Command-line face of the PropHunt tool.

Optimize a benchmark code's SM circuit and report before/after metrics::

    python -m repro.cli optimize surface_d3 --iterations 5 --samples 40
    python -m repro.cli evaluate lp39 --p 1e-3 --shots 4000
    python -m repro.cli codes

Run declarative sweep campaigns against a persistent result store::

    python -m repro.cli campaign run sweep.json --store results/
    python -m repro.cli campaign status sweep.json --store results/
    python -m repro.cli campaign export --store results/ --format csv
"""

from __future__ import annotations

import argparse
import functools
import os
import sys

import numpy as np

from .analysis.deff import estimate_effective_distance
from .circuits import coloration_schedule
from .codes import BENCHMARK_CODES, load_benchmark_code
from .core import PropHunt, PropHuntConfig
from .decoders import estimate_logical_error_rate


def broken_pipe_safe(fn):
    """Treat a downstream reader going away as success, not a traceback.

    Commands that print tables (``campaign top``, ``status``,
    ``export``, ``stream``) are routinely piped into ``head`` or a
    pager; when the consumer closes the pipe mid-table the command has
    done its job.  Swallow the ``BrokenPipeError`` and detach stdout so
    the interpreter's exit flush cannot raise a second time.
    """

    @functools.wraps(fn)
    def wrapper(args) -> int:
        try:
            return fn(args)
        except BrokenPipeError:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
            return 0

    return wrapper


def cmd_codes(_args) -> int:
    for name in BENCHMARK_CODES:
        code = load_benchmark_code(name)
        weights = code.stabilizer_weights()
        print(
            f"{name:12s} {code.label():28s} "
            f"stab weights {sorted(set(weights['x']) | set(weights['z']))}"
        )
    return 0


def _bad_spec_detail(exc: BaseException) -> str:
    """Human-readable cause for a rejected noise/campaign spec.

    Sentence-style messages pass through; bare details (e.g. the
    ``KeyError('p')`` of a channel payload missing a field) keep their
    exception type as the hint.
    """
    detail = exc.args[0] if exc.args else exc
    if isinstance(detail, str) and " " in detail:
        return detail
    return f"{type(exc).__name__}: {detail!r}"


def _resolved_noise(args) -> "object | None":
    """Resolve ``--noise`` plus an optional ``--noise-profile`` file.

    Returns ``None`` when neither flag is set (the default depolarizing
    path downstream), otherwise the fully resolved ``NoiseSpec`` with
    the device profile attached — the profile payload is inlined into
    the spec, never carried as a path.  A typo'd token or unreadable
    profile must not traceback.
    """
    profile_path = getattr(args, "noise_profile", None)
    if args.noise is None and not profile_path:
        return None
    import dataclasses

    from .noise.spec import resolve_noise

    try:
        spec = resolve_noise(args.noise, args.p)
    except (KeyError, ValueError, TypeError) as exc:
        raise SystemExit(f"bad --noise spec: {_bad_spec_detail(exc)}")
    if profile_path:
        from .noise.profile import load_device_profile

        try:
            spec = dataclasses.replace(
                spec, profile=load_device_profile(profile_path)
            )
        except OSError as exc:
            raise SystemExit(f"bad --noise-profile: {exc}")
        except ValueError as exc:
            raise SystemExit(f"bad --noise-profile: {_bad_spec_detail(exc)}")
    return spec


def cmd_evaluate(args) -> int:
    noise = _resolved_noise(args)
    code = load_benchmark_code(args.code)
    schedule = coloration_schedule(code)
    rng = np.random.default_rng(args.seed)
    deff = estimate_effective_distance(code, schedule, samples=args.samples, rng=rng)
    print(f"code            : {code.label()}")
    print(f"circuit         : coloration, CNOT depth {schedule.cnot_depth()}")
    print(f"d_eff estimate  : {deff.deff}")
    if args.noise:
        print(f"noise           : {args.noise}")
    if getattr(args, "noise_profile", None):
        print(f"device profile  : {args.noise_profile}")
    if args.rare_event:
        _evaluate_rare_event(code, schedule, args, rng, noise=noise)
    else:
        ler = estimate_logical_error_rate(
            code,
            schedule,
            p=args.p,
            shots=args.shots,
            rng=rng,
            workers=args.workers,
            noise=noise,
        )
        print(f"LER @ p={args.p:g} : {ler.rate:.3e} ({ler.shots} shots/basis)")
    return 0


def _evaluate_rare_event(
    code, schedule, args, rng: np.random.Generator, noise=None
) -> None:
    """Weight-stratified LER: resolves rates far below 1/shots.

    ``--shots`` caps the decoded-shot budget per basis; the estimator
    stops early once the interval half-width reaches
    ``--target-rel-ci`` of the estimate.
    """
    from .decoders.metrics import dem_for
    from .noise.spec import resolve_noise
    from .rareevent import estimate_ler_stratified

    if noise is None:
        noise = resolve_noise(args.noise, args.p)
    combined = None
    for basis in ("z", "x"):
        dem = dem_for(code, schedule, noise, basis=basis)
        est = estimate_ler_stratified(
            dem,
            basis=basis,
            rng=rng,
            min_failure_weight=args.min_failure_weight,
            target_rel_halfwidth=args.target_rel_ci,
            max_shots=args.shots,
            workers=args.workers,
        )
        lo, hi = est.interval
        print(
            f"stratified {basis}-basis LER @ p={args.p:g}: {est.rate:.3e} "
            f"[{lo:.1e}, {hi:.1e}] ({est.shots} decoded shots, "
            f"{'converged' if est.converged else 'budget-limited'})"
        )
        for row in est.summary_rows():
            print(
                f"    w={row['weight']:2d} P={row['prob']:.3e} "
                f"shots={row['shots']:7d} fails={row['failures']:5d} "
                f"contribution={row['contribution']:.3e} [{row['status']}]"
            )
        print(
            f"    direct MC would need ~{est.direct_mc_shots_for_same_ci():.2e} "
            "shots for the same CI"
        )
        rate_est = est.to_rate_estimate()
        combined = rate_est if combined is None else combined.combine_with(rate_est)
    lo, hi = combined.interval
    print(f"combined LER    : {combined.rate:.3e} [{lo:.1e}, {hi:.1e}]")


def _load_campaign_spec(args):
    from .experiments.campaign import CampaignSpec, smoke_spec

    if getattr(args, "smoke", False):
        return smoke_spec()
    if args.spec is None:
        raise SystemExit("a spec file is required unless --smoke is given")
    try:
        # Parsing and expansion validate every job (JSON syntax, spec
        # fields, noise tokens, estimators, ...): a typo in a
        # hand-edited file must not traceback.  JSONDecodeError is a
        # ValueError.
        spec = CampaignSpec.from_json_file(args.spec)
        spec.expand()
    except (KeyError, ValueError, TypeError) as exc:
        raise SystemExit(f"bad campaign spec {args.spec}: {_bad_spec_detail(exc)}")
    return spec


def cmd_campaign_run(args) -> int:
    from .experiments.campaign import run_campaign
    from .experiments.store import ResultStore
    from .gf2 import kernels

    spec = _load_campaign_spec(args)
    store = ResultStore(args.store)
    report = run_campaign(spec, store=store, workers=args.workers, progress=print)
    print(
        f"campaign {spec.name!r}: {len(report.jobs)} jobs, "
        f"{report.hits} store hits, {len(report.executed)} executed"
    )
    print(f"kernel backend: {kernels.backend_name()}")
    if report.syndrome_stats is not None:
        s = report.syndrome_stats
        print(
            f"syndrome cache: {s['hits']} hits, {s['misses']} misses, "
            f"{s['entries']} entries across {s['files']} files "
            f"({s['loaded']} preloaded)"
        )
    if args.smoke:
        # The CI resume check: a second invocation of a completed
        # campaign must be pure store hits — zero sampling or decoding.
        # Reopened from disk, so the JSONL write/reload round trip is
        # part of what the gate verifies.
        resumed = run_campaign(
            spec, store=ResultStore(args.store), workers=args.workers
        )
        if resumed.executed:
            print(
                f"resume check FAILED: {len(resumed.executed)} jobs recomputed"
            )
            return 1
        print(f"resume check: {resumed.hits} store hits, 0 recomputed")
    return 0


def _print_syndrome_cache_status(store_path) -> None:
    import os

    from .decoders.syncache import summarize_cache_dir
    from .gf2 import kernels

    print(f"kernel backend: {kernels.backend_name()}")
    if store_path is None:
        return
    syn_dir = os.path.join(store_path, "syndromes")
    if os.path.isdir(syn_dir):
        s = summarize_cache_dir(syn_dir)
        print(
            f"syndrome cache: {s['entries']} entries across "
            f"{s['files']} files in {syn_dir}"
        )
    else:
        print("syndrome cache: empty (no syndromes/ directory yet)")


def _print_service_status(store) -> None:
    import time

    from .experiments import service

    layout = "sharded" if store.sharded else "legacy single-file"
    print(f"store layout: {layout}")
    if store.path is None:
        return
    entries = None
    try:
        entries = service.read_queue(store.path)
    except ValueError as exc:
        print(f"service queue: UNREADABLE ({exc})")
    if entries is not None:
        pending = sum(1 for e in entries if e["key"] not in store)
        print(f"service queue: {len(entries)} jobs, {pending} pending")
    ldir = service.lease_dir(store.path)
    try:
        names = sorted(n for n in os.listdir(ldir) if n.endswith(".lease"))
    except OSError:
        names = []
    if names:
        now = time.time()
        live = stale = 0
        for name in names:
            lease = service.read_lease(os.path.join(ldir, name)) or {}
            group = name[: -len(".lease")]
            claimed = lease.get("claimed_at")
            expires = lease.get("expires_at")
            age = (
                f"{now - claimed:.0f}s old"
                if isinstance(claimed, (int, float))
                else "age unknown"
            )
            if service.lease_expired(lease, now):
                # Expired but still on disk: its worker died (or lost the
                # race) and nobody has taken the group over yet.
                stale += 1
                over = (
                    f"{now - expires:.0f}s ago"
                    if isinstance(expires, (int, float))
                    else "unknown"
                )
                print(
                    f"  lease {group}: STALE (worker "
                    f"{lease.get('worker', '?')}, {age}, expired {over})"
                )
            else:
                live += 1
                left = expires - now
                print(
                    f"  lease {group}: live (worker "
                    f"{lease.get('worker', '?')}, {age}, "
                    f"expires in {left:.0f}s)"
                )
        print(f"leases: {live} live, {stale} stale")


@broken_pipe_safe
def cmd_campaign_top(args) -> int:
    import time

    from .obs.dashboard import render_telemetry, render_top

    while True:
        stale_after = max(10.0, 3.0 * args.poll)
        for line in render_top(args.store, stale_after=stale_after):
            print(line)
        if args.stages:
            print()
            for line in render_telemetry(args.store):
                print(line)
        if not args.watch:
            return 0
        try:
            time.sleep(args.poll)
        except KeyboardInterrupt:
            return 0
        print()


def cmd_campaign_trace(args) -> int:
    from .obs.dashboard import telemetry_dir_of
    from .obs.trace import write_chrome_trace

    events = write_chrome_trace(telemetry_dir_of(args.store), args.output)
    print(f"{events} span events -> {args.output} (chrome://tracing)")
    return 0 if events or args.allow_empty else 1


def cmd_campaign_serve(args) -> int:
    from .experiments.service import DEFAULT_SKEW_GRACE, serve_campaign

    spec = _load_campaign_spec(args)
    grace = args.skew_grace if args.skew_grace is not None else DEFAULT_SKEW_GRACE
    try:
        report = serve_campaign(
            spec,
            args.store,
            n_workers=args.n_workers,
            ttl=args.ttl,
            poll=args.poll,
            wait=not args.no_wait,
            timeout=args.timeout,
            progress=print if args.verbose else None,
            skew_grace_s=grace,
        )
    except TimeoutError as exc:
        raise SystemExit(f"serve timed out: {exc}")
    print(
        f"campaign {spec.name!r} served: {report.total_jobs} jobs queued "
        f"({report.already_stored} already stored) -> {report.queue_file}"
    )
    for w in report.workers:
        print(
            f"  {w.worker_id}: {len(w.executed)} executed, "
            f"{w.claims} claims, {w.takeovers} takeovers"
        )
    if args.no_wait and args.n_workers == 0:
        print("queue published; attach workers with: repro campaign worker "
              f"--store {args.store}")
    return 0


def cmd_campaign_worker(args) -> int:
    from .experiments.service import DEFAULT_SKEW_GRACE, worker_loop

    grace = args.skew_grace if args.skew_grace is not None else DEFAULT_SKEW_GRACE
    report = worker_loop(
        args.store,
        worker_id=args.worker_id,
        ttl=args.ttl,
        poll=args.poll,
        once=args.once,
        max_jobs=args.max_jobs,
        timeout=args.timeout,
        progress=print,
        chaos_exit_after=args.chaos_exit_after,
        skew_grace_s=grace,
    )
    print(
        f"worker {report.worker_id}: {len(report.executed)} executed, "
        f"{report.skipped} already stored, {report.claims} claims, "
        f"{report.takeovers} takeovers, {report.passes} passes"
    )
    return 0


def cmd_campaign_compact(args) -> int:
    from .decoders.syncache import compact_cache_dir
    from .experiments.store import ResultStore

    store = ResultStore(args.store)
    summary = store.compact()
    print(
        f"store {args.store}: {summary['records']} records in "
        f"{summary['shards']} shards ({summary['removed_files']} stale "
        f"files removed)"
    )
    print(f"content digest: {store.content_digest()}")
    syn_dir = os.path.join(args.store, "syndromes")
    if os.path.isdir(syn_dir):
        syn = compact_cache_dir(syn_dir)
        print(
            f"syndrome cache: {syn['absorbed']} writer shards folded into "
            f"{syn['files']} files ({syn['entries']} entries)"
        )
    return 0


def _print_telemetry_status(store_path) -> None:
    from .obs.dashboard import render_telemetry

    print()
    for line in render_telemetry(store_path):
        print(line)


@broken_pipe_safe
def cmd_campaign_status(args) -> int:
    from .experiments.store import ResultStore

    store = ResultStore(args.store)
    if args.spec is None and not args.smoke:
        by_kind: dict[tuple[str, str], int] = {}
        for record in store.records():
            job = record["job"]
            k = (job["code"], job["estimator"])
            by_kind[k] = by_kind.get(k, 0) + 1
        print(f"store {args.store}: {len(store)} records")
        for (code, estimator), count in sorted(by_kind.items()):
            print(f"  {code:12s} {estimator:10s} {count}")
        _print_syndrome_cache_status(store.path)
        _print_service_status(store)
        if args.telemetry:
            _print_telemetry_status(args.store)
        return 0
    spec = _load_campaign_spec(args)
    jobs = spec.expand()
    done = [j for j in jobs if j.key() in store]
    print(
        f"campaign {spec.name!r}: {len(done)}/{len(jobs)} jobs complete, "
        f"{len(jobs) - len(done)} pending"
    )
    _print_syndrome_cache_status(store.path)
    _print_service_status(store)
    if args.telemetry:
        _print_telemetry_status(args.store)
    return 0


@broken_pipe_safe
def cmd_campaign_export(args) -> int:
    import json as _json

    from .experiments.campaign import export_rows
    from .experiments.common import ExperimentResult
    from .experiments.store import ResultStore

    store = ResultStore(args.store)
    jobs = None
    if args.spec is not None or args.smoke:
        jobs = _load_campaign_spec(args).expand()
    rows = export_rows(store, jobs)
    if args.format == "json":
        text = _json.dumps(rows, indent=2, sort_keys=True)
    else:
        result = ExperimentResult(name="campaign export")
        for row in rows:
            result.add(**row)
        text = result.to_csv()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"{len(rows)} rows written to {args.output}")
    else:
        print(text)
    return 0


@broken_pipe_safe
def cmd_stream(args) -> int:
    """Paced sliding-window decode of one code with an SLO report."""
    from .decoders.metrics import dem_for
    from .noise.spec import resolve_noise
    from .streaming import WindowConfig, stream_decode

    noise = _resolved_noise(args)
    if noise is None:
        noise = resolve_noise(None, args.p)
    try:
        window = WindowConfig(
            window_rounds=args.window, commit_rounds=args.commit
        )
    except ValueError as exc:
        raise SystemExit(f"bad window/commit schedule: {exc}")
    code = load_benchmark_code(args.code)
    schedule = coloration_schedule(code)
    dem = dem_for(
        code, schedule, noise, basis=args.basis, rounds=args.rounds
    )
    print(f"code            : {code.label()} ({args.basis} basis)")
    report = stream_decode(
        dem,
        shots=args.shots,
        basis=args.basis,
        decoder=args.decoder,
        rng=np.random.default_rng(args.seed),
        window=window,
        rounds_per_sec=args.rate,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
        verify_offline=not args.no_verify,
    )
    for line in report.slo_lines():
        print(line)
    # A stream whose committed corrections drifted from the offline
    # decode is broken, whatever its latency looks like.
    return 1 if report.matches_offline is False else 0


def cmd_optimize(args) -> int:
    code = load_benchmark_code(args.code)
    start = coloration_schedule(code)
    config = PropHuntConfig(
        iterations=args.iterations,
        samples_per_iteration=args.samples,
        seed=args.seed,
        workers=args.workers,
    )
    print(f"Optimizing {code.label()} from the coloration circuit "
          f"({config.iterations} x {config.samples_per_iteration})...")
    result = PropHunt(code, config).optimize(start)
    for r in result.history:
        print(
            f"  it{r.iteration}: ambiguous={r.ambiguous_found} "
            f"min_weight={r.min_logical_weight} applied={r.changes_applied} "
            f"depth={r.cnot_depth} ({r.elapsed:.1f}s)"
        )
    rng = np.random.default_rng(args.seed)
    before = estimate_logical_error_rate(
        code, start, p=args.p, shots=args.shots, rng=rng, workers=args.workers
    )
    after = estimate_logical_error_rate(
        code,
        result.final_schedule,
        p=args.p,
        shots=args.shots,
        rng=rng,
        workers=args.workers,
    )
    print(f"\nLER @ p={args.p:g}: {before.rate:.3e} -> {after.rate:.3e}")
    if after.rate > 0:
        print(f"improvement: {before.rate / after.rate:.2f}x")
    if args.output:
        from .circuits import schedule_to_json

        with open(args.output, "w") as fh:
            fh.write(schedule_to_json(result.final_schedule))
        print(f"optimized schedule written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("codes", help="list benchmark codes").set_defaults(fn=cmd_codes)

    ev = sub.add_parser("evaluate", help="evaluate a code's coloration circuit")
    ev.add_argument("code")
    ev.add_argument("--p", type=float, default=1e-3)
    ev.add_argument("--shots", type=int, default=4000)
    ev.add_argument("--samples", type=int, default=30)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--workers", type=int, default=1, help="shot-runner worker processes"
    )
    ev.add_argument(
        "--noise",
        default=None,
        help="noise scenario token: 'depolarizing' (default), "
        "'biased:<eta>' (eta-biased Pauli at rate p), 'correlated' "
        "(correlated two-qubit CNOT noise), with optional ',pm=<v>' "
        "readout-flip and ',ct=<v>' measurement-crosstalk clauses "
        "(absolute, or '<k>p' relative)",
    )
    ev.add_argument(
        "--noise-profile",
        default=None,
        metavar="JSON",
        help="device-profile-v1 JSON file of per-qubit / per-gate-class "
        "rate multipliers, applied on top of --noise",
    )
    ev.add_argument(
        "--rare-event",
        action="store_true",
        help="weight-stratified importance sampling (resolves LERs far "
        "below 1/shots; --shots becomes the decoded-shot budget)",
    )
    ev.add_argument(
        "--target-rel-ci",
        type=float,
        default=0.1,
        help="rare-event mode stops when the CI half-width reaches this "
        "fraction of the estimate (default 0.1)",
    )
    ev.add_argument(
        "--min-failure-weight",
        type=int,
        default=1,
        help="assert error weights below this never fail (ceil(d/2) for "
        "an unambiguous distance-d circuit; audited, default: no "
        "assumption — coloration circuits can fail at weight 1)",
    )
    ev.set_defaults(fn=cmd_evaluate)

    camp = sub.add_parser(
        "campaign",
        help="declarative sweeps over the content-addressed result store",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    def _campaign_common(p):
        p.add_argument(
            "spec",
            nargs="?",
            default=None,
            help="campaign spec JSON file (see CampaignSpec; optional "
            "with --smoke)",
        )
        p.add_argument(
            "--store",
            required=True,
            help="result-store directory (created if missing)",
        )
        p.add_argument(
            "--smoke",
            action="store_true",
            help="use the tiny built-in smoke campaign instead of a spec file",
        )

    crun = csub.add_parser(
        "run", help="run missing jobs of a campaign (resume-safe)"
    )
    _campaign_common(crun)
    crun.add_argument(
        "--workers", type=int, default=1, help="shot-runner worker processes"
    )
    crun.set_defaults(fn=cmd_campaign_run)

    cstat = csub.add_parser(
        "status", help="completed/pending counts for a campaign or store"
    )
    _campaign_common(cstat)
    cstat.add_argument(
        "--telemetry",
        action="store_true",
        help="per-stage time shares, cache hit rates, and worker "
        "heartbeats from the <store>/telemetry/ sidecars",
    )
    cstat.set_defaults(fn=cmd_campaign_status)

    ctop = csub.add_parser(
        "top",
        help="live fleet dashboard from worker heartbeat sidecars",
    )
    ctop.add_argument(
        "--store", required=True, help="the served result-store directory"
    )
    ctop.add_argument(
        "--watch",
        action="store_true",
        help="refresh every --poll seconds until interrupted",
    )
    ctop.add_argument(
        "--poll", type=float, default=2.0, help="refresh interval (s)"
    )
    ctop.add_argument(
        "--stages",
        action="store_true",
        help="append the per-stage time breakdown below the worker table",
    )
    ctop.set_defaults(fn=cmd_campaign_top)

    ctrace = csub.add_parser(
        "trace",
        help="merge trace sidecars into one Chrome trace_event JSON",
    )
    ctrace.add_argument(
        "--store", required=True, help="the result-store directory"
    )
    ctrace.add_argument(
        "--output", required=True, help="Chrome trace JSON output path"
    )
    ctrace.add_argument(
        "--allow-empty",
        action="store_true",
        help="exit 0 even when no span records were found",
    )
    ctrace.set_defaults(fn=cmd_campaign_trace)

    cexp = csub.add_parser(
        "export", help="flatten store records to CSV/JSON for analysis"
    )
    _campaign_common(cexp)
    cexp.add_argument("--format", choices=("csv", "json"), default="csv")
    cexp.add_argument("--output", default=None, help="write to a file")
    cexp.set_defaults(fn=cmd_campaign_export)

    cserve = csub.add_parser(
        "serve",
        help="publish a campaign's job queue (and optionally run an "
        "in-process worker fleet)",
    )
    _campaign_common(cserve)
    cserve.add_argument(
        "--n-workers",
        type=int,
        default=0,
        help="in-process worker threads (0: only publish the queue; "
        "attach external workers with 'campaign worker')",
    )
    cserve.add_argument(
        "--ttl", type=float, default=60.0, help="lease TTL in seconds"
    )
    cserve.add_argument(
        "--poll", type=float, default=0.5, help="idle poll interval (s)"
    )
    cserve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up waiting for completion after this many seconds",
    )
    cserve.add_argument(
        "--no-wait",
        action="store_true",
        help="return after publishing instead of waiting for completion",
    )
    cserve.add_argument(
        "--verbose", action="store_true", help="per-job progress lines"
    )
    cserve.add_argument(
        "--skew-grace",
        type=float,
        default=None,
        help="cross-host clock-skew allowance (s) before an expired "
        "lease is taken over (default: a few seconds; see "
        "repro.experiments.service.DEFAULT_SKEW_GRACE)",
    )
    cserve.set_defaults(fn=cmd_campaign_serve)

    cwork = csub.add_parser(
        "worker",
        help="attach a lease-based worker to a served store",
    )
    cwork.add_argument(
        "--store", required=True, help="the served result-store directory"
    )
    cwork.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: pid-derived)",
    )
    cwork.add_argument("--ttl", type=float, default=60.0)
    cwork.add_argument("--poll", type=float, default=0.5)
    cwork.add_argument(
        "--once",
        action="store_true",
        help="one pass over the queue, then exit",
    )
    cwork.add_argument(
        "--max-jobs", type=int, default=None, help="exit after N jobs"
    )
    cwork.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="exit after this many seconds spent idle-waiting",
    )
    cwork.add_argument(
        "--chaos-exit-after",
        type=int,
        default=None,
        help="hard-exit (no lease release) after N jobs — the "
        "crash-recovery drill used by the service smoke test",
    )
    cwork.add_argument(
        "--skew-grace",
        type=float,
        default=None,
        help="cross-host clock-skew allowance (s) before an expired "
        "lease is taken over (default: a few seconds; see "
        "repro.experiments.service.DEFAULT_SKEW_GRACE)",
    )
    cwork.set_defaults(fn=cmd_campaign_worker)

    ccomp = csub.add_parser(
        "compact",
        help="canonicalize a store: sorted/deduplicated shards, volatile "
        "meta dropped, syndrome-cache writer shards folded in",
    )
    ccomp.add_argument(
        "--store", required=True, help="result-store directory to compact"
    )
    ccomp.set_defaults(fn=cmd_campaign_compact)

    strm = sub.add_parser(
        "stream",
        help="real-time sliding-window decode with a per-round latency "
        "SLO report",
    )
    strm.add_argument("code")
    strm.add_argument("--p", type=float, default=1e-3)
    strm.add_argument(
        "--shots", type=int, default=1024, help="shots streamed in lockstep"
    )
    strm.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="syndrome-measurement rounds (default: the code distance)",
    )
    strm.add_argument("--basis", choices=("z", "x"), default="z")
    strm.add_argument(
        "--decoder", default="auto", help="decoder kind (auto/matching/bposd)"
    )
    strm.add_argument(
        "--window",
        type=int,
        default=3,
        help="rounds of context held before the oldest are committed",
    )
    strm.add_argument(
        "--commit",
        type=int,
        default=1,
        help="rounds committed each time the window fills",
    )
    strm.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="arrival clock in rounds/sec (0: free-run, rounds arrive "
        "as fast as they are processed)",
    )
    strm.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-round latency deadline in ms (default: the round "
        "period when --rate is set, else none)",
    )
    strm.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the offline bit-identity cross-check (latency only)",
    )
    strm.add_argument("--seed", type=int, default=0)
    strm.add_argument(
        "--noise",
        default=None,
        help="noise scenario token (same grammar as 'evaluate')",
    )
    strm.add_argument(
        "--noise-profile",
        default=None,
        metavar="JSON",
        help="device-profile-v1 JSON multipliers, as in 'evaluate'",
    )
    strm.set_defaults(fn=cmd_stream)

    opt = sub.add_parser("optimize", help="run PropHunt on a benchmark code")
    opt.add_argument("code")
    opt.add_argument("--iterations", type=int, default=4)
    opt.add_argument("--samples", type=int, default=30)
    opt.add_argument("--p", type=float, default=1e-3)
    opt.add_argument("--shots", type=int, default=4000)
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument("--workers", type=int, default=1)
    opt.add_argument(
        "--output", default=None, help="write the optimized schedule as JSON"
    )
    opt.set_defaults(fn=cmd_optimize)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
