"""The logical-error-rate estimation pipeline.

Ties the stack together: build the memory experiment for a (code,
schedule, basis), apply the noise model, extract the DEM, sample shots,
decode, and count mispredictions.  The paper's reported logical error
rates "include both logical X and Z error rates" (§6.1): both memory
bases are simulated and combined as independent failure modes.

The sample→decode→count loop is packed end to end: chunks are sampled
bit-packed (:meth:`~repro.sim.sampler.DemSampler.sample_packed`),
decoded with unique-syndrome batching
(:meth:`~repro.decoders.base.Decoder.decode_batch_packed`), and
mispredictions are counted by XOR/popcount
(:meth:`~repro.decoders.base.Decoder.count_failures_packed`) — no dense
``(shots, num_detectors)`` array exists anywhere on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import RateEstimate
from ..circuits.builder import build_memory_experiment
from ..circuits.schedule import Schedule
from ..codes.css import CSSCode
from ..noise.model import NoiseModel
from ..noise.spec import NoiseSpec
from ..sim.dem import DetectorErrorModel, extract_dem
from .base import Decoder
from .bposd import BpOsdDecoder
from .matching import MatchingDecoder, detector_subset_for_basis


def dem_for(
    code: CSSCode,
    schedule: Schedule,
    noise: NoiseModel | NoiseSpec,
    basis: str = "z",
    rounds: int | None = None,
) -> DetectorErrorModel:
    """Build + noise + extract in one call (rounds defaults to the code
    distance, the paper's convention).

    ``noise`` is anything with the ``apply(circuit)`` contract: the
    two-knob :class:`~repro.noise.model.NoiseModel` or a full
    :class:`~repro.noise.spec.NoiseSpec` scenario.
    """
    if rounds is None:
        rounds = code.distance or 3
    experiment = build_memory_experiment(code, schedule, rounds=rounds, basis=basis)
    return extract_dem(noise.apply(experiment.circuit))


def make_decoder(dem: DetectorErrorModel, basis: str, kind: str = "auto") -> Decoder:
    """Choose a decoder: matching for graph-like DEMs, BP+OSD otherwise."""
    if kind == "bposd":
        return BpOsdDecoder(dem)
    if kind in ("auto", "matching"):
        subset = detector_subset_for_basis(dem, basis)
        try:
            return MatchingDecoder(dem, detector_subset=subset)
        except ValueError:
            if kind == "matching":
                raise
            return BpOsdDecoder(dem)
    raise ValueError(f"unknown decoder kind {kind!r}")


@dataclass
class MemoryResult:
    """Per-basis logical error estimate."""

    basis: str
    estimate: RateEstimate
    dem: DetectorErrorModel


@dataclass
class LogicalErrorRate:
    """Combined X/Z logical error rate for one (code, schedule, p)."""

    code_name: str
    p: float
    per_basis: dict[str, MemoryResult]

    @property
    def rate(self) -> float:
        rates = [r.estimate.rate for r in self.per_basis.values()]
        combined = 1.0
        for r in rates:
            combined *= 1.0 - r
        return 1.0 - combined

    @property
    def shots(self) -> int:
        return min(r.estimate.shots for r in self.per_basis.values())

    def __repr__(self) -> str:
        return (
            f"LogicalErrorRate({self.code_name}, p={self.p:g}, "
            f"rate={self.rate:.3e})"
        )


def estimate_logical_error_rate(
    code: CSSCode,
    schedule: Schedule,
    p: float,
    shots: int = 10_000,
    rounds: int | None = None,
    bases: tuple[str, ...] = ("z", "x"),
    decoder: str = "auto",
    idle_strength: float = 0.0,
    rng: np.random.Generator | None = None,
    max_failures: int | None = None,
    batch_size: int = 5_000,
    workers: int = 1,
    noise: "NoiseSpec | str | dict | None" = None,
) -> LogicalErrorRate:
    """Monte-Carlo logical error rate of one SM circuit at error rate p.

    Samples in chunks of ``batch_size`` shots until ``shots`` or
    ``max_failures`` is reached (the latter caps time spent on
    high-error configurations); ``workers > 1`` fans chunks out over
    processes.  The shot loop itself lives in
    :mod:`repro.experiments.shotrunner` — one chunked, bit-packed,
    optionally parallel entry point shared by every experiment.

    ``noise`` selects the scenario: ``None`` is uniform depolarizing at
    ``p`` (+ ``idle_strength``); a token like ``"biased:10,pm=0.003"``
    or an inline ``noise-spec-v1`` payload routes through
    :func:`repro.noise.spec.resolve_noise`.
    """
    # Imported lazily: the experiments package imports this module.
    from ..experiments.shotrunner import (
        ExecutionConfig,
        estimate_logical_error_rate_chunked,
    )

    return estimate_logical_error_rate_chunked(
        code,
        schedule,
        p,
        shots=shots,
        rounds=rounds,
        bases=bases,
        decoder=decoder,
        idle_strength=idle_strength,
        rng=rng,
        noise=noise,
        config=ExecutionConfig(
            workers=workers,
            chunk_shots=batch_size,
            max_failures=max_failures,
        ),
    )
