"""Minimum-weight perfect-matching decoder (PyMatching substitute).

Surface-code DEMs are *graph-like*: every mechanism flips at most two
detectors of a given stabilizer type.  Decoding reduces to minimum-weight
perfect matching of the flipped detectors on that graph (with a boundary
node absorbing odd defects).

Implementation: all-pairs shortest paths (scipy's C Dijkstra) on the
weighted decoding graph with edge weight ``-log p``; per shot, the
flipped detectors (plus a boundary that absorbs odd defects) are matched
at minimum weight.  Small defect sets — the overwhelming majority at
sub-threshold error rates — are matched by exact enumeration of every
pairing-with-boundary (there are at most 764 for eight defects), either
scalar per syndrome or vectorized over whole groups of deduplicated
syndromes; networkx's blossom algorithm is the fallback for larger sets.
Decode results are cached by syndrome, and the packed path additionally
decodes each *distinct* syndrome only once (unique-syndrome batching).
"""

from __future__ import annotations

import hashlib
import math
from functools import lru_cache

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from ..gf2.bitmat import unpack_rows
from ..sim.bitbatch import (
    BitSampleBatch,
    num_shot_words,
    popcount_words,
    scatter_unique,
    shot_words,
    unique_shot_words,
)
from ..sim.dem import DetectorErrorModel
from .base import Decoder

_BOUNDARY = -1

# Defect sets up to this size are matched by exhaustive enumeration of
# pairings (9 496 candidates at 10 defects); larger sets fall back to
# blossom.  Shared by the scalar and vectorized paths so both explore
# candidates in the same order — ties then break identically and packed
# decoding stays bit-identical to the dense reference.
_MAX_ENUM_DEFECTS = 10

# Element budget for one (groups x patterns) enumeration block: ~16 MB
# of float64 costs, the dominant temporary.
_ENUM_BLOCK_ELEMS = 2_000_000


@lru_cache(maxsize=None)
def _pairings(
    k: int,
) -> tuple[tuple[tuple[tuple[int, int], ...], tuple[int, ...]], ...]:
    """Every way to match ``k`` defects: ``(pairs, boundary_singles)``.

    Each entry partitions ``range(k)`` into disjoint pairs plus leftover
    singles (matched to the boundary).  The enumeration order is fixed
    (smallest element first unmatched, then paired with each later
    element in index order), which the tie-breaking contract above
    relies on.
    """

    def rec(elems: tuple[int, ...]):
        if not elems:
            return [((), ())]
        first, rest = elems[0], elems[1:]
        out = []
        for pairs, singles in rec(rest):
            out.append((pairs, (first, *singles)))
        for i, partner in enumerate(rest):
            others = rest[:i] + rest[i + 1 :]
            for pairs, singles in rec(others):
                out.append((((first, partner), *pairs), singles))
        return out

    return tuple(rec(tuple(range(k))))


@lru_cache(maxsize=None)
def _pairing_slots(k: int) -> tuple[np.ndarray, np.ndarray]:
    """:func:`_pairings` flattened to fixed-width index tensors.

    Each pattern becomes exactly ``k`` slots of column indices ``(i, j)``
    into an extended defect row ``[d_0 .. d_{k-1}, boundary]``: real
    pairs first, then singles as ``(s, k)`` (matched to the boundary
    column), then padding slots ``(0, 0)`` — a defect paired with
    itself, whose distance ``0.0`` and parity ``0`` are exact no-ops.
    Slot order mirrors the scalar scan in ``_enum_match``, so both
    accumulate costs in the same IEEE order and tie-break identically.
    """
    patterns = _pairings(k)
    slots_i = np.zeros((len(patterns), k), dtype=np.int64)
    slots_j = np.zeros((len(patterns), k), dtype=np.int64)
    for t, (pairs, singles) in enumerate(patterns):
        slot = 0
        for i, j in pairs:
            slots_i[t, slot] = i
            slots_j[t, slot] = j
            slot += 1
        for s in singles:
            slots_i[t, slot] = s
            slots_j[t, slot] = k
            slot += 1
        # Remaining slots stay (0, 0): dist[d0, d0] == 0.0.
    return slots_i, slots_j


class MatchingDecoder(Decoder):
    """MWPM on a detector subset (one observable's graph).

    ``detector_subset``: indices of the detectors to match on (e.g. the
    Z-type detectors for a Z-basis memory).  ``None`` uses all detectors —
    valid when the DEM is already single-type.
    """

    def __init__(
        self,
        dem: DetectorErrorModel,
        detector_subset: list[int] | None = None,
        observable: int = 0,
    ):
        super().__init__(dem)
        self.observable = observable
        if detector_subset is None:
            detector_subset = list(range(dem.num_detectors))
        self.subset = list(detector_subset)
        self.local_index = {d: i for i, d in enumerate(self.subset)}
        self._subset_rows = np.asarray(self.subset, dtype=np.int64)
        self._build_graph()
        self._cache: dict[bytes, int] = {}
        # Packed-path cache, keyed by the packed subset-syndrome words.
        # Kept separate from the dense byte-key cache: the two key
        # encodings live in different domains.
        self._packed_cache: dict[bytes, int] = {}

    # -- persistent syndrome cache addressing ----------------------------------
    # Matching dedups on the *subset* syndrome, so its persistent cache
    # keys are subset words, and its namespace must pin everything that
    # shapes the result: which observable is predicted and which
    # detectors form the graph.

    @property
    def cache_namespace(self) -> str:
        sub = hashlib.sha256(
            ",".join(str(d) for d in self.subset).encode()
        ).hexdigest()[:12]
        return f"matching:obs{self.observable}:sub{sub}"

    @property
    def cache_key_words(self) -> int:
        return max(1, (len(self.subset) + 63) // 64)

    @property
    def cache_value_bytes(self) -> int:
        return 1

    def _build_graph(self) -> None:
        """Project mechanisms onto the subset and build the weighted graph."""
        nlocal = len(self.subset)
        boundary = nlocal  # extra node index
        # Keep the best (lowest-weight) edge between each node pair.
        best: dict[tuple[int, int], tuple[float, int]] = {}
        for mech in self.dem.mechanisms:
            local = sorted(
                self.local_index[d] for d in mech.detectors if d in self.local_index
            )
            flips_obs = int(self.observable in mech.observables)
            if not local:
                continue
            if len(local) == 1:
                u, v = local[0], boundary
            elif len(local) == 2:
                u, v = local
            else:
                raise ValueError(
                    f"mechanism flips {len(local)} same-type detectors; "
                    "DEM is not graph-like — use BpOsdDecoder instead"
                )
            p = min(max(mech.prob, 1e-15), 0.5 - 1e-12)
            weight = math.log((1 - p) / p)
            key = (u, v)
            if key not in best or weight < best[key][0]:
                best[key] = (weight, flips_obs)

        rows, cols, weights = [], [], []
        self.edge_obs: dict[tuple[int, int], int] = {}
        for (u, v), (w, fo) in best.items():
            rows.append(u)
            cols.append(v)
            weights.append(w)
            self.edge_obs[(u, v)] = fo
            self.edge_obs[(v, u)] = fo
        n_nodes = nlocal + 1
        graph = sparse.csr_matrix(
            (weights, (rows, cols)), shape=(n_nodes, n_nodes)
        )
        graph = graph.maximum(graph.T)
        dist, predecessors = csgraph.dijkstra(
            graph, directed=False, return_predecessors=True
        )
        self.dist = dist
        self.n_nodes = n_nodes
        self.boundary = boundary
        # Parity of observable flips along every shortest path, via the
        # predecessor tree of each source.
        parity = np.zeros((n_nodes, n_nodes), dtype=np.uint8)
        for src in range(n_nodes):
            order = np.argsort(dist[src])
            for node in order:
                pred = predecessors[src, node]
                if pred < 0 or not np.isfinite(dist[src, node]):
                    continue
                parity[src, node] = parity[src, pred] ^ self.edge_obs.get(
                    (int(pred), int(node)), 0
                )
        self.parity = parity

    # -- decoding ------------------------------------------------------------

    def _decode_defects(self, defects: tuple[int, ...]) -> int:
        """MWPM over a defect set; returns predicted observable flip.

        Sizes one and two have closed forms, sizes up to
        ``_MAX_ENUM_DEFECTS`` are matched by scanning every pairing in
        :func:`_pairings` order, and only larger sets reach blossom.
        """
        if not defects:
            return 0
        b = self.boundary
        if len(defects) == 1:
            return int(self.parity[defects[0], b])
        if len(defects) == 2:
            u, v = defects
            if self.dist[u, v] <= self.dist[u, b] + self.dist[v, b]:
                return int(self.parity[u, v])
            return int(self.parity[u, b] ^ self.parity[v, b])
        if len(defects) <= _MAX_ENUM_DEFECTS:
            return self._enum_match(defects)
        return self._blossom_match(defects)

    def _enum_match(self, defects: tuple[int, ...]) -> int:
        """Exact matching by first-minimum scan over all pairings.

        Mirrors :meth:`_enum_match_group` term for term: candidates in
        :func:`_pairings` order, costs accumulated pair terms first then
        boundary terms, strict ``<`` keeping the first minimum — so the
        scalar and vectorized paths agree bit-for-bit even on ties.
        """
        dist, parity, b = self.dist, self.parity, self.boundary
        best_cost = math.inf
        best_flip = 0
        for pairs, singles in _pairings(len(defects)):
            cost = 0.0
            flip = 0
            for i, j in pairs:
                u, v = defects[i], defects[j]
                cost += dist[u, v]
                flip ^= int(parity[u, v])
            for s in singles:
                u = defects[s]
                cost += dist[u, b]
                flip ^= int(parity[u, b])
            if cost < best_cost:
                best_cost = cost
                best_flip = flip
        return best_flip

    def _enum_match_group(self, defect_rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_enum_match` over syndromes of equal weight.

        ``defect_rows``: ``(groups, k)`` defect indices (ascending per
        row).  One gather per candidate term, vectorized across all
        groups — the packed path's workhorse for the deduplicated
        syndrome minority.
        """
        groups, k = defect_rows.shape
        slots_i, slots_j = _pairing_slots(k)
        num_patterns = slots_i.shape[0]
        # Bound the (block x patterns) work arrays: at k = 10 there are
        # 9 496 patterns, so an uncapped near-threshold chunk with many
        # distinct high-weight syndromes would allocate multi-hundred-MB
        # temporaries.  Blocks are independent (per-row argmin), so
        # splitting changes nothing.
        block = max(1, _ENUM_BLOCK_ELEMS // num_patterns)
        if groups > block:
            return np.concatenate(
                [
                    self._enum_match_group(defect_rows[start : start + block])
                    for start in range(0, groups, block)
                ]
            )
        # Extended rows: defects plus a trailing boundary column.
        ext = np.concatenate(
            [defect_rows, np.full((groups, 1), self.boundary, dtype=np.int64)],
            axis=1,
        )
        costs = np.zeros((groups, num_patterns), dtype=np.float64)
        flips = np.zeros((groups, num_patterns), dtype=np.uint8)
        for slot in range(k):
            u = ext[:, slots_i[:, slot]]  # (groups, num_patterns)
            v = ext[:, slots_j[:, slot]]
            costs += self.dist[u, v]
            flips ^= self.parity[u, v]
        best = np.argmin(costs, axis=1)  # first minimum, like the scalar scan
        return flips[np.arange(groups), best]

    def _blossom_match(self, defects: tuple[int, ...]) -> int:
        """Blossom fallback for large defect sets (boundary-twin trick)."""
        b = self.boundary
        graph = nx.Graph()
        for i, u in enumerate(defects):
            # Twin node for boundary matching (negative ids).
            graph.add_edge(u, -u - 1000, weight=float(self.dist[u, b]))
            for v in defects[i + 1 :]:
                graph.add_edge(u, v, weight=float(self.dist[u, v]))
                graph.add_edge(-u - 1000, -v - 1000, weight=0.0)
        matching = nx.algorithms.matching.min_weight_matching(graph)
        flip = 0
        for a, c in matching:
            if a >= 0 and c >= 0:
                flip ^= int(self.parity[a, c])
            elif a >= 0 > c and c == -a - 1000:
                flip ^= int(self.parity[a, b])
            elif c >= 0 > a and a == -c - 1000:
                flip ^= int(self.parity[c, b])
        return flip

    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        detectors = np.asarray(detectors, dtype=np.uint8)
        shots = detectors.shape[0]
        out = np.zeros((shots, self.dem.num_observables), dtype=np.uint8)
        sub = detectors[:, self.subset]
        for i in range(shots):
            key = sub[i].tobytes()
            hit = self._cache.get(key)
            if hit is None:
                defects = tuple(int(d) for d in np.nonzero(sub[i])[0])
                hit = self._decode_defects(defects)
                self._cache[key] = hit
            out[i, self.observable] = hit
        return out

    def decode_batch_packed(self, batch: BitSampleBatch) -> BitSampleBatch:
        """Packed-native MWPM: dedup on the *subset* syndrome.

        Gathers the subset's packed detector rows, bit-transposes them
        into per-shot words, and matches each distinct subset syndrome
        exactly once — defect index lists come straight out of the
        packed key rows, so the graph side never sees a dense syndrome.
        Deduplicating on the subset (rather than the full detector set)
        collapses shots that differ only in other-basis detectors.
        """
        shots = batch.shots
        num_obs = self.dem.num_observables
        nwords = num_shot_words(shots)
        observables = np.zeros((num_obs, nwords), dtype=np.uint64)
        if shots == 0 or num_obs == 0:
            return BitSampleBatch(batch.detectors, observables, shots)
        nsub = len(self.subset)
        sub_rows = (
            batch.detectors[self._subset_rows]
            if nsub
            else np.zeros((0, batch.num_words), dtype=np.uint64)
        )
        unique, inverse = unique_shot_words(shot_words(sub_rows, shots))
        flips = np.zeros((unique.shape[0], 1), dtype=np.uint8)
        miss_rows: list[int] = []
        miss_keys: list[bytes] = []
        raw = unique.tobytes()
        row_bytes = unique.shape[1] * 8
        cache_get = self._packed_cache.get
        for i in range(unique.shape[0]):
            key = raw[i * row_bytes : (i + 1) * row_bytes]
            hit = cache_get(key)
            if hit is None:
                miss_rows.append(i)
                miss_keys.append(key)
            else:
                flips[i, 0] = hit
        if miss_rows and self.syndrome_cache is not None:
            # Persistent cache: syndromes decoded by earlier chunks, jobs,
            # or campaign runs skip matching entirely.
            values, hit_mask = self.syndrome_cache.lookup(unique[miss_rows])
            if hit_mask.any():
                miss_idx = np.asarray(miss_rows, dtype=np.int64)
                cached_flips = values[:, 0] & 1
                flips[miss_idx[hit_mask], 0] = cached_flips[hit_mask]
                packed_cache = self._packed_cache
                flip_list = cached_flips.tolist()
                still: list[int] = []
                for j, hit in enumerate(hit_mask.tolist()):
                    if hit:
                        packed_cache[miss_keys[j]] = flip_list[j]
                    else:
                        still.append(j)
                miss_rows = [miss_rows[j] for j in still]
                miss_keys = [miss_keys[j] for j in still]
        if miss_rows:
            decoded = self._decode_unique_keys(unique[miss_rows], nsub)
            flips[miss_rows, 0] = decoded
            for key, value in zip(miss_keys, decoded):
                self._packed_cache[key] = int(value)
            if self.syndrome_cache is not None:
                self.syndrome_cache.insert(unique[miss_rows], decoded[:, None])
        observables[self.observable] = scatter_unique(flips, inverse)[0]
        return BitSampleBatch(batch.detectors, observables, shots)

    def _decode_unique_keys(self, keys: np.ndarray, nsub: int) -> np.ndarray:
        """Match a set of distinct packed subset syndromes, grouped by
        defect count so each weight class decodes in one vectorized
        enumeration; only counts past ``_MAX_ENUM_DEFECTS`` fall back to
        the scalar blossom path."""
        counts = popcount_words(keys, axis=1)
        out = np.zeros(keys.shape[0], dtype=np.uint8)
        b = self.boundary
        for k in np.unique(counts):
            sel = np.nonzero(counts == k)[0]
            if k == 0:
                continue
            # np.nonzero is row-major, so each row contributes exactly k
            # ascending defect indices — reshape recovers per-row lists.
            dense = unpack_rows(keys[sel], nsub)
            defect_rows = np.nonzero(dense)[1].reshape(len(sel), int(k))
            if k == 1:
                out[sel] = self.parity[defect_rows[:, 0], b]
            elif k == 2:
                u, v = defect_rows[:, 0], defect_rows[:, 1]
                direct = self.dist[u, v]
                via_boundary = self.dist[u, b] + self.dist[v, b]
                out[sel] = np.where(
                    direct <= via_boundary,
                    self.parity[u, v],
                    self.parity[u, b] ^ self.parity[v, b],
                )
            elif k <= _MAX_ENUM_DEFECTS:
                out[sel] = self._enum_match_group(defect_rows)
            else:
                for row_idx, row in zip(sel, defect_rows):
                    out[row_idx] = self._blossom_match(
                        tuple(int(d) for d in row)
                    )
        return out


def detector_subset_for_basis(
    dem: DetectorErrorModel, basis: str
) -> list[int]:
    """Detectors whose label kind matches the memory basis.

    Builder detector labels are ``(round, kind, stab)``; a Z-basis memory
    decodes X errors on the Z-type (kind == "z") detector graph.
    """
    return [
        i
        for i, label in enumerate(dem.detector_labels)
        if len(label) == 3 and label[1] == basis
    ]
