"""Minimum-weight perfect-matching decoder (PyMatching substitute).

Surface-code DEMs are *graph-like*: every mechanism flips at most two
detectors of a given stabilizer type.  Decoding reduces to minimum-weight
perfect matching of the flipped detectors on that graph (with a boundary
node absorbing odd defects).

Implementation: all-pairs shortest paths (scipy's C Dijkstra) on the
weighted decoding graph with edge weight ``-log p``; per shot, a small
complete graph over the flipped detectors plus boundary twins is matched
with networkx's blossom algorithm.  Decode results are cached by syndrome,
which at sub-threshold error rates removes most of the blossom calls.
"""

from __future__ import annotations

import math
from collections import defaultdict

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from ..sim.dem import DetectorErrorModel
from .base import Decoder

_BOUNDARY = -1


class MatchingDecoder(Decoder):
    """MWPM on a detector subset (one observable's graph).

    ``detector_subset``: indices of the detectors to match on (e.g. the
    Z-type detectors for a Z-basis memory).  ``None`` uses all detectors —
    valid when the DEM is already single-type.
    """

    def __init__(
        self,
        dem: DetectorErrorModel,
        detector_subset: list[int] | None = None,
        observable: int = 0,
    ):
        super().__init__(dem)
        self.observable = observable
        if detector_subset is None:
            detector_subset = list(range(dem.num_detectors))
        self.subset = list(detector_subset)
        self.local_index = {d: i for i, d in enumerate(self.subset)}
        self._build_graph()
        self._cache: dict[bytes, int] = {}

    def _build_graph(self) -> None:
        """Project mechanisms onto the subset and build the weighted graph."""
        nlocal = len(self.subset)
        boundary = nlocal  # extra node index
        # Keep the best (lowest-weight) edge between each node pair.
        best: dict[tuple[int, int], tuple[float, int]] = {}
        for mech in self.dem.mechanisms:
            local = sorted(
                self.local_index[d] for d in mech.detectors if d in self.local_index
            )
            flips_obs = int(self.observable in mech.observables)
            if not local:
                continue
            if len(local) == 1:
                u, v = local[0], boundary
            elif len(local) == 2:
                u, v = local
            else:
                raise ValueError(
                    f"mechanism flips {len(local)} same-type detectors; "
                    "DEM is not graph-like — use BpOsdDecoder instead"
                )
            p = min(max(mech.prob, 1e-15), 0.5 - 1e-12)
            weight = math.log((1 - p) / p)
            key = (u, v)
            if key not in best or weight < best[key][0]:
                best[key] = (weight, flips_obs)

        rows, cols, weights = [], [], []
        self.edge_obs: dict[tuple[int, int], int] = {}
        for (u, v), (w, fo) in best.items():
            rows.append(u)
            cols.append(v)
            weights.append(w)
            self.edge_obs[(u, v)] = fo
            self.edge_obs[(v, u)] = fo
        n_nodes = nlocal + 1
        graph = sparse.csr_matrix(
            (weights, (rows, cols)), shape=(n_nodes, n_nodes)
        )
        graph = graph.maximum(graph.T)
        dist, predecessors = csgraph.dijkstra(
            graph, directed=False, return_predecessors=True
        )
        self.dist = dist
        self.n_nodes = n_nodes
        self.boundary = boundary
        # Parity of observable flips along every shortest path, via the
        # predecessor tree of each source.
        parity = np.zeros((n_nodes, n_nodes), dtype=np.uint8)
        for src in range(n_nodes):
            order = np.argsort(dist[src])
            for node in order:
                pred = predecessors[src, node]
                if pred < 0 or not np.isfinite(dist[src, node]):
                    continue
                parity[src, node] = parity[src, pred] ^ self.edge_obs.get(
                    (int(pred), int(node)), 0
                )
        self.parity = parity

    # -- decoding ------------------------------------------------------------

    def _decode_defects(self, defects: tuple[int, ...]) -> int:
        """MWPM over a defect set; returns predicted observable flip."""
        if not defects:
            return 0
        graph = nx.Graph()
        b = self.boundary
        for i, u in enumerate(defects):
            # Twin node for boundary matching (negative ids).
            graph.add_edge(u, -u - 1000, weight=float(self.dist[u, b]))
            for v in defects[i + 1 :]:
                graph.add_edge(u, v, weight=float(self.dist[u, v]))
                graph.add_edge(-u - 1000, -v - 1000, weight=0.0)
        matching = nx.algorithms.matching.min_weight_matching(graph)
        flip = 0
        for a, c in matching:
            if a >= 0 and c >= 0:
                flip ^= int(self.parity[a, c])
            elif a >= 0 > c and c == -a - 1000:
                flip ^= int(self.parity[a, b])
            elif c >= 0 > a and a == -c - 1000:
                flip ^= int(self.parity[c, b])
        return flip

    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        detectors = np.asarray(detectors, dtype=np.uint8)
        shots = detectors.shape[0]
        out = np.zeros((shots, self.dem.num_observables), dtype=np.uint8)
        sub = detectors[:, self.subset]
        for i in range(shots):
            key = sub[i].tobytes()
            hit = self._cache.get(key)
            if hit is None:
                defects = tuple(int(d) for d in np.nonzero(sub[i])[0])
                hit = self._decode_defects(defects)
                self._cache[key] = hit
            out[i, self.observable] = hit
        return out


def detector_subset_for_basis(
    dem: DetectorErrorModel, basis: str
) -> list[int]:
    """Detectors whose label kind matches the memory basis.

    Builder detector labels are ``(round, kind, stab)``; a Z-basis memory
    decodes X errors on the Z-type (kind == "z") detector graph.
    """
    return [
        i
        for i, label in enumerate(dem.detector_labels)
        if len(label) == 3 and label[1] == basis
    ]
