"""Decoder interface."""

from __future__ import annotations

import abc

import numpy as np

from ..sim.dem import DetectorErrorModel


class Decoder(abc.ABC):
    """Predicts observable flips from detector outcomes."""

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem

    @abc.abstractmethod
    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        """Map (shots, num_detectors) syndromes to (shots, num_observables)
        predicted observable flips."""

    def logical_failures(
        self, detectors: np.ndarray, observables: np.ndarray
    ) -> np.ndarray:
        """Per-shot boolean: did the decoder mispredict any observable?"""
        predictions = self.decode_batch(detectors)
        return (predictions != observables).any(axis=1)
