"""Decoder interface."""

from __future__ import annotations

import abc

import numpy as np

from ..sim.bitbatch import BitSampleBatch, pack_shots, popcount_words
from ..sim.dem import DetectorErrorModel


class Decoder(abc.ABC):
    """Predicts observable flips from detector outcomes."""

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem

    @abc.abstractmethod
    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        """Map (shots, num_detectors) syndromes to (shots, num_observables)
        predicted observable flips."""

    def logical_failures(
        self, detectors: np.ndarray, observables: np.ndarray
    ) -> np.ndarray:
        """Per-shot boolean: did the decoder mispredict any observable?"""
        predictions = self.decode_batch(detectors)
        return (predictions != observables).any(axis=1)

    def count_failures_packed(self, batch: BitSampleBatch) -> int:
        """Number of shots in ``batch`` whose observables are mispredicted.

        Decoding itself still consumes dense syndromes, but the
        mismatch accounting stays packed: predictions are repacked,
        XOR-ed with the sampled observable words, OR-reduced across
        observables, and popcounted — no dense per-shot bookkeeping.
        """
        if batch.num_observables == 0:
            return 0
        predictions = self.decode_batch(batch.detectors_dense())
        mismatch = pack_shots(predictions) ^ batch.observables
        failed_any = np.bitwise_or.reduce(mismatch, axis=0)
        return int(popcount_words(failed_any))
