"""Decoder interface.

Two decode entry points share one contract:

``decode_batch``
    Dense ``(shots, num_detectors)`` → ``(shots, num_observables)``.
    The pinned reference implementation — simple, per-shot, and the
    ground truth the packed path is litmus-tested against.

``decode_batch_packed``
    :class:`~repro.sim.bitbatch.BitSampleBatch` in, ``BitSampleBatch``
    out (same detectors, predicted observables) — the production hot
    path.  The base implementation does **unique-syndrome batching**: at
    sub-threshold error rates most shots repeat a small set of syndromes
    (the all-zero syndrome alone is frequently >90% of shots), so shots
    are grouped by their packed per-shot syndrome words
    (:func:`~repro.sim.bitbatch.shot_words`), each distinct syndrome is
    decoded exactly once, and predictions are scattered back into packed
    observable words.  No dense ``(shots, num_detectors)`` array is ever
    materialized; the dense minority that does get decoded is the unique
    syndromes only.

Subclasses override ``_decode_unique_packed`` (or the full packed entry
point) to consume the deduplicated packed syndromes natively; the
default falls back to ``decode_batch`` on the unpacked unique rows,
which is already asymptotically packed — correct for any decoder.
"""

from __future__ import annotations

import abc

import numpy as np

from .. import obs
from ..gf2.bitmat import unpack_rows
from ..sim.bitbatch import (
    BitSampleBatch,
    mask_shot_tail,
    num_shot_words,
    popcount_words,
    scatter_unique,
    unique_shot_words,
)
from ..sim.dem import DetectorErrorModel

# Unique-syndrome dedup ratio: decode.unique / decode.shots is the
# fraction of shots that actually reached a decoder.
_DECODE_SHOTS = obs.counter("decode.shots")
_DECODE_UNIQUE = obs.counter("decode.unique")


class Decoder(abc.ABC):
    """Predicts observable flips from detector outcomes."""

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem
        # Optional persistent syndrome→correction cache (repro.decoders.
        # syncache), consulted by decode_batch_packed before any decoding
        # runs.  None = no persistence; the in-memory per-decoder caches
        # still apply.
        self.syndrome_cache = None

    @abc.abstractmethod
    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        """Map (shots, num_detectors) syndromes to (shots, num_observables)
        predicted observable flips."""

    # -- persistent syndrome cache addressing ----------------------------------

    @property
    def cache_namespace(self) -> str:
        """Cache address component: decoder family + every parameter that
        changes its output.  Subclasses with such parameters must extend
        this — two decoders may share cache entries iff their namespaces
        (and DEM fingerprints) are equal."""
        return type(self).__name__.lower()

    @property
    def cache_key_words(self) -> int:
        """Packed words per cached syndrome key (full detector set)."""
        return max(1, (self.dem.num_detectors + 63) // 64)

    @property
    def cache_value_bytes(self) -> int:
        """Bytes per cached value: the observable bits, packed."""
        return max(1, (self.dem.num_observables + 7) // 8)

    def attach_syndrome_cache(self, cache) -> None:
        """Attach a persistent cache; the caller owns addressing (see
        :meth:`SyndromeCache.for_decoder`)."""
        self.syndrome_cache = cache

    def logical_failures(
        self, detectors: np.ndarray, observables: np.ndarray
    ) -> np.ndarray:
        """Per-shot boolean: did the decoder mispredict any observable?"""
        predictions = self.decode_batch(detectors)
        return (predictions != observables).any(axis=1)

    # -- packed-native decoding ----------------------------------------------

    def decode_batch_packed(self, batch: BitSampleBatch) -> BitSampleBatch:
        """Decode a packed batch; returns predictions in packed form.

        The result shares ``batch``'s detector words and carries the
        predicted observable flips as ``(num_observables, num_words)``
        packed words.  Bit-identical to running :meth:`decode_batch` on
        the unpacked syndromes (the property/litmus tests pin this), but
        decodes each *distinct* syndrome exactly once.
        """
        shots = batch.shots
        num_obs = self.dem.num_observables
        nwords = num_shot_words(shots)
        if shots == 0 or num_obs == 0:
            observables = np.zeros((num_obs, nwords), dtype=np.uint64)
            return BitSampleBatch(batch.detectors, observables, shots)
        if self.dem.num_detectors == 0:
            # Degenerate DEM: every shot shares the (empty) syndrome.
            # Decode it once and broadcast — note the prediction is not
            # necessarily zero (an MLE decoder may bet on a flip).
            pred = self.decode_batch(np.zeros((1, 0), dtype=np.uint8))
            pred = np.asarray(pred, dtype=np.uint8).reshape(1, num_obs)
            observables = np.zeros((num_obs, nwords), dtype=np.uint64)
            full = np.uint64(0xFFFFFFFFFFFFFFFF)
            tail = shots % 64
            for o in range(num_obs):
                if pred[0, o]:
                    observables[o, :] = full
                    if tail:
                        observables[o, -1] = full >> np.uint64(64 - tail)
            return BitSampleBatch(batch.detectors, observables, shots)
        unique, inverse = unique_shot_words(batch.shot_syndromes())
        _DECODE_SHOTS.add(shots)
        _DECODE_UNIQUE.add(unique.shape[0])
        predictions = self._decode_unique_cached(unique)
        observables = scatter_unique(predictions, inverse)
        return BitSampleBatch(batch.detectors, observables, shots)

    def _decode_unique_cached(self, unique: np.ndarray) -> np.ndarray:
        """Consult the persistent syndrome cache around ``_decode_unique_packed``.

        Cache hits skip the decoder entirely; only missed unique
        syndromes are decoded, and their corrections are written back.
        With no cache attached this is ``_decode_unique_packed``
        verbatim — the cached and uncached paths are litmus-tested to be
        bit-identical.
        """
        cache = self.syndrome_cache
        if cache is None:
            return self._decode_unique_packed(unique)
        num_obs = self.dem.num_observables
        values, hit_mask = cache.lookup(unique)
        predictions = np.zeros((unique.shape[0], num_obs), dtype=np.uint8)
        if hit_mask.any():
            bits = np.unpackbits(values[hit_mask], axis=1, bitorder="little")
            predictions[hit_mask] = bits[:, :num_obs]
        miss_idx = np.nonzero(~hit_mask)[0]
        if miss_idx.size:
            decoded = np.asarray(
                self._decode_unique_packed(unique[miss_idx]), dtype=np.uint8
            )
            predictions[miss_idx] = decoded
            packed = np.packbits(decoded, axis=1, bitorder="little")
            width = cache.value_bytes
            if packed.shape[1] < width:
                packed = np.pad(packed, ((0, 0), (0, width - packed.shape[1])))
            cache.insert(unique[miss_idx], packed[:, :width])
        return predictions

    def _decode_unique_packed(self, unique: np.ndarray) -> np.ndarray:
        """Decode deduplicated packed syndrome keys.

        ``unique``: ``(groups, ceil(num_detectors/64))`` uint64 distinct
        per-shot keys; returns ``(groups, num_observables)`` uint8.  The
        default unpacks the (small) unique set and defers to
        :meth:`decode_batch`; subclasses override for fully packed paths.
        """
        dense = unpack_rows(unique, self.dem.num_detectors)
        return np.asarray(self.decode_batch(dense), dtype=np.uint8)

    # -- failure counting ----------------------------------------------------

    def count_failures_packed(self, batch: BitSampleBatch) -> int:
        """Number of shots in ``batch`` whose observables are mispredicted.

        Fully packed: predictions come from
        :meth:`decode_batch_packed`, are XOR-ed against the sampled
        observable words, OR-reduced across observables, and popcounted.
        Tail bits are zero on both sides, so the popcount is exact —
        including for degenerate ``num_detectors == 0`` batches.
        """
        if batch.num_observables == 0:
            return 0
        predicted = self.decode_batch_packed(batch)
        mismatch = predicted.observables ^ batch.observables
        failed_any = np.bitwise_or.reduce(mismatch, axis=0)
        # Both operands keep the tail-bit invariant, but this count feeds
        # stored logical error rates — re-assert it so a single garbage
        # tail bit (e.g. from an externally built batch at a 63-shot
        # chunk boundary) can never inflate the failure count.
        mask_shot_tail(failed_any[None, :], batch.shots)
        return int(popcount_words(failed_any))

    def count_failures_dense(self, batch: BitSampleBatch) -> int:
        """Dense reference of :meth:`count_failures_packed`.

        Unpacks the whole batch and decodes shot-by-shot through
        :meth:`decode_batch` — the pre-packed-pipeline behavior, kept as
        the pinned baseline for cross-checks and benchmarks.
        """
        if batch.num_observables == 0:
            return 0
        dense = batch.to_dense()
        predictions = self.decode_batch(dense.detectors)
        return int((predictions != dense.observables).any(axis=1).sum())
