"""Decoder interface.

Two decode entry points share one contract:

``decode_batch``
    Dense ``(shots, num_detectors)`` → ``(shots, num_observables)``.
    The pinned reference implementation — simple, per-shot, and the
    ground truth the packed path is litmus-tested against.

``decode_batch_packed``
    :class:`~repro.sim.bitbatch.BitSampleBatch` in, ``BitSampleBatch``
    out (same detectors, predicted observables) — the production hot
    path.  The base implementation does **unique-syndrome batching**: at
    sub-threshold error rates most shots repeat a small set of syndromes
    (the all-zero syndrome alone is frequently >90% of shots), so shots
    are grouped by their packed per-shot syndrome words
    (:func:`~repro.sim.bitbatch.shot_words`), each distinct syndrome is
    decoded exactly once, and predictions are scattered back into packed
    observable words.  No dense ``(shots, num_detectors)`` array is ever
    materialized; the dense minority that does get decoded is the unique
    syndromes only.

Subclasses override ``_decode_unique_packed`` (or the full packed entry
point) to consume the deduplicated packed syndromes natively; the
default falls back to ``decode_batch`` on the unpacked unique rows,
which is already asymptotically packed — correct for any decoder.
"""

from __future__ import annotations

import abc

import numpy as np

from ..gf2.bitmat import unpack_rows
from ..sim.bitbatch import (
    BitSampleBatch,
    num_shot_words,
    popcount_words,
    scatter_unique,
    unique_shot_words,
)
from ..sim.dem import DetectorErrorModel


class Decoder(abc.ABC):
    """Predicts observable flips from detector outcomes."""

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem

    @abc.abstractmethod
    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        """Map (shots, num_detectors) syndromes to (shots, num_observables)
        predicted observable flips."""

    def logical_failures(
        self, detectors: np.ndarray, observables: np.ndarray
    ) -> np.ndarray:
        """Per-shot boolean: did the decoder mispredict any observable?"""
        predictions = self.decode_batch(detectors)
        return (predictions != observables).any(axis=1)

    # -- packed-native decoding ----------------------------------------------

    def decode_batch_packed(self, batch: BitSampleBatch) -> BitSampleBatch:
        """Decode a packed batch; returns predictions in packed form.

        The result shares ``batch``'s detector words and carries the
        predicted observable flips as ``(num_observables, num_words)``
        packed words.  Bit-identical to running :meth:`decode_batch` on
        the unpacked syndromes (the property/litmus tests pin this), but
        decodes each *distinct* syndrome exactly once.
        """
        shots = batch.shots
        num_obs = self.dem.num_observables
        nwords = num_shot_words(shots)
        if shots == 0 or num_obs == 0:
            observables = np.zeros((num_obs, nwords), dtype=np.uint64)
            return BitSampleBatch(batch.detectors, observables, shots)
        if self.dem.num_detectors == 0:
            # Degenerate DEM: every shot shares the (empty) syndrome.
            # Decode it once and broadcast — note the prediction is not
            # necessarily zero (an MLE decoder may bet on a flip).
            pred = self.decode_batch(np.zeros((1, 0), dtype=np.uint8))
            pred = np.asarray(pred, dtype=np.uint8).reshape(1, num_obs)
            observables = np.zeros((num_obs, nwords), dtype=np.uint64)
            full = np.uint64(0xFFFFFFFFFFFFFFFF)
            tail = shots % 64
            for o in range(num_obs):
                if pred[0, o]:
                    observables[o, :] = full
                    if tail:
                        observables[o, -1] = full >> np.uint64(64 - tail)
            return BitSampleBatch(batch.detectors, observables, shots)
        unique, inverse = unique_shot_words(batch.shot_syndromes())
        predictions = self._decode_unique_packed(unique)
        observables = scatter_unique(predictions, inverse)
        return BitSampleBatch(batch.detectors, observables, shots)

    def _decode_unique_packed(self, unique: np.ndarray) -> np.ndarray:
        """Decode deduplicated packed syndrome keys.

        ``unique``: ``(groups, ceil(num_detectors/64))`` uint64 distinct
        per-shot keys; returns ``(groups, num_observables)`` uint8.  The
        default unpacks the (small) unique set and defers to
        :meth:`decode_batch`; subclasses override for fully packed paths.
        """
        dense = unpack_rows(unique, self.dem.num_detectors)
        return np.asarray(self.decode_batch(dense), dtype=np.uint8)

    # -- failure counting ----------------------------------------------------

    def count_failures_packed(self, batch: BitSampleBatch) -> int:
        """Number of shots in ``batch`` whose observables are mispredicted.

        Fully packed: predictions come from
        :meth:`decode_batch_packed`, are XOR-ed against the sampled
        observable words, OR-reduced across observables, and popcounted.
        Tail bits are zero on both sides, so the popcount is exact —
        including for degenerate ``num_detectors == 0`` batches.
        """
        if batch.num_observables == 0:
            return 0
        predicted = self.decode_batch_packed(batch)
        mismatch = predicted.observables ^ batch.observables
        failed_any = np.bitwise_or.reduce(mismatch, axis=0)
        return int(popcount_words(failed_any))

    def count_failures_dense(self, batch: BitSampleBatch) -> int:
        """Dense reference of :meth:`count_failures_packed`.

        Unpacks the whole batch and decodes shot-by-shot through
        :meth:`decode_batch` — the pre-packed-pipeline behavior, kept as
        the pinned baseline for cross-checks and benchmarks.
        """
        if batch.num_observables == 0:
            return 0
        dense = batch.to_dense()
        predictions = self.decode_batch(dense.detectors)
        return int((predictions != dense.observables).any(axis=1).sum())
