"""Decoders: MWPM, BP+OSD, exact lookup, and the LER pipeline."""

from .base import Decoder
from .bposd import BpOsdDecoder
from .lookup import LookupDecoder
from .matching import MatchingDecoder, detector_subset_for_basis
from .metrics import (
    LogicalErrorRate,
    MemoryResult,
    dem_for,
    estimate_logical_error_rate,
    make_decoder,
)
from .syncache import SyndromeCache

__all__ = [
    "Decoder",
    "SyndromeCache",
    "BpOsdDecoder",
    "LookupDecoder",
    "MatchingDecoder",
    "detector_subset_for_basis",
    "LogicalErrorRate",
    "MemoryResult",
    "dem_for",
    "estimate_logical_error_rate",
    "make_decoder",
]
