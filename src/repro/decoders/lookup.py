"""Exact maximum-likelihood lookup decoding for tiny DEMs.

Enumerates error subsets, accumulating for every syndrome the most likely
observable pattern.  Exponential — strictly a test/reference decoder, and
the ground truth the paper's "MLE decoder" discussion (§4) refers to.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..gf2.bitmat import pack_rows
from ..sim.dem import DetectorErrorModel
from .base import Decoder


class LookupDecoder(Decoder):
    """Exact MLE over all error subsets (DEMs with <= ``max_errors``)."""

    def __init__(
        self,
        dem: DetectorErrorModel,
        max_errors: int = 18,
        max_weight: int | None = None,
    ):
        super().__init__(dem)
        self.max_weight = max_weight
        if dem.num_errors > max_errors and max_weight is None:
            raise ValueError(
                f"{dem.num_errors} mechanisms is too many for exact lookup; "
                "pass max_weight to bound the enumeration"
            )
        self.table: dict[bytes, tuple[float, bytes]] = {}
        probs = dem.probabilities()
        num_d, num_o = dem.num_detectors, dem.num_observables
        det_cols = np.zeros((dem.num_errors, num_d), dtype=np.uint8)
        obs_cols = np.zeros((dem.num_errors, num_o), dtype=np.uint8)
        for j, m in enumerate(dem.mechanisms):
            det_cols[j, list(m.detectors)] = 1
            obs_cols[j, list(m.observables)] = 1

        base = float(np.prod(1 - probs))
        indices = range(dem.num_errors)
        weights = range(
            0, (max_weight if max_weight is not None else dem.num_errors) + 1
        )
        for w in weights:
            for subset in combinations(indices, w):
                prob = base
                for j in subset:
                    prob *= probs[j] / (1 - probs[j])
                det = np.zeros(num_d, dtype=np.uint8)
                obs = np.zeros(num_o, dtype=np.uint8)
                for j in subset:
                    det ^= det_cols[j]
                    obs ^= obs_cols[j]
                key = det.tobytes()
                # MLE marginalizes over patterns: accumulate probability per
                # (syndrome, observable) and keep the argmax observable.
                entry = self.table.get(key)
                if entry is None or prob > entry[0]:
                    self.table[key] = (prob, obs.tobytes())

        # Packed-key mirror of the table: syndromes re-keyed by their
        # bit-packed words, so the packed decode path maps per-shot
        # syndrome keys to observable rows with zero unpacking.
        self._packed_table: dict[bytes, np.ndarray] = {}
        for key, (_, obs_bytes) in self.table.items():
            det = np.frombuffer(key, dtype=np.uint8)
            pkey = pack_rows(det[None, :]).tobytes()
            self._packed_table[pkey] = np.frombuffer(obs_bytes, dtype=np.uint8)

    @property
    def cache_namespace(self) -> str:
        # max_weight truncates the enumeration, changing predictions.
        return f"lookup:w{self.max_weight}"

    def _decode_unique_packed(self, unique: np.ndarray) -> np.ndarray:
        """Table lookup keyed directly on the packed syndrome words."""
        out = np.zeros((unique.shape[0], self.dem.num_observables), dtype=np.uint8)
        for i, key_row in enumerate(unique):
            hit = self._packed_table.get(key_row.tobytes())
            if hit is not None:
                out[i] = hit
        return out

    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        detectors = np.asarray(detectors, dtype=np.uint8)
        shots = detectors.shape[0]
        out = np.zeros((shots, self.dem.num_observables), dtype=np.uint8)
        for i in range(shots):
            entry = self.table.get(detectors[i].tobytes())
            if entry is not None:
                out[i] = np.frombuffer(entry[1], dtype=np.uint8)
        return out
