"""Persistent content-addressed syndrome→correction cache.

At sub-threshold error rates the same few syndromes dominate every job
that shares a DEM: one chunk, the next chunk, the neighboring campaign
grid point, yesterday's run.  The in-memory per-decoder caches already
exploit that within a process; this module makes the map durable and
shared.  A :class:`SyndromeCache` persists ``packed syndrome words →
packed observable flips`` per (DEM fingerprint, decoder namespace) in
the campaign's :class:`~repro.experiments.store.ResultStore` directory,
so decode cost across a campaign becomes sublinear in total shots —
each distinct syndrome is solved once, ever.

Addressing is by content, like the result store: the filename embeds
``DetectorErrorModel.fingerprint()`` (everything that determines decode
results) plus a decoder *namespace* (family + the parameters that change
its output, e.g. BP iteration budget or the matching detector subset).
A different circuit, noise level, or decoder config simply addresses a
different file — there is no invalidation protocol, and deleting the
cache directory is always safe.

The on-disk format mirrors the result store's crash tolerance, tuned
for millions of tiny records: one JSON header line (self-describing,
validated on load), then one ``<syndrome-hex> <value-hex>`` entry per
line.  Loading skips anything malformed — wrong length, bad hex, a
partial trailing line from a killed writer — so corruption degrades to
a cache *miss*, never a wrong correction.  Appending terminates any
orphan partial line first (the ResultStore idiom), which keeps the file
loadable under interleaved cross-process writers; duplicate entries are
harmless because decoding is deterministic, so last-write-wins equals
first-write-wins.
"""

from __future__ import annotations

import binascii
import hashlib
import json
import os
import re
from typing import TYPE_CHECKING

import numpy as np

from .. import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .base import Decoder

FORMAT = "syndrome-cache-v1"

# Fleet-visible instruments (per-instance .stats stay authoritative for
# a single handle; these aggregate every cache in the process).
_HITS = obs.counter("syncache.hits")
_MISSES = obs.counter("syncache.misses")
_INSERTS = obs.counter("syncache.inserts")
_LOOKUP_S = obs.histogram("syncache.lookup_s")

_TAG_SAFE = re.compile(r"[^A-Za-z0-9_.-]")


def _cache_stem(dem_key: str, namespace: str) -> str:
    # Namespaces carry human-readable decoder params; hash them into a
    # fixed-width filesystem-safe token.
    ns = hashlib.sha256(namespace.encode("utf-8")).hexdigest()[:12]
    return f"syn-{dem_key[:16]}-{ns}"


def _cache_filename(
    dem_key: str, namespace: str, writer_tag: str | None = None
) -> str:
    """File one (DEM, namespace) writer appends to.

    Untagged writers share the base ``<stem>.cache`` (appends tolerate
    interleaving, the PR-6 contract); a ``writer_tag`` — a service
    worker id — claims the private shard ``<stem>.w<tag>.cache``, so a
    whole fleet writing one cache directory never contends on a file
    at all.  Readers merge the base file and every writer shard.
    """
    stem = _cache_stem(dem_key, namespace)
    if writer_tag is None:
        return f"{stem}.cache"
    tag = _TAG_SAFE.sub("_", str(writer_tag))[:24]
    return f"{stem}.w{tag}.cache"


def summarize_cache_dir(directory: str | os.PathLike) -> dict[str, int]:
    """Cheap on-disk census of a syndrome-cache directory.

    Counts cache files and entry lines (header excluded) without
    parsing entries — for ``campaign status`` style reporting.
    """
    files = 0
    entries = 0
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if not (name.startswith("syn-") and name.endswith(".cache")):
            continue
        files += 1
        try:
            with open(os.path.join(directory, name), "rb") as fh:
                entries += max(0, sum(1 for _ in fh) - 1)
        except OSError:
            continue
    return {"files": files, "entries": entries}


class SyndromeCache:
    """One (DEM, decoder-namespace) syndrome→correction map, on disk.

    ``directory=None`` gives an ephemeral in-memory cache with the same
    API.  Keys are the raw bytes of packed per-shot syndrome words
    (``key_bytes`` long); values are fixed-width ``value_bytes`` byte
    strings whose meaning belongs to the owning decoder (the base
    :class:`~repro.decoders.base.Decoder` packs its predicted observable
    bits, little-endian).
    """

    def __init__(
        self,
        directory: str | os.PathLike | None,
        dem_key: str,
        namespace: str,
        key_bytes: int,
        value_bytes: int,
        writer_tag: str | None = None,
    ):
        self.directory = os.fspath(directory) if directory is not None else None
        self.dem_key = dem_key
        self.namespace = namespace
        self.writer_tag = writer_tag
        self.key_bytes = int(key_bytes)
        self.value_bytes = int(value_bytes)
        self._table: dict[bytes, bytes] = {}
        # Degraded mode: the file exists but is not ours (corrupt or
        # mismatched header).  Keep serving from memory, never write —
        # overwriting a file we cannot parse could destroy someone
        # else's data.
        self._read_only = False
        self.hits = 0
        self.misses = 0
        self.loaded = 0
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            self._load()

    # -- persistence ----------------------------------------------------------

    @property
    def path(self) -> str | None:
        """The file *this* handle appends to (its writer shard, if tagged)."""
        if self.directory is None:
            return None
        return os.path.join(
            self.directory,
            _cache_filename(self.dem_key, self.namespace, self.writer_tag),
        )

    def _sibling_paths(self) -> list[str]:
        """Every file of this (DEM, namespace): base + all writer shards."""
        assert self.directory is not None
        stem = _cache_stem(self.dem_key, self.namespace)
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        return [
            os.path.join(self.directory, name)
            for name in names
            if name == f"{stem}.cache"
            or (name.startswith(f"{stem}.w") and name.endswith(".cache"))
        ]

    def _header(self) -> str:
        return json.dumps(
            {
                "format": FORMAT,
                "dem": self.dem_key,
                "namespace": self.namespace,
                "key_bytes": self.key_bytes,
                "value_bytes": self.value_bytes,
            },
            sort_keys=True,
        )

    def _header_matches(self, line: str) -> bool:
        try:
            head = json.loads(line)
        except json.JSONDecodeError:
            return False
        return (
            isinstance(head, dict)
            and head.get("format") == FORMAT
            and head.get("dem") == self.dem_key
            and head.get("namespace") == self.namespace
            and head.get("key_bytes") == self.key_bytes
            and head.get("value_bytes") == self.value_bytes
        )

    def _load_file(self, path: str, own: bool) -> None:
        """Merge one cache file; ``own`` gates the read-only degrade."""
        try:
            with open(path, "rb") as fh:
                lines = fh.read().split(b"\n")
        except OSError:
            if own:
                self._read_only = True
            return
        try:
            header = lines[0].decode("utf-8") if lines else ""
        except UnicodeDecodeError:
            header = ""
        if not self._header_matches(header.strip()):
            # Not a cache we understand (truncated header, other format,
            # parameter drift).  Our own file: serve misses, never write
            # here.  Someone else's shard: just skip it — their
            # corruption must not poison our warm start.
            if own:
                self._read_only = True
            return
        key_hex = 2 * self.key_bytes
        value_hex = 2 * self.value_bytes
        table = self._table
        for line in lines[1:]:
            # Fixed-width "<key-hex> <value-hex>": anything else —
            # partial trailing line, garbled bytes, wrong widths — is
            # skipped and simply decodes as a miss.
            if len(line) != key_hex + 1 + value_hex or line[key_hex] != 0x20:
                continue
            try:
                key = binascii.unhexlify(line[:key_hex])
                value = binascii.unhexlify(line[key_hex + 1 :])
            except (binascii.Error, ValueError):
                continue
            table[key] = value

    def _load(self) -> None:
        """Merge the base file and every writer shard of this cache.

        Duplicate entries across files are harmless (decoding is
        deterministic: any writer of a key wrote the same value), so
        merge order does not matter.  Only *this handle's* append
        target can flip the cache read-only — a foreign or corrupt
        sibling degrades to fewer preloaded entries, never to silence.
        """
        own = self.path
        if own is None:
            return
        if os.path.exists(own):
            self._load_file(own, own=True)
        for path in self._sibling_paths():
            if path != own:
                self._load_file(path, own=False)
        self.loaded = len(self._table)

    def _append(self, entries: list[tuple[bytes, bytes]]) -> None:
        path = self.path
        if path is None or self._read_only or not entries:
            return
        payload = "".join(
            f"{key.hex()} {value.hex()}\n" for key, value in entries
        ).encode("ascii")
        try:
            with open(path, "a+b") as fh:
                if fh.tell() == 0:
                    fh.write((self._header() + "\n").encode("utf-8"))
                else:
                    # Terminate an orphan partial line from a killed
                    # writer so the loader drops exactly that orphan,
                    # not our first entry concatenated onto it.
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
                fh.write(payload)
                fh.flush()
        except OSError:
            # Disk trouble degrades to a warm in-memory cache.
            self._read_only = True

    # -- the map --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Look up packed key rows; returns ``(values, hit_mask)``.

        ``keys`` is ``(g, nwords)`` uint64; ``values`` is ``(g,
        value_bytes)`` uint8 with missed rows zero; ``hit_mask`` is a
        ``(g,)`` boolean.
        """
        clock = obs.StopWatch()
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        g = keys.shape[0]
        values = np.zeros((g, self.value_bytes), dtype=np.uint8)
        hit_mask = np.zeros(g, dtype=bool)
        table = self._table
        nhits = 0
        if table and g:
            # One tobytes + slicing beats a per-row ndarray.tobytes, and
            # joining the matched values amortizes the frombuffer cost —
            # this path runs once per chunk on every unique syndrome.
            raw = keys.tobytes()
            rb = keys.shape[1] * 8
            rows: list[int] = []
            found: list[bytes] = []
            for i in range(g):
                cached = table.get(raw[i * rb : (i + 1) * rb])
                if cached is not None:
                    rows.append(i)
                    found.append(cached)
            if rows:
                values[rows] = np.frombuffer(
                    b"".join(found), dtype=np.uint8
                ).reshape(len(rows), self.value_bytes)
                hit_mask[rows] = True
                nhits = len(rows)
        self.hits += nhits
        self.misses += g - nhits
        _HITS.add(nhits)
        _MISSES.add(g - nhits)
        _LOOKUP_S.record(clock.elapsed)
        return values, hit_mask

    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Record decoded corrections; persists immediately when on disk."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint8)
        if values.shape != (keys.shape[0], self.value_bytes):
            raise ValueError(
                f"expected values of shape {(keys.shape[0], self.value_bytes)}, "
                f"got {values.shape}"
            )
        fresh: list[tuple[bytes, bytes]] = []
        for i in range(keys.shape[0]):
            key = keys[i].tobytes()
            if key in self._table:
                continue
            value = values[i].tobytes()
            self._table[key] = value
            fresh.append((key, value))
        _INSERTS.add(len(fresh))
        self._append(fresh)

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._table),
            "loaded": self.loaded,
        }

    # -- construction for a decoder -------------------------------------------

    @classmethod
    def for_decoder(
        cls,
        decoder: "Decoder",
        directory: str | os.PathLike | None,
        writer_tag: str | None = None,
    ) -> "SyndromeCache":
        """The cache a decoder addresses: DEM fingerprint + its namespace."""
        return cls(
            directory=directory,
            dem_key=decoder.dem.fingerprint(),
            namespace=decoder.cache_namespace,
            key_bytes=decoder.cache_key_words * 8,
            value_bytes=decoder.cache_value_bytes,
            writer_tag=writer_tag,
        )


def compact_cache_dir(directory: str | os.PathLike) -> dict[str, int]:
    """Fold per-writer syndrome-cache shards back into their base files.

    For every ``<stem>.w<tag>.cache`` shard whose header matches its
    base, the entries are merged (sorted, deduplicated — any writer of
    a key wrote the same value) and the base ``<stem>.cache`` is
    rewritten atomically; the absorbed shards are then removed.  Files
    with unreadable or mismatched headers are left untouched.  Safe to
    run any time: worst case a racing writer's latest appends land in a
    fresh shard file that the next compaction absorbs.
    """
    directory = os.fspath(directory)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return {"files": 0, "absorbed": 0, "entries": 0}
    shards: dict[str, list[str]] = {}
    for name in names:
        if not (name.startswith("syn-") and name.endswith(".cache")):
            continue
        stem = name[: -len(".cache")]
        base = stem.split(".w", 1)[0]
        shards.setdefault(base, []).append(os.path.join(directory, name))
    absorbed = 0
    entries = 0
    compacted_files = 0
    for base, paths in shards.items():
        writer_shards = [p for p in paths if ".w" in os.path.basename(p)]
        if not writer_shards:
            continue
        headers: list[str] = []
        table: dict[bytes, bytes] = {}
        ok = True
        widths: tuple[int, int] | None = None
        for path in paths:
            try:
                with open(path, "rb") as fh:
                    lines = fh.read().split(b"\n")
                head = json.loads(lines[0].decode("utf-8"))
                kb, vb = int(head["key_bytes"]), int(head["value_bytes"])
            except (OSError, ValueError, KeyError, TypeError, UnicodeDecodeError):
                ok = False
                break
            if head.get("format") != FORMAT or (
                widths is not None and widths != (kb, vb)
            ):
                ok = False
                break
            widths = (kb, vb)
            headers.append(json.dumps(head, sort_keys=True))
            key_hex, value_hex = 2 * kb, 2 * vb
            for line in lines[1:]:
                if len(line) != key_hex + 1 + value_hex or line[key_hex] != 0x20:
                    continue
                try:
                    table[binascii.unhexlify(line[:key_hex])] = (
                        binascii.unhexlify(line[key_hex + 1 :])
                    )
                except (binascii.Error, ValueError):
                    continue
        if not ok or len(set(headers)) != 1:
            continue
        base_path = os.path.join(directory, base + ".cache")
        tmp = base_path + ".compact.tmp"
        with open(tmp, "wb") as fh:
            fh.write((headers[0] + "\n").encode("utf-8"))
            for key in sorted(table):
                fh.write(f"{key.hex()} {table[key].hex()}\n".encode("ascii"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, base_path)
        for path in writer_shards:
            try:
                os.remove(path)
            except OSError:
                pass
        absorbed += len(writer_shards)
        entries += len(table)
        compacted_files += 1
    return {"files": compacted_files, "absorbed": absorbed, "entries": entries}
