"""Belief propagation + ordered-statistics decoding (BP-LSD substitute).

The paper decodes its LP and RQT codes with BP-LSD [20]; the reproduction
uses the closely-related BP+OSD-0 pipeline: sum-product BP on the full
circuit-level check matrix, and when BP fails to converge, an OSD-0
post-processing step that Gaussian-eliminates the check matrix in order
of BP reliability and solves the syndrome exactly on the most-likely
information set.

BP is batched: all shots in a batch iterate together as (edges, shots)
message arrays, so per-iteration work is a handful of ``np.add.reduceat``
segment reductions.
"""

from __future__ import annotations

import numpy as np

from ..gf2.bitmat import BitMatrix, unpack_rows
from ..sim.dem import DetectorErrorModel
from .base import Decoder

_LLR_CLIP = 25.0
_TANH_CLIP = 0.999999999999


class BpOsdDecoder(Decoder):
    """Sum-product BP with OSD-0 fallback on the full DEM."""

    def __init__(
        self,
        dem: DetectorErrorModel,
        max_iterations: int = 30,
        osd: bool = True,
        osd_order: int = 0,
    ):
        """``osd_order`` > 0 enables the combination-sweep search (OSD-CS):
        after the order-0 solve, single flips and the greedy pair of the
        ``osd_order`` least-reliable information-set columns are also
        tried, keeping the lowest soft-weighted candidate."""
        super().__init__(dem)
        self.max_iterations = max_iterations
        self.osd = osd
        self.osd_order = osd_order
        h, l = dem.check_matrices()
        self.h = h.tocsr()
        self.l = l.tocsr()
        probs = np.clip(dem.probabilities(), 1e-12, 0.5 - 1e-9)
        self.prior_llr = np.log((1 - probs) / probs)

        # Edge list in CSR (row-major) order.
        coo = self.h.tocoo()
        order = np.lexsort((coo.col, coo.row))
        self.edge_row = coo.row[order]
        self.edge_col = coo.col[order]
        self.num_edges = len(self.edge_row)
        # Row segment starts for reduceat (rows are contiguous).  Every
        # detector must touch at least one mechanism or the segment
        # reductions would silently misalign.
        row_counts = np.bincount(self.edge_row, minlength=dem.num_detectors)
        if (row_counts == 0).any():
            raise ValueError("DEM has a detector with no incident errors")
        row_starts = np.searchsorted(self.edge_row, np.arange(dem.num_detectors))
        self.row_starts = row_starts
        # Column gathering: edges sorted by column.  Only columns that
        # actually touch a check get a reduceat segment — a mechanism
        # with no detector support (e.g. an undetectable logical) would
        # otherwise shift every later segment and silently corrupt the
        # variable-node update (or index past the edge list).
        self.col_order = np.argsort(self.edge_col, kind="stable")
        self.col_order_inv = np.argsort(self.col_order, kind="stable")
        self.col_sorted = self.edge_col[self.col_order]
        col_counts = np.bincount(self.edge_col, minlength=dem.num_errors)
        self.cols_present = np.nonzero(col_counts)[0]
        self.col_starts = np.searchsorted(self.col_sorted, self.cols_present)
        self._h_dense = np.asarray(self.h.todense(), dtype=np.uint8)
        self._cache: dict[bytes, np.ndarray] = {}
        self.bp_batch_size = 128

    @property
    def cache_namespace(self) -> str:
        # Every knob that changes BP+OSD output addresses a different
        # persistent cache file.
        return (
            f"bposd:i{self.max_iterations}:osd{int(self.osd)}"
            f":cs{self.osd_order}"
        )

    # -- BP core ----------------------------------------------------------------

    def _bp(self, syndromes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched normalized min-sum BP.

        ``syndromes``: (shots, D).  Returns (hard_decisions (shots, E),
        converged (shots,), posterior_llr (shots, E)).  Shots that satisfy
        their syndrome are compacted out of the message arrays, so the
        cost tracks the hard shots only.
        """
        shots, _ = syndromes.shape
        num_errors = self.dem.num_errors
        scale = np.float32(0.8)  # standard min-sum normalization
        prior_edge = self.prior_llr[self.edge_col].astype(np.float32)[:, None]

        active = np.arange(shots)
        var_to_check = np.tile(prior_edge, (1, shots))
        sign_target = (1.0 - 2.0 * syndromes.T[self.edge_row]).astype(np.float32)

        decisions = np.zeros((shots, num_errors), dtype=np.uint8)
        posterior = np.tile(
            self.prior_llr.astype(np.float32)[None, :], (shots, 1)
        )
        converged = np.zeros(shots, dtype=bool)

        for _ in range(self.max_iterations):
            # Check-node update: extrinsic sign and min|.| per row.
            mag = np.abs(var_to_check)
            neg = (var_to_check < 0)
            row_neg = np.add.reduceat(neg.astype(np.int8), self.row_starts, axis=0)
            ext_neg = (row_neg[self.edge_row] - neg) & 1
            row_min1 = np.minimum.reduceat(mag, self.row_starts, axis=0)
            at_min = mag == row_min1[self.edge_row]
            min_count = np.add.reduceat(at_min.astype(np.int8), self.row_starts, axis=0)
            mag_no_min = np.where(at_min, np.float32(np.inf), mag)
            row_min2 = np.minimum.reduceat(mag_no_min, self.row_starts, axis=0)
            row_min2 = np.where(min_count > 1, row_min1, row_min2)
            ext_min = np.where(
                at_min & (min_count[self.edge_row] == 1),
                row_min2[self.edge_row],
                row_min1[self.edge_row],
            )
            ext_min = np.minimum(ext_min, np.float32(_LLR_CLIP))
            check_to_var = scale * sign_target * (1.0 - 2.0 * ext_neg) * ext_min
            # Variable-node update.
            ctv_col = check_to_var[self.col_order]
            col_sum = np.zeros((num_errors, ctv_col.shape[1]), dtype=np.float32)
            col_sum[self.cols_present] = np.add.reduceat(
                ctv_col, self.col_starts, axis=0
            )
            post = self.prior_llr.astype(np.float32)[None, :] + col_sum.T
            var_to_check = prior_edge + col_sum[self.edge_col] - check_to_var
            # Hard decision + convergence; compact out converged shots.
            dec = (post < 0).astype(np.uint8)
            syn_hat = (self.h.dot(dec.T) % 2).astype(np.uint8).T
            ok = (syn_hat == syndromes[active]).all(axis=1)
            decisions[active] = dec
            posterior[active] = post
            converged[active] = ok
            if ok.all():
                break
            if ok.any():
                keep = ~ok
                active = active[keep]
                var_to_check = var_to_check[:, keep]
                sign_target = (
                    1.0 - 2.0 * syndromes[active].T[self.edge_row]
                ).astype(np.float32)
        return decisions, converged, posterior.astype(np.float64)

    # -- OSD-0 -------------------------------------------------------------------

    def _osd0(self, syndrome: np.ndarray, posterior: np.ndarray) -> np.ndarray:
        """Most-reliable-basis solve: H e = s with columns ranked by BP."""
        num_errors = self.dem.num_errors
        order = np.argsort(posterior)  # most-likely-error (lowest LLR) first
        permuted = np.concatenate(
            [self._h_dense[:, order], syndrome[:, None].astype(np.uint8)], axis=1
        )
        aug = BitMatrix.from_dense(permuted)
        pivots = aug.row_reduce(ncols=num_errors)
        reduced = aug.to_dense()
        rank = len(pivots)
        if np.any(reduced[rank:, -1]):
            # Inconsistent syndrome (cannot happen for sampled syndromes).
            return np.zeros(num_errors, dtype=np.uint8)
        e_perm = np.zeros(num_errors, dtype=np.uint8)
        for r, c in enumerate(pivots):
            e_perm[c] = reduced[r, -1]

        if self.osd_order > 0:
            e_perm = self._osd_combination_sweep(
                e_perm, reduced, pivots, order, rank
            )

        e = np.zeros(num_errors, dtype=np.uint8)
        e[order] = e_perm
        return e

    def _osd_combination_sweep(
        self,
        e0_perm: np.ndarray,
        reduced: np.ndarray,
        pivots: list[int],
        order: np.ndarray,
        rank: int,
    ) -> np.ndarray:
        """OSD-CS: flip the most plausible free columns and keep the
        candidate with the lowest total log-likelihood cost."""
        num_errors = self.dem.num_errors
        pivot_set = set(pivots)
        free_cols = [c for c in range(num_errors) if c not in pivot_set]
        sweep = free_cols[: self.osd_order]
        llr_perm = self.prior_llr[order]

        def cost(e_perm: np.ndarray) -> float:
            return float(llr_perm[e_perm.astype(bool)].sum())

        def flip(base: np.ndarray, col: int) -> np.ndarray:
            out = base.copy()
            out[col] ^= 1
            for r in range(rank):
                if reduced[r, col]:
                    out[pivots[r]] ^= 1
            return out

        best, best_cost = e0_perm, cost(e0_perm)
        singles: list[tuple[float, int, np.ndarray]] = []
        for col in sweep:
            cand = flip(e0_perm, col)
            c = cost(cand)
            singles.append((c, col, cand))
            if c < best_cost:
                best, best_cost = cand, c
        # Greedy order-2: the best single flip combined with the next-best
        # flip on a different column (flip() per column is an involution,
        # so stacking them yields the genuine pair candidate).
        if len(singles) >= 2:
            singles.sort(key=lambda t: t[0])
            _, col_a, cand_a = singles[0]
            for _, col_b, _ in singles[1:]:
                if col_b != col_a:
                    pair = flip(cand_a, col_b)
                    c = cost(pair)
                    if c < best_cost:
                        best, best_cost = pair, c
                    break
        return best

    # -- public API ----------------------------------------------------------------

    def _decode_unique_dense(self, unique: np.ndarray) -> np.ndarray:
        """Decode already-deduplicated dense syndromes, with caching.

        ``unique``: ``(groups, num_detectors)`` distinct syndromes.
        Both decode entry points funnel here, so the dense and packed
        paths share one cache (keyed by dense syndrome bytes) and one
        BP/OSD pipeline — bit-identical results by construction.
        """
        unique = np.asarray(unique, dtype=np.uint8)
        results = np.zeros((unique.shape[0], self.dem.num_observables), dtype=np.uint8)
        to_solve = []
        for i in range(unique.shape[0]):
            key = unique[i].tobytes()
            cached = self._cache.get(key)
            if cached is not None:
                results[i] = cached
            else:
                to_solve.append(i)
        for start in range(0, len(to_solve), self.bp_batch_size):
            chunk = to_solve[start : start + self.bp_batch_size]
            batch = unique[chunk]
            decisions, converged, posterior = self._bp(batch)
            for j, i in enumerate(chunk):
                if converged[j] or not self.osd:
                    e = decisions[j]
                else:
                    e = self._osd0(batch[j], posterior[j])
                obs = (self.l.dot(e) % 2).astype(np.uint8)
                results[i] = obs
                self._cache[unique[i].tobytes()] = obs
        return results

    def _decode_unique_packed(self, unique: np.ndarray) -> np.ndarray:
        # BP+OSD consumes the deduplicated *dense* minority: unpack just
        # the distinct syndromes (a few rows, not the batch) and reuse
        # the shared cache + BP/OSD pipeline.
        return self._decode_unique_dense(
            unpack_rows(unique, self.dem.num_detectors)
        )

    def decode_batch(self, detectors: np.ndarray) -> np.ndarray:
        detectors = np.asarray(detectors, dtype=np.uint8)
        shots = detectors.shape[0]
        if self.dem.num_detectors == 0:
            # No checks: BP trivially converges to the all-zero error
            # (priors all favor "no flip"), so every prediction is zero.
            # Without this guard the segment reductions in ``_bp`` choke
            # on empty row segments.
            return np.zeros((shots, self.dem.num_observables), dtype=np.uint8)

        # Deduplicate syndromes (sub-threshold sampling repeats them a lot).
        unique, inverse = np.unique(detectors, axis=0, return_inverse=True)
        # numpy 2.0 reshaped the axis-aware inverse to keep the input's
        # dimensionality (reverted to flat in 2.1); flatten so indexing
        # below is correct on 1.x, 2.0.x, and 2.1+.
        inverse = np.asarray(inverse).reshape(-1)
        results = self._decode_unique_dense(unique)
        return results[inverse]
