"""Weighted CNF models with the paper's tree-structured XOR encoding.

Paper §5.2 formulates min-weight logical error search as MaxSAT:

* a variable per error and per syndrome/logical node;
* hard parity constraints ``S_i = E_j (+) ... (+) E_k`` (rows of H') and
  ``L_i = E_j (+) ... (+) E_k`` (rows of L');
* hard constraints: all syndromes false, at least one logical true;
* a soft unit clause ``not E_i`` per error, so the optimum is the fewest
  errors satisfying the hard constraints.

Multivariate XORs are broken into a balanced tree of 3-literal XORs using
auxiliary variables (the paper's standard trick to avoid the exponential
direct CNF), and each small XOR is Tseitin-expanded into CNF.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WCNF:
    """A weighted CNF instance (hard clauses + unit soft clauses)."""

    num_vars: int = 0
    hard: list[tuple[int, ...]] = field(default_factory=list)
    soft: list[tuple[int, float]] = field(default_factory=list)  # (literal, weight)
    names: dict[str, int] = field(default_factory=dict)

    def new_var(self, name: str | None = None) -> int:
        """Allocate a variable; returns its positive literal (1-based)."""
        self.num_vars += 1
        if name is not None:
            if name in self.names:
                raise ValueError(f"duplicate variable name {name!r}")
            self.names[name] = self.num_vars
        return self.num_vars

    def add_hard(self, *literals: int) -> None:
        if not literals:
            raise ValueError("empty clause would make the formula UNSAT")
        self.hard.append(tuple(literals))

    def add_soft(self, literal: int, weight: float = 1.0) -> None:
        self.soft.append((literal, weight))

    # -- XOR encodings ------------------------------------------------------------

    def add_xor2_equals(self, out: int, a: int, b: int) -> None:
        """Hard clauses for out = a (+) b (Tseitin expansion, 4 clauses)."""
        self.add_hard(-out, a, b)
        self.add_hard(-out, -a, -b)
        self.add_hard(out, -a, b)
        self.add_hard(out, a, -b)

    def add_equal(self, out: int, a: int) -> None:
        self.add_hard(-out, a)
        self.add_hard(out, -a)

    def add_xor_tree(self, out: int, inputs: list[int]) -> None:
        """out = XOR(inputs) via a balanced tree of auxiliaries (§5.2)."""
        if not inputs:
            # XOR of nothing is false.
            self.add_hard(-out)
            return
        layer = list(inputs)
        while len(layer) > 1:
            next_layer: list[int] = []
            for i in range(0, len(layer) - 1, 2):
                if len(layer) == 2:
                    # Final pair feeds the output directly.
                    aux = out
                else:
                    aux = self.new_var()
                self.add_xor2_equals(aux, layer[i], layer[i + 1])
                next_layer.append(aux)
            if len(layer) % 2 == 1:
                next_layer.append(layer[-1])
            layer = next_layer
        if layer[0] != out:
            self.add_equal(out, layer[0])

    # -- statistics (Table 2 columns) -----------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "variables": self.num_vars,
            "hard_clauses": len(self.hard),
            "soft_clauses": len(self.soft),
        }
