"""MaxSAT substrate: WCNF models and a branch-and-bound solver."""

from .solver import MaxSatResult, MaxSatSolver
from .wcnf import WCNF

__all__ = ["MaxSatResult", "MaxSatSolver", "WCNF"]
