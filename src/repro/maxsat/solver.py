"""A branch-and-bound MaxSAT solver (Loandra substitute).

DPLL with unit propagation on the hard clauses, plus a cost bound on
violated soft clauses.  Decision order prefers satisfying soft clauses
(assign errors "off" first), so the first solution found is often close
to optimal and the bound prunes aggressively — the same behaviour class
as Loandra's core-boosted *linear search* (start from a feasible model
and tighten the cost).

The solver is exact: it returns an optimal model or proves hard-UNSAT.
A wall-clock timeout makes it safe to embed in benchmarks (the paper ran
Loandra with a 360 s timeout, §5.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .wcnf import WCNF


@dataclass
class MaxSatResult:
    """Outcome of a MaxSAT solve."""

    status: str  # "optimal", "timeout", "unsat"
    cost: float | None
    assignment: dict[int, bool] | None
    elapsed: float
    nodes_explored: int


class MaxSatSolver:
    """Exact branch-and-bound over a :class:`WCNF`."""

    def __init__(self, wcnf: WCNF, timeout: float = 360.0):
        self.wcnf = wcnf
        self.timeout = timeout
        n = wcnf.num_vars
        # Occurrence lists: literal -> clause indices.
        self.clauses = [list(c) for c in wcnf.hard]
        self.occurs: dict[int, list[int]] = {}
        for ci, clause in enumerate(self.clauses):
            for lit in clause:
                self.occurs.setdefault(lit, []).append(ci)
        self.soft = list(wcnf.soft)
        self.soft_by_var: dict[int, float] = {}
        for lit, w in self.soft:
            self.soft_by_var[lit] = self.soft_by_var.get(lit, 0.0) + w
        self.num_vars = n

    # -- propagation ---------------------------------------------------------------

    def _propagate(
        self, assign: dict[int, bool], trail: list[int]
    ) -> bool:
        """Unit propagation; returns False on conflict.

        ``trail`` records variables assigned here so the caller can undo.
        """
        changed = True
        while changed:
            changed = False
            for ci, clause in enumerate(self.clauses):
                unassigned = None
                satisfied = False
                count_unassigned = 0
                for lit in clause:
                    var = abs(lit)
                    val = assign.get(var)
                    if val is None:
                        unassigned = lit
                        count_unassigned += 1
                        if count_unassigned > 1:
                            break
                    elif (lit > 0) == val:
                        satisfied = True
                        break
                if satisfied or count_unassigned > 1:
                    continue
                if count_unassigned == 0:
                    return False  # conflict
                var = abs(unassigned)
                assign[var] = unassigned > 0
                trail.append(var)
                changed = True
        return True

    def _current_cost(self, assign: dict[int, bool]) -> float:
        cost = 0.0
        for lit, w in self.soft:
            var = abs(lit)
            val = assign.get(var)
            if val is not None and ((lit > 0) != val):
                cost += w
        return cost

    # -- search -----------------------------------------------------------------------

    def solve(self) -> MaxSatResult:
        start = time.monotonic()
        best_cost: float | None = None
        best_assign: dict[int, bool] | None = None
        nodes = 0
        timed_out = False

        assign: dict[int, bool] = {}
        trail: list[int] = []
        if not self._propagate(assign, trail):
            return MaxSatResult("unsat", None, None, time.monotonic() - start, 1)

        # Branch on soft variables first (cheapest-first = errors off).
        soft_vars = [abs(lit) for lit, _ in self.soft]
        other_vars = [
            v for v in range(1, self.num_vars + 1) if v not in set(soft_vars)
        ]
        order = soft_vars + other_vars

        def preferred(var: int) -> bool:
            # Satisfy the soft literal first if the variable has one.
            lit = None
            if var in self.soft_by_var:
                lit = var
            elif -var in self.soft_by_var:
                lit = -var
            return lit is None or lit > 0

        def recurse(depth_assign: dict[int, bool]) -> None:
            nonlocal best_cost, best_assign, nodes, timed_out
            if timed_out or time.monotonic() - start > self.timeout:
                timed_out = True
                return
            nodes += 1
            cost = self._current_cost(depth_assign)
            if best_cost is not None and cost >= best_cost:
                return  # bound
            var = next((v for v in order if v not in depth_assign), None)
            if var is None:
                best_cost = cost
                best_assign = dict(depth_assign)
                return
            first = preferred(var)
            for value in (first, not first):
                local_trail: list[int] = []
                depth_assign[var] = value
                local_trail.append(var)
                if self._propagate(depth_assign, local_trail):
                    recurse(depth_assign)
                for v in local_trail:
                    del depth_assign[v]
                if timed_out:
                    return

        recurse(assign)
        elapsed = time.monotonic() - start
        if best_assign is None:
            status = "timeout" if timed_out else "unsat"
            return MaxSatResult(status, None, None, elapsed, nodes)
        status = "timeout" if timed_out else "optimal"
        # Timeout with an incumbent still returns the best model found.
        return MaxSatResult(status, best_cost, best_assign, elapsed, nodes)
