"""Shared experiment plumbing: result rows and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """A named table of result rows (one per measured configuration)."""

    name: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, **kwargs: Any) -> None:
        self.rows.append(kwargs)

    def columns(self) -> list[str]:
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def format_table(self) -> str:
        """Plain-text table in the style of the paper's result listings."""
        cols = self.columns()
        if not cols:
            return f"== {self.name} ==\n(no rows)"

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                if value != 0 and (abs(value) < 1e-2 or abs(value) >= 1e4):
                    return f"{value:.3e}"
                return f"{value:.4g}"
            return str(value)

        table = [[fmt(row.get(c, "")) for c in cols] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in table)) if table else len(c)
            for i, c in enumerate(cols)
        ]
        lines = [f"== {self.name} =="]
        if self.notes:
            lines.append(self.notes)
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.format_table())

    def to_csv(self) -> str:
        """Comma-separated export (header + rows) for archiving results."""
        cols = self.columns()
        lines = [",".join(cols)]
        for row in self.rows:
            cells = []
            for c in cols:
                value = row.get(c, "")
                text = repr(value) if isinstance(value, float) else str(value)
                if "," in text or '"' in text:
                    text = '"' + text.replace('"', '""') + '"'
                cells.append(text)
            lines.append(",".join(cells))
        return "\n".join(lines)
