"""Chunked parallel shot runner — the one batching/parallelism entry point.

Every figure's dominant cost is the same loop: sample a batch of shots
from a compiled DEM, decode, count logical failures.  This module owns
that loop.  Shots are sharded into fixed-size chunks (rounded up to a
multiple of 64 so packed batches stay word-aligned), every chunk gets
its own RNG substream spawned from one :class:`numpy.random.SeedSequence`
root, and chunks run either inline or fanned out over processes (fork
start method, like the paper's 48-core runs in §6.1).

Chunk results stream back in chunk order regardless of worker count and
are accumulated in that order, so the outcome — including ``max_failures``
early stopping — is a pure function of the seed root: ``workers=1`` and
``workers=N`` give bit-identical estimates (see
``tests/test_shotrunner.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..analysis.stats import RateEstimate
from ..decoders.base import Decoder
from ..decoders.metrics import LogicalErrorRate, MemoryResult, dem_for, make_decoder
from ..decoders.syncache import SyndromeCache
from ..gf2.bitmat import unpack_rows
from ..noise.spec import resolve_noise
from ..rareevent.sampler import WeightStratifiedSampler
from ..sim.bitbatch import WORD_BITS, BitSampleBatch
from ..sim.dem import DetectorErrorModel
from ..sim.sampler import DemSampler

_ALIGN = WORD_BITS

# Chunk-latency instruments; the matching sample/decode spans land in
# the trace sidecars when a telemetry dir is configured.
_CHUNK_SAMPLE_S = obs.histogram("chunk.sample_s")
_CHUNK_DECODE_S = obs.histogram("chunk.decode_s")


@dataclass(frozen=True)
class ChunkResult:
    """Outcome of one chunk of shots."""

    index: int
    shots: int
    failures: int


@dataclass(frozen=True)
class ExecutionConfig:
    """How a shot loop executes — everything that is *not* the physics.

    One bundle for the keyword sprawl that used to ride every runner
    signature (``workers``, ``chunk_size``, ``max_failures``,
    ``streaming``, ``dense_reference``, sampler/decoder injection, the
    syndrome cache), threaded uniformly through
    :func:`run_shot_chunks`,
    :func:`estimate_logical_error_rate_chunked`, and
    :func:`repro.experiments.campaign.execute_job`.  The old keywords
    keep working through a deprecation shim that warns once per entry
    point.

    Only ``chunk_shots`` and ``max_failures`` affect results (chunking
    feeds RNG substreams; the failure cap truncates consumption) —
    which is why campaign jobs hash their own copies of those two and
    override whatever a config says.  Everything else changes how fast
    or where, never what.
    """

    workers: int = 1
    chunk_shots: int = 5_000
    max_failures: int | None = None
    streaming: bool = True
    dense_reference: bool = False
    sampler: DemSampler | None = None
    dec: Decoder | None = None
    syndrome_cache_dir: str | None = None
    # Service workers write their syndrome-cache entries to a private
    # per-writer shard file (see repro.decoders.syncache) so a fleet
    # never interleaves appends in one cache file.
    syndrome_writer_tag: str | None = None

    def replace(self, **changes) -> "ExecutionConfig":
        return dataclasses.replace(self, **changes)


# Old keyword -> ExecutionConfig field, for the deprecation shim.
_LEGACY_KEYWORDS = {
    "workers": "workers",
    "chunk_size": "chunk_shots",
    "chunk_shots": "chunk_shots",
    "max_failures": "max_failures",
    "streaming": "streaming",
    "dense_reference": "dense_reference",
    "sampler": "sampler",
    "dec": "dec",
    "syndrome_cache_dir": "syndrome_cache_dir",
    "syndrome_writer_tag": "syndrome_writer_tag",
}

_legacy_warned: set[str] = set()


def resolve_execution(
    entry_point: str,
    config: ExecutionConfig | None,
    legacy: dict[str, object],
) -> ExecutionConfig:
    """Merge legacy keyword arguments into an :class:`ExecutionConfig`.

    Unknown keywords raise ``TypeError`` (they are typos, not legacy);
    known ones override the config field they map to and emit one
    ``DeprecationWarning`` per entry point per process.
    """
    config = config or ExecutionConfig()
    if not legacy:
        return config
    unknown = set(legacy) - set(_LEGACY_KEYWORDS)
    if unknown:
        raise TypeError(
            f"{entry_point}() got unexpected keyword arguments {sorted(unknown)}"
        )
    if entry_point not in _legacy_warned:
        _legacy_warned.add(entry_point)
        warnings.warn(
            f"passing {sorted(legacy)} to {entry_point}() as keywords is "
            "deprecated; bundle them in an ExecutionConfig "
            "(repro.api.ExecutionConfig) and pass config=...",
            DeprecationWarning,
            stacklevel=3,
        )
    return config.replace(
        **{_LEGACY_KEYWORDS[k]: v for k, v in legacy.items()}
    )


def plan_chunks(shots: int, chunk_size: int) -> list[int]:
    """Split ``shots`` into chunk sizes.

    ``chunk_size`` is rounded up to a multiple of 64 so every chunk but
    the last is word-aligned in the packed representation.
    """
    if shots <= 0:
        return []
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    aligned = ((chunk_size + _ALIGN - 1) // _ALIGN) * _ALIGN
    full, rest = divmod(shots, aligned)
    return [aligned] * full + ([rest] if rest else [])


def _json_state_default(value):
    """JSON fallback for numpy pieces inside ``BitGenerator.state`` dicts."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"unserializable state component: {type(value).__name__}")


def spawn_chunk_seeds(
    rng: np.random.Generator, n: int
) -> list[np.random.SeedSequence]:
    """Spawn ``n`` child seed sequences from a generator's seed root.

    Chunk ``i`` always gets child ``i`` of the root's current spawn
    counter, so the streams do not depend on which worker runs which
    chunk — the determinism guarantee of the whole runner.

    Never consumes the caller's stream.  For exotic bit generators
    without a ``seed_seq`` the root is a pure function of the
    generator's *state* (the old fallback drew from the rng, silently
    perturbing the caller's subsequent draws); consecutive calls on such
    an un-advanced generator therefore return identical children — the
    ``seed_seq`` path, which every numpy generator has, advances its
    spawn counter per call as before.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        state = rng.bit_generator.state
        digest = hashlib.sha256(
            json.dumps(state, sort_keys=True, default=_json_state_default).encode()
        ).digest()
        entropy = np.frombuffer(digest, dtype=np.uint32)
        seed_seq = np.random.SeedSequence(entropy=[int(w) for w in entropy])
    return seed_seq.spawn(n)


# Module-level state for process-pool workers (set by the initializer in
# each worker process; the inline workers=1 path uses locals instead so
# the runner stays re-entrant).
_WORKER_SAMPLER: DemSampler | None = None
_WORKER_DECODER: Decoder | None = None
_WORKER_DENSE: bool = False


def _init_worker(
    dem: DetectorErrorModel,
    basis: str,
    decoder: str,
    dense_reference: bool,
    syndrome_cache_dir: str | None = None,
) -> None:
    global _WORKER_SAMPLER, _WORKER_DECODER, _WORKER_DENSE
    _WORKER_SAMPLER = DemSampler(dem)
    _WORKER_DECODER = make_decoder(dem, basis, decoder)
    _WORKER_DENSE = dense_reference
    if syndrome_cache_dir is not None:
        # Each worker opens its own handle on the shared cache file;
        # concurrent appends are tolerated by the format (partial-line
        # skipping + deterministic duplicate values).
        _WORKER_DECODER.attach_syndrome_cache(
            SyndromeCache.for_decoder(_WORKER_DECODER, syndrome_cache_dir)
        )


def _sample_chunk(
    sampler: DemSampler, job: tuple[int, int, np.random.SeedSequence]
) -> BitSampleBatch:
    """Sampling half of a chunk: pure function of the chunk's own seed,
    so it can run on a prefetch thread without touching decode state."""
    index, chunk_shots, seed = job
    clock = obs.StopWatch()
    with obs.span("sample", chunk=index, shots=chunk_shots):
        rng = np.random.default_rng(seed)
        batch = sampler.sample_packed(chunk_shots, rng)
    _CHUNK_SAMPLE_S.record(clock.elapsed)
    return batch


def _decode_chunk(
    dec: Decoder,
    job: tuple[int, int, np.random.SeedSequence],
    batch: BitSampleBatch,
    dense_reference: bool,
) -> ChunkResult:
    index, chunk_shots, _ = job
    clock = obs.StopWatch()
    with obs.span("decode", chunk=index, shots=chunk_shots) as sp:
        if dense_reference:
            failures = dec.count_failures_dense(batch)
        else:
            failures = dec.count_failures_packed(batch)
        sp.set(failures=failures)
    _CHUNK_DECODE_S.record(clock.elapsed)
    return ChunkResult(index=index, shots=chunk_shots, failures=failures)


def _run_chunk_with(
    sampler: DemSampler,
    dec: Decoder,
    job: tuple[int, int, np.random.SeedSequence],
    dense_reference: bool = False,
) -> ChunkResult:
    return _decode_chunk(dec, job, _sample_chunk(sampler, job), dense_reference)


def _run_chunk(job: tuple[int, int, np.random.SeedSequence]) -> ChunkResult:
    if _WORKER_SAMPLER is None or _WORKER_DECODER is None:
        raise RuntimeError("worker pool not initialized")
    return _run_chunk_with(_WORKER_SAMPLER, _WORKER_DECODER, job, _WORKER_DENSE)


def run_shot_chunks(
    dem: DetectorErrorModel,
    shots: int,
    basis: str = "z",
    decoder: str = "auto",
    rng: np.random.Generator | None = None,
    config: ExecutionConfig | None = None,
    on_chunk: Callable[[ChunkResult], None] | None = None,
    **legacy,
) -> RateEstimate:
    """Sample/decode ``shots`` shots of one DEM in chunks.

    Execution knobs — worker fan-out, chunk size, early-stop cap,
    streaming overlap, sampler/decoder injection, the persistent
    syndrome cache — ride one :class:`ExecutionConfig` (the old
    keywords still work, deprecation-warned once per process).

    ``on_chunk`` streams per-chunk results (in chunk order) to the
    caller as they are accumulated.  ``config.max_failures`` stops
    after the first chunk that pushes the failure count past the cap,
    applied in chunk order, so early stopping is worker-count
    independent; the returned estimate reports the shots actually
    consumed (the chunks accounted before the stop), never the planned
    budget, so its Wilson interval stays honest.

    ``config.sampler``/``config.dec`` let a caller with a compile cache
    (the campaign engine) reuse a pre-built sampler and decoder on the
    inline path; with ``workers > 1`` each pool worker builds its own
    instead.

    On the inline path, ``config.streaming`` (default) overlaps
    sampling of chunk ``k+1`` (on a single prefetch thread) with
    decoding of chunk ``k``.  Each chunk's sampling is a pure function
    of its own spawned seed, so the overlap is bit-identical to the
    sequential loop; a ``max_failures`` stop wastes at most one
    presampled chunk.

    ``config.syndrome_cache_dir`` attaches a persistent
    :class:`~repro.decoders.syncache.SyndromeCache` (content-addressed
    by DEM fingerprint + decoder namespace) to the decoder — inline and
    in every pool worker — so distinct syndromes decoded by any earlier
    chunk, job, or run are served from disk.  A decoder injected with a
    cache already attached keeps it.

    The hot path is fully packed: chunks are sampled packed and decoded
    through :meth:`~repro.decoders.base.Decoder.decode_batch_packed`
    (unique-syndrome batching), so no dense ``(shots, num_detectors)``
    array is ever materialized.  ``config.dense_reference`` routes
    decoding through the pinned dense path instead
    (:meth:`~repro.decoders.base.Decoder.count_failures_dense`) — same
    estimates by construction, kept for cross-checks and benchmarks.
    """
    cfg = resolve_execution("run_shot_chunks", config, legacy)
    workers = cfg.workers
    max_failures = cfg.max_failures
    dense_reference = cfg.dense_reference
    sampler, dec = cfg.sampler, cfg.dec
    syndrome_cache_dir = cfg.syndrome_cache_dir
    rng = rng or np.random.default_rng()
    sizes = plan_chunks(shots, cfg.chunk_shots)
    seeds = spawn_chunk_seeds(rng, len(sizes))
    jobs = [(i, size, seed) for i, (size, seed) in enumerate(zip(sizes, seeds))]
    if not jobs:
        return RateEstimate(0, 0)

    failures = 0
    done = 0

    def _account(result: ChunkResult) -> bool:
        nonlocal failures, done
        failures += result.failures
        done += result.shots
        if on_chunk is not None:
            on_chunk(result)
        return max_failures is not None and failures >= max_failures

    if workers <= 1:
        if sampler is None:
            sampler = DemSampler(dem)
        if dec is None:
            dec = make_decoder(dem, basis, decoder)
        if (
            syndrome_cache_dir is not None
            and getattr(dec, "syndrome_cache", None) is None
        ):
            dec.attach_syndrome_cache(
                SyndromeCache.for_decoder(
                    dec, syndrome_cache_dir, writer_tag=cfg.syndrome_writer_tag
                )
            )
        if cfg.streaming and len(jobs) > 1:
            # DemSampler is read-only after construction and each chunk
            # samples from its own generator, so one prefetch thread can
            # sample chunk k+1 while the main thread decodes chunk k.
            # On early exit (max_failures tripped, or decode raised) the
            # presampled chunk is discarded — shut down without waiting
            # for it, or the caller would block on a full chunk sample
            # nobody will read (tests/test_shotrunner.py pins this).
            prefetch = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-prefetch"
            )
            pending = None
            try:
                pending = prefetch.submit(_sample_chunk, sampler, jobs[0])
                for k, job in enumerate(jobs):
                    batch = pending.result()
                    pending = None
                    if k + 1 < len(jobs):
                        pending = prefetch.submit(
                            _sample_chunk, sampler, jobs[k + 1]
                        )
                    if _account(_decode_chunk(dec, job, batch, dense_reference)):
                        break
            finally:
                if pending is not None:
                    pending.cancel()
                prefetch.shutdown(wait=False, cancel_futures=True)
        else:
            for job in jobs:
                if _account(_run_chunk_with(sampler, dec, job, dense_reference)):
                    break
    else:
        workers = min(workers, len(jobs), os.cpu_count() or 1)
        # Prefer fork (cheap workers, DEM shared copy-on-write, like the
        # paper's multicore runs); fall back to the platform default where
        # fork is unavailable — correctness is unaffected, only startup cost.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(dem, basis, decoder, dense_reference, syndrome_cache_dir),
        )
        try:
            # Keep a bounded in-flight window and consume results strictly
            # in chunk order: accounting stays deterministic, and once
            # max_failures trips, chunks beyond the window were never
            # submitted — the early stop actually saves their work.
            window = 2 * workers
            pending: dict[int, object] = {}
            next_submit = 0

            def _fill_window() -> None:
                nonlocal next_submit
                while next_submit < len(jobs) and len(pending) < window:
                    pending[next_submit] = pool.submit(_run_chunk, jobs[next_submit])
                    next_submit += 1

            _fill_window()
            for i in range(len(jobs)):
                if _account(pending.pop(i).result()):
                    break
                _fill_window()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
    return RateEstimate(failures, done)


# -- stratified (rare-event) chunk running ----------------------------------
#
# Same chunking/seeding discipline as run_shot_chunks, but each chunk
# draws shots *conditioned on a fixed error weight* through
# repro.rareevent.sampler.  There is no early stopping and accumulation
# is a per-stratum sum, so the outcome is a pure function of the seed
# root for any worker count.


@dataclass(frozen=True)
class StratumChunkResult:
    """Outcome of one chunk of fixed-weight shots."""

    index: int
    weight: int
    shots: int
    failures: int
    # Importance-weighted failure sums (equal to `failures` in
    # proportional mode, where every weight is exactly 1).
    weighted_failures: float
    weighted_sq: float


@dataclass
class StratumTally:
    """Accumulated counts for one stratum across chunks and rounds."""

    weight: int
    shots: int = 0
    failures: int = 0
    weighted_failures: float = 0.0
    weighted_sq: float = 0.0

    def add(self, result: StratumChunkResult) -> None:
        self.shots += result.shots
        self.failures += result.failures
        self.weighted_failures += result.weighted_failures
        self.weighted_sq += result.weighted_sq


_STRAT_SAMPLER: WeightStratifiedSampler | None = None
_STRAT_DECODER: Decoder | None = None
_STRAT_MODE: str = "proportional"


def _init_stratified_worker(
    dem: DetectorErrorModel, basis: str, decoder: str, max_weight: int, mode: str
) -> None:
    global _STRAT_SAMPLER, _STRAT_DECODER, _STRAT_MODE
    _STRAT_SAMPLER = WeightStratifiedSampler(dem, max_weight=max_weight)
    _STRAT_DECODER = make_decoder(dem, basis, decoder)
    _STRAT_MODE = mode


def _run_stratified_chunk_with(
    sampler: WeightStratifiedSampler,
    dec: Decoder,
    job: tuple[int, int, int, np.random.SeedSequence],
    mode: str,
) -> StratumChunkResult:
    index, weight, chunk_shots, seed = job
    rng = np.random.default_rng(seed)
    if mode == "proportional":
        batch = sampler.sample_at_weight(weight, chunk_shots, rng)
        failures = dec.count_failures_packed(batch)
        return StratumChunkResult(
            index=index,
            weight=weight,
            shots=chunk_shots,
            failures=failures,
            weighted_failures=float(failures),
            weighted_sq=float(failures),
        )
    batch, log_w = sampler.sample_at_weight_with_log_weights(
        weight, chunk_shots, rng, mode=mode
    )
    predicted = dec.decode_batch_packed(batch)
    mismatch = predicted.observables ^ batch.observables
    failed_words = np.bitwise_or.reduce(mismatch, axis=0)
    mask = unpack_rows(failed_words[None, :], chunk_shots)[0].astype(bool)
    weighted = np.exp(log_w[mask])
    return StratumChunkResult(
        index=index,
        weight=weight,
        shots=chunk_shots,
        failures=int(mask.sum()),
        weighted_failures=float(weighted.sum()),
        weighted_sq=float((weighted * weighted).sum()),
    )


def _run_stratified_chunk(
    job: tuple[int, int, int, np.random.SeedSequence],
) -> StratumChunkResult:
    if _STRAT_SAMPLER is None or _STRAT_DECODER is None:
        raise RuntimeError("stratified worker pool not initialized")
    return _run_stratified_chunk_with(_STRAT_SAMPLER, _STRAT_DECODER, job, _STRAT_MODE)


def make_stratified_pool(
    dem: DetectorErrorModel,
    basis: str,
    decoder: str,
    max_weight: int,
    mode: str,
    workers: int,
) -> ProcessPoolExecutor:
    """A worker pool pre-compiled for stratified chunk jobs.

    Callers running many allocation rounds against one DEM (the
    adaptive estimator) create this once and pass it to every
    :func:`run_stratified_chunks` call, so the per-worker sampler and
    decoder compile once instead of once per round.  The caller owns
    shutdown.
    """
    workers = min(workers, os.cpu_count() or 1)
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=_init_stratified_worker,
        initargs=(dem, basis, decoder, max_weight, mode),
    )


def run_stratified_chunks(
    dem: DetectorErrorModel,
    allocations: list[tuple[int, int]],
    basis: str = "z",
    decoder: str = "auto",
    rng: np.random.Generator | None = None,
    chunk_size: int = 5_000,
    workers: int = 1,
    mode: str = "proportional",
    max_weight: int | None = None,
    on_chunk: Callable[[StratumChunkResult], None] | None = None,
    sampler: WeightStratifiedSampler | None = None,
    dec: Decoder | None = None,
    pool: ProcessPoolExecutor | None = None,
) -> dict[int, StratumTally]:
    """Sample/decode fixed-weight shots for several strata in chunks.

    ``allocations`` is ``[(weight, shots), ...]``.  Each chunk draws its
    shots conditioned on the stratum's weight
    (:class:`~repro.rareevent.sampler.WeightStratifiedSampler`) and
    counts failures through the packed decode path.  Chunk seeds are
    spawned from ``rng``'s root in a fixed global order and accumulation
    is a per-stratum sum, so results are worker-count independent —
    the same contract as :func:`run_shot_chunks`.

    ``sampler``/``dec`` let a caller running many rounds (the adaptive
    estimator) reuse its compiled tables and decoder on the inline
    path; ``pool`` (from :func:`make_stratified_pool`) is the same
    reuse for the process fan-out — when given, it overrides
    ``workers`` and the caller owns its shutdown.
    """
    rng = rng or np.random.default_rng()
    jobs: list[tuple[int, int, int, np.random.SeedSequence]] = []
    tallies: dict[int, StratumTally] = {}
    pending_sizes: list[tuple[int, int]] = []
    for weight, shots in allocations:
        tallies.setdefault(weight, StratumTally(weight=weight))
        for size in plan_chunks(shots, chunk_size):
            pending_sizes.append((weight, size))
    seeds = spawn_chunk_seeds(rng, len(pending_sizes))
    for i, ((weight, size), seed) in enumerate(zip(pending_sizes, seeds)):
        jobs.append((i, weight, size, seed))
    if not jobs:
        return tallies
    table_weight = max_weight if max_weight is not None else max(t for t in tallies)

    def _account(result: StratumChunkResult) -> None:
        tallies[result.weight].add(result)
        if on_chunk is not None:
            on_chunk(result)

    if pool is not None:
        for result in pool.map(_run_stratified_chunk, jobs):
            _account(result)
    elif workers <= 1:
        if sampler is None or sampler.max_weight < table_weight:
            sampler = WeightStratifiedSampler(dem, max_weight=table_weight)
        if dec is None:
            dec = make_decoder(dem, basis, decoder)
        for job in jobs:
            _account(_run_stratified_chunk_with(sampler, dec, job, mode))
    else:
        workers = min(workers, len(jobs), os.cpu_count() or 1)
        own_pool = make_stratified_pool(
            dem, basis, decoder, table_weight, mode, workers
        )
        try:
            for result in own_pool.map(_run_stratified_chunk, jobs):
                _account(result)
        finally:
            own_pool.shutdown(wait=True, cancel_futures=True)
    return tallies


def estimate_logical_error_rate_chunked(
    code,
    schedule,
    p: float,
    shots: int = 10_000,
    rounds: int | None = None,
    bases: tuple[str, ...] = ("z", "x"),
    decoder: str = "auto",
    idle_strength: float = 0.0,
    rng: np.random.Generator | None = None,
    noise=None,
    config: ExecutionConfig | None = None,
    **legacy,
) -> LogicalErrorRate:
    """Chunk-runner-backed Monte-Carlo logical error rate.

    The engine behind
    :func:`repro.decoders.metrics.estimate_logical_error_rate`; call
    this directly to pass an :class:`ExecutionConfig` (worker fan-out,
    chunk size, early-stop cap, ... — the old ``workers``/
    ``chunk_size``/``max_failures`` keywords still work with a one-time
    deprecation warning).  ``noise`` is a
    :class:`~repro.noise.spec.NoiseSpec`, a noise token, an inline
    payload, or ``None`` (uniform depolarizing at ``p`` plus
    ``idle_strength``) — resolved through
    :func:`repro.noise.spec.resolve_noise`.
    """
    cfg = resolve_execution(
        "estimate_logical_error_rate_chunked", config, legacy
    )
    # A sampler/decoder instance is bound to one (DEM, basis); this
    # entry point builds a fresh DEM per basis, so injection cannot
    # carry across — strip it rather than decode the x basis with a
    # z-basis decoder.
    cfg = cfg.replace(sampler=None, dec=None)
    rng = rng or np.random.default_rng()
    noise = resolve_noise(noise, p, idle_strength)
    per_basis: dict[str, MemoryResult] = {}
    for basis in bases:
        dem = dem_for(code, schedule, noise, basis=basis, rounds=rounds)
        estimate = run_shot_chunks(
            dem,
            shots=shots,
            basis=basis,
            decoder=decoder,
            rng=rng,
            config=cfg,
        )
        per_basis[basis] = MemoryResult(basis=basis, estimate=estimate, dem=dem)
    return LogicalErrorRate(code_name=code.name, p=p, per_basis=per_basis)
