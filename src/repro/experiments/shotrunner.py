"""Chunked parallel shot runner — the one batching/parallelism entry point.

Every figure's dominant cost is the same loop: sample a batch of shots
from a compiled DEM, decode, count logical failures.  This module owns
that loop.  Shots are sharded into fixed-size chunks (rounded up to a
multiple of 64 so packed batches stay word-aligned), every chunk gets
its own RNG substream spawned from one :class:`numpy.random.SeedSequence`
root, and chunks run either inline or fanned out over processes (fork
start method, like the paper's 48-core runs in §6.1).

Chunk results stream back in chunk order regardless of worker count and
are accumulated in that order, so the outcome — including ``max_failures``
early stopping — is a pure function of the seed root: ``workers=1`` and
``workers=N`` give bit-identical estimates (see
``tests/test_shotrunner.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis.stats import RateEstimate
from ..decoders.base import Decoder
from ..decoders.metrics import LogicalErrorRate, MemoryResult, dem_for, make_decoder
from ..noise.model import NoiseModel
from ..sim.dem import DetectorErrorModel
from ..sim.sampler import DemSampler

_ALIGN = 64


@dataclass(frozen=True)
class ChunkResult:
    """Outcome of one chunk of shots."""

    index: int
    shots: int
    failures: int


def plan_chunks(shots: int, chunk_size: int) -> list[int]:
    """Split ``shots`` into chunk sizes.

    ``chunk_size`` is rounded up to a multiple of 64 so every chunk but
    the last is word-aligned in the packed representation.
    """
    if shots <= 0:
        return []
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    aligned = ((chunk_size + _ALIGN - 1) // _ALIGN) * _ALIGN
    full, rest = divmod(shots, aligned)
    return [aligned] * full + ([rest] if rest else [])


def spawn_chunk_seeds(
    rng: np.random.Generator, n: int
) -> list[np.random.SeedSequence]:
    """Spawn ``n`` child seed sequences from a generator's seed root.

    Chunk ``i`` always gets child ``i`` of the root's current spawn
    counter, so the streams do not depend on which worker runs which
    chunk — the determinism guarantee of the whole runner.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        # Exotic bit generator without a seed sequence: derive a root
        # from the stream itself (still deterministic given the rng).
        seed_seq = np.random.SeedSequence(int(rng.integers(np.iinfo(np.int64).max)))
    return seed_seq.spawn(n)


# Module-level state for process-pool workers (set by the initializer in
# each worker process; the inline workers=1 path uses locals instead so
# the runner stays re-entrant).
_WORKER_SAMPLER: DemSampler | None = None
_WORKER_DECODER: Decoder | None = None
_WORKER_DENSE: bool = False


def _init_worker(
    dem: DetectorErrorModel, basis: str, decoder: str, dense_reference: bool
) -> None:
    global _WORKER_SAMPLER, _WORKER_DECODER, _WORKER_DENSE
    _WORKER_SAMPLER = DemSampler(dem)
    _WORKER_DECODER = make_decoder(dem, basis, decoder)
    _WORKER_DENSE = dense_reference


def _run_chunk_with(
    sampler: DemSampler,
    dec: Decoder,
    job: tuple[int, int, np.random.SeedSequence],
    dense_reference: bool = False,
) -> ChunkResult:
    index, chunk_shots, seed = job
    rng = np.random.default_rng(seed)
    batch = sampler.sample_packed(chunk_shots, rng)
    if dense_reference:
        failures = dec.count_failures_dense(batch)
    else:
        failures = dec.count_failures_packed(batch)
    return ChunkResult(index=index, shots=chunk_shots, failures=failures)


def _run_chunk(job: tuple[int, int, np.random.SeedSequence]) -> ChunkResult:
    if _WORKER_SAMPLER is None or _WORKER_DECODER is None:
        raise RuntimeError("worker pool not initialized")
    return _run_chunk_with(_WORKER_SAMPLER, _WORKER_DECODER, job, _WORKER_DENSE)


def run_shot_chunks(
    dem: DetectorErrorModel,
    shots: int,
    basis: str = "z",
    decoder: str = "auto",
    rng: np.random.Generator | None = None,
    chunk_size: int = 5_000,
    workers: int = 1,
    max_failures: int | None = None,
    on_chunk: Callable[[ChunkResult], None] | None = None,
    dense_reference: bool = False,
) -> RateEstimate:
    """Sample/decode ``shots`` shots of one DEM in chunks.

    ``on_chunk`` streams per-chunk results (in chunk order) to the
    caller as they are accumulated.  ``max_failures`` stops after the
    first chunk that pushes the failure count past the cap, applied in
    chunk order, so early stopping is worker-count independent.

    The hot path is fully packed: chunks are sampled packed and decoded
    through :meth:`~repro.decoders.base.Decoder.decode_batch_packed`
    (unique-syndrome batching), so no dense ``(shots, num_detectors)``
    array is ever materialized.  ``dense_reference=True`` routes
    decoding through the pinned dense path instead
    (:meth:`~repro.decoders.base.Decoder.count_failures_dense`) — same
    estimates by construction, kept for cross-checks and benchmarks.
    """
    rng = rng or np.random.default_rng()
    sizes = plan_chunks(shots, chunk_size)
    seeds = spawn_chunk_seeds(rng, len(sizes))
    jobs = [(i, size, seed) for i, (size, seed) in enumerate(zip(sizes, seeds))]
    if not jobs:
        return RateEstimate(0, 0)

    failures = 0
    done = 0

    def _account(result: ChunkResult) -> bool:
        nonlocal failures, done
        failures += result.failures
        done += result.shots
        if on_chunk is not None:
            on_chunk(result)
        return max_failures is not None and failures >= max_failures

    if workers <= 1:
        sampler = DemSampler(dem)
        dec = make_decoder(dem, basis, decoder)
        for job in jobs:
            if _account(_run_chunk_with(sampler, dec, job, dense_reference)):
                break
    else:
        workers = min(workers, len(jobs), os.cpu_count() or 1)
        # Prefer fork (cheap workers, DEM shared copy-on-write, like the
        # paper's multicore runs); fall back to the platform default where
        # fork is unavailable — correctness is unaffected, only startup cost.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(dem, basis, decoder, dense_reference),
        )
        try:
            # Keep a bounded in-flight window and consume results strictly
            # in chunk order: accounting stays deterministic, and once
            # max_failures trips, chunks beyond the window were never
            # submitted — the early stop actually saves their work.
            window = 2 * workers
            pending: dict[int, object] = {}
            next_submit = 0

            def _fill_window() -> None:
                nonlocal next_submit
                while next_submit < len(jobs) and len(pending) < window:
                    pending[next_submit] = pool.submit(_run_chunk, jobs[next_submit])
                    next_submit += 1

            _fill_window()
            for i in range(len(jobs)):
                if _account(pending.pop(i).result()):
                    break
                _fill_window()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
    return RateEstimate(failures, done)


def estimate_logical_error_rate_chunked(
    code,
    schedule,
    p: float,
    shots: int = 10_000,
    rounds: int | None = None,
    bases: tuple[str, ...] = ("z", "x"),
    decoder: str = "auto",
    idle_strength: float = 0.0,
    rng: np.random.Generator | None = None,
    max_failures: int | None = None,
    chunk_size: int = 5_000,
    workers: int = 1,
) -> LogicalErrorRate:
    """Chunk-runner-backed Monte-Carlo logical error rate.

    The engine behind
    :func:`repro.decoders.metrics.estimate_logical_error_rate`; call
    this directly to pass runner-specific knobs (``workers``,
    ``chunk_size``, ``on_chunk``-style streaming via
    :func:`run_shot_chunks`).
    """
    rng = rng or np.random.default_rng()
    noise = NoiseModel(p=p, idle_strength=idle_strength)
    per_basis: dict[str, MemoryResult] = {}
    for basis in bases:
        dem = dem_for(code, schedule, noise, basis=basis, rounds=rounds)
        estimate = run_shot_chunks(
            dem,
            shots=shots,
            basis=basis,
            decoder=decoder,
            rng=rng,
            chunk_size=chunk_size,
            workers=workers,
            max_failures=max_failures,
        )
        per_basis[basis] = MemoryResult(basis=basis, estimate=estimate, dem=dem)
    return LogicalErrorRate(code_name=code.name, p=p, per_basis=per_basis)
