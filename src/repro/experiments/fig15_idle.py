"""Figure 15: idle-error sensitivity of SM circuits (paper §6.3).

PropHunt's circuits can be deeper than the minimum; this experiment
quantifies the trade-off by sweeping idle-error strength (the ratio of
gate-layer time to coherence time) at fixed gate error 0.1%.  For a wide
band of realistic idle strengths — the three hardware reference points
are marked — the logical-error improvement outweighs the extra depth.
"""

from __future__ import annotations

import numpy as np

from ..circuits import coloration_schedule, nz_schedule, poor_schedule
from ..codes import load_benchmark_code
from ..decoders import estimate_logical_error_rate
from ..noise import HARDWARE_IDLE_POINTS
from .common import ExperimentResult


def run(
    code_name: str = "surface_d3",
    idle_strengths: tuple[float, ...] = (0.0, 1e-5, 1e-4, 1e-3, 1e-2),
    p: float = 1e-3,
    shots: int = 6000,
    seed: int = 0,
    optimized_schedule=None,
    workers: int = 1,
) -> ExperimentResult:
    """Sweep idle strength for a shallow vs a deeper (better) circuit.

    ``optimized_schedule`` lets callers pass a real PropHunt output; by
    default the comparison uses the hand-designed (shallow, good)
    schedule vs the coloration circuit (deeper) for surface codes —
    the same depth-vs-quality axis the paper studies.
    """
    code = load_benchmark_code(code_name)
    rng = np.random.default_rng(seed)
    if code_name.startswith("surface"):
        circuits = {
            "poor (depth 4)": poor_schedule(code),
            "good (depth 4)": nz_schedule(code),
            "coloration (deeper)": coloration_schedule(code),
        }
    else:
        circuits = {"coloration": coloration_schedule(code)}
    if optimized_schedule is not None:
        circuits["prophunt"] = optimized_schedule

    result = ExperimentResult(
        name=f"Figure 15: idle sensitivity, {code.label()}, gate p={p:g}",
        notes="hardware idle strengths: "
        + ", ".join(f"{k}={v:.1e}" for k, v in HARDWARE_IDLE_POINTS.items()),
    )
    for label, sched in circuits.items():
        for strength in idle_strengths:
            ler = estimate_logical_error_rate(
                code,
                sched,
                p=p,
                shots=shots,
                idle_strength=strength,
                rng=rng,
                max_failures=400,
                workers=workers,
            )
            result.add(
                circuit=label,
                cnot_depth=sched.cnot_depth(),
                idle_strength=strength,
                logical_error_rate=ler.rate,
            )
    return result
