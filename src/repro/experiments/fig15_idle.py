"""Figure 15: idle-error sensitivity of SM circuits (paper §6.3).

PropHunt's circuits can be deeper than the minimum; this experiment
quantifies the trade-off by sweeping idle-error strength (the ratio of
gate-layer time to coherence time) at fixed gate error 0.1%.  For a wide
band of realistic idle strengths — the three hardware reference points
are marked — the logical-error improvement outweighs the extra depth.

The (circuit x idle strength) sweep runs as a campaign over the result
store; an ``optimized_schedule`` (a real PropHunt output) enters the
grid as an inline serialized schedule, content-addressed like any named
one.
"""

from __future__ import annotations

import json

from ..circuits import schedule_to_json
from ..codes import load_benchmark_code
from ..noise import HARDWARE_IDLE_POINTS
from .campaign import CampaignJob, resolve_schedule, run_campaign
from .common import ExperimentResult


def run(
    code_name: str = "surface_d3",
    idle_strengths: tuple[float, ...] = (0.0, 1e-5, 1e-4, 1e-3, 1e-2),
    p: float = 1e-3,
    shots: int = 6000,
    seed: int = 0,
    optimized_schedule=None,
    workers: int = 1,
    store=None,
) -> ExperimentResult:
    """Sweep idle strength for a shallow vs a deeper (better) circuit.

    ``optimized_schedule`` lets callers pass a real PropHunt output; by
    default the comparison uses the hand-designed (shallow, good)
    schedule vs the coloration circuit (deeper) for surface codes —
    the same depth-vs-quality axis the paper studies.
    """
    code = load_benchmark_code(code_name)
    if code_name.startswith("surface"):
        circuits = [
            ("poor (depth 4)", "poor"),
            ("good (depth 4)", "nz"),
            ("coloration (deeper)", "coloration"),
        ]
    else:
        circuits = [("coloration", "coloration")]
    if optimized_schedule is not None:
        circuits.append(("prophunt", json.loads(schedule_to_json(optimized_schedule))))

    jobs = [
        CampaignJob(
            code=code_name,
            schedule=token,
            basis=basis,
            p=p,
            idle_strength=strength,
            shots=shots,
            max_failures=400,
            seed=seed,
        )
        for _, token in circuits
        for strength in idle_strengths
        for basis in ("z", "x")
    ]
    report = run_campaign(jobs, store=store, workers=workers)
    result = ExperimentResult(
        name=f"Figure 15: idle sensitivity, {code.label()}, gate p={p:g}",
        notes="hardware idle strengths: "
        + ", ".join(f"{k}={v:.1e}" for k, v in HARDWARE_IDLE_POINTS.items()),
    )
    for label, token in circuits:
        sched = resolve_schedule(code, token)
        for strength in idle_strengths:
            combined = report.combined_estimate(
                j
                for j in report.jobs
                if j.schedule == token and j.idle_strength == strength
            )
            result.add(
                circuit=label,
                cnot_depth=sched.cnot_depth(),
                idle_strength=strength,
                logical_error_rate=combined.rate,
            )
    return result
