"""Distributed campaign service: a lease-based worker fleet over one store.

:func:`run_campaign` executes a grid in one process.  This module turns
the same content-addressed machinery into a *service*: ``serve`` writes
the campaign's job queue into the store directory, any number of
``worker`` processes (on any machine sharing the filesystem) claim
batches of jobs via expiring lease files, execute them, and append
results to the sharded store.  There is no coordinator process and no
network protocol — the store directory *is* the coordination medium:

``<store>/service/queue.json``
    The queue manifest: every job payload (+ display label) of the
    campaign, written atomically.  Workers enumerate misses against the
    store themselves; there is no job-state machine to corrupt.

``<store>/service/leases/<affinity>.lease``
    One lease per *affinity group* — the batch of jobs sharing a
    compile configuration (code, schedule, noise, rate, basis, decoder).
    Claiming is an ``O_CREAT | O_EXCL`` create (atomic on POSIX);
    the payload carries the owner and an expiry timestamp.  A crashed
    worker's lease simply expires and another worker takes the group
    over.

Correctness under every race reduces to the store's two invariants:
jobs are content-addressed (double execution writes identical content)
and each job seeds its RNG from its own key (results are byte-identical
no matter who runs them, in what order, after how many crashes).  Lease
takeover races are therefore *tolerated*, not prevented — at worst a
group is executed twice, and ``compact()`` folds the duplicates away.
The acceptance gate: a fleet of racing workers, one killed mid-group,
produces a compacted store byte-identical to single-process
:func:`run_campaign` (``tests/test_service.py``,
``scripts/service_smoke.py``).

Affinity batching is the performance half: grouping a claim unit by
compile configuration means one worker reuses its
:class:`~repro.experiments.campaign.CompileCache` entry (DEM, decoder,
sampler) and warm :class:`~repro.decoders.syncache.SyndromeCache`
across the whole batch, instead of every worker re-extracting every
DEM.  Each worker writes its syndrome-cache appends to a private
per-worker shard (``writer_tag``), so the fleet shares warm caches
without write contention.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .. import obs
from ..obs.log import get_logger
from .campaign import (
    CampaignJob,
    CampaignSpec,
    CompileCache,
    execute_job,
)
from .shotrunner import ExecutionConfig
from .store import DEFAULT_SHARD_PREFIX, ResultStore, canonical_json, job_key

QUEUE_FORMAT = "campaign-queue-v1"
LEASE_FORMAT = "campaign-lease-v1"

_log = get_logger("service")

# Lease-protocol instruments, maintained inside the lease helpers so
# every caller (worker loop, tests, external tooling) is counted.
_LEASE_CLAIMS = obs.counter("lease.claims")
_LEASE_TAKEOVERS = obs.counter("lease.takeovers")
_LEASE_RENEWS = obs.counter("lease.renews")
_LEASE_RENEW_LOST = obs.counter("lease.renew_lost")
_LEASE_RELEASES = obs.counter("lease.releases")

DEFAULT_TTL = 60.0
DEFAULT_POLL = 0.5
# Clock-skew allowance for cross-host lease expiry checks:
# ``expires_at`` stamps come from *another* worker's wall clock, so a
# lease is only takeover-eligible this many seconds past its nominal
# expiry.  A few seconds covers NTP-disciplined fleets; raise it for
# hosts with free-running clocks, or set 0 for single-host tests.
DEFAULT_SKEW_GRACE = 3.0

# Job fields that determine the compiled artifacts (the CompileCache
# `_dem_key` plus the decoder choice).  Jobs agreeing on all of these
# share a DEM, a decoder instance, a packed sampler, and a syndrome
# cache file — exactly what a worker wants to amortize over a batch.
_AFFINITY_FIELDS = (
    "code",
    "schedule",
    "p",
    "idle_strength",
    "noise",
    "rounds",
    "basis",
    "decoder",
)


# -- queue manifest ----------------------------------------------------------


def service_dir(store_path: str | os.PathLike) -> str:
    return os.path.join(os.fspath(store_path), "service")


def queue_path(store_path: str | os.PathLike) -> str:
    return os.path.join(service_dir(store_path), "queue.json")


def lease_dir(store_path: str | os.PathLike) -> str:
    return os.path.join(service_dir(store_path), "leases")


def write_queue(
    store_path: str | os.PathLike,
    jobs: Sequence[CampaignJob],
    labels: dict[str, str] | None = None,
    name: str | None = None,
) -> str:
    """Publish the campaign's job queue into the store directory.

    Atomic (temp file + rename): workers either see the previous queue
    or the complete new one, never a torn manifest.  Re-publishing is
    how a campaign grows — workers re-read the queue every pass, and
    jobs already in the store are never re-run.
    """
    entries = []
    seen: set[str] = set()
    for campaign_job in jobs:
        payload = campaign_job.to_payload()
        key = job_key(payload)
        if key in seen:
            continue
        seen.add(key)
        entry: dict[str, Any] = {"key": key, "job": payload}
        label = (labels or {}).get(key)
        if label is not None:
            entry["label"] = label
        entries.append(entry)
    manifest = {"format": QUEUE_FORMAT, "name": name, "jobs": entries}
    path = queue_path(store_path)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_queue(store_path: str | os.PathLike) -> list[dict[str, Any]] | None:
    """The published queue entries, or ``None`` if no queue exists yet."""
    try:
        with open(queue_path(store_path), "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable campaign queue: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != QUEUE_FORMAT:
        raise ValueError(f"not a {QUEUE_FORMAT} manifest")
    return list(manifest.get("jobs", []))


# -- affinity grouping -------------------------------------------------------


def affinity_key(job_payload: dict[str, Any]) -> str:
    """The compile-configuration fingerprint a job batches under."""
    basis = {f: job_payload.get(f) for f in _AFFINITY_FIELDS}
    digest = hashlib.sha256(canonical_json(basis).encode("utf-8")).hexdigest()
    return digest[:16]


def plan_groups(
    entries: Sequence[dict[str, Any]],
) -> list[tuple[str, list[dict[str, Any]]]]:
    """Deterministic affinity batches: ``[(affinity, [queue entries])]``.

    Groups are ordered by affinity key and entries within a group by job
    key, so every worker derives the identical plan from the manifest —
    coordination needs only the lease files, never shared plan state.
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for entry in entries:
        groups.setdefault(affinity_key(entry["job"]), []).append(entry)
    return [
        (aff, sorted(groups[aff], key=lambda e: e["key"]))
        for aff in sorted(groups)
    ]


# -- leases ------------------------------------------------------------------


def _lease_payload(worker_id: str, ttl: float) -> dict[str, Any]:
    now = time.time()
    return {
        "format": LEASE_FORMAT,
        "worker": worker_id,
        "claimed_at": now,
        "expires_at": now + ttl,
    }


def read_lease(path: str) -> dict[str, Any] | None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError):
        # A torn lease write (claimer killed mid-write).  Treat it as an
        # expired claim: takeover-eligible immediately.
        return {}
    return payload if isinstance(payload, dict) else {}


def lease_expired(
    lease: dict[str, Any],
    now: float | None = None,
    skew_grace_s: float = DEFAULT_SKEW_GRACE,
) -> bool:
    """Whether a lease's TTL has lapsed, allowing for clock skew.

    ``expires_at`` was written with *another host's* ``time.time()`` —
    on a shared filesystem the claimer and the prospective taker need
    not agree on the wall clock, and a taker whose clock runs fast
    would otherwise steal a live worker's group.  ``skew_grace_s``
    pads the expiry by the skew budget (default
    :data:`DEFAULT_SKEW_GRACE`); pass 0 for the raw comparison.
    """
    expires = lease.get("expires_at")
    if not isinstance(expires, (int, float)):
        return True
    grace = max(0.0, float(skew_grace_s))
    return (now if now is not None else time.time()) >= expires + grace


def claim_lease(
    path: str,
    worker_id: str,
    ttl: float,
    skew_grace_s: float = DEFAULT_SKEW_GRACE,
) -> bool:
    """Try to claim (or take over an expired) lease; True if we own it.

    The fresh-claim path is atomic (``O_CREAT | O_EXCL``).  The
    takeover path — rewriting an *expired* lease via temp file +
    rename — can race another taker; both then believe they own the
    group, which the execution layer tolerates by design (idempotent,
    content-addressed jobs).  Takeover eligibility honors
    ``skew_grace_s`` (see :func:`lease_expired`) so cross-host clock
    skew cannot trigger a premature takeover of a live lease.
    """
    os.makedirs(os.path.dirname(path), exist_ok=True)
    body = (canonical_json(_lease_payload(worker_id, ttl)) + "\n").encode()
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except FileExistsError:
        lease = read_lease(path)
        if lease is None or not lease_expired(lease, skew_grace_s=skew_grace_s):
            return False
        tmp = f"{path}.{worker_id}.tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(body)
            os.replace(tmp, path)
        except OSError:
            return False
        _LEASE_CLAIMS.add()
        _LEASE_TAKEOVERS.add()
        return True
    try:
        os.write(fd, body)
    finally:
        os.close(fd)
    _LEASE_CLAIMS.add()
    return True


def renew_lease(path: str, worker_id: str, ttl: float) -> bool:
    """Extend a lease we hold; False if it was lost to a takeover."""
    lease = read_lease(path)
    if lease is None or lease.get("worker") != worker_id:
        _LEASE_RENEW_LOST.add()
        return False
    tmp = f"{path}.{worker_id}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write((canonical_json(_lease_payload(worker_id, ttl)) + "\n").encode())
        os.replace(tmp, path)
    except OSError:
        return False
    _LEASE_RENEWS.add()
    return True


def release_lease(path: str, worker_id: str) -> None:
    lease = read_lease(path)
    if lease is not None and lease.get("worker") == worker_id:
        try:
            os.remove(path)
            _LEASE_RELEASES.add()
        except OSError:
            pass


# -- the worker --------------------------------------------------------------


@dataclass
class WorkerReport:
    """What one :func:`worker_loop` invocation did."""

    worker_id: str
    executed: list[str] = field(default_factory=list)
    skipped: int = 0  # jobs found already stored while holding a lease
    claims: int = 0
    takeovers: int = 0
    passes: int = 0


def default_worker_id() -> str:
    return f"pid{os.getpid()}"


def worker_loop(
    store_path: str | os.PathLike,
    worker_id: str | None = None,
    ttl: float = DEFAULT_TTL,
    poll: float = DEFAULT_POLL,
    once: bool = False,
    max_jobs: int | None = None,
    timeout: float | None = None,
    config: ExecutionConfig | None = None,
    progress: Callable[[str], None] | None = None,
    chaos_exit_after: int | None = None,
    skew_grace_s: float = DEFAULT_SKEW_GRACE,
) -> WorkerReport:
    """Claim and execute queued jobs until the campaign is complete.

    Each pass re-reads the queue manifest, reloads the store (tailing —
    cheap), and walks the affinity groups that still have missing jobs,
    trying to claim each group's lease.  Holding a lease, the worker
    executes the group's missing jobs through one
    :class:`~repro.experiments.campaign.CompileCache` — the DEM,
    decoder, sampler, and syndrome cache compile once per group — and
    appends each result as it lands, renewing the lease between jobs so
    long groups survive short TTLs.

    ``once`` does a single pass (CI and tests); ``max_jobs`` bounds the
    jobs executed; ``timeout`` bounds wall-clock time spent *waiting*
    (no queue yet, or everything leased to live workers).
    ``chaos_exit_after=N`` hard-kills the process (``os._exit``) after
    N jobs, leaving the held lease dangling — the crash-recovery drill
    used by the service smoke test.  ``skew_grace_s`` is the cross-host
    clock-skew allowance applied before a dangling lease is taken over
    (see :func:`lease_expired`).
    """
    store_path = os.fspath(store_path)
    worker_id = worker_id or default_worker_id()
    if obs.enabled() and obs.state.telemetry_dir is None:
        # Sidecars ride the store directory, like queue and leases.
        obs.configure(telemetry_dir=obs.telemetry_dir_for(store_path))
    report = WorkerReport(worker_id=worker_id)
    started_at = time.time()

    def beat(group: str | None, **extra: Any) -> None:
        obs.write_heartbeat(
            worker_id,
            group=group,
            jobs_done=len(report.executed),
            started_at=started_at,
            metrics=obs.snapshot(),
            extra={
                "claims": report.claims,
                "takeovers": report.takeovers,
                "passes": report.passes,
                **extra,
            },
        )

    with obs.worker_context(worker_id):
        try:
            return _worker_loop(
                store_path,
                worker_id,
                ttl,
                poll,
                once,
                max_jobs,
                timeout,
                config,
                progress,
                chaos_exit_after,
                skew_grace_s,
                report,
                beat,
            )
        finally:
            # Final sidecar state: without this, a finished fleet could
            # not answer `campaign status --telemetry` offline.  (The
            # chaos os._exit path skips it — crashed workers leave no
            # parting snapshot, by design.)
            obs.emit_metrics(obs.snapshot(), worker=worker_id)
            beat(None, done=True)


def _worker_loop(
    store_path: str,
    worker_id: str,
    ttl: float,
    poll: float,
    once: bool,
    max_jobs: int | None,
    timeout: float | None,
    config: ExecutionConfig | None,
    progress: Callable[[str], None] | None,
    chaos_exit_after: int | None,
    skew_grace_s: float,
    report: WorkerReport,
    beat: Callable[..., None],
) -> WorkerReport:
    # Workers always append sharded: a fleet's concurrent writes spread
    # over the shard files instead of contending on one results.jsonl.
    store = ResultStore(store_path, shard_prefix=DEFAULT_SHARD_PREFIX)
    cfg = (config or ExecutionConfig()).replace(
        syndrome_cache_dir=(config.syndrome_cache_dir if config else None)
        or os.path.join(store_path, "syndromes"),
        syndrome_writer_tag=worker_id,
    )
    cache = CompileCache()

    def say(msg: str) -> None:
        # Back-compat callback; the structured logger is the primary
        # progress channel (stderr, REPRO_LOG-leveled).
        if progress is not None:
            progress(msg)

    deadline = time.monotonic() + timeout if timeout is not None else None

    def out_of_time() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def budget_left() -> bool:
        return max_jobs is None or len(report.executed) < max_jobs

    while True:
        report.passes += 1
        beat(None)
        entries = read_queue(store_path)
        if entries is None:
            if once or out_of_time():
                return report
            time.sleep(poll)
            continue
        store.reload()
        pending = [
            (aff, group)
            for aff, group in plan_groups(entries)
            if any(e["key"] not in store for e in group)
        ]
        if not pending:
            return report
        # Rotate the walk order by worker identity so a fleet starting
        # simultaneously fans out over different groups instead of
        # racing for the first lease in lockstep.
        spin = int(hashlib.sha256(worker_id.encode()).hexdigest(), 16)
        start = spin % len(pending)
        pending = pending[start:] + pending[:start]
        claimed_any = False
        for aff, group in pending:
            if not budget_left():
                return report
            lease_path = os.path.join(lease_dir(store_path), f"{aff}.lease")
            existing = read_lease(lease_path)
            with obs.span("lease", group=aff, action="claim") as lease_sp:
                claimed = claim_lease(
                    lease_path, worker_id, ttl, skew_grace_s=skew_grace_s
                )
                lease_sp.set(claimed=claimed)
            if not claimed:
                continue
            claimed_any = True
            report.claims += 1
            if existing is not None:
                report.takeovers += 1
                say(f"{worker_id}: took over expired lease {aff}")
                _log.warn("lease takeover", worker=worker_id, group=aff)
            beat(aff)
            try:
                store.reload()
                for entry in group:
                    if not budget_left():
                        break
                    key = entry["key"]
                    if key in store:
                        report.skipped += 1
                        continue
                    job = CampaignJob.from_payload(entry["job"])
                    say(f"{worker_id}: run {key[:12]} ({aff})")
                    _log.info(
                        "run job", worker=worker_id, key=key[:12], group=aff
                    )
                    with obs.timed("service.job_s") as clock:
                        result = execute_job(job, cache=cache, config=cfg)
                    with obs.span("store", job=key[:12]):
                        store.put(
                            key,
                            entry["job"],
                            result,
                            label=entry.get("label"),
                            meta={
                                "worker": worker_id,
                                "elapsed_s": clock.elapsed,
                            },
                        )
                    report.executed.append(key)
                    beat(aff)
                    if (
                        chaos_exit_after is not None
                        and len(report.executed) >= chaos_exit_after
                    ):
                        # Crash drill: die without releasing the lease.
                        # Another worker must take the group over once
                        # the TTL lapses.
                        os._exit(42)
                    with obs.span("lease", group=aff, action="renew"):
                        renew_lease(lease_path, worker_id, ttl)
            finally:
                release_lease(lease_path, worker_id)
        if once:
            return report
        if not claimed_any:
            # Everything still missing is leased to someone alive (or a
            # lease has yet to expire): wait, don't spin.
            if out_of_time():
                return report
            time.sleep(poll)


# -- serving -----------------------------------------------------------------


@dataclass
class ServeReport:
    """What :func:`serve_campaign` published, and how it went."""

    store_path: str
    queue_file: str
    total_jobs: int
    already_stored: int
    workers: list[WorkerReport] = field(default_factory=list)
    pending: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def complete(self) -> bool:
        return not self.pending


def serve_campaign(
    spec: CampaignSpec | Sequence[CampaignJob],
    store_path: str | os.PathLike,
    n_workers: int = 0,
    ttl: float = DEFAULT_TTL,
    poll: float = DEFAULT_POLL,
    wait: bool = True,
    timeout: float | None = None,
    labels: dict[str, str] | None = None,
    config: ExecutionConfig | None = None,
    progress: Callable[[str], None] | None = None,
    skew_grace_s: float = DEFAULT_SKEW_GRACE,
) -> ServeReport:
    """Publish a campaign's queue; optionally run an in-process fleet.

    With ``n_workers == 0`` (the distributed deployment) this only
    writes the queue manifest and returns — workers attach from other
    processes or machines via ``repro campaign worker`` /
    :func:`worker_loop`.  With ``n_workers >= 1`` that many in-process
    worker threads run the full protocol — leases, affinity batches,
    sharded appends — which is the CI-friendly mode: one Python
    process, real concurrency semantics.

    ``wait=True`` blocks until every queued job is stored (by *anyone*,
    in-process or external) or ``timeout`` seconds pass, whichever
    first; a timeout raises ``TimeoutError`` so an incomplete campaign
    can never masquerade as a finished one.
    """
    t0 = time.monotonic()
    store_path = os.fspath(store_path)
    jobs = spec.expand() if isinstance(spec, CampaignSpec) else list(spec)
    name = spec.name if isinstance(spec, CampaignSpec) else None
    queue_file = write_queue(store_path, jobs, labels=labels, name=name)
    entries = read_queue(store_path) or []
    store = ResultStore(store_path, shard_prefix=DEFAULT_SHARD_PREFIX)
    stored = sum(1 for e in entries if e["key"] in store)
    report = ServeReport(
        store_path=store_path,
        queue_file=queue_file,
        total_jobs=len(entries),
        already_stored=stored,
    )

    threads: list[threading.Thread] = []
    results: list[WorkerReport | None] = [None] * n_workers
    for i in range(n_workers):

        def run(slot: int = i) -> None:
            results[slot] = worker_loop(
                store_path,
                worker_id=f"w{slot}-{default_worker_id()}",
                ttl=ttl,
                poll=poll,
                timeout=timeout,
                config=config,
                progress=progress,
                skew_grace_s=skew_grace_s,
            )

        thread = threading.Thread(target=run, name=f"campaign-worker-{i}")
        thread.start()
        threads.append(thread)

    if not wait:
        for thread in threads:
            thread.join()
        report.workers = [r for r in results if r is not None]
        report.elapsed_s = time.monotonic() - t0
        return report

    deadline = time.monotonic() + timeout if timeout is not None else None
    while True:
        store.reload()
        pending = [e["key"] for e in entries if e["key"] not in store]
        if not pending:
            break
        if deadline is not None and time.monotonic() >= deadline:
            report.pending = pending
            report.elapsed_s = time.monotonic() - t0
            raise TimeoutError(
                f"campaign incomplete after {timeout:g}s: "
                f"{len(pending)}/{len(entries)} jobs pending"
            )
        time.sleep(poll)
    for thread in threads:
        thread.join()
    report.workers = [r for r in results if r is not None]
    report.elapsed_s = time.monotonic() - t0
    return report


__all__ = [
    "DEFAULT_SKEW_GRACE",
    "ServeReport",
    "WorkerReport",
    "affinity_key",
    "claim_lease",
    "lease_dir",
    "lease_expired",
    "plan_groups",
    "queue_path",
    "read_lease",
    "read_queue",
    "release_lease",
    "renew_lease",
    "serve_campaign",
    "worker_loop",
    "write_queue",
]
