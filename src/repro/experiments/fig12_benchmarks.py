"""Figure 12: PropHunt on the benchmark suite.

For each code: start from the coloration circuit, run PropHunt, and
compare logical error rates of the starting circuit, the optimized
circuit, and (for surface codes) the hand-designed N-Z schedule.  The
paper's claims to reproduce in shape:

* PropHunt improves on the coloration circuit for every code;
* for surface codes the optimized circuit matches the hand-designed one;
* for LP/RQT codes the improvement is ~2.5-4x at p = 0.1%.
"""

from __future__ import annotations

import numpy as np

from ..circuits import coloration_schedule, nz_schedule
from ..codes import load_benchmark_code
from ..core import PropHunt, PropHuntConfig
from ..decoders import estimate_logical_error_rate
from .common import ExperimentResult

# Laptop-scale optimization budgets per code (paper: 25 iterations x 500
# samples on 48 cores for every code).
DEFAULT_BUDGETS: dict[str, tuple[int, int]] = {
    "surface_d3": (5, 40),
    "surface_d5": (4, 30),
    "surface_d7": (3, 20),
    "surface_d9": (2, 12),
    "lp39": (4, 30),
    "rqt60": (3, 20),
    "rqt54": (3, 20),
    "rqt108": (2, 12),
}


def optimize_code(
    name: str,
    iterations: int | None = None,
    samples: int | None = None,
    seed: int = 0,
):
    """Run PropHunt from the coloration circuit of a benchmark code."""
    code = load_benchmark_code(name)
    default_it, default_samples = DEFAULT_BUDGETS.get(name, (3, 20))
    config = PropHuntConfig(
        iterations=iterations if iterations is not None else default_it,
        samples_per_iteration=samples if samples is not None else default_samples,
        seed=seed,
    )
    start = coloration_schedule(code)
    result = PropHunt(code, config).optimize(start)
    return code, start, result


def run(
    codes: tuple[str, ...] = ("surface_d3", "surface_d5", "lp39", "rqt60"),
    p_values: tuple[float, ...] = (1e-3, 3e-3),
    shots: int = 6000,
    iterations: int | None = None,
    samples: int | None = None,
    seed: int = 0,
    include_intermediate: bool = False,
    workers: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 12: PropHunt vs coloration (vs hand-designed)",
        notes="rates combine logical X and Z failures (paper §6.1)",
    )
    rng = np.random.default_rng(seed)
    for name in codes:
        code, start, opt = optimize_code(
            name, iterations=iterations, samples=samples, seed=seed
        )
        circuits = {"coloration": start, "prophunt": opt.final_schedule}
        if include_intermediate and len(opt.intermediate_schedules) > 2:
            mid = opt.intermediate_schedules[len(opt.intermediate_schedules) // 2]
            circuits["intermediate"] = mid
        if name.startswith("surface"):
            circuits["hand-designed"] = nz_schedule(code)
        for p in p_values:
            for label, sched in circuits.items():
                ler = estimate_logical_error_rate(
                    code,
                    sched,
                    p=p,
                    shots=shots,
                    rng=rng,
                    max_failures=400,
                    workers=workers,
                )
                result.add(
                    code=name,
                    circuit=label,
                    p=p,
                    logical_error_rate=ler.rate,
                    shots=ler.shots,
                    cnot_depth=sched.cnot_depth(),
                )
    return result


def improvement_factors(result: ExperimentResult) -> dict[tuple[str, float], float]:
    """coloration / prophunt LER ratios per (code, p) — the headline 2.5-4x."""
    table: dict[tuple[str, float, str], float] = {}
    for row in result.rows:
        table[(row["code"], row["p"], row["circuit"])] = row["logical_error_rate"]
    out = {}
    for (code, p, circuit), rate in table.items():
        if circuit != "coloration":
            continue
        after = table.get((code, p, "prophunt"))
        if after and after > 0:
            out[(code, p)] = rate / after
    return out
