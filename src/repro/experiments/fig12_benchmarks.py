"""Figure 12: PropHunt on the benchmark suite.

For each code: start from the coloration circuit, run PropHunt, and
compare logical error rates of the starting circuit, the optimized
circuit, and (for surface codes) the hand-designed N-Z schedule.  The
paper's claims to reproduce in shape:

* PropHunt improves on the coloration circuit for every code;
* for surface codes the optimized circuit matches the hand-designed one;
* for LP/RQT codes the improvement is ~2.5-4x at p = 0.1%.

The optimization itself runs inline (it is a search, not a shot loop);
every LER evaluation is a campaign job — optimized schedules enter the
grid as inline serialized schedules, so a persistent store caches them
content-addressed alongside the named circuits.
"""

from __future__ import annotations

import json

from ..circuits import coloration_schedule, schedule_to_json
from ..codes import load_benchmark_code
from ..core import PropHunt, PropHuntConfig
from .campaign import CampaignJob, run_campaign
from .common import ExperimentResult

# Laptop-scale optimization budgets per code (paper: 25 iterations x 500
# samples on 48 cores for every code).
DEFAULT_BUDGETS: dict[str, tuple[int, int]] = {
    "surface_d3": (5, 40),
    "surface_d5": (4, 30),
    "surface_d7": (3, 20),
    "surface_d9": (2, 12),
    "lp39": (4, 30),
    "rqt60": (3, 20),
    "rqt54": (3, 20),
    "rqt108": (2, 12),
}


def optimize_code(
    name: str,
    iterations: int | None = None,
    samples: int | None = None,
    seed: int = 0,
):
    """Run PropHunt from the coloration circuit of a benchmark code."""
    code = load_benchmark_code(name)
    default_it, default_samples = DEFAULT_BUDGETS.get(name, (3, 20))
    config = PropHuntConfig(
        iterations=iterations if iterations is not None else default_it,
        samples_per_iteration=samples if samples is not None else default_samples,
        seed=seed,
    )
    start = coloration_schedule(code)
    result = PropHunt(code, config).optimize(start)
    return code, start, result


def run(
    codes: tuple[str, ...] = ("surface_d3", "surface_d5", "lp39", "rqt60"),
    p_values: tuple[float, ...] = (1e-3, 3e-3),
    shots: int = 6000,
    iterations: int | None = None,
    samples: int | None = None,
    seed: int = 0,
    include_intermediate: bool = False,
    workers: int = 1,
    store=None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 12: PropHunt vs coloration (vs hand-designed)",
        notes="rates combine logical X and Z failures (paper §6.1)",
    )
    for name in codes:
        code, start, opt = optimize_code(
            name, iterations=iterations, samples=samples, seed=seed
        )
        circuits = [
            ("coloration", "coloration", start),
            (
                "prophunt",
                json.loads(schedule_to_json(opt.final_schedule)),
                opt.final_schedule,
            ),
        ]
        if include_intermediate and len(opt.intermediate_schedules) > 2:
            mid = opt.intermediate_schedules[len(opt.intermediate_schedules) // 2]
            circuits.append(
                ("intermediate", json.loads(schedule_to_json(mid)), mid)
            )
        if name.startswith("surface"):
            from ..circuits import nz_schedule

            circuits.append(("hand-designed", "nz", nz_schedule(code)))

        jobs = {
            (label, p, basis): CampaignJob(
                code=name,
                schedule=token,
                basis=basis,
                p=p,
                shots=shots,
                max_failures=400,
                seed=seed,
            )
            for label, token, _ in circuits
            for p in p_values
            for basis in ("z", "x")
        }
        labels = {job.key(): label for (label, _, _), job in jobs.items()}
        report = run_campaign(
            list(jobs.values()), store=store, workers=workers, labels=labels
        )
        for p in p_values:
            for label, _, sched in circuits:
                combined = report.combined_estimate(
                    jobs[(label, p, basis)] for basis in ("z", "x")
                )
                result.add(
                    code=name,
                    circuit=label,
                    p=p,
                    logical_error_rate=combined.rate,
                    # combine_with carries the binding (smaller) sample size
                    shots=combined.shots,
                    cnot_depth=sched.cnot_depth(),
                )
    return result


def improvement_factors(result: ExperimentResult) -> dict[tuple[str, float], float]:
    """coloration / prophunt LER ratios per (code, p) — the headline 2.5-4x."""
    table: dict[tuple[str, float, str], float] = {}
    for row in result.rows:
        table[(row["code"], row["p"], row["circuit"])] = row["logical_error_rate"]
    out = {}
    for (code, p, circuit), rate in table.items():
        if circuit != "coloration":
            continue
        after = table.get((code, p, "prophunt"))
        if after and after > 0:
            out[(code, p)] = rate / after
    return out
