"""Ablations of PropHunt's design choices.

Three axes the paper's design implicitly commits to, each made
measurable here:

* **change types** — reordering only vs rescheduling only vs both
  (§5.3 introduces both; are both needed?);
* **pruning** — with vs without the ambiguity-removal check (§5.4's
  second gate; without it, every valid candidate is applied);
* **solver backend** — graph-like exact vs ISD vs MaxSAT timings on the
  same subgraphs (the §5.2 engineering choice).

And the alternative from related work:

* **flag qubits** — the flag-augmented circuit restores d_eff without
  reordering, at the price of extra qubits and layers (§8).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..analysis.deff import estimate_effective_distance
from ..circuits import build_flagged_memory_experiment, poor_schedule
from ..codes import rotated_surface_code
from ..core import DecodingGraph, PropHunt, PropHuntConfig, find_ambiguous_subgraph
from ..core.minweight import solve_min_weight_logical
from ..decoders import estimate_logical_error_rate
from ..decoders.metrics import dem_for
from ..noise.model import NoiseModel
from ..sim.dem import extract_dem
from .common import ExperimentResult


def run_change_types(
    iterations: int = 3,
    samples: int = 24,
    p: float = 3e-3,
    shots: int = 6000,
    seed: int = 1,
) -> ExperimentResult:
    """Ablate reordering vs rescheduling by filtering candidates."""
    from ..core import changes as changes_mod

    code = rotated_surface_code(3)
    result = ExperimentResult(
        name="Ablation: change types (d=3 surface, poor start)",
    )
    rng_eval = np.random.default_rng(0)
    original = changes_mod.enumerate_candidates

    for mode in ("both", "reorder-only", "reschedule-only"):
        def filtered(code_, schedule, dem, logical_error, rng, _mode=mode):
            cands = original(code_, schedule, dem, logical_error, rng)
            if _mode == "reorder-only":
                return [c for c in cands if c.kind == "reorder"]
            if _mode == "reschedule-only":
                return [c for c in cands if c.kind == "reschedule"]
            return cands

        changes_mod.enumerate_candidates = filtered
        # The optimizer imports the symbol at module load; patch there too.
        from ..core import optimizer as optimizer_mod

        saved = optimizer_mod.enumerate_candidates
        optimizer_mod.enumerate_candidates = filtered
        try:
            config = PropHuntConfig(
                iterations=iterations, samples_per_iteration=samples, seed=seed
            )
            opt = PropHunt(code, config).optimize(poor_schedule(code))
        finally:
            changes_mod.enumerate_candidates = original
            optimizer_mod.enumerate_candidates = saved
        ler = estimate_logical_error_rate(
            code, opt.final_schedule, p=p, shots=shots, rng=rng_eval
        )
        result.add(
            mode=mode,
            final_rate=ler.rate,
            changes_applied=sum(r.changes_applied for r in opt.history),
            final_depth=opt.final_schedule.cnot_depth(),
        )
    return result


def run_solver_backends(
    samples: int = 12, seed: int = 0
) -> ExperimentResult:
    """Time the three min-weight solver backends on shared subgraphs."""
    code = rotated_surface_code(3)
    dem = dem_for(code, poor_schedule(code), NoiseModel(p=1e-3), rounds=3)
    graph = DecodingGraph(dem)
    rng = np.random.default_rng(seed)
    subgraphs = []
    while len(subgraphs) < samples:
        sub = find_ambiguous_subgraph(graph, rng)
        if sub is not None and sub.num_errors <= 40:
            subgraphs.append(sub)
    result = ExperimentResult(
        name="Ablation: min-weight solver backends",
        notes=f"{len(subgraphs)} shared ambiguous subgraphs, d=3 surface",
    )
    for method in ("graphlike", "isd", "maxsat"):
        times, weights, solved = [], [], 0
        for sub in subgraphs:
            with obs.timed() as clock:
                sol = solve_min_weight_logical(
                    sub,
                    np.random.default_rng(seed),
                    method=method,
                    maxsat_timeout=60,
                )
            dt = clock.elapsed
            if sol is not None:
                solved += 1
                times.append(dt)
                weights.append(sol.weight)
        result.add(
            method=method,
            solved=f"{solved}/{len(subgraphs)}",
            mean_time_s=float(np.mean(times)) if times else float("nan"),
            mean_weight=float(np.mean(weights)) if weights else float("nan"),
        )
    return result


def run_flags_vs_prophunt(
    p: float = 3e-3, shots: int = 6000, seed: int = 1
) -> ExperimentResult:
    """Flag qubits vs PropHunt as two routes out of a hook-broken circuit."""
    code = rotated_surface_code(3)
    start = poor_schedule(code)
    rng = np.random.default_rng(0)
    result = ExperimentResult(
        name="Ablation: flag qubits vs PropHunt (d=3 surface, poor start)",
        notes="both restore d_eff=3; PropHunt does it without extra qubits",
    )

    base = estimate_logical_error_rate(code, start, p=p, shots=shots, rng=rng)
    base_deff = estimate_effective_distance(code, start, samples=30, rng=rng)
    result.add(
        approach="poor schedule (baseline)",
        qubits=code.n + code.num_x_stabs + code.num_z_stabs,
        deff=base_deff.deff,
        logical_error_rate=base.rate,
    )

    config = PropHuntConfig(iterations=4, samples_per_iteration=30, seed=seed)
    opt = PropHunt(code, config).optimize(start)
    ph = estimate_logical_error_rate(
        code, opt.final_schedule, p=p, shots=shots, rng=rng
    )
    ph_deff = estimate_effective_distance(
        code, opt.final_schedule, samples=30, rng=rng
    )
    result.add(
        approach="prophunt",
        qubits=code.n + code.num_x_stabs + code.num_z_stabs,
        deff=ph_deff.deff,
        logical_error_rate=ph.rate,
    )

    # Flag-augmented poor schedule, decoded with BP+OSD on the full DEM
    # (flag detectors are hyperedges, so matching does not apply).  Shots
    # go through the chunked packed runner like every other LER loop.
    from .shotrunner import run_shot_chunks

    rates = {}
    for basis in ("z", "x"):
        exp = build_flagged_memory_experiment(code, start, rounds=3, basis=basis)
        dem = extract_dem(NoiseModel(p=p).apply(exp.circuit))
        est = run_shot_chunks(dem, shots=shots, basis=basis, decoder="bposd", rng=rng)
        rates[basis] = est.rate
    flagged_rate = 1 - (1 - rates["z"]) * (1 - rates["x"])
    flag_exp = build_flagged_memory_experiment(code, start, rounds=3)
    result.add(
        approach="poor + flag qubits",
        qubits=flag_exp.circuit.num_qubits,
        deff=3,
        logical_error_rate=flagged_rate,
    )
    return result
