"""Figure 6: good vs poor CNOT schedule for the d=3 surface code.

Reproduces the motivating example: the hand-designed 'N-Z' schedule vs a
poor schedule with the same depth, swept over physical error rates.  The
poor schedule's hook errors reduce d_eff and visibly flatten the LER
curve's slope.
"""

from __future__ import annotations

import numpy as np

from ..analysis.deff import estimate_effective_distance
from ..circuits import nz_schedule, poor_schedule
from ..codes import rotated_surface_code
from ..decoders import estimate_logical_error_rate
from .common import ExperimentResult


def run(
    d: int = 3,
    p_values: tuple[float, ...] = (1e-3, 2e-3, 4e-3, 8e-3),
    shots: int = 10_000,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentResult:
    code = rotated_surface_code(d)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name=f"Figure 6: schedule quality, d={d} surface code",
    )
    for name, sched in (
        ("good (N-Z)", nz_schedule(code)),
        ("poor", poor_schedule(code)),
    ):
        deff = estimate_effective_distance(code, sched, samples=24, rng=rng)
        for p in p_values:
            ler = estimate_logical_error_rate(
                code, sched, p=p, shots=shots, rng=rng, workers=workers
            )
            result.add(
                schedule=name,
                deff=deff.deff,
                p=p,
                logical_error_rate=ler.rate,
            )
    return result
