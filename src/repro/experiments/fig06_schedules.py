"""Figure 6: good vs poor CNOT schedule for the d=3 surface code.

Reproduces the motivating example: the hand-designed 'N-Z' schedule vs a
poor schedule with the same depth, swept over physical error rates.  The
poor schedule's hook errors reduce d_eff and visibly flatten the LER
curve's slope.

The sweep itself is a :class:`~repro.experiments.campaign.CampaignSpec`
— this module only defines the grid and formats the rows from store
queries, so re-running against a persistent store recomputes nothing.
"""

from __future__ import annotations

import numpy as np

from ..analysis.deff import estimate_effective_distance
from ..codes import rotated_surface_code
from .campaign import CampaignSpec, resolve_schedule, run_campaign
from .common import ExperimentResult

SCHEDULES = (("good (N-Z)", "nz"), ("poor", "poor"))


def campaign_spec(
    d: int = 3,
    p_values: tuple[float, ...] = (1e-3, 2e-3, 4e-3, 8e-3),
    shots: int = 10_000,
    seed: int = 0,
) -> CampaignSpec:
    return CampaignSpec(
        name=f"fig06_surface_d{d}",
        codes=(f"surface_d{d}",),
        schedules=tuple(token for _, token in SCHEDULES),
        p_values=p_values,
        bases=("z", "x"),
        shots=shots,
        seed=seed,
    )


def run(
    d: int = 3,
    p_values: tuple[float, ...] = (1e-3, 2e-3, 4e-3, 8e-3),
    shots: int = 10_000,
    seed: int = 0,
    workers: int = 1,
    store=None,
) -> ExperimentResult:
    spec = campaign_spec(d=d, p_values=p_values, shots=shots, seed=seed)
    report = run_campaign(spec, store=store, workers=workers)
    by_config = {
        (j.schedule, j.p, j.basis): j for j in report.jobs
    }
    code = rotated_surface_code(d)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name=f"Figure 6: schedule quality, d={d} surface code",
    )
    for name, token in SCHEDULES:
        sched = resolve_schedule(code, token)
        deff = estimate_effective_distance(code, sched, samples=24, rng=rng)
        for p in p_values:
            combined = report.combined_estimate(
                by_config[(token, p, basis)] for basis in ("z", "x")
            )
            result.add(
                schedule=name,
                deff=deff.deff,
                p=p,
                logical_error_rate=combined.rate,
            )
    return result
