"""Bias-sweep experiment (Figure-15 style): logical error vs Pauli bias.

The paper's §6 noise treatment is one point in a family: real hardware
is often dephasing-dominated (biased Pauli noise, ``eta >> 0.5``) and
readout-error-dominated (``p_m`` decoupled from gate error).  This
experiment sweeps the bias axis the way Figure 15 sweeps idle strength:
an (eta x p) grid on one code, each cell a content-addressed campaign
job whose :class:`~repro.noise.spec.NoiseSpec` rides the job key, so
re-rendering the table is pure store hits.

``eta = 0.5`` gives the depolarizing single-qubit *split* (p/3 each);
it is close to, but not identical to, the paper's baseline, because the
biased channel lowers two-qubit gates to independent per-qubit
channels rather than the correlated ``DEPOLARIZE2`` — compare against a
``noise=None`` run for the exact baseline.  ``readout`` adds an
optional independent measurement-flip probability to every cell.
"""

from __future__ import annotations

from ..codes import load_benchmark_code
from .campaign import CampaignJob, run_campaign
from .common import ExperimentResult


def bias_token(eta: float, readout: float | None = None) -> str:
    """The campaign noise token for one sweep cell."""
    token = f"biased:{eta:g}"
    if readout:
        token += f",pm={readout:g}"
    return token


def run(
    code_name: str = "surface_d3",
    etas: tuple[float, ...] = (0.5, 10.0, 100.0),
    p_values: tuple[float, ...] = (1e-3, 3e-3),
    readout: float | None = None,
    shots: int = 6000,
    seed: int = 0,
    workers: int = 1,
    store=None,
) -> ExperimentResult:
    """Sweep Pauli bias eta against physical error rate for one circuit.

    Both memory bases run and combine (biased noise is exactly the
    regime where the two differ: Z-biased errors barely touch a z-basis
    memory but dominate the x-basis one).
    """
    code = load_benchmark_code(code_name)
    schedule = "nz" if code_name.startswith("surface") else "coloration"
    jobs = [
        CampaignJob(
            code=code_name,
            schedule=schedule,
            basis=basis,
            p=p,
            noise=bias_token(eta, readout),
            shots=shots,
            max_failures=400,
            seed=seed,
        )
        for eta in etas
        for p in p_values
        for basis in ("z", "x")
    ]
    report = run_campaign(jobs, store=store, workers=workers)
    result = ExperimentResult(
        name=f"Figure 15b: Pauli-bias sensitivity, {code.label()}",
        notes="eta = p_z / (p_x + p_y); eta=0.5 is the depolarizing "
        "single-qubit split (two-qubit noise independent per qubit)"
        + (f"; readout p_m={readout:g}" if readout else ""),
    )
    for eta in etas:
        token = bias_token(eta, readout)
        for p in p_values:
            per_basis = {
                j.basis: report.estimate(j)
                for j in report.jobs
                if j.noise == token and j.p == p
            }
            combined = report.combined_estimate(
                j for j in report.jobs if j.noise == token and j.p == p
            )
            result.add(
                eta=eta,
                p=p,
                z_rate=per_basis["z"].rate,
                x_rate=per_basis["x"].rate,
                logical_error_rate=combined.rate,
            )
    return result
