"""Content-addressed on-disk result store for campaign runs.

A campaign expands into jobs, each fully described by a plain JSON
dictionary (code, schedule, noise, decoder, estimator, budget, seed).
The store keys every result by the SHA-256 of that dictionary's
*canonical* JSON encoding, so two jobs collide exactly when they would
compute the same thing: resuming a campaign, re-running a figure, or
sharing a store between invocations all reduce to key lookups.

The on-disk format is a single append-only ``results.jsonl`` inside the
store directory — one record per line, written atomically enough that a
killed run loses at most its unfinished trailing line (which the loader
detects and drops).  A later writer terminates any such orphan partial
line before appending its own record, so records written *after* an
interrupted one survive a reload — the partial-line tolerance holds
across interleaved writers, not just at end of file.  The index is
rebuilt in memory on open; there is no separate index file to go stale.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterator

STORE_FILENAME = "results.jsonl"


def canonical_json(payload: Any) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace, no NaN/Inf.

    Floats round-trip exactly (``json`` emits the shortest string that
    parses back to the same IEEE double), so the encoding — and any hash
    of it — is stable across processes, platforms, and JSON round trips.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def job_key(payload: dict[str, Any]) -> str:
    """Content address of one job description (hex SHA-256)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultStore:
    """Keyed result records, persisted as JSONL (or in memory).

    ``path=None`` gives an ephemeral in-memory store with the same API —
    the default for one-shot figure runs that do not pass ``--store``.
    """

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = os.fspath(path) if path is not None else None
        self._records: dict[str, dict[str, Any]] = {}
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)
            self._load()

    @property
    def _file(self) -> str:
        assert self.path is not None
        return os.path.join(self.path, STORE_FILENAME)

    def _load(self) -> None:
        if not os.path.exists(self._file):
            return
        with open(self._file, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Interrupted mid-append: drop the partial trailing
                    # line; the job will simply re-run on resume.
                    continue
                if isinstance(record, dict) and "key" in record:
                    self._records[record["key"]] = record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> dict[str, Any] | None:
        return self._records.get(key)

    def keys(self) -> list[str]:
        return list(self._records)

    def records(self) -> Iterator[dict[str, Any]]:
        return iter(self._records.values())

    def put(
        self,
        key: str,
        job: dict[str, Any],
        result: dict[str, Any],
        label: str | None = None,
    ) -> None:
        """Insert (or overwrite) one record and persist it immediately.

        ``job`` must be the exact hash preimage of ``key`` — display
        metadata like ``label`` lives on the record envelope, never
        inside the job dict, so ``key == job_key(record["job"])`` holds
        for every stored record.
        """
        record = {"key": key, "job": job, "result": result}
        if label is not None:
            record["label"] = label
        # Serializing now also validates: a record that cannot
        # round-trip through canonical JSON (NaN/Inf, non-JSON types)
        # must fail at write time, not at some later resume.
        line = canonical_json(record)
        self._records[key] = record
        if self.path is not None:
            with open(self._file, "a+b") as fh:
                # A writer killed mid-append leaves an unterminated
                # partial line.  Terminate it before appending, so the
                # loader drops exactly that orphan — not this record
                # concatenated onto it.
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
                fh.write((line + "\n").encode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
