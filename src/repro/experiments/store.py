"""Content-addressed on-disk result store for campaign runs.

A campaign expands into jobs, each fully described by a plain JSON
dictionary (code, schedule, noise, decoder, estimator, budget, seed).
The store keys every result by the SHA-256 of that dictionary's
*canonical* JSON encoding, so two jobs collide exactly when they would
compute the same thing: resuming a campaign, re-running a figure, or
sharing a store between invocations all reduce to key lookups.

On-disk layout
    Records live in append-only JSONL files inside the store directory
    — one record per line.  A store is either *legacy* (everything in
    one ``results.jsonl``, the pre-service format) or *sharded*
    (``results-<prefix>.jsonl``, one shard per hex key prefix, the
    format the worker fleet writes: concurrent writers land on
    different shards most of the time, and two that do collide fall
    back on the append protocol below).  Readers are layout-agnostic —
    both file sets are always loaded — so a sharded handle on a legacy
    store sees identical records, and vice versa.

Crash tolerance
    Appends are atomic enough that a killed writer loses at most its
    unfinished trailing line (which the loader detects and drops).  A
    later writer terminates any such orphan partial line before
    appending its own record, so records written *after* an interrupted
    one survive a reload — the partial-line tolerance holds across
    interleaved writers per file, not just at end of file.

The index is rebuilt in memory on open; there is no separate index file
to go stale.  :meth:`ResultStore.reload` picks up records appended by
other processes incrementally (it tails each file from the last parsed
offset), so long-lived handles — a service worker polling for work, a
figure session rendering many tables — never re-parse the whole store.
:meth:`ResultStore.compact` rewrites the store into its canonical
sharded form: records sorted by key, deduplicated, volatile ``meta``
envelopes dropped — two stores holding the same results compact to
byte-identical files no matter who wrote them in what order.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Iterator

from .. import obs

_STORE_APPENDS = obs.counter("store.appends")
_STORE_APPEND_S = obs.histogram("store.append_s")

STORE_FILENAME = "results.jsonl"
DEFAULT_SHARD_PREFIX = 1

_SHARD_RE = re.compile(r"^results-([0-9a-f]+)\.jsonl$")

# Record envelope fields that survive compaction.  ``meta`` (timing,
# worker identity — per-run provenance that varies run to run) is
# deliberately absent: compaction canonicalizes a store down to pure
# content, which is what makes distributed and single-process stores
# byte-comparable.
_CONTENT_FIELDS = ("key", "job", "label", "result")


def canonical_json(payload: Any) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace, no NaN/Inf.

    Floats round-trip exactly (``json`` emits the shortest string that
    parses back to the same IEEE double), so the encoding — and any hash
    of it — is stable across processes, platforms, and JSON round trips.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def job_key(payload: dict[str, Any]) -> str:
    """Content address of one job description (hex SHA-256)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def content_record(record: dict[str, Any]) -> dict[str, Any]:
    """The deterministic part of a record: envelope minus ``meta``."""
    return {k: record[k] for k in _CONTENT_FIELDS if k in record}


class ResultStore:
    """Keyed result records, persisted as JSONL (or in memory).

    ``path=None`` gives an ephemeral in-memory store with the same API —
    the default for one-shot figure runs that do not pass ``--store``.

    ``shard_prefix`` controls where *writes* go (reads always cover both
    layouts):

    * ``None`` (default) — auto: append to shards if the directory
      already holds shard files, else to the legacy ``results.jsonl``.
      Existing stores keep their layout; fresh single-process stores
      stay single-file.
    * ``0`` — force legacy single-file appends.
    * ``k >= 1`` — force sharded appends, ``k`` hex chars of the key as
      the shard prefix (service workers open their store this way, so a
      fleet spreads its appends over ``16**k`` files).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        shard_prefix: int | None = None,
    ):
        self.path = os.fspath(path) if path is not None else None
        if shard_prefix is not None and shard_prefix < 0:
            raise ValueError("shard_prefix must be None or >= 0")
        self._shard_prefix = shard_prefix
        self._records: dict[str, dict[str, Any]] = {}
        # Per-file byte offset of the last fully parsed line, so
        # reload() tails instead of re-reading.
        self._offsets: dict[str, int] = {}
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)
            self.reload()

    # -- layout ---------------------------------------------------------------

    @property
    def _legacy_file(self) -> str:
        assert self.path is not None
        return os.path.join(self.path, STORE_FILENAME)

    def _shard_files_on_disk(self) -> list[str]:
        assert self.path is not None
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        return [
            os.path.join(self.path, name)
            for name in sorted(names)
            if _SHARD_RE.match(name)
        ]

    @property
    def sharded(self) -> bool:
        """Whether appends go to shard files (see ``shard_prefix``)."""
        if self.path is None:
            return False
        if self._shard_prefix is not None:
            return self._shard_prefix > 0
        return bool(self._shard_files_on_disk())

    def shard_width(self) -> int:
        """Hex chars of key prefix naming the shard a record lands in."""
        if self._shard_prefix:
            return self._shard_prefix
        widths = {
            len(_SHARD_RE.match(os.path.basename(f)).group(1))
            for f in self._shard_files_on_disk()
        }
        # Mixed widths cannot happen through this class; pick the widest
        # so new appends never alias an existing narrower shard.
        return max(widths) if widths else DEFAULT_SHARD_PREFIX

    def _file_for_key(self, key: str) -> str:
        if not self.sharded:
            return self._legacy_file
        prefix = key[: self.shard_width()].lower()
        return os.path.join(self.path, f"results-{prefix}.jsonl")

    # -- loading --------------------------------------------------------------

    def _source_files(self) -> list[str]:
        files = []
        if os.path.exists(self._legacy_file):
            files.append(self._legacy_file)
        files.extend(self._shard_files_on_disk())
        return files

    def _consume(self, path: str, start: int) -> None:
        """Parse complete lines of ``path`` from byte offset ``start``."""
        try:
            with open(path, "rb") as fh:
                fh.seek(start)
                data = fh.read()
        except OSError:
            return
        end = data.rfind(b"\n")
        if end < 0:
            # Nothing but (at most) a partial trailing line: leave the
            # offset where it is so a later terminated line re-parses.
            return
        for raw in data[: end + 1].split(b"\n"):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                # Interrupted mid-append: drop the partial line (now
                # terminated by a later writer); the job simply re-runs.
                continue
            if isinstance(record, dict) and "key" in record:
                self._records[record["key"]] = record
        self._offsets[path] = start + end + 1

    def reload(self) -> None:
        """Fold in records other handles appended since the last load.

        Incremental: each known file is tailed from the offset of its
        last fully parsed line, and newly appeared shard files are read
        whole.  A file that *shrank* (compaction by another process)
        triggers a full rebuild of the index — offsets into the old
        bytes are meaningless.
        """
        if self.path is None:
            return
        for path in self._source_files():
            start = self._offsets.get(path, 0)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size < start:
                # Rewritten under us: rebuild everything from scratch.
                self._records.clear()
                self._offsets.clear()
                for p in self._source_files():
                    self._consume(p, 0)
                return
            if size > start:
                self._consume(path, start)

    # -- the index ------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> dict[str, Any] | None:
        return self._records.get(key)

    def keys(self) -> list[str]:
        return list(self._records)

    def records(self) -> Iterator[dict[str, Any]]:
        return iter(self._records.values())

    def query(self, **filters: Any) -> list[dict[str, Any]]:
        """Records whose job payload matches every ``field=value`` filter.

        Filters address the hashed job description (``code=...``,
        ``estimator=...``, ``p=...``); the reserved name ``key_prefix``
        matches on the record key instead.  Purely in-memory — call
        :meth:`reload` first if another process may have appended.
        """
        prefix = filters.pop("key_prefix", None)
        out = []
        for key, record in self._records.items():
            if prefix is not None and not key.startswith(prefix):
                continue
            job = record.get("job", {})
            if all(job.get(f) == v for f, v in filters.items()):
                out.append(record)
        return out

    def put(
        self,
        key: str,
        job: dict[str, Any],
        result: dict[str, Any],
        label: str | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Insert (or overwrite) one record and persist it immediately.

        ``job`` must be the exact hash preimage of ``key`` — display
        metadata like ``label`` lives on the record envelope, never
        inside the job dict, so ``key == job_key(record["job"])`` holds
        for every stored record.  ``meta`` is per-run provenance
        (timing, worker identity): carried on the envelope, stripped by
        :meth:`compact`, and never part of any determinism contract.
        """
        record = {"key": key, "job": job, "result": result}
        if label is not None:
            record["label"] = label
        if meta is not None:
            record["meta"] = meta
        # Serializing now also validates: a record that cannot
        # round-trip through canonical JSON (NaN/Inf, non-JSON types)
        # must fail at write time, not at some later resume.
        line = canonical_json(record)
        self._records[key] = record
        if self.path is not None:
            path = self._file_for_key(key)
            self._append_line(path, line)

    def _append_line(self, path: str, line: str) -> None:
        clock = obs.StopWatch()
        with open(path, "a+b") as fh:
            # A writer killed mid-append leaves an unterminated
            # partial line.  Terminate it before appending, so the
            # loader drops exactly that orphan — not this record
            # concatenated onto it.
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write((line + "\n").encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())
            self._offsets[path] = fh.tell()
        _STORE_APPENDS.add()
        _STORE_APPEND_S.record(clock.elapsed)

    # -- compaction -----------------------------------------------------------

    def compact(self, shard_prefix: int | None = None) -> dict[str, int]:
        """Rewrite the store in canonical sharded form; returns a summary.

        Every record — legacy file, shards, torn-line survivors,
        duplicates — is folded into one deduplicated set, stripped of
        its volatile ``meta`` envelope, and written back as one shard
        file per key prefix with records in key order.  The rewrite is
        atomic per shard (temp file + rename), the legacy file and
        stale shards are removed afterwards, and the in-memory index is
        reloaded from the new bytes.

        Because the output is a pure sorted function of record
        *content*, two stores holding the same results — a
        single-process campaign and a crash-riddled worker fleet —
        compact to byte-identical files.
        """
        if self.path is None:
            raise ValueError("cannot compact an in-memory store")
        self.reload()
        width = shard_prefix or (
            self._shard_prefix
            if self._shard_prefix
            else (self.shard_width() if self.sharded else DEFAULT_SHARD_PREFIX)
        )
        by_shard: dict[str, list[str]] = {}
        for key in sorted(self._records):
            line = canonical_json(content_record(self._records[key]))
            by_shard.setdefault(key[:width].lower(), []).append(line)
        before = self._source_files()
        written = []
        for prefix, lines in sorted(by_shard.items()):
            path = os.path.join(self.path, f"results-{prefix}.jsonl")
            tmp = path + ".compact.tmp"
            with open(tmp, "wb") as fh:
                fh.write(("\n".join(lines) + "\n").encode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            written.append(path)
        for path in before:
            if path not in written:
                try:
                    os.remove(path)
                except OSError:
                    pass
        self._shard_prefix = width
        self._records.clear()
        self._offsets.clear()
        self.reload()
        return {
            "records": len(self._records),
            "shards": len(written),
            "removed_files": len([p for p in before if p not in written]),
        }

    def content_digest(self) -> str:
        """SHA-256 over the canonical compacted content of the index.

        Computed without touching disk: the digest two stores agree on
        exactly when their :meth:`compact` outputs would be
        byte-identical.  The service smoke gate and the racing-worker
        tests assert on this.
        """
        h = hashlib.sha256()
        for key in sorted(self._records):
            h.update(canonical_json(content_record(self._records[key])).encode())
            h.update(b"\n")
        return h.hexdigest()
