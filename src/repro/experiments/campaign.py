"""Declarative sweep campaigns over the content-addressed result store.

A :class:`CampaignSpec` describes a grid — (code x schedule x idle
strength x noise scenario x physical error rate x decoder x estimator x
basis) plus the shot budget and seed — and expands into
:class:`CampaignJob`\\ s.  Every
job is content-addressed: its key is the SHA-256 of the canonical JSON
encoding of everything that affects its result (``workers`` is
deliberately excluded — the shot runner is worker-count independent by
contract).  :func:`run_campaign` looks each key up in a
:class:`~repro.experiments.store.ResultStore`, runs only the missing
jobs, and appends their results, so an interrupted campaign resumes
from where it stopped and a completed one re-invokes with zero
sampling or decoding.

Determinism is the load-bearing property: each job draws its RNG root
from its *own key* (``SeedSequence`` seeded by the hash words), never
from a shared stream, so the estimate a job produces does not depend on
which other jobs ran before it, on the worker count, or on whether the
campaign was interrupted and resumed — byte-identical results either
way (``tests/test_campaign.py``).

Compilation is shared: one :class:`CompileCache` per campaign memoizes
DEM extraction, decoder initialization, and packed samplers across the
grid, so sweeping ten error rates against one circuit builds the
circuit once per (noise, basis), not once per job invocation.

The figure runners (``fig01``/``fig06``/``fig12``/``fig14lowp``/
``fig15``) are thin wrappers: a spec definition plus table formatting
over store queries.  ``repro.cli campaign run|status|export`` exposes
the same machinery for ad-hoc sweeps.
"""

from __future__ import annotations

import itertools
import json
import os
import re
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..obs.trace import emit_metrics
from ..analysis.stats import DEFAULT_CONFIDENCE, RateEstimate
from ..circuits import (
    coloration_schedule,
    nz_schedule,
    poor_schedule,
    schedule_from_json,
)
from ..circuits.schedule import Schedule
from ..codes import BENCHMARK_CODES, load_benchmark_code, rotated_surface_code
from ..codes.css import CSSCode
from ..decoders.base import Decoder
from ..decoders.metrics import dem_for, make_decoder
from ..decoders.syncache import SyndromeCache
from ..noise.spec import NoiseSpec, noise_display, resolve_noise
from ..sim.dem import DetectorErrorModel
from ..sim.sampler import DemSampler
from .store import ResultStore, canonical_json, job_key
from .shotrunner import ExecutionConfig, resolve_execution, run_shot_chunks

_JOBS_EXECUTED = obs.counter("campaign.executed")
_JOBS_HIT = obs.counter("campaign.hits")

JOB_FORMAT = "campaign-job-v1"


# -- code / schedule resolution ---------------------------------------------

_SURFACE_RE = re.compile(r"^surface_d(\d+)$")


def resolve_code(token: str) -> CSSCode:
    """A benchmark code by name, or ``surface_d<k>`` for any odd k."""
    if token in BENCHMARK_CODES:
        return load_benchmark_code(token)
    m = _SURFACE_RE.match(token)
    if m:
        return rotated_surface_code(int(m.group(1)))
    raise KeyError(f"unknown code token {token!r}")


def resolve_schedule(code: CSSCode, spec: str | dict[str, Any]) -> Schedule:
    """Build the schedule a job names.

    String tokens: ``nz`` / ``poor`` (surface codes), ``coloration``
    (deterministic), ``coloration:<seed>`` (the randomized coloration
    circuits of Figure 13).  A dict is an inline serialized schedule
    (the ``prophunt-schedule-v1`` payload) — how optimized schedules
    enter a campaign content-addressed.
    """
    if isinstance(spec, dict):
        return schedule_from_json(json.dumps(spec), code)
    if spec == "nz":
        return nz_schedule(code)
    if spec == "poor":
        return poor_schedule(code)
    if spec == "coloration":
        return coloration_schedule(code)
    if spec.startswith("coloration:"):
        seed = int(spec.split(":", 1)[1])
        return coloration_schedule(code, np.random.default_rng(seed))
    raise KeyError(f"unknown schedule token {spec!r}")


def schedule_display(spec: str | dict[str, Any]) -> str:
    """Short human-readable form of a schedule spec for tables."""
    if isinstance(spec, dict):
        return f"inline:{job_key(spec)[:8]}"
    return spec


# -- jobs -------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignJob:
    """One content-addressed unit of work: a single (DEM, estimator) run.

    ``shots`` is the budget: exact planned shots for the direct
    estimator, the decoded-shot cap for the rare-event estimator.  Every
    field here affects the result and therefore the key; runtime knobs
    that provably do not (worker count) are passed to
    :func:`run_campaign` instead.
    """

    code: str
    schedule: str | dict[str, Any]
    basis: str = "z"
    p: float = 1e-3
    idle_strength: float = 0.0
    # Noise scenario: None (uniform depolarizing at p + idle_strength),
    # a token like "biased:10,pm=0.003" scaled by p, or an inline
    # noise-spec-v1 payload (absolute).  Hashed whenever set.
    noise: str | dict[str, Any] | None = None
    rounds: int | None = None
    decoder: str = "auto"
    estimator: str = "direct"  # "direct" | "rare-event"
    shots: int = 10_000
    max_failures: int | None = None
    chunk_size: int = 5_000
    seed: int = 0
    confidence: float = DEFAULT_CONFIDENCE
    # rare-event knobs (hashed only for rare-event jobs)
    target_rel_halfwidth: float = 0.1
    min_failure_weight: int = 1
    initial_shots: int = 512
    max_rounds: int = 16
    tail_epsilon: float = 1e-6
    mode: str = "proportional"

    def __post_init__(self):
        if self.estimator not in ("direct", "rare-event"):
            raise ValueError(f"unknown estimator {self.estimator!r}")
        if self.basis not in ("z", "x"):
            raise ValueError(f"unknown basis {self.basis!r}")
        if isinstance(self.noise, NoiseSpec):
            # Accept spec objects for ergonomics, but store the payload:
            # the job must stay plain-JSON hashable.
            object.__setattr__(self, "noise", self.noise.to_payload())
        # Fail at construction, not at DEM-build time deep in a sweep.
        self.effective_noise()

    def effective_noise(self):
        """The job's resolved :class:`~repro.noise.spec.NoiseSpec`."""
        return resolve_noise(self.noise, self.p, self.idle_strength)

    def to_payload(self) -> dict[str, Any]:
        """The canonical job description — exactly what gets hashed."""
        payload: dict[str, Any] = {
            "format": JOB_FORMAT,
            "code": self.code,
            "schedule": self.schedule,
            "basis": self.basis,
            "p": float(self.p),
            "idle_strength": float(self.idle_strength),
            "rounds": self.rounds,
            # new result-affecting knobs MUST hash (PR 4 convention);
            # the default scenario is omitted so pre-existing stores
            # keep their keys.
            **({"noise": self.noise} if self.noise is not None else {}),
            "decoder": self.decoder,
            "estimator": self.estimator,
            "shots": int(self.shots),
            "chunk_size": int(self.chunk_size),
            "seed": int(self.seed),
            "confidence": float(self.confidence),
        }
        if self.estimator == "direct":
            payload["max_failures"] = self.max_failures
        else:
            payload.update(
                target_rel_halfwidth=float(self.target_rel_halfwidth),
                min_failure_weight=int(self.min_failure_weight),
                initial_shots=int(self.initial_shots),
                max_rounds=int(self.max_rounds),
                tail_epsilon=float(self.tail_epsilon),
                mode=self.mode,
            )
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CampaignJob":
        if payload.get("format") != JOB_FORMAT:
            raise ValueError(f"not a {JOB_FORMAT} payload")
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        job = cls(**kwargs)
        if job.to_payload() != payload:
            raise ValueError("payload carries fields this version does not hash")
        return job

    def key(self) -> str:
        return job_key(self.to_payload())

    def seed_sequence(self) -> np.random.SeedSequence:
        """The job's RNG root, derived from its own content address.

        Seeding from the key (not from a shared stream consumed in grid
        order) is what makes campaigns resumable: a job's substreams are
        identical whether it runs first, last, or alone.
        """
        digest = self.key()
        words = [int(digest[i : i + 8], 16) for i in range(0, 64, 8)]
        return np.random.SeedSequence(words)


# -- specs ------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep grid; :meth:`expand` yields the jobs.

    Axes multiply: ``codes x schedules x idle_strengths x noises x
    p_values x decoders x estimators x bases``, expanded in that nesting
    order.  Scalar fields (budgets, seed, rare-event knobs) apply to
    every job.  ``noises`` entries are noise tokens / inline payloads /
    ``None`` (see :func:`repro.noise.spec.resolve_noise`).
    """

    name: str
    codes: tuple[str, ...]
    p_values: tuple[float, ...]
    schedules: tuple[Any, ...] = ("coloration",)
    bases: tuple[str, ...] = ("z", "x")
    decoders: tuple[str, ...] = ("auto",)
    estimators: tuple[str, ...] = ("direct",)
    idle_strengths: tuple[float, ...] = (0.0,)
    noises: tuple[Any, ...] = (None,)
    shots: int = 10_000
    max_failures: int | None = None
    rounds: int | None = None
    chunk_size: int = 5_000
    seed: int = 0
    confidence: float = DEFAULT_CONFIDENCE
    target_rel_halfwidth: float = 0.1
    min_failure_weight: int = 1
    initial_shots: int = 512
    max_rounds: int = 16
    tail_epsilon: float = 1e-6
    mode: str = "proportional"

    def expand(self) -> list[CampaignJob]:
        grid = itertools.product(
            self.codes,
            self.schedules,
            self.idle_strengths,
            self.noises,
            self.p_values,
            self.decoders,
            self.estimators,
            self.bases,
        )
        return [
            CampaignJob(
                code=code,
                schedule=schedule,
                basis=basis,
                p=p,
                idle_strength=idle,
                noise=noise,
                rounds=self.rounds,
                decoder=decoder,
                estimator=estimator,
                shots=self.shots,
                max_failures=self.max_failures,
                chunk_size=self.chunk_size,
                seed=self.seed,
                confidence=self.confidence,
                target_rel_halfwidth=self.target_rel_halfwidth,
                min_failure_weight=self.min_failure_weight,
                initial_shots=self.initial_shots,
                max_rounds=self.max_rounds,
                tail_epsilon=self.tail_epsilon,
                mode=self.mode,
            )
            for code, schedule, idle, noise, p, decoder, estimator, basis in grid
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "codes": list(self.codes),
            "p_values": list(self.p_values),
            "schedules": list(self.schedules),
            "bases": list(self.bases),
            "decoders": list(self.decoders),
            "estimators": list(self.estimators),
            "idle_strengths": list(self.idle_strengths),
            "noises": list(self.noises),
            "shots": self.shots,
            "max_failures": self.max_failures,
            "rounds": self.rounds,
            "chunk_size": self.chunk_size,
            "seed": self.seed,
            "confidence": self.confidence,
            "target_rel_halfwidth": self.target_rel_halfwidth,
            "min_failure_weight": self.min_failure_weight,
            "initial_shots": self.initial_shots,
            "max_rounds": self.max_rounds,
            "tail_epsilon": self.tail_epsilon,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign spec fields: {sorted(unknown)}")
        kwargs = dict(data)
        for key in (
            "codes",
            "p_values",
            "schedules",
            "bases",
            "decoders",
            "estimators",
            "idle_strengths",
            "noises",
        ):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    @classmethod
    def from_json_file(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


# -- shared compilation -----------------------------------------------------


class CompileCache:
    """Memoized DEM extraction / decoder init / samplers across a grid.

    Keys are canonical job-field tuples, so any two jobs describing the
    same circuit under the same noise share one DEM, and any two jobs
    decoding that DEM the same way share one decoder instance — the
    expensive setup runs once per (circuit, decoder) per campaign, not
    once per job.  DEM extraction is cached for every path; the cached
    sampler/decoder instances are reused on the inline (``workers <= 1``)
    execution path — with ``workers > 1`` each job's pool workers
    compile their own copies (per-process state cannot be shared), the
    same per-call cost the shot runner always had.
    """

    def __init__(self):
        self._codes: dict[str, CSSCode] = {}
        self._schedules: dict[tuple, Schedule] = {}
        self._dems: dict[tuple, DetectorErrorModel] = {}
        self._decoders: dict[tuple, Decoder] = {}
        self._samplers: dict[tuple, DemSampler] = {}
        self._syncaches: dict[tuple, SyndromeCache] = {}
        self.stats = {"dem_hits": 0, "dem_misses": 0, "decoder_misses": 0}

    def code(self, token: str) -> CSSCode:
        if token not in self._codes:
            self._codes[token] = resolve_code(token)
        return self._codes[token]

    def schedule(self, job: CampaignJob) -> Schedule:
        key = (job.code, canonical_json(job.schedule))
        if key not in self._schedules:
            self._schedules[key] = resolve_schedule(self.code(job.code), job.schedule)
        return self._schedules[key]

    def _dem_key(self, job: CampaignJob) -> tuple:
        return (
            job.code,
            canonical_json(job.schedule),
            float(job.p),
            float(job.idle_strength),
            canonical_json(job.noise),
            job.rounds,
            job.basis,
        )

    def dem(self, job: CampaignJob) -> DetectorErrorModel:
        key = self._dem_key(job)
        if key not in self._dems:
            self.stats["dem_misses"] += 1
            noise = job.effective_noise()
            self._dems[key] = dem_for(
                self.code(job.code),
                self.schedule(job),
                noise,
                basis=job.basis,
                rounds=job.rounds,
            )
        else:
            self.stats["dem_hits"] += 1
        return self._dems[key]

    def decoder(self, job: CampaignJob) -> Decoder:
        key = self._dem_key(job) + (job.decoder,)
        if key not in self._decoders:
            self.stats["decoder_misses"] += 1
            self._decoders[key] = make_decoder(self.dem(job), job.basis, job.decoder)
        return self._decoders[key]

    def sampler(self, job: CampaignJob) -> DemSampler:
        key = self._dem_key(job)
        if key not in self._samplers:
            self._samplers[key] = DemSampler(self.dem(job))
        return self._samplers[key]

    def syndrome_cache(
        self,
        job: CampaignJob,
        directory: str | None,
        writer_tag: str | None = None,
    ) -> SyndromeCache:
        """The persistent syndrome cache a job's decoder addresses.

        Memoized alongside the decoder, so every job in the grid hitting
        the same (DEM, decoder) shares one open cache — loaded once per
        campaign, and its hit/miss stats aggregate across jobs.
        ``writer_tag`` routes this process's appends to a private shard
        file (service workers pass their worker id) so a fleet sharing
        one cache directory never interleaves writes.
        """
        key = self._dem_key(job) + (job.decoder, directory, writer_tag)
        if key not in self._syncaches:
            self._syncaches[key] = SyndromeCache.for_decoder(
                self.decoder(job), directory, writer_tag=writer_tag
            )
        return self._syncaches[key]

    def syndrome_cache_stats(self) -> dict[str, int]:
        """Hit/miss/entry totals over every cache this campaign opened."""
        agg = {"hits": 0, "misses": 0, "entries": 0, "loaded": 0, "files": 0}
        for cache in self._syncaches.values():
            agg["files"] += 1
            for k in ("hits", "misses", "entries", "loaded"):
                agg[k] += cache.stats[k]
        return agg


# -- execution --------------------------------------------------------------


def execute_job(
    job: CampaignJob,
    cache: CompileCache | None = None,
    config: ExecutionConfig | None = None,
    **legacy,
) -> dict[str, Any]:
    """Run one job and return its JSON-safe, *deterministic* result payload.

    The payload always records both the planned budget and the shots
    actually consumed — under ``max_failures`` early stopping the two
    differ, and stored CI widths must reflect real consumption.  It is
    a pure function of the job (every job seeds from its own key and
    the runner is worker-count independent): wall-clock timing and
    other per-run provenance ride the record's ``meta`` envelope
    (:func:`run_campaign`, the service workers), never the result.

    Execution knobs ride ``config`` (an
    :class:`~repro.experiments.shotrunner.ExecutionConfig`; the old
    ``workers``/``syndrome_cache_dir`` keywords still work with a
    one-time deprecation warning).  The job's own hashed ``chunk_size``
    and ``max_failures`` override whatever the config carries — those
    two affect results, so the content address owns them.

    ``config.syndrome_cache_dir`` enables the persistent
    syndrome→correction cache (:mod:`repro.decoders.syncache`): the
    job's decoder consults it before decoding anything, so syndromes
    solved by earlier jobs or runs are free.  Cache state never changes
    results — only which code path produces them — so it is
    deliberately *not* part of the job key, and resumed campaigns stay
    byte-identical.
    """
    cfg = resolve_execution("execute_job", config, legacy)
    cache = cache or CompileCache()
    cfg = cfg.replace(
        chunk_shots=job.chunk_size,
        max_failures=job.max_failures,
        sampler=cache.sampler(job) if cfg.workers <= 1 else None,
        dec=cache.decoder(job) if cfg.workers <= 1 else None,
    )
    with obs.span(
        "job", key=job.key()[:16], estimator=job.estimator, code=job.code
    ):
        return _execute_job_inner(job, cache, cfg)


def _execute_job_inner(
    job: CampaignJob, cache: CompileCache, cfg: ExecutionConfig
) -> dict[str, Any]:
    dem = cache.dem(job)
    rng = np.random.default_rng(job.seed_sequence())
    if cfg.syndrome_cache_dir is not None and cfg.workers <= 1:
        # Attach the campaign-shared cache to the memoized decoder (pool
        # workers attach their own through the runner's initializer).
        cache.decoder(job).attach_syndrome_cache(
            cache.syndrome_cache(
                job, cfg.syndrome_cache_dir, writer_tag=cfg.syndrome_writer_tag
            )
        )
    if job.estimator == "direct":
        est = run_shot_chunks(
            dem,
            shots=job.shots,
            basis=job.basis,
            decoder=job.decoder,
            rng=rng,
            config=cfg,
        )
        est = est.with_confidence(job.confidence)
        return {
            "estimator": "direct",
            "estimate": est.to_dict(),
            "planned_shots": int(job.shots),
            "consumed_shots": int(est.shots),
            "early_stopped": est.shots < job.shots,
        }
    from ..rareevent import estimate_ler_stratified

    strat = estimate_ler_stratified(
        dem,
        basis=job.basis,
        decoder=job.decoder,
        rng=rng,
        min_failure_weight=job.min_failure_weight,
        tail_epsilon=job.tail_epsilon,
        target_rel_halfwidth=job.target_rel_halfwidth,
        confidence=job.confidence,
        initial_shots=job.initial_shots,
        max_shots=job.shots,
        max_rounds=job.max_rounds,
        chunk_size=job.chunk_size,
        workers=cfg.workers,
        mode=job.mode,
        dec=cache.decoder(job) if cfg.workers <= 1 else None,
    )
    return {
        "estimator": "rare-event",
        "estimate": strat.to_rate_estimate().to_dict(),
        "stratified": strat.to_dict(),
        "planned_shots": int(job.shots),
        "consumed_shots": int(strat.shots),
        "early_stopped": False,
    }


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` invocation did."""

    store: ResultStore
    jobs: list[CampaignJob]
    hits: int = 0
    executed: list[str] = field(default_factory=list)
    records: dict[str, dict[str, Any]] = field(default_factory=dict)
    # Aggregated persistent-syndrome-cache counters for the jobs this
    # invocation executed (None when the cache was disabled).  Reported
    # by `campaign run`/`status`, never stored in result records — cache
    # warmth varies run to run, stored records must not.
    syndrome_stats: dict[str, int] | None = None

    def record(self, job: CampaignJob) -> dict[str, Any]:
        return self.records[job.key()]

    def estimate(self, job: CampaignJob) -> RateEstimate:
        return RateEstimate.from_dict(self.record(job)["result"]["estimate"])

    def combined_estimate(self, jobs: Iterable[CampaignJob]) -> RateEstimate:
        """Failure-anywhere combination across jobs (e.g. z and x bases)."""
        combined: RateEstimate | None = None
        for job in jobs:
            est = self.estimate(job)
            combined = est if combined is None else combined.combine_with(est)
        if combined is None:
            raise ValueError("no jobs to combine")
        return combined


def as_store(store: ResultStore | str | None) -> ResultStore:
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)


def run_campaign(
    spec: CampaignSpec | Sequence[CampaignJob],
    store: ResultStore | str | None = None,
    workers: int | None = None,
    cache: CompileCache | None = None,
    progress: Callable[[str], None] | None = None,
    labels: dict[str, str] | None = None,
    syndrome_cache_dir: str | None = "auto",
    config: ExecutionConfig | None = None,
    meta: dict[str, Any] | None = None,
) -> CampaignReport:
    """Run every job of a spec that the store does not already hold.

    Completed jobs load from the store untouched (no DEM build, no
    sampling, no decoding); missing jobs run through the packed shot
    runner / stratified estimator with ``workers`` fan-out and are
    appended to the store as they finish — killing the process between
    jobs loses nothing, and rerunning resumes exactly (byte-identical
    results, since every job seeds from its own key).  ``labels`` maps
    job keys to display names carried into stored records for
    ``status``/``export``.

    ``syndrome_cache_dir`` roots the persistent syndrome→correction
    cache.  The default ``"auto"`` places it in ``<store>/syndromes``
    for persistent stores (shared across runs of the same campaign
    directory) and disables it for in-memory stores; pass ``None`` to
    disable explicitly.  The cache only accelerates decoding — it is
    deliberately not part of any job key, so resumed campaigns stay
    byte-identical whether the cache is warm, cold, or deleted.

    ``config`` carries the remaining execution knobs (an explicit
    ``workers``/``syndrome_cache_dir`` argument wins over the config
    field for backward compatibility).  ``meta`` seeds the per-run
    provenance envelope stored with every executed record (the service
    workers stamp their worker id); timing is always added.
    """
    jobs = spec.expand() if isinstance(spec, CampaignSpec) else list(spec)
    store = as_store(store)
    cache = cache or CompileCache()
    cfg = config or ExecutionConfig()
    if workers is not None:
        cfg = cfg.replace(workers=workers)
    if syndrome_cache_dir == "auto":
        syndrome_cache_dir = cfg.syndrome_cache_dir or (
            os.path.join(store.path, "syndromes")
            if store.path is not None
            else None
        )
    cfg = cfg.replace(syndrome_cache_dir=syndrome_cache_dir)
    if obs.enabled() and obs.state.telemetry_dir is None:
        # Telemetry rides the store directory (sidecars only — never
        # record content); in-memory stores keep metrics but no traces.
        obs.configure(telemetry_dir=obs.telemetry_dir_for(store.path))
    report = CampaignReport(store=store, jobs=jobs)
    seen: set[str] = set()
    for i, job in enumerate(jobs):
        key = job.key()
        if key in seen:
            # Grids can repeat a job (e.g. two figure rows sharing a
            # config); each key runs at most once per campaign.
            report.records[key] = store.get(key)
            continue
        seen.add(key)
        cached = store.get(key)
        if cached is not None:
            report.hits += 1
            _JOBS_HIT.add()
            report.records[key] = cached
            if progress is not None:
                progress(f"[{i + 1}/{len(jobs)}] hit  {_describe(job, labels)}")
            continue
        if progress is not None:
            progress(f"[{i + 1}/{len(jobs)}] run  {_describe(job, labels)}")
        with obs.timed("campaign.job_s") as clock:
            result = execute_job(job, cache=cache, config=cfg)
        store.put(
            key,
            job.to_payload(),
            result,
            label=(labels or {}).get(key),
            meta={**(meta or {}), "elapsed_s": clock.elapsed},
        )
        report.executed.append(key)
        _JOBS_EXECUTED.add()
        report.records[key] = store.get(key)
    if cfg.syndrome_cache_dir is not None:
        report.syndrome_stats = cache.syndrome_cache_stats()
    if report.executed:
        # Leave final counter/histogram state in the sidecars so a
        # finished run answers `campaign status --telemetry` offline.
        emit_metrics(obs.snapshot())
    return report


def _describe(job: CampaignJob, labels: dict[str, str] | None) -> str:
    label = (labels or {}).get(job.key())
    sched = label or schedule_display(job.schedule)
    noise = "" if job.noise is None else f" noise={noise_display(job.noise)}"
    return (
        f"{job.code} {sched} {job.basis}-basis p={job.p:g}{noise} "
        f"{job.estimator} budget={job.shots}"
    )


def export_rows(
    store: ResultStore, jobs: Sequence[CampaignJob] | None = None
) -> list[dict[str, Any]]:
    """Flatten store records into analysis-ready rows.

    With ``jobs``, exports exactly those (missing ones are skipped);
    otherwise every record in the store.
    """
    if jobs is not None:
        records = [r for r in (store.get(j.key()) for j in jobs) if r is not None]
    else:
        records = list(store.records())
    rows = []
    for record in records:
        payload = record["job"]
        result = record["result"]
        est = RateEstimate.from_dict(result["estimate"])
        lo, hi = est.interval
        row: dict[str, Any] = {
            "key": record["key"][:12],
            "code": payload["code"],
            "schedule": record.get("label") or schedule_display(payload["schedule"]),
            "basis": payload["basis"],
            "p": payload["p"],
            "idle_strength": payload["idle_strength"],
            "noise": noise_display(payload.get("noise")),
            "decoder": payload["decoder"],
            "estimator": payload["estimator"],
            "planned_shots": result["planned_shots"],
            "shots": result["consumed_shots"],
            "failures": est.failures,
            "rate": est.rate,
            "lo": lo,
            "hi": hi,
            "early_stopped": result.get("early_stopped", False),
        }
        if "stratified" in result:
            strat = result["stratified"]
            row.update(
                # The stratified interval is asymmetric (zero-failure and
                # tail mass load the upper edge); report its exact edges.
                rate=strat["rate"],
                lo=strat["lo"],
                hi=strat["hi"],
                converged=strat["converged"],
                rounds=strat["rounds"],
                direct_mc_equiv=strat["direct_mc_equiv"],
            )
        rows.append(row)
    return rows


def smoke_spec(store_seed: int = 0) -> CampaignSpec:
    """The tiny built-in campaign used by ``campaign run --smoke`` and CI.

    Covers both estimators, both bases, a store write, and (on the
    second invocation) a full resume: seconds of work, every moving
    part exercised.
    """
    return CampaignSpec(
        name="smoke",
        codes=("surface_d3",),
        schedules=("nz",),
        p_values=(3e-3,),
        bases=("z", "x"),
        estimators=("direct", "rare-event"),
        shots=1536,
        chunk_size=512,
        seed=store_seed,
        target_rel_halfwidth=0.5,
        min_failure_weight=2,
        initial_shots=256,
        max_rounds=4,
    )


__all__ = [
    "CampaignJob",
    "CampaignSpec",
    "CampaignReport",
    "CompileCache",
    "execute_job",
    "export_rows",
    "resolve_code",
    "resolve_schedule",
    "run_campaign",
    "schedule_display",
    "smoke_spec",
]
