"""Figure 14: subgraph MaxSAT scaling with effective distance.

Ambiguous subgraphs are sampled for several codes; each is solved with
the paper's MaxSAT formulation and binned by the weight of the logical
error found (the subgraph's local d_eff).  Model size and solve time both
grow with d_eff, with increasing variance at larger d_eff — the paper's
qualitative observations.
"""

from __future__ import annotations

import numpy as np

from ..circuits import coloration_schedule, nz_schedule
from ..codes import load_benchmark_code
from ..core import DecodingGraph, build_maxsat_model, find_ambiguous_subgraph
from ..core.minweight import solve_min_weight_logical
from ..decoders.metrics import dem_for
from ..noise.model import NoiseModel
from .common import ExperimentResult


def run(
    codes: tuple[str, ...] = ("surface_d3", "surface_d5", "rqt60"),
    samples_per_code: int = 25,
    rounds: int = 3,
    p: float = 1e-3,
    use_maxsat: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 14: subgraph solve scaling vs d_eff",
        notes="each row aggregates sampled subgraphs whose min logical "
        "error had the given weight",
    )
    rng = np.random.default_rng(seed)
    noise = NoiseModel(p=p)
    for name in codes:
        code = load_benchmark_code(name)
        schedule = (
            nz_schedule(code)
            if name.startswith("surface")
            else coloration_schedule(code)
        )
        dem = dem_for(code, schedule, noise, basis="z", rounds=rounds)
        graph = DecodingGraph(dem)
        by_weight: dict[int, list[tuple[int, float]]] = {}
        for _ in range(samples_per_code):
            sub = find_ambiguous_subgraph(graph, rng)
            if sub is None:
                continue
            method = "maxsat" if (use_maxsat and sub.num_errors <= 48) else "auto"
            solution = solve_min_weight_logical(
                sub, rng, method=method, maxsat_timeout=30.0
            )
            if solution is None:
                continue
            model = build_maxsat_model(sub.h, sub.l)
            by_weight.setdefault(solution.weight, []).append(
                (model.stats()["variables"], solution.solve_time)
            )
        for weight in sorted(by_weight):
            entries = by_weight[weight]
            variables = [v for v, _ in entries]
            times = [t for _, t in entries]
            result.add(
                code=name,
                deff_weight=weight,
                num_subgraphs=len(entries),
                mean_variables=float(np.mean(variables)),
                mean_solve_s=float(np.mean(times)),
                max_solve_s=float(np.max(times)),
            )
    return result
