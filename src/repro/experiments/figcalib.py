"""Calibration-sensitivity campaign sweep: uniform vs heterogeneous noise.

Every headline number in the paper assumes spatially uniform,
time-stationary depolarizing noise.  This sweep quantifies what that
assumption hides, by running the same code through four scenarios built
from the PR's noise subsystem:

* ``uniform`` — depolarizing gates + readout ``p_m = p`` (the ``pm=p``
  token: everything scales with the sweep's ``p``);
* ``calibrated`` — the same base rates under a synthetic device
  profile (:func:`~repro.noise.profile.synthetic_profile`: lognormal
  per-qubit scatter, a couple of hot qubits, systematically worse
  CNOTs and readout), inlined as an absolute ``noise-spec-v1`` payload;
* ``correlated`` — genuinely correlated two-qubit CNOT noise
  (``PAULI_CHANNEL_2``) plus measurement crosstalk at ``p``;
* ``drift`` — the uniform scenario under a linear rate ramp over the
  QEC rounds (mean multiplier 1, so the time-average matches uniform).

Each cell is a content-addressed :class:`CampaignJob`: profile payloads
are *inlined* into the job's noise payload (never referenced by file
path), so re-rendering the table is pure store hits and two sweeps
agree on a cell iff they agree on its physics.
"""

from __future__ import annotations

from ..codes import load_benchmark_code
from ..noise import DriftSchedule, NoiseSpec, synthetic_profile
from .campaign import CampaignJob, run_campaign
from .common import ExperimentResult

SCENARIOS = ("uniform", "calibrated", "correlated", "drift")

PROFILE_SEED = 7


def scenario_noise(
    scenario: str, p: float, num_qubits: int, rounds: int
) -> "str | dict | None":
    """The campaign noise spec for one sweep cell.

    Token scenarios rescale with the job's ``p``; profile/drift
    scenarios are absolute inline payloads rebuilt per ``p``.
    """
    if scenario == "uniform":
        return "pm=p"
    if scenario == "correlated":
        return "correlated,pm=p,ct=p"
    if scenario == "calibrated":
        return NoiseSpec.depolarizing(
            p,
            readout=p,
            profile=synthetic_profile(num_qubits, seed=PROFILE_SEED),
        ).to_payload()
    if scenario == "drift":
        return NoiseSpec.depolarizing(
            p, readout=p, drift=DriftSchedule.linear(0.5, 1.5, rounds)
        ).to_payload()
    raise ValueError(f"unknown figcalib scenario {scenario!r}")


def run(
    code_name: str = "surface_d3",
    scenarios: tuple[str, ...] = SCENARIOS,
    p_values: tuple[float, ...] = (1e-3, 3e-3),
    shots: int = 6000,
    seed: int = 0,
    workers: int = 1,
    store=None,
) -> ExperimentResult:
    """Sweep noise scenarios against physical error rate for one code.

    Both memory bases run and combine, like the bias sweep: the
    calibrated profile's hot qubits are basis-agnostic, but correlated
    CNOT noise and crosstalk are not.
    """
    code = load_benchmark_code(code_name)
    schedule = "nz" if code_name.startswith("surface") else "coloration"
    num_qubits = code.n + code.num_x_stabs + code.num_z_stabs
    rounds = code.distance
    noises = {
        (scenario, p): scenario_noise(scenario, p, num_qubits, rounds)
        for scenario in scenarios
        for p in p_values
    }
    jobs = {
        (scenario, p, basis): CampaignJob(
            code=code_name,
            schedule=schedule,
            basis=basis,
            p=p,
            noise=noises[scenario, p],
            shots=shots,
            max_failures=400,
            seed=seed,
        )
        for (scenario, p) in noises
        for basis in ("z", "x")
    }
    report = run_campaign(list(jobs.values()), store=store, workers=workers)
    result = ExperimentResult(
        name=f"Calibration sensitivity, {code.label()}",
        notes="uniform vs device-profile vs correlated+crosstalk vs "
        f"round-drift scenarios; profile seed {PROFILE_SEED}, readout "
        "p_m = p everywhere",
    )
    for scenario in scenarios:
        for p in p_values:
            cell = [jobs[scenario, p, "z"], jobs[scenario, p, "x"]]
            combined = report.combined_estimate(cell)
            uniform_rate = (
                report.combined_estimate(
                    [jobs["uniform", p, "z"], jobs["uniform", p, "x"]]
                ).rate
                if "uniform" in scenarios
                else 0.0
            )
            result.add(
                scenario=scenario,
                p=p,
                z_rate=report.estimate(cell[0]).rate,
                x_rate=report.estimate(cell[1]).rate,
                logical_error_rate=combined.rate,
                vs_uniform=(
                    combined.rate / uniform_rate if uniform_rate > 0 else float("nan")
                ),
            )
    return result
