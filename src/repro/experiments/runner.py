"""Command-line experiment runner.

Regenerate any paper table/figure::

    python -m repro.experiments.runner table1
    python -m repro.experiments.runner fig12 --full
    python -m repro.experiments.runner all

``--full`` switches from laptop-scale defaults to heavier parameters
(closer to the paper's; still hours, not days).  Results print as plain
tables; redirect to a file to archive them (EXPERIMENTS.md records one
such run).
"""

from __future__ import annotations

import argparse
import sys

from .. import obs
from ..obs.log import get_logger
from . import (
    fig01_predictors,
    fig06_schedules,
    fig12_benchmarks,
    fig13_random_starts,
    fig14_lowp,
    fig14_scaling,
    fig15_bias,
    fig15_idle,
    fig16_zne,
    figcalib,
    table1_codes,
    table2_models,
)

_log = get_logger("runner")

ALL_CODES = (
    "surface_d3",
    "surface_d5",
    "surface_d7",
    "surface_d9",
    "lp39",
    "rqt60",
    "rqt54",
    "rqt108",
)


def _scale(opts, smoke: int, default: int, full: int) -> int:
    if opts.smoke:
        return smoke
    return full if opts.full else default


def _run_fig16(opts):
    a = fig16_zne.run_amplification()
    b = fig16_zne.run_bias(trials=_scale(opts, 10, 40, 200))
    return [a, b]


EXPERIMENTS = {
    "fig1": lambda opts: [
        fig01_predictors.run(
            shots=_scale(opts, 500, 5000, 20_000),
            workers=opts.workers,
            store=opts.store,
        )
    ],
    "fig6": lambda opts: [
        fig06_schedules.run(
            shots=_scale(opts, 300, 10_000, 50_000),
            workers=opts.workers,
            store=opts.store,
        )
    ],
    "table1": lambda opts: [
        table1_codes.run(distance_iterations=_scale(opts, 20, 80, 400))
    ],
    "fig12": lambda opts: [
        fig12_benchmarks.run(
            codes=ALL_CODES
            if opts.full
            else ("surface_d3", "surface_d5", "lp39", "rqt60"),
            p_values=(5e-4, 1e-3, 3e-3) if opts.full else (1e-3, 3e-3),
            shots=_scale(opts, 400, 5000, 30_000),
            include_intermediate=opts.full,
            workers=opts.workers,
            store=opts.store,
        )
    ],
    "fig13": lambda opts: [
        fig13_random_starts.run(
            num_starts=3,
            shots=_scale(opts, 500, 6000, 20_000),
            iterations=_scale(opts, 2, 4, 6),
            workers=opts.workers,
        )
    ],
    "table2": lambda opts: [
        table2_models.run(
            global_timeout=60.0 if opts.full else (2.0 if opts.smoke else 5.0)
        )
    ],
    "fig14": lambda opts: [
        fig14_scaling.run(
            samples_per_code=_scale(opts, 8, 25, 100),
            codes=("surface_d3", "surface_d5", "surface_d7", "rqt60")
            if opts.full
            else ("surface_d3", "surface_d5", "rqt60"),
        )
    ],
    "fig14lowp": lambda opts: [
        fig14_lowp.run(
            direct_shots=_scale(opts, 2_000, 60_000, 200_000),
            max_strat_shots=_scale(opts, 20_000, 500_000, 2_000_000),
            target_rel_halfwidth=0.3 if opts.smoke else 0.12,
            deep_p=(1e-3,) if opts.smoke else (1e-3, 5e-4),
            deep=opts.rare_event or opts.full,
            workers=opts.workers,
            store=opts.store,
        )
    ],
    "fig15": lambda opts: [
        fig15_idle.run(
            shots=_scale(opts, 400, 6000, 20_000),
            workers=opts.workers,
            store=opts.store,
        )
    ],
    "fig15bias": lambda opts: [
        fig15_bias.run(
            p_values=(3e-3,) if opts.smoke else (1e-3, 3e-3),
            shots=_scale(opts, 240, 6000, 20_000),
            workers=opts.workers,
            store=opts.store,
        )
    ],
    "figcalib": lambda opts: [
        figcalib.run(
            p_values=(3e-3,) if opts.smoke else (1e-3, 3e-3),
            shots=_scale(opts, 240, 6000, 20_000),
            workers=opts.workers,
            store=opts.store,
        )
    ],
    "fig16": _run_fig16,
}

ALIASES = {
    "figure1": "fig1",
    "figure6": "fig6",
    "figure12": "fig12",
    "figure13": "fig13",
    "figure14": "fig14",
    "figure14x": "fig14lowp",
    "fig14x": "fig14lowp",
    "figure15": "fig15",
    "figure15bias": "fig15bias",
    "fig15b": "fig15bias",
    "figurecalib": "figcalib",
    "calib": "figcalib",
    "figure16": "fig16",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        help=f"one of {sorted(EXPERIMENTS)} or 'all'",
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (much slower)",
    )
    scale.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shot counts (CI sanity run, seconds not minutes)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the chunked shot runner (1 = inline)",
    )
    parser.add_argument(
        "--rare-event",
        action="store_true",
        help="extend LER experiments below direct-MC reach with the "
        "weight-stratified estimator (fig14lowp deep rows)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="campaign result-store directory: completed sweep jobs are "
        "reused across invocations (default: ephemeral in-memory store)",
    )
    args = parser.parse_args(argv)

    if args.store is not None:
        # One store handle for the whole invocation.  Passing the raw
        # path had every figure re-open and re-parse the JSONL store
        # (`as_store(path)` builds a fresh ResultStore per call); the
        # shared handle is passed through untouched and tails
        # incrementally instead.
        from .store import ResultStore

        args.store = ResultStore(args.store)

    name = ALIASES.get(args.experiment, args.experiment)
    targets = sorted(EXPERIMENTS) if name == "all" else [name]
    for target in targets:
        if target not in EXPERIMENTS:
            parser.error(f"unknown experiment {target!r}")
        with obs.timed("runner.experiment_s") as clock:
            for result in EXPERIMENTS[target](args):
                result.print()
                print()
        _log.info("experiment finished", target=target, elapsed_s=clock.elapsed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
