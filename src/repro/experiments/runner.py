"""Command-line experiment runner.

Regenerate any paper table/figure::

    python -m repro.experiments.runner table1
    python -m repro.experiments.runner fig12 --full
    python -m repro.experiments.runner all

``--full`` switches from laptop-scale defaults to heavier parameters
(closer to the paper's; still hours, not days).  Results print as plain
tables; redirect to a file to archive them (EXPERIMENTS.md records one
such run).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    fig01_predictors,
    fig06_schedules,
    fig12_benchmarks,
    fig13_random_starts,
    fig14_scaling,
    fig15_idle,
    fig16_zne,
    table1_codes,
    table2_models,
)

ALL_CODES = (
    "surface_d3",
    "surface_d5",
    "surface_d7",
    "surface_d9",
    "lp39",
    "rqt60",
    "rqt54",
    "rqt108",
)


def _run_fig16(full: bool):
    a = fig16_zne.run_amplification()
    b = fig16_zne.run_bias(trials=200 if full else 40)
    return [a, b]


EXPERIMENTS = {
    "fig1": lambda full: [
        fig01_predictors.run(shots=20_000 if full else 5000)
    ],
    "fig6": lambda full: [
        fig06_schedules.run(shots=50_000 if full else 10_000)
    ],
    "table1": lambda full: [
        table1_codes.run(distance_iterations=400 if full else 80)
    ],
    "fig12": lambda full: [
        fig12_benchmarks.run(
            codes=ALL_CODES if full else ("surface_d3", "surface_d5", "lp39", "rqt60"),
            p_values=(5e-4, 1e-3, 3e-3) if full else (1e-3, 3e-3),
            shots=30_000 if full else 5000,
            include_intermediate=full,
        )
    ],
    "fig13": lambda full: [
        fig13_random_starts.run(
            num_starts=3,
            shots=20_000 if full else 6000,
            iterations=6 if full else 4,
        )
    ],
    "table2": lambda full: [
        table2_models.run(global_timeout=60.0 if full else 5.0)
    ],
    "fig14": lambda full: [
        fig14_scaling.run(
            samples_per_code=100 if full else 25,
            codes=("surface_d3", "surface_d5", "surface_d7", "rqt60")
            if full
            else ("surface_d3", "surface_d5", "rqt60"),
        )
    ],
    "fig15": lambda full: [
        fig15_idle.run(shots=20_000 if full else 6000)
    ],
    "fig16": _run_fig16,
}

ALIASES = {
    "figure1": "fig1",
    "figure6": "fig6",
    "figure12": "fig12",
    "figure13": "fig13",
    "figure14": "fig14",
    "figure15": "fig15",
    "figure16": "fig16",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        help=f"one of {sorted(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (much slower)",
    )
    args = parser.parse_args(argv)

    name = ALIASES.get(args.experiment, args.experiment)
    targets = sorted(EXPERIMENTS) if name == "all" else [name]
    for target in targets:
        if target not in EXPERIMENTS:
            parser.error(f"unknown experiment {target!r}")
        t0 = time.monotonic()
        for result in EXPERIMENTS[target](args.full):
            result.print()
            print()
        print(f"[{target} finished in {time.monotonic() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
