"""Table 2: MaxSAT model sizes — global vs ambiguous-subgraph formulation.

The global formulation builds the §5.2 WCNF over the *entire*
circuit-level decoding graph; the subgraph formulation builds it over one
sampled ambiguous subgraph.  The paper's point: subgraph models are three
orders of magnitude smaller and solve in ~1 s, while global models take
hours or time out.  Global solves are attempted with a short, configurable
timeout (the paper itself reports a timeout for [[60,2,6]]).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..circuits import coloration_schedule
from ..codes import load_benchmark_code
from ..core import DecodingGraph, build_maxsat_model, find_ambiguous_subgraph
from ..core.minweight import solve_min_weight_logical
from ..decoders.metrics import dem_for
from ..maxsat import MaxSatSolver
from ..noise.model import NoiseModel
from .common import ExperimentResult

TABLE2_CODES = ("lp39", "surface_d7", "rqt60")


def run(
    codes: tuple[str, ...] = TABLE2_CODES,
    rounds: int = 3,
    p: float = 1e-3,
    global_timeout: float = 5.0,
    solve_subgraph: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Table 2: MaxSAT model size, global vs subgraph",
        notes=f"global solves capped at {global_timeout:g}s "
        "(paper used 360s and still reports a timeout)",
    )
    rng = np.random.default_rng(seed)
    noise = NoiseModel(p=p)
    for name in codes:
        code = load_benchmark_code(name)
        schedule = coloration_schedule(code)
        dem = dem_for(code, schedule, noise, basis="z", rounds=rounds)
        graph = DecodingGraph(dem)

        # Global model: the full H / L matrices.
        h_full, l_full = dem.check_matrices()
        wcnf_global = build_maxsat_model(
            np.asarray(h_full.todense(), dtype=np.uint8),
            np.asarray(l_full.todense(), dtype=np.uint8),
        )
        stats = wcnf_global.stats()
        with obs.timed() as clock:
            outcome = MaxSatSolver(wcnf_global, timeout=global_timeout).solve()
        elapsed = clock.elapsed
        result.add(
            formulation="global",
            code=name,
            variables=stats["variables"],
            hard_clauses=stats["hard_clauses"],
            soft_clauses=stats["soft_clauses"],
            wall_clock_s=round(elapsed, 2),
            status=outcome.status,
        )

        # Subgraph model: one sampled ambiguous subgraph.
        sub = None
        for _ in range(80):
            sub = find_ambiguous_subgraph(graph, rng)
            if sub is not None:
                break
        if sub is None:
            result.add(formulation="subgraph", code=name, status="no ambiguity found")
            continue
        wcnf_sub = build_maxsat_model(sub.h, sub.l)
        stats = wcnf_sub.stats()
        if solve_subgraph:
            solution = solve_min_weight_logical(
                sub, rng, method="maxsat", maxsat_timeout=global_timeout * 4
            )
            elapsed = solution.solve_time if solution else float("nan")
            status = "optimal" if solution else "failed"
        else:
            elapsed, status = float("nan"), "skipped"
        result.add(
            formulation="subgraph",
            code=name,
            variables=stats["variables"],
            hard_clauses=stats["hard_clauses"],
            soft_clauses=stats["soft_clauses"],
            wall_clock_s=round(elapsed, 3),
            status=status,
        )
    return result
