"""One module per paper table/figure; see DESIGN.md for the index."""

from . import (
    fig01_predictors,
    fig06_schedules,
    fig12_benchmarks,
    fig13_random_starts,
    fig14_scaling,
    fig15_idle,
    fig16_zne,
    table1_codes,
    table2_models,
)
from .common import ExperimentResult

__all__ = [
    "ExperimentResult",
    "fig01_predictors",
    "fig06_schedules",
    "fig12_benchmarks",
    "fig13_random_starts",
    "fig14_scaling",
    "fig15_idle",
    "fig16_zne",
    "table1_codes",
    "table2_models",
]
from . import ablations
