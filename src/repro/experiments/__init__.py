"""One module per paper table/figure; see DESIGN.md for the index."""

from . import (
    ablations,
    campaign,
    fig01_predictors,
    fig06_schedules,
    fig12_benchmarks,
    fig13_random_starts,
    fig14_lowp,
    fig14_scaling,
    fig15_idle,
    fig16_zne,
    service,
    shotrunner,
    store,
    table1_codes,
    table2_models,
)
from .campaign import CampaignJob, CampaignSpec, run_campaign
from .common import ExperimentResult
from .service import serve_campaign, worker_loop
from .store import ResultStore
from .shotrunner import (
    ExecutionConfig,
    estimate_logical_error_rate_chunked,
    run_shot_chunks,
    run_stratified_chunks,
)

__all__ = [
    "CampaignJob",
    "CampaignSpec",
    "ExecutionConfig",
    "ExperimentResult",
    "ResultStore",
    "campaign",
    "estimate_logical_error_rate_chunked",
    "run_campaign",
    "run_shot_chunks",
    "run_stratified_chunks",
    "serve_campaign",
    "service",
    "store",
    "worker_loop",
    "fig01_predictors",
    "fig06_schedules",
    "fig12_benchmarks",
    "fig13_random_starts",
    "fig14_lowp",
    "fig14_scaling",
    "fig15_idle",
    "fig16_zne",
    "shotrunner",
    "table1_codes",
    "table2_models",
    "ablations",
]
