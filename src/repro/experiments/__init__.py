"""One module per paper table/figure; see DESIGN.md for the index."""

from . import (
    ablations,
    fig01_predictors,
    fig06_schedules,
    fig12_benchmarks,
    fig13_random_starts,
    fig14_lowp,
    fig14_scaling,
    fig15_idle,
    fig16_zne,
    shotrunner,
    table1_codes,
    table2_models,
)
from .common import ExperimentResult
from .shotrunner import (
    estimate_logical_error_rate_chunked,
    run_shot_chunks,
    run_stratified_chunks,
)

__all__ = [
    "ExperimentResult",
    "estimate_logical_error_rate_chunked",
    "run_shot_chunks",
    "run_stratified_chunks",
    "fig01_predictors",
    "fig06_schedules",
    "fig12_benchmarks",
    "fig13_random_starts",
    "fig14_lowp",
    "fig14_scaling",
    "fig15_idle",
    "fig16_zne",
    "shotrunner",
    "table1_codes",
    "table2_models",
    "ablations",
]
