"""Figure 13: robustness across random coloration starting circuits.

PropHunt is run from several *different* random coloration circuits of
the same code; starting and ending logical error rates are reported.
The paper's claim: despite start/end variation, optimization consistently
improves the input circuit.
"""

from __future__ import annotations

import numpy as np

from ..circuits import coloration_schedule
from ..codes import load_benchmark_code
from ..core import PropHunt, PropHuntConfig
from ..decoders import estimate_logical_error_rate
from .common import ExperimentResult


def run(
    code_name: str = "surface_d3",
    num_starts: int = 3,
    p: float = 3e-3,
    shots: int = 6000,
    iterations: int = 4,
    samples: int = 30,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentResult:
    """The default p is 3e-3 rather than the paper's 1e-3: at laptop-scale
    shot counts the improvement signal at 1e-3 sits inside the Wilson
    interval for small codes; the paper's 0.1% point needs >= 1e5 shots."""
    code = load_benchmark_code(code_name)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name=f"Figure 13: random coloration starts, {code.label()}, p={p:g}",
    )
    for start_idx in range(num_starts):
        start = coloration_schedule(code, np.random.default_rng(seed + 100 + start_idx))
        config = PropHuntConfig(
            iterations=iterations,
            samples_per_iteration=samples,
            seed=seed + start_idx,
            # Keep the rewrites depth-disciplined: at these small scales
            # unchecked depth growth can wash out the ambiguity gains.
            max_depth_growth=2,
        )
        opt = PropHunt(code, config).optimize(start)
        before = estimate_logical_error_rate(
            code, start, p=p, shots=shots, rng=rng, max_failures=400, workers=workers
        )
        after = estimate_logical_error_rate(
            code,
            opt.final_schedule,
            p=p,
            shots=shots,
            rng=rng,
            max_failures=400,
            workers=workers,
        )
        result.add(
            start=start_idx,
            start_rate=before.rate,
            end_rate=after.rate,
            improved=after.rate <= before.rate,
            start_depth=start.cnot_depth(),
            end_depth=opt.final_schedule.cnot_depth(),
        )
    return result
