"""Figure 16: Hook-ZNE noise amplification and bias vs DS-ZNE (§7.2).

(a) the range of logical-noise amplification available at fixed code
    distance for different suppression factors Lambda;
(b) the bias (L1 distance between mitigated estimate and ideal
    expectation) of DS-ZNE vs Hook-ZNE across the paper's three distance
    ranges, under a shared 20,000-shot budget.
"""

from __future__ import annotations

import numpy as np

from ..zne import (
    DS_ZNE_DISTANCE_SETS,
    DistanceScalingZNE,
    HOOK_ZNE_DISTANCE_SETS,
    HookZNE,
)
from .common import ExperimentResult


def run_amplification(
    d: int = 11,
    lambdas: tuple[float, ...] = (1.5, 2.0, 2.14, 3.0, 4.0),
    d_eff_min: float | None = None,
) -> ExperimentResult:
    """Figure 16a: amplification range vs suppression factor.

    Lambda = 2.14 is Google's reported below-threshold suppression [1].
    """
    result = ExperimentResult(
        name=f"Figure 16a: Hook-ZNE noise amplification at fixed d={d}",
    )
    floor = d_eff_min if d_eff_min is not None else (d + 1) / 2
    for lam in lambdas:
        hook = HookZNE(lam=lam)
        lo, hi = hook.amplification_range(d, floor)
        result.add(
            suppression_lambda=lam,
            base_logical_rate=hook.gate_error(d),
            min_amplification=lo,
            max_amplification=hi,
        )
    return result


def run_bias(
    lam: float = 2.0,
    total_shots: int = 20_000,
    trials: int = 40,
    depth: int = 50,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 16b: mean |estimate - ideal| for the three distance ranges."""
    from ..zne.rb import RBWorkload

    result = ExperimentResult(
        name=f"Figure 16b: ZNE bias, Lambda={lam:g}, budget={total_shots} shots",
        notes=f"randomized-benchmarking depth {depth}, {trials} trials per point",
    )
    rng = np.random.default_rng(seed)
    workload = RBWorkload(depth=depth)
    ds = DistanceScalingZNE(lam=lam, workload=workload)
    hook = HookZNE(lam=lam, workload=workload)
    for ds_set, hook_set in zip(DS_ZNE_DISTANCE_SETS, HOOK_ZNE_DISTANCE_SETS):
        ds_biases = [ds.run(ds_set, total_shots, rng).bias for _ in range(trials)]
        hook_biases = [
            hook.run(hook_set, total_shots, rng).bias for _ in range(trials)
        ]
        ds_mean = float(np.mean(ds_biases))
        hook_mean = float(np.mean(hook_biases))
        result.add(
            distance_range=f"{ds_set}",
            hook_range=f"{hook_set}",
            ds_zne_bias=ds_mean,
            hook_zne_bias=hook_mean,
            improvement=ds_mean / hook_mean if hook_mean > 0 else float("inf"),
        )
    return result
