"""Table 1: the benchmark code suite and its parameters."""

from __future__ import annotations

import numpy as np

from ..codes import EXPECTED_PARAMETERS, estimate_distance, load_benchmark_code
from .common import ExperimentResult


def run(distance_iterations: int = 60, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="Table 1: benchmark QEC codes",
        notes="distance is an ISD upper-bound estimate (QDistRnd-style).",
    )
    rng = np.random.default_rng(seed)
    for name in EXPECTED_PARAMETERS:
        code = load_benchmark_code(name)
        n, k, d = EXPECTED_PARAMETERS[name]
        weights = code.stabilizer_weights()
        est = estimate_distance(code, iterations=distance_iterations, rng=rng)
        result.add(
            code=name,
            n=code.n,
            k=code.k,
            distance_estimate=est,
            expected=f"[[{n},{k},{d}]]",
            stab_weights=",".join(
                str(w) for w in sorted(set(weights["x"]) | set(weights["z"]))
            ),
            match=(code.n, code.k, est) == (n, k, d),
        )
    return result
