"""Figure 14 extension: deep sub-threshold logical error rates.

The paper's scaling claims (lambda factors, §7) live below the error
rates direct Monte Carlo can resolve.  This experiment overlays the
two estimators this codebase has for the same quantity:

* direct MC through the packed chunk runner — trustworthy wherever it
  sees failures, blind below ~1/shots;
* the weight-stratified rare-event estimator
  (:mod:`repro.rareevent`) — thousands of conditional shots per
  stratum at any physical error rate.

In the *overlap window* (a physical error rate where direct MC is
cheap) both run and the rows record whether their confidence intervals
agree — the validation gate for trusting the stratified numbers.  The
*deep* rows then extend the curve to error rates where direct MC would
need more shots than any figure budget, reporting the equivalent
direct-MC shot count the stratified estimate replaces.

Both estimators run as campaign jobs: the stratified result's full
per-stratum provenance is stored, so rows rebuild from store queries
and a completed figure re-renders with zero decoding.
"""

from __future__ import annotations

from .campaign import CampaignJob, run_campaign
from .common import ExperimentResult


def _min_failure_weight(distance: int | None, name: str) -> int:
    """Weight below which the decoder provably corrects — ceil(d/2).

    Claimed only for the surface codes on their unambiguous N-Z
    schedules; other codes run with no assumption (coloration circuits
    can mispredict even weight-1 errors on ambiguous syndromes —
    that ambiguity is the paper's subject).
    """
    if name.startswith("surface") and distance:
        return (distance + 1) // 2
    return 1


def _distance_of(name: str) -> int | None:
    if name.startswith("surface_d"):
        return int(name.removeprefix("surface_d"))
    return None


def build_jobs(
    codes: tuple[str, ...],
    overlap_p: float,
    deep_p: tuple[float, ...],
    direct_shots: int,
    target_rel_halfwidth: float,
    max_strat_shots: int,
    deep: bool,
    seed: int,
) -> list[tuple[CampaignJob, str]]:
    """(job, window) pairs in row order; window is 'overlap' or 'deep'."""
    jobs: list[tuple[CampaignJob, str]] = []
    for name in codes:
        schedule = "nz" if name.startswith("surface") else "coloration"
        mfw = _min_failure_weight(_distance_of(name), name)
        p_values = (overlap_p,) + (tuple(deep_p) if deep else ())
        for p in p_values:
            window = "overlap" if p == overlap_p else "deep"
            jobs.append(
                (
                    CampaignJob(
                        code=name,
                        schedule=schedule,
                        basis="z",
                        p=p,
                        estimator="rare-event",
                        shots=max_strat_shots,
                        target_rel_halfwidth=target_rel_halfwidth,
                        min_failure_weight=mfw,
                        seed=seed,
                    ),
                    window,
                )
            )
            if window == "overlap":
                jobs.append(
                    (
                        CampaignJob(
                            code=name,
                            schedule=schedule,
                            basis="z",
                            p=p,
                            estimator="direct",
                            shots=direct_shots,
                            seed=seed,
                        ),
                        window,
                    )
                )
    return jobs


def run(
    codes: tuple[str, ...] = ("surface_d3", "surface_d5"),
    overlap_p: float = 3e-3,
    deep_p: tuple[float, ...] = (1e-3, 5e-4),
    direct_shots: int = 60_000,
    target_rel_halfwidth: float = 0.12,
    max_strat_shots: int = 500_000,
    deep: bool = True,
    workers: int = 1,
    seed: int = 0,
    store=None,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 14 extension: deep low-p LER, stratified vs direct MC",
        notes="overlap rows validate the stratified estimator against "
        "direct MC; deep rows extend below direct-MC reach "
        "(direct_equiv = shots direct MC would need for the same CI)",
    )
    pairs = build_jobs(
        codes,
        overlap_p,
        deep_p,
        direct_shots,
        target_rel_halfwidth,
        max_strat_shots,
        deep,
        seed,
    )
    report = run_campaign([job for job, _ in pairs], store=store, workers=workers)

    directs = {
        (j.code, j.p): j for j, _ in pairs if j.estimator == "direct"
    }
    for job, window in pairs:
        if job.estimator != "rare-event":
            continue
        strat = report.record(job)["result"]["stratified"]
        equiv = strat["direct_mc_equiv"]
        row = dict(
            code=job.code,
            p=job.p,
            window=window,
            strat_rate=strat["rate"],
            strat_lo=strat["lo"],
            strat_hi=strat["hi"],
            strat_shots=strat["decoded_shots"],
            direct_equiv=float("inf") if equiv is None else equiv,
        )
        direct_job = directs.get((job.code, job.p))
        if direct_job is not None:
            direct = report.estimate(direct_job)
            d_lo, d_hi = direct.interval
            row.update(
                direct_rate=direct.rate,
                direct_lo=d_lo,
                direct_hi=d_hi,
                direct_shots=direct.shots,
                agrees=bool(strat["lo"] <= d_hi and d_lo <= strat["hi"]),
            )
        result.add(**row)
    return result
