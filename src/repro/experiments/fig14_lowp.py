"""Figure 14 extension: deep sub-threshold logical error rates.

The paper's scaling claims (lambda factors, §7) live below the error
rates direct Monte Carlo can resolve.  This experiment overlays the
two estimators this codebase has for the same quantity:

* direct MC through the packed chunk runner — trustworthy wherever it
  sees failures, blind below ~1/shots;
* the weight-stratified rare-event estimator
  (:mod:`repro.rareevent`) — thousands of conditional shots per
  stratum at any physical error rate.

In the *overlap window* (a physical error rate where direct MC is
cheap) both run and the rows record whether their confidence intervals
agree — the validation gate for trusting the stratified numbers.  The
*deep* rows then extend the curve to error rates where direct MC would
need more shots than any figure budget, reporting the equivalent
direct-MC shot count the stratified estimate replaces.
"""

from __future__ import annotations

import numpy as np

from ..circuits import coloration_schedule, nz_schedule
from ..codes import load_benchmark_code
from ..decoders.metrics import dem_for
from ..noise.model import NoiseModel
from ..rareevent import estimate_ler_stratified
from .common import ExperimentResult
from .shotrunner import run_shot_chunks


def _min_failure_weight(code, name: str) -> int:
    """Weight below which the decoder provably corrects — ceil(d/2).

    Claimed only for the surface codes on their unambiguous N-Z
    schedules; other codes run with no assumption (coloration circuits
    can mispredict even weight-1 errors on ambiguous syndromes —
    that ambiguity is the paper's subject).
    """
    if name.startswith("surface") and code.distance:
        return (code.distance + 1) // 2
    return 1


def run(
    codes: tuple[str, ...] = ("surface_d3", "surface_d5"),
    overlap_p: float = 3e-3,
    deep_p: tuple[float, ...] = (1e-3, 5e-4),
    direct_shots: int = 60_000,
    target_rel_halfwidth: float = 0.12,
    max_strat_shots: int = 500_000,
    deep: bool = True,
    workers: int = 1,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 14 extension: deep low-p LER, stratified vs direct MC",
        notes="overlap rows validate the stratified estimator against "
        "direct MC; deep rows extend below direct-MC reach "
        "(direct_equiv = shots direct MC would need for the same CI)",
    )
    rng = np.random.default_rng(seed)
    for name in codes:
        code = load_benchmark_code(name)
        schedule = (
            nz_schedule(code)
            if name.startswith("surface")
            else coloration_schedule(code)
        )
        mfw = _min_failure_weight(code, name)
        p_values = (overlap_p,) + (tuple(deep_p) if deep else ())
        for p in p_values:
            dem = dem_for(code, schedule, NoiseModel(p=p), basis="z")
            strat = estimate_ler_stratified(
                dem,
                rng=rng,
                min_failure_weight=mfw,
                target_rel_halfwidth=target_rel_halfwidth,
                max_shots=max_strat_shots,
                workers=workers,
            )
            s_lo, s_hi = strat.interval
            row = dict(
                code=name,
                p=p,
                window="overlap" if p == overlap_p else "deep",
                strat_rate=strat.rate,
                strat_lo=s_lo,
                strat_hi=s_hi,
                strat_shots=strat.shots,
                direct_equiv=strat.direct_mc_shots_for_same_ci(),
            )
            if p == overlap_p:
                direct = run_shot_chunks(
                    dem, shots=direct_shots, rng=rng, workers=workers
                )
                d_lo, d_hi = direct.interval
                row.update(
                    direct_rate=direct.rate,
                    direct_lo=d_lo,
                    direct_hi=d_hi,
                    direct_shots=direct.shots,
                    agrees=bool(s_lo <= d_hi and d_lo <= s_hi),
                )
            result.add(**row)
    return result
