"""Figure 1: circuit depth and d_eff are imperfect predictors of LER.

For the d=5 surface code, a family of SM circuits is evaluated on three
axes: CNOT depth, effective distance, and the measured logical error
rate.  The paper's two counterexample patterns are checked:

(a) equal (even minimal) depth does *not* imply equal LER — the poor
    depth-4 schedule loses badly to the good depth-4 schedule;
(b) equal d_eff does not imply equal LER — depth-4 and coloration
    circuits can share d_eff = d yet differ in logical error rate.

LER measurement runs as a campaign (content-addressed jobs over the
result store); d_eff estimation stays inline — it is not a shot loop.
"""

from __future__ import annotations

import numpy as np

from ..analysis.deff import estimate_effective_distance
from ..codes import rotated_surface_code
from .campaign import CampaignSpec, resolve_schedule, run_campaign
from .common import ExperimentResult


def schedule_tokens(seed: int) -> tuple[tuple[str, str], ...]:
    return (
        ("nz (hand, depth-min)", "nz"),
        ("poor (depth-min)", "poor"),
        ("coloration", "coloration"),
        ("coloration (random)", f"coloration:{seed + 1}"),
    )


def campaign_spec(
    d: int = 5, p: float = 3e-3, shots: int = 8000, seed: int = 0
) -> CampaignSpec:
    return CampaignSpec(
        name=f"fig01_surface_d{d}",
        codes=(f"surface_d{d}",),
        schedules=tuple(token for _, token in schedule_tokens(seed)),
        p_values=(p,),
        bases=("z", "x"),
        shots=shots,
        seed=seed,
    )


def run(
    d: int = 5,
    p: float = 3e-3,
    shots: int = 8000,
    deff_samples: int = 30,
    seed: int = 0,
    workers: int = 1,
    store=None,
) -> ExperimentResult:
    spec = campaign_spec(d=d, p=p, shots=shots, seed=seed)
    report = run_campaign(spec, store=store, workers=workers)
    by_config = {(j.schedule, j.basis): j for j in report.jobs}
    code = rotated_surface_code(d)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name=f"Figure 1: predictors vs LER, [[{code.n},1,{d}]] surface, p={p:g}",
        notes="Red-square analogue: min-depth 'poor' underperforms; "
        "blue-diamond analogue: deeper circuits with d_eff=d can match.",
    )
    for name, token in schedule_tokens(seed):
        sched = resolve_schedule(code, token)
        deff = estimate_effective_distance(
            code, sched, samples=deff_samples, rng=rng
        )
        combined = report.combined_estimate(
            by_config[(token, basis)] for basis in ("z", "x")
        )
        result.add(
            schedule=name,
            cnot_depth=sched.cnot_depth(),
            deff=deff.deff,
            logical_error_rate=combined.rate,
        )
    return result
