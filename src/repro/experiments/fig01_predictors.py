"""Figure 1: circuit depth and d_eff are imperfect predictors of LER.

For the d=5 surface code, a family of SM circuits is evaluated on three
axes: CNOT depth, effective distance, and the measured logical error
rate.  The paper's two counterexample patterns are checked:

(a) equal (even minimal) depth does *not* imply equal LER — the poor
    depth-4 schedule loses badly to the good depth-4 schedule;
(b) equal d_eff does not imply equal LER — depth-4 and coloration
    circuits can share d_eff = d yet differ in logical error rate.
"""

from __future__ import annotations

import numpy as np

from ..analysis.deff import estimate_effective_distance
from ..circuits import coloration_schedule, nz_schedule, poor_schedule
from ..codes import rotated_surface_code
from ..decoders import estimate_logical_error_rate
from .common import ExperimentResult


def run(
    d: int = 5,
    p: float = 3e-3,
    shots: int = 8000,
    deff_samples: int = 30,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentResult:
    code = rotated_surface_code(d)
    rng = np.random.default_rng(seed)
    schedules = {
        "nz (hand, depth-min)": nz_schedule(code),
        "poor (depth-min)": poor_schedule(code),
        "coloration": coloration_schedule(code),
        "coloration (random)": coloration_schedule(
            code, np.random.default_rng(seed + 1)
        ),
    }
    result = ExperimentResult(
        name=f"Figure 1: predictors vs LER, [[{code.n},1,{d}]] surface, p={p:g}",
        notes="Red-square analogue: min-depth 'poor' underperforms; "
        "blue-diamond analogue: deeper circuits with d_eff=d can match.",
    )
    for name, sched in schedules.items():
        deff = estimate_effective_distance(
            code, sched, samples=deff_samples, rng=rng
        )
        ler = estimate_logical_error_rate(
            code, sched, p=p, shots=shots, rng=rng, workers=workers
        )
        result.add(
            schedule=name,
            cnot_depth=sched.cnot_depth(),
            deff=deff.deff,
            logical_error_rate=ler.rate,
        )
    return result
