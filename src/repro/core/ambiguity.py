"""Ambiguous decoding-subgraph finding (paper §5.1).

Starting from a random error node, the subgraph grows one error node at a
time (always staying connected through shared syndromes); after each step
the closure error set and the submatrices ``H'``, ``L'`` are formed and
the ambiguity test ``L' not in rowspace(H')`` (§4.1) is evaluated.
Expansion halts the moment ambiguity appears — keeping the subsequent
MaxSAT model small is the whole point (Table 2).
"""

from __future__ import annotations

import numpy as np

from .. import gf2
from .decoding_graph import DecodingGraph, Subgraph


def is_ambiguous(h: np.ndarray, l_mat: np.ndarray) -> bool:
    """Paper §4.1: ambiguity iff some logical row is outside rowspace(H')."""
    if l_mat.size == 0 or not l_mat.any():
        return False
    return not gf2.in_rowspace(h, l_mat)


def find_ambiguous_subgraph(
    graph: DecodingGraph,
    rng: np.random.Generator,
    max_errors: int = 60,
    start_error: int | None = None,
) -> Subgraph | None:
    """Grow one random connected subgraph until it contains ambiguity.

    Returns ``None`` if the size cap is hit first (sample again), or if
    the graph is empty.
    """
    if graph.num_errors == 0:
        return None
    if start_error is None:
        start_error = int(rng.integers(0, graph.num_errors))

    det_set: set[int] = set(graph.error_dets[start_error])
    if not det_set:
        return None  # an undetectable mechanism cannot seed a subgraph

    explicit: set[int] = {start_error}
    while True:
        errors = graph.closure_errors(det_set)
        if len(errors) > max_errors:
            return None
        dets = sorted(det_set)
        h, l_mat = graph.submatrices(dets, errors)
        if is_ambiguous(h, l_mat):
            return Subgraph(detectors=dets, errors=errors, h=h, l=l_mat)
        # Expand: a random error adjacent to the current syndromes that
        # brings in at least one new syndrome (stays connected, §5.1).
        frontier: list[int] = []
        seen: set[int] = set()
        for d in det_set:
            for e in graph.det_errors[d]:
                if e in seen:
                    continue
                seen.add(e)
                if any(dd not in det_set for dd in graph.error_dets[e]):
                    frontier.append(e)
        if not frontier:
            return None  # exhausted a connected component without ambiguity
        pick = frontier[int(rng.integers(0, len(frontier)))]
        explicit.add(pick)
        det_set.update(graph.error_dets[pick])


def sample_ambiguous_subgraphs(
    graph: DecodingGraph,
    samples: int,
    rng: np.random.Generator,
    max_errors: int = 60,
) -> list[Subgraph]:
    """Draw ``samples`` independent expansions; keep the ambiguous ones.

    The paper parallelizes this across cores; sequential sampling is
    statistically identical.
    """
    found = []
    for _ in range(samples):
        sub = find_ambiguous_subgraph(graph, rng, max_errors=max_errors)
        if sub is not None:
            found.append(sub)
    return found
