"""Pruning candidate changes (paper §5.4).

Two gates before a change may be applied:

* **circuit validity** — the rewritten schedule must still preserve
  stabilizer commutation and be schedulable (acyclic precedence);
* **ambiguity removal** — rebuilding the circuit-level matrices for the
  candidate, the original subgraph's syndrome rows (matched by their
  stable ``(round, kind, stab)`` labels) must now satisfy
  ``L' in rowspace(H')``, *and* the transported logical-error mechanisms
  must no longer form a logical error (``H e != 0`` or ``L e = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.schedule import Schedule
from ..codes.css import CSSCode
from ..sim.dem import DetectorErrorModel
from .ambiguity import is_ambiguous
from .changes import CandidateChange
from .decoding_graph import DecodingGraph, Subgraph


@dataclass
class PruneOutcome:
    """Why a candidate survived or died (useful for ablations)."""

    candidate: CandidateChange
    schedule: Schedule | None
    valid_circuit: bool
    removes_ambiguity: bool
    breaks_logical_error: bool

    @property
    def verified(self) -> bool:
        return (
            self.valid_circuit and self.removes_ambiguity and self.breaks_logical_error
        )


def _transport_logical_error(
    old_dem: DetectorErrorModel,
    new_dem: DetectorErrorModel,
    logical_error: list[int],
) -> tuple[np.ndarray, np.ndarray] | None:
    """Re-evaluate the old logical error's faults in the new circuit.

    Faults are identified by (gate label, pauli) — the gate set is
    unchanged by schedule rewrites, only its order.  Returns the XOR of
    the transported mechanisms' (detector, observable) signatures, or
    ``None`` if a fault can no longer be located (it became invisible).
    """
    index: dict[tuple, int] = {}
    for j, mech in enumerate(new_dem.mechanisms):
        for src in mech.sources:
            index[(src.label, src.pauli)] = j

    det_sig = np.zeros(new_dem.num_detectors, dtype=np.uint8)
    obs_sig = np.zeros(new_dem.num_observables, dtype=np.uint8)
    for err in logical_error:
        for src in old_dem.mechanisms[err].sources:
            j = index.get((src.label, src.pauli))
            if j is None:
                # The fault no longer flips anything: it dropped out of the
                # DEM entirely, which certainly breaks the logical error.
                continue
            mech = new_dem.mechanisms[j]
            for d in mech.detectors:
                det_sig[d] ^= 1
            for o in mech.observables:
                obs_sig[o] ^= 1
            # Take one representative fault per old mechanism.  Sources
            # merged in the old circuit can in principle diverge after the
            # rewrite; using the first is the conservative reading of
            # §5.4's "updated circuit-level errors" and errs toward
            # rejecting candidates (a diverged sibling would differ even
            # more from the original logical error).
            break
    return det_sig, obs_sig


def check_candidate(
    code: CSSCode,
    schedule: Schedule,
    candidate: CandidateChange,
    subgraph: Subgraph,
    old_dem: DetectorErrorModel,
    logical_error: list[int],
    build_dem,
) -> PruneOutcome:
    """Run both §5.4 checks on one candidate.

    ``build_dem`` is a callable ``Schedule -> DetectorErrorModel`` so the
    caller controls noise model, rounds, basis and caching.
    """
    try:
        new_schedule = candidate.apply_to(schedule)
    except (ValueError, KeyError):
        return PruneOutcome(candidate, None, False, False, False)
    if not new_schedule.is_valid():
        return PruneOutcome(candidate, new_schedule, False, False, False)

    new_dem = build_dem(new_schedule)

    # Match the original ambiguous syndrome rows in the new DEM by label.
    label_to_new = {label: i for i, label in enumerate(new_dem.detector_labels)}
    new_dets = []
    for d in subgraph.detectors:
        label = old_dem.detector_labels[d]
        nd = label_to_new.get(label)
        if nd is None:
            return PruneOutcome(candidate, new_schedule, True, False, False)
        new_dets.append(nd)

    new_graph = DecodingGraph(new_dem)
    det_set = set(new_dets)
    errors = new_graph.closure_errors(det_set)
    h_new, l_new = new_graph.submatrices(sorted(det_set), errors)
    removes = not is_ambiguous(h_new, l_new)

    transported = _transport_logical_error(old_dem, new_dem, logical_error)
    det_sig, obs_sig = transported
    breaks = bool(det_sig.any()) or not bool(obs_sig.any())

    return PruneOutcome(candidate, new_schedule, True, removes, breaks)
