"""Bipartite circuit-level decoding graphs (paper §5.1).

Nodes are error mechanisms and syndromes (detectors); an edge means "this
error flips that syndrome".  PropHunt's subgraph machinery operates on
submatrices of the circuit-level ``H`` and ``L`` induced by a syndrome
subset ``S'``: the error set is *all* mechanisms whose detector support
lies inside ``S'`` (the "errors connected only to the syndromes s'" of
§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.dem import DetectorErrorModel


class DecodingGraph:
    """Adjacency view of a DEM plus submatrix extraction."""

    def __init__(self, dem: DetectorErrorModel):
        self.dem = dem
        self.num_errors = dem.num_errors
        self.num_detectors = dem.num_detectors
        self.error_dets: list[tuple[int, ...]] = [
            m.detectors for m in dem.mechanisms
        ]
        self.error_obs: list[tuple[int, ...]] = [
            m.observables for m in dem.mechanisms
        ]
        self.det_errors: list[list[int]] = [[] for _ in range(dem.num_detectors)]
        for e, dets in enumerate(self.error_dets):
            for d in dets:
                self.det_errors[d].append(e)

    def closure_errors(self, det_subset: set[int]) -> list[int]:
        """All errors whose entire detector support lies in ``det_subset``."""
        out = []
        candidates: set[int] = set()
        for d in det_subset:
            candidates.update(self.det_errors[d])
        for e in sorted(candidates):
            if all(d in det_subset for d in self.error_dets[e]):
                out.append(e)
        return out

    def submatrices(
        self, det_subset: list[int], error_subset: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense (H', L') for the given syndrome rows / error columns."""
        det_index = {d: i for i, d in enumerate(det_subset)}
        h = np.zeros((len(det_subset), len(error_subset)), dtype=np.uint8)
        l_mat = np.zeros(
            (self.dem.num_observables, len(error_subset)), dtype=np.uint8
        )
        for j, e in enumerate(error_subset):
            for d in self.error_dets[e]:
                if d in det_index:
                    h[det_index[d], j] = 1
            for o in self.error_obs[e]:
                l_mat[o, j] = 1
        return h, l_mat


@dataclass
class Subgraph:
    """A connected decoding subgraph: syndrome rows + closed error set."""

    detectors: list[int]
    errors: list[int]
    h: np.ndarray
    l: np.ndarray

    @property
    def num_errors(self) -> int:
        return len(self.errors)

    @property
    def num_detectors(self) -> int:
        return len(self.detectors)

    def __repr__(self) -> str:
        return (
            f"Subgraph(detectors={self.num_detectors}, errors={self.num_errors})"
        )
