"""The PropHunt optimization loop (paper §5, Figure 8).

Each iteration:

1. extract circuit-level decoding graphs for the current schedule (one per
   memory basis);
2. sample random connected subgraphs until ambiguity appears (§5.1);
3. solve each ambiguous subgraph for a min-weight logical error (§5.2);
4. enumerate candidate reordering / rescheduling changes (§5.3);
5. prune by circuit validity and ambiguity removal (§5.4);
6. apply verified changes, resolving conflicts per subgraph by the
   minimum-depth candidate (§5.5).

The run records every intermediate schedule — those are the noise dials
Hook-ZNE uses (§7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..circuits.builder import build_memory_experiment
from ..circuits.schedule import Schedule
from ..codes.css import CSSCode
from ..noise.model import NoiseModel
from ..sim.dem import DetectorErrorModel, extract_dem
from .changes import enumerate_candidates
from .decoding_graph import DecodingGraph, Subgraph
from .minweight import LogicalErrorSolution
from .pruning import check_candidate


@dataclass
class PropHuntConfig:
    """Tuning knobs; defaults are laptop-scale (paper scale in comments)."""

    iterations: int = 8  # paper: 25
    samples_per_iteration: int = 60  # paper: 500
    reference_p: float = 1e-3
    rounds: int = 3  # DEM depth used during optimization
    max_subgraph_errors: int = 60
    bases: tuple[str, ...] = ("z", "x")
    solver: str = "auto"  # minweight backend
    isd_iterations: int = 120
    seed: int = 0
    max_candidates_per_error: int = 24
    stop_when_quiet: bool = True  # stop early if an iteration finds nothing
    workers: int = 1  # >1 fans subgraph sampling over processes (paper: 48)
    # Optional guard: refuse changes that grow CNOT depth beyond the
    # starting depth plus this allowance (None = paper behaviour, depth is
    # only a tie-break).
    max_depth_growth: int | None = None


@dataclass
class IterationRecord:
    """What one iteration saw and did."""

    iteration: int
    schedule: Schedule
    cnot_depth: int
    ambiguous_found: int
    min_logical_weight: int | None
    changes_verified: int
    changes_applied: int
    solve_times: list[float] = field(default_factory=list)
    subgraph_sizes: list[tuple[int, int]] = field(default_factory=list)
    elapsed: float = 0.0


@dataclass
class PropHuntResult:
    """Full optimization trace."""

    code: CSSCode
    initial_schedule: Schedule
    final_schedule: Schedule
    history: list[IterationRecord]

    @property
    def intermediate_schedules(self) -> list[Schedule]:
        """Initial, every per-iteration snapshot, final — Hook-ZNE's dials."""
        return [self.initial_schedule] + [r.schedule for r in self.history]

    @property
    def deff_estimate(self) -> int | None:
        weights = [
            r.min_logical_weight
            for r in self.history
            if r.min_logical_weight is not None
        ]
        return min(weights) if weights else None


class PropHunt:
    """Automated SM-circuit optimizer for CSS codes."""

    def __init__(self, code: CSSCode, config: PropHuntConfig | None = None):
        self.code = code
        self.config = config or PropHuntConfig()
        self.noise = NoiseModel(p=self.config.reference_p)
        self._dem_cache: dict[tuple, DetectorErrorModel] = {}

    # -- DEM helpers -------------------------------------------------------------

    def _schedule_key(self, schedule: Schedule, basis: str) -> tuple:
        stab_part = tuple(
            (k, tuple(v)) for k, v in sorted(schedule.stab_orders.items())
        )
        qubit_part = tuple(
            (q, tuple(v)) for q, v in sorted(schedule.qubit_orders.items())
        )
        return (basis, stab_part, qubit_part)

    def build_dem(self, schedule: Schedule, basis: str) -> DetectorErrorModel:
        key = self._schedule_key(schedule, basis)
        hit = self._dem_cache.get(key)
        if hit is None:
            experiment = build_memory_experiment(
                self.code, schedule, rounds=self.config.rounds, basis=basis
            )
            hit = extract_dem(self.noise.apply(experiment.circuit))
            if len(self._dem_cache) > 256:
                self._dem_cache.clear()
            self._dem_cache[key] = hit
        return hit

    # -- one iteration -----------------------------------------------------------

    def _find_problems(
        self, schedule: Schedule, rng: np.random.Generator
    ) -> list[tuple[str, Subgraph, LogicalErrorSolution, DetectorErrorModel]]:
        """Sample ambiguous subgraphs + solve them, across bases."""
        from .parallel import sample_and_solve

        problems = []
        per_basis = max(1, self.config.samples_per_iteration // len(self.config.bases))
        for basis in self.config.bases:
            dem = self.build_dem(schedule, basis)
            graph = DecodingGraph(dem)
            base_seed = int(rng.integers(0, 2**31))
            found = sample_and_solve(
                graph,
                per_basis,
                base_seed,
                max_errors=self.config.max_subgraph_errors,
                solver=self.config.solver,
                isd_iterations=self.config.isd_iterations,
                workers=self.config.workers,
            )
            problems.extend((basis, sub, sol, dem) for sub, sol in found)
        return problems

    def _verify_candidates(
        self,
        schedule: Schedule,
        problems,
        rng: np.random.Generator,
    ) -> list[tuple[int, Schedule, object]]:
        """§5.3 + §5.4: enumerate then prune; returns verified changes
        tagged by the subgraph (problem index) they resolve."""
        verified = []
        checked: set[tuple] = set()
        for idx, (basis, sub, solution, dem) in enumerate(problems):
            logical_error = solution.global_errors(sub)
            candidates = enumerate_candidates(
                self.code, schedule, dem, logical_error, rng
            )[: self.config.max_candidates_per_error]
            for cand in candidates:
                sig = (basis, idx, cand.signature())
                if sig in checked:
                    continue
                checked.add(sig)
                outcome = check_candidate(
                    self.code,
                    schedule,
                    cand,
                    sub,
                    dem,
                    logical_error,
                    lambda s, basis=basis: self.build_dem(s, basis),
                )
                if outcome.verified:
                    verified.append((idx, outcome.schedule, cand))
        return verified

    def _apply_changes(
        self, schedule: Schedule, verified, depth_limit: int | None = None
    ) -> tuple[Schedule, int]:
        """§5.5: per subgraph keep the min-depth candidate, apply in turn."""
        by_problem: dict[int, list[tuple[Schedule, object]]] = {}
        for idx, new_schedule, cand in verified:
            by_problem.setdefault(idx, []).append((new_schedule, cand))
        current = schedule
        applied = 0
        for idx in sorted(by_problem):
            options = by_problem[idx]
            options.sort(key=lambda item: item[0].cnot_depth())
            for _, cand in options:
                try:
                    trial = cand.apply_to(current)
                except (ValueError, KeyError):
                    continue
                if not trial.is_valid():
                    continue
                if depth_limit is not None and trial.cnot_depth() > depth_limit:
                    continue
                current = trial
                applied += 1
                break
        return current, applied

    # -- main loop ------------------------------------------------------------------

    def optimize(self, schedule: Schedule) -> PropHuntResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if not schedule.is_valid():
            raise ValueError("starting schedule is invalid")
        current = schedule.copy()
        history: list[IterationRecord] = []
        depth_limit = (
            None
            if cfg.max_depth_growth is None
            else schedule.cnot_depth() + cfg.max_depth_growth
        )

        for it in range(cfg.iterations):
            t0 = time.monotonic()
            problems = self._find_problems(current, rng)
            verified = self._verify_candidates(current, problems, rng)
            new_schedule, applied = self._apply_changes(
                current, verified, depth_limit=depth_limit
            )
            weights = [sol.weight for _, _, sol, _ in problems]
            record = IterationRecord(
                iteration=it,
                schedule=new_schedule.copy(),
                cnot_depth=new_schedule.cnot_depth(),
                ambiguous_found=len(problems),
                min_logical_weight=min(weights) if weights else None,
                changes_verified=len(verified),
                changes_applied=applied,
                solve_times=[sol.solve_time for _, _, sol, _ in problems],
                subgraph_sizes=[
                    (sub.num_detectors, sub.num_errors) for _, sub, _, _ in problems
                ],
                elapsed=time.monotonic() - t0,
            )
            history.append(record)
            current = new_schedule
            if cfg.stop_when_quiet and applied == 0 and not problems:
                break

        return PropHuntResult(
            code=self.code,
            initial_schedule=schedule,
            final_schedule=current,
            history=history,
        )


def optimize_schedule(
    code: CSSCode,
    schedule: Schedule,
    config: PropHuntConfig | None = None,
) -> PropHuntResult:
    """One-call convenience wrapper around :class:`PropHunt`."""
    return PropHunt(code, config).optimize(schedule)
