"""Min-weight logical error solving inside ambiguous subgraphs (§5.2).

Three interchangeable backends:

* ``graphlike`` — exact shortest-odd-cycle search on subgraphs whose
  errors flip at most two syndromes (true for matching-type codes).
  A parity-doubled Dijkstra finds the minimum-weight error set with
  trivial syndrome and nontrivial logical action.
* ``isd`` — randomized information-set decoding (the same engine as the
  code-distance estimator), exact with high probability for the small
  weights involved.
* ``maxsat`` — the paper's formulation verbatim: tree-XOR hard
  constraints, soft "error off" clauses, solved with the bundled
  branch-and-bound solver.  Slower; used for cross-validation and for
  reproducing Table 2's model sizes.

All return the same thing: the set of subgraph-local error columns
forming a minimum-weight logical error, or ``None``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..codes.distance import min_weight_logical as _isd_search
from ..maxsat import MaxSatSolver, WCNF
from .decoding_graph import Subgraph


@dataclass
class LogicalErrorSolution:
    """A minimum-weight logical error within one subgraph."""

    weight: int
    error_columns: list[int]  # indices into Subgraph.errors
    method: str
    solve_time: float = 0.0

    def global_errors(self, subgraph: Subgraph) -> list[int]:
        return [subgraph.errors[j] for j in self.error_columns]


# -- graph-like exact solver ------------------------------------------------------


def _solve_graphlike(subgraph: Subgraph) -> LogicalErrorSolution | None:
    """Shortest odd-observable cycle via parity-doubled Dijkstra.

    Nodes are syndrome rows plus a boundary node; each error column is an
    edge (its 1-2 incident syndromes, boundary-padded) carrying an
    observable parity.  An error set with H'e = 0 is an edge-disjoint
    union of cycles/boundary-paths; the minimum one with odd observable
    parity is found by searching, from every node, the cheapest path that
    returns with parity 1.
    """
    h, l_mat = subgraph.h, subgraph.l
    num_dets, num_errs = h.shape
    boundary = num_dets
    edges: list[tuple[int, int, int, int]] = []  # (u, v, obs_parity, column)
    for j in range(num_errs):
        dets = np.nonzero(h[:, j])[0]
        if len(dets) > 2:
            return None  # not graph-like
        obs = int(l_mat[:, j].any())
        if len(dets) == 0:
            if obs:
                # An undetectable logical single error: weight-1 solution.
                return LogicalErrorSolution(1, [j], "graphlike")
            continue
        u = int(dets[0])
        v = int(dets[1]) if len(dets) == 2 else boundary
        edges.append((u, v, obs, j))

    adjacency: dict[int, list[tuple[int, int, int]]] = {}
    for u, v, obs, j in edges:
        adjacency.setdefault(u, []).append((v, obs, j))
        adjacency.setdefault(v, []).append((u, obs, j))

    best: LogicalErrorSolution | None = None
    nodes = list(adjacency)
    for source in nodes:
        # Dijkstra on (node, parity) states, forbidding immediate reuse of
        # the arrival edge so length-2 back-and-forth walks are excluded.
        start = (source, 0)
        dist: dict[tuple[int, int], tuple[int, list[int]]] = {start: (0, [])}
        heap: list[tuple[int, int, int, int, list[int]]] = [
            (0, source, 0, -1, [])
        ]
        while heap:
            d, node, parity, last_edge, path = heapq.heappop(heap)
            if best is not None and d >= best.weight:
                break
            if dist.get((node, parity), (np.inf, None))[0] < d:
                continue
            if node == source and parity == 1:
                if best is None or d < best.weight:
                    best = LogicalErrorSolution(d, sorted(path), "graphlike")
                continue
            for (nxt, obs, j) in adjacency.get(node, ()):
                if j == last_edge:
                    continue
                nd = d + 1
                np_parity = parity ^ obs
                key = (nxt, np_parity)
                if nxt == source and np_parity == 1:
                    if best is None or nd < best.weight:
                        best = LogicalErrorSolution(nd, sorted(path + [j]), "graphlike")
                    continue
                if dist.get(key, (np.inf, None))[0] > nd:
                    dist[key] = (nd, path + [j])
                    heapq.heappush(heap, (nd, nxt, np_parity, j, path + [j]))
    if best is None:
        return None
    # Validate (duplicate edges across heap paths could in principle slip
    # through): the found set must have zero syndrome and odd observable.
    e = np.zeros(num_errs, dtype=np.uint8)
    e[best.error_columns] = 1
    if (h @ e % 2).any() or not (l_mat @ e % 2).any():
        return None
    return best


# -- ISD solver ----------------------------------------------------------------------


def _solve_isd(
    subgraph: Subgraph, rng: np.random.Generator, iterations: int
) -> LogicalErrorSolution | None:
    result = _isd_search(
        subgraph.h, subgraph.l, iterations=iterations, rng=rng, pair_search=True
    )
    if not result.found():
        return None
    cols = [int(j) for j in np.nonzero(result.vector)[0]]
    return LogicalErrorSolution(result.weight, cols, "isd")


# -- MaxSAT solver (paper formulation) --------------------------------------


def build_maxsat_model(h: np.ndarray, l_mat: np.ndarray) -> WCNF:
    """The §5.2 WCNF: error/syndrome/logical variables, tree XORs, softs."""
    wcnf = WCNF()
    num_dets, num_errs = h.shape
    num_logicals = l_mat.shape[0]
    error_vars = [wcnf.new_var(f"E{j}") for j in range(num_errs)]
    syndrome_vars = [wcnf.new_var(f"S{i}") for i in range(num_dets)]
    logical_vars = [wcnf.new_var(f"L{i}") for i in range(num_logicals)]
    for i in range(num_dets):
        inputs = [error_vars[j] for j in np.nonzero(h[i])[0]]
        wcnf.add_xor_tree(syndrome_vars[i], inputs)
    for i in range(num_logicals):
        inputs = [error_vars[j] for j in np.nonzero(l_mat[i])[0]]
        wcnf.add_xor_tree(logical_vars[i], inputs)
    # Undetected by all stabilizers...
    for s in syndrome_vars:
        wcnf.add_hard(-s)
    # ...and flipping at least one logical observable.
    if logical_vars:
        wcnf.add_hard(*logical_vars)
    # Soft: prefer each error off.
    for e in error_vars:
        wcnf.add_soft(-e, 1.0)
    return wcnf


def _solve_maxsat(
    subgraph: Subgraph, timeout: float
) -> LogicalErrorSolution | None:
    wcnf = build_maxsat_model(subgraph.h, subgraph.l)
    result = MaxSatSolver(wcnf, timeout=timeout).solve()
    if result.assignment is None:
        return None
    cols = [
        j
        for j in range(subgraph.num_errors)
        if result.assignment.get(wcnf.names[f"E{j}"], False)
    ]
    return LogicalErrorSolution(
        len(cols), cols, "maxsat", solve_time=result.elapsed
    )


# -- dispatcher -------------------------------------------------------------


def solve_min_weight_logical(
    subgraph: Subgraph,
    rng: np.random.Generator | None = None,
    method: str = "auto",
    isd_iterations: int = 120,
    maxsat_timeout: float = 360.0,
) -> LogicalErrorSolution | None:
    """Find a min-weight logical error in an ambiguous subgraph."""
    import time

    rng = rng or np.random.default_rng()
    t0 = time.monotonic()
    solution: LogicalErrorSolution | None = None
    if method == "auto":
        solution = _solve_graphlike(subgraph)
        if solution is None:
            solution = _solve_isd(subgraph, rng, isd_iterations)
    elif method == "graphlike":
        solution = _solve_graphlike(subgraph)
    elif method == "isd":
        solution = _solve_isd(subgraph, rng, isd_iterations)
    elif method == "maxsat":
        solution = _solve_maxsat(subgraph, maxsat_timeout)
    else:
        raise ValueError(f"unknown method {method!r}")
    if solution is not None and solution.solve_time == 0.0:
        solution.solve_time = time.monotonic() - t0
    return solution
