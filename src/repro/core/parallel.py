"""Parallel ambiguous-subgraph sampling.

The paper parallelizes subgraph finding over 48 CPU cores (§6.1).  This
module provides the same fan-out with ``multiprocessing``: each worker
samples and solves subgraphs independently with its own RNG stream, and
results are merged.  Sequential sampling with the same seeds gives
statistically identical behaviour, so ``workers=1`` (the default
everywhere) keeps runs deterministic and fork-free.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .ambiguity import find_ambiguous_subgraph
from .decoding_graph import DecodingGraph, Subgraph
from .minweight import LogicalErrorSolution, solve_min_weight_logical

# Module-level state for fork-based workers (set by the parent before the
# pool starts; inherited by children on fork).
_WORKER_GRAPH: DecodingGraph | None = None


def _init_worker(graph: DecodingGraph) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph


def _sample_one(
    args: tuple[int, int, str, int]
) -> tuple[Subgraph, LogicalErrorSolution] | None:
    seed, max_errors, solver, isd_iterations = args
    graph = _WORKER_GRAPH
    if graph is None:
        raise RuntimeError("worker pool not initialized")
    rng = np.random.default_rng(seed)
    sub = find_ambiguous_subgraph(graph, rng, max_errors=max_errors)
    if sub is None:
        return None
    solution = solve_min_weight_logical(
        sub, rng=rng, method=solver, isd_iterations=isd_iterations
    )
    if solution is None:
        return None
    return sub, solution


def sample_and_solve(
    graph: DecodingGraph,
    samples: int,
    base_seed: int,
    max_errors: int = 60,
    solver: str = "auto",
    isd_iterations: int = 120,
    workers: int = 1,
) -> list[tuple[Subgraph, LogicalErrorSolution]]:
    """Sample ``samples`` subgraphs, solving the ambiguous ones.

    ``workers > 1`` fans out over processes (fork start method shares the
    graph copy-on-write, like the paper's multicore runs).
    """
    jobs = [
        (base_seed + i, max_errors, solver, isd_iterations) for i in range(samples)
    ]
    if workers <= 1:
        _init_worker(graph)
        try:
            results = [_sample_one(job) for job in jobs]
        finally:
            _init_worker(None)  # type: ignore[arg-type]
        return [r for r in results if r is not None]

    workers = min(workers, os.cpu_count() or 1)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(graph,)
    ) as pool:
        results = list(
            pool.map(_sample_one, jobs, chunksize=max(1, samples // (4 * workers)))
        )
    return [r for r in results if r is not None]
