"""PropHunt: ambiguity-driven SM-circuit optimization."""

from .ambiguity import find_ambiguous_subgraph, is_ambiguous, sample_ambiguous_subgraphs
from .changes import CandidateChange, enumerate_candidates
from .decoding_graph import DecodingGraph, Subgraph
from .minweight import (
    LogicalErrorSolution,
    build_maxsat_model,
    solve_min_weight_logical,
)
from .optimizer import (
    IterationRecord,
    PropHunt,
    PropHuntConfig,
    PropHuntResult,
    optimize_schedule,
)
from .pruning import PruneOutcome, check_candidate

__all__ = [
    "find_ambiguous_subgraph",
    "is_ambiguous",
    "sample_ambiguous_subgraphs",
    "CandidateChange",
    "enumerate_candidates",
    "DecodingGraph",
    "Subgraph",
    "LogicalErrorSolution",
    "build_maxsat_model",
    "solve_min_weight_logical",
    "IterationRecord",
    "PropHunt",
    "PropHuntConfig",
    "PropHuntResult",
    "optimize_schedule",
    "PruneOutcome",
    "check_candidate",
]
