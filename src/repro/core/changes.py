"""Candidate SM-circuit change enumeration (paper §5.3).

Each error mechanism of a found min-weight logical error is mapped back to
the CNOT that caused it (via DEM provenance labels) and spawns:

* **reordering changes** (§5.3.1) when the mechanism is a hook error — for
  a hook on stabilizer ``s`` at data qubit ``q_i``, one candidate per other
  support qubit ``q_j``, moving ``q_j`` in front of ``q_i``;
* **rescheduling changes** (§5.3.2) — for each syndrome qubit ``s_i``
  flipped by the mechanism that shares the data qubit ``q_i`` with the
  source stabilizer ``s_j``, swap their relative order on ``q_i``.  If the
  pair mixes X and Z types, a companion swap on a second shared qubit
  ``q_k`` keeps the stabilizers commuting (unique ``q_k`` when exactly two
  qubits are shared, e.g. the surface code; random otherwise).

A change is a list of primitive schedule edits, so it can be re-applied to
an evolving schedule during §5.5's application stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.schedule import Schedule
from ..codes.css import CSSCode
from ..sim.dem import DetectorErrorModel, ErrorMechanism

# Primitive edits: ("reorder", kind, stab, move, before)
#                  ("swap", qubit, (kind1, s1), (kind2, s2))
Edit = tuple


@dataclass
class CandidateChange:
    """A proposed schedule rewrite and its origin."""

    edits: list[Edit]
    source_error: int  # global mechanism index that spawned it
    kind: str  # "reorder" or "reschedule"
    description: str = ""

    def apply_to(self, schedule: Schedule) -> Schedule:
        """Return a rewritten copy (raises if an edit is inapplicable)."""
        out = schedule.copy()
        for edit in self.edits:
            if edit[0] == "reorder":
                _, kind, stab, move, before = edit
                out.reorder(kind, stab, move, before)
            elif edit[0] == "swap":
                _, qubit, s1, s2 = edit
                out.swap_relative_order(qubit, s1, s2)
            else:
                raise ValueError(f"unknown edit {edit[0]!r}")
        return out

    def signature(self) -> tuple:
        return tuple(self.edits)


def _ancilla_error_kinds(code: CSSCode, source, kind: str) -> bool:
    """Does this fault include a component that propagates off the ancilla?

    X-check ancillas are CNOT *controls*: X/Y on them spreads to later
    targets.  Z-check ancillas are *targets*: Z/Y spreads back to later
    controls (§2.6, §2.8).
    """
    n = code.n
    spreading = ("X", "Y") if kind == "x" else ("Z", "Y")
    for term in source.pauli.split("*"):
        pauli, qubit = term[0], int(term[1:])
        if qubit >= n and pauli in spreading:
            return True
    return False


def _stabs_flipped_by(
    mechanism: ErrorMechanism, dem: DetectorErrorModel
) -> set[tuple[str, int]]:
    """Distinct (kind, stab) syndrome qubits among the flipped detectors."""
    stabs: set[tuple[str, int]] = set()
    for d in mechanism.detectors:
        label = dem.detector_labels[d]
        stabs.add((label[1], label[2]))
    return stabs


def enumerate_candidates(
    code: CSSCode,
    schedule: Schedule,
    dem: DetectorErrorModel,
    logical_error: list[int],
    rng: np.random.Generator,
) -> list[CandidateChange]:
    """All candidate changes for one min-weight logical error (§5.3)."""
    candidates: list[CandidateChange] = []
    seen: set[tuple] = set()

    def add(change: CandidateChange) -> None:
        sig = change.signature()
        if sig not in seen:
            seen.add(sig)
            candidates.append(change)

    for err in logical_error:
        mechanism = dem.mechanisms[err]
        for source in mechanism.sources:
            if not source.label or source.label[0] != "cnot":
                continue
            _, kind, stab, q_i, _round = source.label
            support = schedule.stab_orders[(kind, stab)]

            # Reordering changes for hook-type faults (§5.3.1).
            if _ancilla_error_kinds(code, source, kind):
                for q_j in support:
                    if q_j == q_i:
                        continue
                    add(
                        CandidateChange(
                            edits=[("reorder", kind, stab, q_j, q_i)],
                            source_error=err,
                            kind="reorder",
                            description=(
                                f"move q{q_j} before q{q_i} in {kind}{stab}"
                            ),
                        )
                    )

            # Rescheduling changes (§5.3.2).
            s_j = (kind, stab)
            for s_i in _stabs_flipped_by(mechanism, dem):
                if s_i == s_j:
                    continue
                support_i = set(
                    code.x_stab_support(s_i[1])
                    if s_i[0] == "x"
                    else code.z_stab_support(s_i[1])
                )
                if q_i not in support_i:
                    continue
                edits: list[Edit] = [("swap", q_i, s_i, s_j)]
                if s_i[0] != s_j[0]:
                    shared = sorted(
                        support_i
                        & set(
                            code.x_stab_support(stab)
                            if kind == "x"
                            else code.z_stab_support(stab)
                        )
                        - {q_i}
                    )
                    if not shared:
                        continue  # cannot preserve commutation
                    if len(shared) == 1:
                        q_k = shared[0]
                    else:
                        q_k = shared[int(rng.integers(0, len(shared)))]
                    edits.append(("swap", q_k, s_i, s_j))
                add(
                    CandidateChange(
                        edits=edits,
                        source_error=err,
                        kind="reschedule",
                        description=f"swap {s_i}/{s_j} on q{q_i}",
                    )
                )
    return candidates
