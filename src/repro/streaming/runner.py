"""Paced streaming decode runs and their SLO reports.

:func:`stream_decode` is the serving-side counterpart of
:func:`repro.experiments.shotrunner.run_shot_chunks`: sample one packed
batch, then replay it through a :class:`~repro.streaming.rounds.RoundStream`
against the round clock — rounds *arrive* at ``rounds_per_sec`` (0 =
free-run) and each is pushed into a
:class:`~repro.streaming.window.WindowedDecoder`.  The figures of merit
are per-round latency (measured from scheduled arrival, so queueing
wait counts), sustained rounds/sec, deadline misses, and the maximum
backlog — backpressure is measured, never hidden.

Latency numbers keep the exact per-round list in the
:class:`StreamReport` (quantiles are exact); the ``stream.*`` obs
instruments carry the same signals into heartbeats/telemetry sidecars
in the usual log-bin form.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..decoders.base import Decoder
from ..decoders.metrics import make_decoder
from ..sim.bitbatch import mask_shot_tail, popcount_words
from ..sim.dem import DetectorErrorModel
from ..sim.sampler import DemSampler
from .rounds import RoundLayout, RoundStream
from .window import WindowConfig, WindowedDecoder

_ROUND_S = obs.histogram("stream.round_s")
_BACKLOG = obs.gauge("stream.backlog")
_ROUNDS = obs.counter("stream.rounds")
_MISSES = obs.counter("stream.deadline_misses")


@dataclass
class StreamReport:
    """What one streaming decode run measured."""

    shots: int
    rounds: int
    window_rounds: int
    commit_rounds: int
    round_latencies_s: list[float] = field(default_factory=list)
    commit_count: int = 0
    revised_shots: int = 0
    target_rounds_per_sec: float = 0.0
    deadline_s: float | None = None
    deadline_misses: int = 0
    max_backlog: int = 0
    failures: int = 0
    matches_offline: bool | None = None
    elapsed_s: float = 0.0

    def latency_percentile(self, q: float) -> float:
        """Exact per-round latency quantile (``q`` in [0, 1])."""
        if not self.round_latencies_s:
            return 0.0
        ordered = sorted(self.round_latencies_s)
        rank = min(len(ordered) - 1, max(0, int(np.ceil(q * len(ordered))) - 1))
        return ordered[rank]

    @property
    def p50_round_s(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def p99_round_s(self) -> float:
        return self.latency_percentile(0.99)

    @property
    def max_round_s(self) -> float:
        return max(self.round_latencies_s, default=0.0)

    @property
    def rounds_per_sec(self) -> float:
        """Sustained processing rate over the whole stream."""
        return self.rounds / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """The SLO report fields, JSON-safe (exact latency list elided)."""
        return {
            "shots": self.shots,
            "rounds": self.rounds,
            "window_rounds": self.window_rounds,
            "commit_rounds": self.commit_rounds,
            "p50_round_s": self.p50_round_s,
            "p99_round_s": self.p99_round_s,
            "max_round_s": self.max_round_s,
            "rounds_per_sec": self.rounds_per_sec,
            "target_rounds_per_sec": self.target_rounds_per_sec,
            "deadline_s": self.deadline_s,
            "deadline_misses": self.deadline_misses,
            "max_backlog": self.max_backlog,
            "commits": self.commit_count,
            "revised_shots": self.revised_shots,
            "failures": self.failures,
            "matches_offline": self.matches_offline,
            "elapsed_s": self.elapsed_s,
        }

    def slo_lines(self) -> list[str]:
        """Human-readable SLO report for the CLI."""
        pace = (
            f"{self.target_rounds_per_sec:g} rounds/s target"
            if self.target_rounds_per_sec > 0
            else "free-run"
        )
        deadline = (
            f"{self.deadline_s * 1e3:.2f} ms/round, "
            f"{self.deadline_misses} missed"
            if self.deadline_s is not None
            else "none"
        )
        lines = [
            f"stream        : {self.shots} shots x {self.rounds} rounds, "
            f"window {self.window_rounds} commit {self.commit_rounds} ({pace})",
            f"round latency : p50 {self.p50_round_s * 1e3:.3f} ms  "
            f"p99 {self.p99_round_s * 1e3:.3f} ms  "
            f"max {self.max_round_s * 1e3:.3f} ms",
            f"sustained     : {self.rounds_per_sec:.1f} rounds/s",
            f"deadline      : {deadline}",
            f"backlog max   : {self.max_backlog} rounds",
            f"commits       : {self.commit_count} "
            f"({self.revised_shots} shot corrections revised)",
            f"failures      : {self.failures} / {self.shots} shots",
        ]
        if self.matches_offline is not None:
            verdict = "yes" if self.matches_offline else "NO"
            lines.append(f"offline match : {verdict}")
        return lines


def stream_decode(
    dem: DetectorErrorModel,
    shots: int,
    basis: str = "z",
    decoder: str | Decoder = "auto",
    rng: np.random.Generator | None = None,
    window: WindowConfig | None = None,
    rounds_per_sec: float = 0.0,
    deadline_s: float | None = None,
    verify_offline: bool = True,
    sampler: DemSampler | None = None,
    layout: RoundLayout | None = None,
) -> StreamReport:
    """Run one paced sliding-window decode over freshly sampled shots.

    ``rounds_per_sec`` is the arrival clock: round ``i`` is *due* at
    ``t0 + i / rate`` and the runner sleeps until then when it is ahead
    (0 disables pacing — rounds arrive the instant the previous one is
    processed).  Per-round latency is completion minus scheduled
    arrival, so a decoder falling behind accumulates queueing delay
    exactly as a real front-end buffer would; backlog is how many
    due-but-unprocessed rounds were waiting when each round completed.

    ``deadline_s`` defaults to the round period when pacing is on
    (keeping up = meeting the clock); with free-run there is no
    deadline unless one is given.

    ``verify_offline`` additionally decodes the whole batch through
    the offline packed path and records whether the committed stream
    corrections are bit-identical — the invariant the property tests
    pin; benches switch it off to time the streaming leg alone.
    """
    window = window or WindowConfig()
    sampler = sampler or DemSampler(dem)
    dec = (
        decoder
        if isinstance(decoder, Decoder)
        else make_decoder(dem, basis, decoder)
    )
    layout = layout or RoundLayout.from_dem(dem)
    rate = max(0.0, float(rounds_per_sec))
    if deadline_s is None and rate > 0:
        deadline_s = 1.0 / rate
    report = StreamReport(
        shots=shots,
        rounds=layout.num_rounds,
        window_rounds=window.window_rounds,
        commit_rounds=window.commit_rounds,
        target_rounds_per_sec=rate,
        deadline_s=deadline_s,
    )
    with obs.span(
        "stream",
        shots=shots,
        rounds=layout.num_rounds,
        window=window.window_rounds,
        commit=window.commit_rounds,
    ) as sp:
        batch = sampler.sample_packed(shots, rng)
        stream = RoundStream(batch, layout)
        windowed = WindowedDecoder(
            decoder=dec, layout=layout, shots=shots, window=window
        )
        t0 = time.perf_counter()
        for rnd in stream:
            if rate > 0:
                # Paced arrival: round i is due at t0 + i/rate; latency
                # is completion minus the due time, so queueing delay
                # from earlier slow rounds carries forward.
                due = t0 + rnd.index / rate
                now = time.perf_counter()
                if now < due:
                    time.sleep(due - now)
                windowed.push(rnd)
                done = time.perf_counter()
                latency = done - due
                arrived = min(layout.num_rounds, int((done - t0) * rate) + 1)
                backlog = max(0, arrived - (rnd.index + 1))
            else:
                # Free-run: each round arrives the instant the previous
                # finished; latency is pure processing time.
                start = time.perf_counter()
                windowed.push(rnd)
                latency = time.perf_counter() - start
                backlog = 0
            report.round_latencies_s.append(latency)
            report.max_backlog = max(report.max_backlog, backlog)
            _ROUND_S.record(latency)
            _BACKLOG.set(backlog)
            _ROUNDS.add()
            if deadline_s is not None and latency > deadline_s:
                report.deadline_misses += 1
                _MISSES.add()
        committed = windowed.finish()
        report.elapsed_s = time.perf_counter() - t0
        report.commit_count = len(windowed.commits)
        report.revised_shots = windowed.revised_shots
        report.failures = _count_failures(committed.observables, batch)
        if verify_offline:
            offline = dec.decode_batch_packed(batch)
            report.matches_offline = bool(
                np.array_equal(committed.observables, offline.observables)
            )
        sp.set(
            p99_round_s=report.p99_round_s,
            deadline_misses=report.deadline_misses,
            failures=report.failures,
        )
    return report


def _count_failures(corrections: np.ndarray, batch) -> int:
    """Shots whose committed correction mispredicts any observable."""
    if corrections.shape[0] == 0:
        return 0
    mismatch = corrections ^ batch.observables
    failed_any = np.bitwise_or.reduce(mismatch, axis=0)
    mask_shot_tail(failed_any[None, :], batch.shots)
    return int(popcount_words(failed_any))


__all__ = ["StreamReport", "stream_decode"]
