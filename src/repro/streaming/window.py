"""Sliding-window decoding over round-sliced syndromes.

:class:`WindowedDecoder` wraps any :class:`~repro.decoders.base.Decoder`
with a window/commit schedule: rounds are pushed in arrival order, and
once ``window_rounds`` rounds are pending the oldest ``commit_rounds``
of them are *committed* — the decoder runs over every round received so
far (unseen future rounds are all-zero detector rows, which every
decoder in the stack treats as "no defect") and the resulting
correction becomes the committed answer for the rounds leaving the
window.  Later rounds may *revise* a committed correction — the
speculation cost of answering early — and the revision count is
reported rather than hidden.

The contract the property tests pin: after the final round is pushed,
:meth:`WindowedDecoder.finish` returns corrections **bit-identical** to
offline :meth:`~repro.decoders.base.Decoder.decode_batch_packed` on the
same batch, for every decoder family and any window/commit schedule.
The last commit sees the complete syndrome, so identity holds by
construction *if* the round slicing, ordering, and reassembly are exact
— which is precisely what the test guards.

Commits go through the unchanged packed decode path, so the
unique-syndrome dedup, the persistent syndrome cache, and the kernel
backends all apply per commit; with one round per commit this is the
small-batch regime the latency benches measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..decoders.base import Decoder
from ..sim.bitbatch import (
    BitSampleBatch,
    mask_shot_tail,
    num_shot_words,
    popcount_words,
)
from .rounds import RoundLayout, SyndromeRound

_COMMIT_S = obs.histogram("stream.commit_s")
_COMMITS = obs.counter("stream.commits")
_REVISED = obs.counter("stream.revised_shots")


@dataclass(frozen=True)
class WindowConfig:
    """Window/commit schedule: hold ``window_rounds`` rounds of context,
    commit the oldest ``commit_rounds`` each time the window fills."""

    window_rounds: int = 3
    commit_rounds: int = 1

    def __post_init__(self):
        if self.window_rounds < 1:
            raise ValueError("window_rounds must be >= 1")
        if not 1 <= self.commit_rounds <= self.window_rounds:
            raise ValueError("commit_rounds must be in [1, window_rounds]")


@dataclass(frozen=True)
class CommitResult:
    """One commit: which rounds left the window, and at what cost."""

    index: int
    first_round: int
    rounds: int
    committed_through: int
    revised_shots: int
    elapsed_s: float


@dataclass
class WindowedDecoder:
    """Round-by-round wrapper over a packed decoder.

    Push rounds in order with :meth:`push` (each returns the
    :class:`CommitResult` it triggered, if any), then :meth:`finish`
    to flush the tail of the window and obtain the committed
    corrections as a packed predictions batch — the same shape
    ``decode_batch_packed`` returns.
    """

    decoder: Decoder
    layout: RoundLayout
    shots: int
    window: WindowConfig = field(default_factory=WindowConfig)

    def __post_init__(self):
        nwords = num_shot_words(self.shots)
        # The assembled syndrome: rounds land in their row slices as
        # they arrive; not-yet-received rounds stay all-zero, which the
        # decoders read as defect-free — the safe speculation default.
        self._words = np.zeros(
            (self.layout.num_detectors, nwords), dtype=np.uint64
        )
        self._received = 0
        self._committed = 0
        self._corrections: np.ndarray | None = None
        self.commits: list[CommitResult] = []
        self.revised_shots = 0

    @property
    def received_rounds(self) -> int:
        return self._received

    @property
    def committed_rounds(self) -> int:
        return self._committed

    @property
    def pending_rounds(self) -> int:
        return self._received - self._committed

    def push(self, rnd: SyndromeRound) -> CommitResult | None:
        """Accept the next round; commit if the window filled."""
        if rnd.index != self._received:
            raise ValueError(
                f"rounds must arrive in order: expected round "
                f"{self._received}, got {rnd.index}"
            )
        if rnd.shots != self.shots:
            raise ValueError(
                f"round carries {rnd.shots} shots, stream expects {self.shots}"
            )
        start, stop = self.layout.round_slice(rnd.index)
        if rnd.detectors.shape != self._words[start:stop].shape:
            raise ValueError(
                f"round {rnd.index} has detector shape "
                f"{rnd.detectors.shape}, layout expects "
                f"{self._words[start:stop].shape}"
            )
        self._words[start:stop] = rnd.detectors
        self._received += 1
        if self.pending_rounds >= self.window.window_rounds:
            return self._commit(self.window.commit_rounds)
        return None

    def finish(self) -> BitSampleBatch:
        """Flush the window and return the committed corrections.

        Requires every round of the layout to have been pushed; the
        closing commit decodes the complete syndrome, so the result is
        bit-identical to offline ``decode_batch_packed`` on the same
        batch.
        """
        if self._received != self.layout.num_rounds:
            raise ValueError(
                f"finish() before the stream ended: {self._received} of "
                f"{self.layout.num_rounds} rounds pushed"
            )
        if self._corrections is None or self._committed < self._received:
            self._commit(self._received - self._committed)
        return BitSampleBatch(
            detectors=self._words,
            observables=self._corrections,
            shots=self.shots,
        )

    def _commit(self, rounds: int) -> CommitResult:
        clock = obs.StopWatch()
        batch = BitSampleBatch(
            detectors=self._words,
            observables=np.zeros((0, self._words.shape[1]), dtype=np.uint64),
            shots=self.shots,
        )
        corrections = self.decoder.decode_batch_packed(batch).observables
        revised = 0
        if self._corrections is not None and self._corrections.size:
            changed = self._corrections ^ corrections
            changed_any = np.bitwise_or.reduce(changed, axis=0)
            mask_shot_tail(changed_any[None, :], self.shots)
            revised = int(popcount_words(changed_any))
        self._corrections = corrections
        first = self._committed
        self._committed += rounds
        self.revised_shots += revised
        elapsed = clock.elapsed
        _COMMIT_S.record(elapsed)
        _COMMITS.add()
        _REVISED.add(revised)
        result = CommitResult(
            index=len(self.commits),
            first_round=first,
            rounds=rounds,
            committed_through=self._committed,
            revised_shots=revised,
            elapsed_s=elapsed,
        )
        self.commits.append(result)
        return result


__all__ = ["CommitResult", "WindowConfig", "WindowedDecoder"]
