"""Real-time sliding-window decode with per-round latency SLOs.

The offline stack asks "how fast can we decode N shots?"; this package
asks the serving question — "can the decoder keep up with the syndrome
clock?".  Syndrome rounds arrive incrementally
(:class:`~repro.streaming.rounds.RoundStream` slices a sampled packed
batch into per-round views), a
:class:`~repro.streaming.window.WindowedDecoder` commits corrections
for rounds that have left its window, and
:func:`~repro.streaming.runner.stream_decode` paces the whole thing
against a target round rate and reports per-round latency p50/p99/max,
sustained rounds/sec, deadline misses, and backlog.

Committed corrections are bit-identical to offline
``decode_batch_packed`` on the same shots for every decoder family —
the pinned invariant that makes the latency numbers trustworthy.

CLI: ``python -m repro.cli stream <code> ...``.
"""

from .rounds import RoundLayout, RoundStream, SyndromeRound
from .runner import StreamReport, stream_decode
from .window import CommitResult, WindowConfig, WindowedDecoder

__all__ = [
    "CommitResult",
    "RoundLayout",
    "RoundStream",
    "StreamReport",
    "SyndromeRound",
    "WindowConfig",
    "WindowedDecoder",
    "stream_decode",
]
