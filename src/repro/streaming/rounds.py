"""Round-sliced views of packed syndrome batches.

The offline pipeline hands a decoder the *complete* detector history of
a batch at once.  A real-time decoder never sees that: syndrome bits
arrive one measurement round at a time, and the serving question is
whether decoding keeps up with the round clock.  This module supplies
the arrival side of that story:

:class:`RoundLayout`
    Which contiguous detector rows belong to which measurement round.
    Derived from the DEM's ``detector_labels`` (the circuit builder
    labels every detector ``(round, kind, stab)`` and appends them in
    round order, final data-parity detectors last), with an even-split
    fallback for label-less DEMs so synthetic/property-test models
    stream too.

:class:`RoundStream`
    Iterates a sampled :class:`~repro.sim.bitbatch.BitSampleBatch` as
    per-round :class:`SyndromeRound` slices — zero-copy row views of
    the packed detector words, exactly what a hardware front-end would
    deliver (all shots advance through rounds in lockstep, as on a real
    device running a batch of experiments in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..circuits.builder import FINAL_ROUND
from ..sim.bitbatch import BitSampleBatch
from ..sim.dem import DetectorErrorModel


@dataclass(frozen=True)
class SyndromeRound:
    """One round's worth of packed detector outcomes for a shot batch.

    ``detectors`` is ``(round_detectors, ceil(shots/64))`` uint64 — the
    contiguous row slice of the batch's packed detector words belonging
    to this round, shots along the bit axis as everywhere else.
    """

    index: int
    start: int  # first detector row of this round in the full DEM
    detectors: np.ndarray
    shots: int

    @property
    def num_detectors(self) -> int:
        return self.detectors.shape[0]


@dataclass(frozen=True)
class RoundLayout:
    """Contiguous detector-row slices per measurement round.

    ``slices[r] = (start, stop)`` covers ``[0, num_detectors)`` without
    gaps or overlap; rounds arrive (and must be pushed) in index order.
    """

    slices: tuple[tuple[int, int], ...]
    num_detectors: int

    @property
    def num_rounds(self) -> int:
        return len(self.slices)

    def round_slice(self, index: int) -> tuple[int, int]:
        return self.slices[index]

    @classmethod
    def from_dem(cls, dem: DetectorErrorModel) -> "RoundLayout":
        """Group the DEM's detectors into rounds by their labels.

        Builder-produced DEMs label detectors ``(round, kind, stab)``
        with rounds appended in increasing order and the final
        data-parity group (round ``FINAL_ROUND``) last — so rounds are
        contiguous row ranges.  Label-less or irregular DEMs (random
        property-test models, hand-built circuits) fall back to
        treating every detector as its own round, which is the finest
        arrival granularity and always valid.
        """
        labels = dem.detector_labels
        n = dem.num_detectors
        if not labels or len(labels) != n:
            return cls.per_detector(n)
        slices: list[tuple[int, int]] = []
        start = 0
        current = _label_round(labels[0])
        if current is None:
            return cls.per_detector(n)
        seen: set[object] = set()
        for i in range(1, n):
            r = _label_round(labels[i])
            if r is None:
                return cls.per_detector(n)
            if r != current:
                if r in seen or current in seen:
                    # Labels revisit a round: not contiguous, fall back.
                    return cls.per_detector(n)
                seen.add(current)
                slices.append((start, i))
                start = i
                current = r
        slices.append((start, n))
        return cls(slices=tuple(slices), num_detectors=n)

    @classmethod
    def per_detector(cls, num_detectors: int) -> "RoundLayout":
        """One detector per round — the label-less fallback."""
        return cls(
            slices=tuple((i, i + 1) for i in range(num_detectors)),
            num_detectors=num_detectors,
        )

    @classmethod
    def even(cls, num_detectors: int, num_rounds: int) -> "RoundLayout":
        """Split ``num_detectors`` rows into ``num_rounds`` contiguous
        near-equal slices (empty rounds allowed when rows run short)."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        bounds = np.linspace(0, num_detectors, num_rounds + 1).astype(int)
        return cls(
            slices=tuple(
                (int(bounds[i]), int(bounds[i + 1])) for i in range(num_rounds)
            ),
            num_detectors=num_detectors,
        )


def _label_round(label: object) -> object | None:
    """The round component of a detector label, or None if unlabeled.

    Builder labels are ``(round, kind, stab)`` tuples with an integer
    round (``FINAL_ROUND`` = -1 for the closing data-parity group).
    """
    if isinstance(label, tuple) and label and isinstance(label[0], int):
        return label[0]
    return None


class RoundStream:
    """Per-round iteration over one sampled packed batch.

    The stream yields :class:`SyndromeRound` views in round order —
    the arrival order of a device front-end.  Pacing (arrival clocks,
    backpressure) lives in :mod:`repro.streaming.runner`; this class is
    purely the data slicing.
    """

    def __init__(self, batch: BitSampleBatch, layout: RoundLayout):
        if batch.num_detectors != layout.num_detectors:
            raise ValueError(
                f"batch has {batch.num_detectors} detectors but the layout "
                f"covers {layout.num_detectors}"
            )
        self.batch = batch
        self.layout = layout

    @property
    def shots(self) -> int:
        return self.batch.shots

    @property
    def num_rounds(self) -> int:
        return self.layout.num_rounds

    def round(self, index: int) -> SyndromeRound:
        start, stop = self.layout.round_slice(index)
        return SyndromeRound(
            index=index,
            start=start,
            detectors=self.batch.detectors[start:stop],
            shots=self.batch.shots,
        )

    def __iter__(self) -> Iterator[SyndromeRound]:
        for index in range(self.layout.num_rounds):
            yield self.round(index)


__all__ = [
    "FINAL_ROUND",
    "RoundLayout",
    "RoundStream",
    "SyndromeRound",
]
