"""Campaign engine tests: content-addressed keys, the result store,
resume determinism, and the compile cache.

The two load-bearing contracts:

* **Key injectivity** — a job's key covers every result-affecting field
  (and only those: worker count is excluded by the shot runner's
  determinism contract), is stable across JSON round trips and fresh
  processes, and collides only for identical job descriptions.
* **Resume determinism** — interrupting a campaign (losing any suffix
  of the store) and resuming yields byte-identical estimates to an
  uninterrupted run, for any worker count, because every job seeds its
  RNG from its own key.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.stats import RateEstimate, wilson_interval
from repro.experiments import campaign as campaign_mod
from repro.experiments import fig06_schedules, fig12_benchmarks, fig14_lowp
from repro.experiments.campaign import (
    CampaignJob,
    CampaignSpec,
    CompileCache,
    export_rows,
    run_campaign,
    smoke_spec,
)
from repro.experiments.store import ResultStore, canonical_json, job_key

# -- strategies -------------------------------------------------------------

_CODES = ("surface_d3", "surface_d5", "lp39")
_SCHEDULES = ("nz", "poor", "coloration", "coloration:7")


def job_strategy():
    return st.builds(
        CampaignJob,
        code=st.sampled_from(_CODES),
        schedule=st.sampled_from(_SCHEDULES),
        basis=st.sampled_from(("z", "x")),
        p=st.floats(1e-5, 1e-2, allow_nan=False),
        idle_strength=st.sampled_from((0.0, 1e-4, 1e-3)),
        rounds=st.sampled_from((None, 2, 5)),
        decoder=st.sampled_from(("auto", "matching", "bposd")),
        estimator=st.sampled_from(("direct", "rare-event")),
        shots=st.integers(64, 1_000_000),
        max_failures=st.sampled_from((None, 10, 400)),
        chunk_size=st.sampled_from((256, 5_000)),
        seed=st.integers(0, 2**31 - 1),
        target_rel_halfwidth=st.sampled_from((0.1, 0.3)),
        min_failure_weight=st.integers(1, 4),
    )


# Fields whose perturbation must change a job's key.  For direct jobs
# the rare-event knobs are not hashed (they do not affect the result),
# and vice versa for max_failures — the perturbation test respects that.
_PERTURBATIONS = {
    "code": lambda v: "rqt60" if v != "rqt60" else "lp39",
    "schedule": lambda v: "coloration:99" if v != "coloration:99" else "nz",
    "basis": lambda v: "x" if v == "z" else "z",
    "p": lambda v: v * 1.5 + 1e-6,
    "idle_strength": lambda v: v + 1e-5,
    "rounds": lambda v: 4 if v != 4 else 6,
    "decoder": lambda v: "bposd" if v != "bposd" else "matching",
    "estimator": lambda v: "rare-event" if v == "direct" else "direct",
    "shots": lambda v: v + 64,
    "chunk_size": lambda v: v + 64,
    "seed": lambda v: v + 1,
    "confidence": lambda v: 0.99 if v != 0.99 else 0.9,
    "max_failures": lambda v: 17 if v != 17 else 23,
    "target_rel_halfwidth": lambda v: v / 2,
    "min_failure_weight": lambda v: v + 1,
    "initial_shots": lambda v: v + 64,
    "max_rounds": lambda v: v + 1,
    "tail_epsilon": lambda v: v / 10,
    "mode": lambda v: "uniform" if v != "uniform" else "proportional",
}

_DIRECT_ONLY = {"max_failures"}
_RARE_ONLY = {
    "target_rel_halfwidth",
    "min_failure_weight",
    "initial_shots",
    "max_rounds",
    "tail_epsilon",
    "mode",
}


class TestJobKeys:
    @settings(max_examples=60, deadline=None)
    @given(job=job_strategy(), field=st.sampled_from(sorted(_PERTURBATIONS)))
    def test_perturbing_any_hashed_field_changes_key(self, job, field):
        if job.estimator == "direct" and field in _RARE_ONLY:
            return
        if job.estimator == "rare-event" and field in _DIRECT_ONLY:
            return
        perturbed = dataclasses.replace(
            job, **{field: _PERTURBATIONS[field](getattr(job, field))}
        )
        assert perturbed.key() != job.key()

    @settings(max_examples=60, deadline=None)
    @given(job=job_strategy())
    def test_json_roundtrip_leaves_key_stable(self, job):
        payload = job.to_payload()
        round_tripped = json.loads(json.dumps(payload))
        assert job_key(round_tripped) == job.key()
        assert CampaignJob.from_payload(round_tripped).key() == job.key()

    @settings(max_examples=20, deadline=None)
    @given(jobs=st.lists(job_strategy(), min_size=2, max_size=20))
    def test_no_collisions_across_grid(self, jobs):
        payloads = {canonical_json(j.to_payload()) for j in jobs}
        keys = {j.key() for j in jobs}
        assert len(keys) == len(payloads)

    def test_key_stable_in_fresh_process(self):
        """Keys are process-independent (no PYTHONHASHSEED leakage)."""
        job = CampaignJob(code="surface_d3", schedule="nz", p=2e-3, seed=5)
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"
        script = (
            "from repro.experiments.campaign import CampaignJob; "
            "print(CampaignJob(code='surface_d3', schedule='nz', "
            "p=2e-3, seed=5).key())"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == job.key()

    def test_worker_count_not_hashed(self):
        """workers is a runtime knob, excluded from the key by the
        shot runner's worker-count-independence contract."""
        assert "workers" not in CampaignJob(
            code="surface_d3", schedule="nz"
        ).to_payload()

    def test_seed_sequence_derives_from_key(self):
        a = CampaignJob(code="surface_d3", schedule="nz", seed=0)
        b = CampaignJob(code="surface_d3", schedule="nz", seed=1)
        assert a.seed_sequence().entropy != b.seed_sequence().entropy
        assert a.seed_sequence().entropy == a.seed_sequence().entropy


class TestResultStore:
    def test_put_get_reopen(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("k1", {"a": 1}, {"r": 2.5})
        assert "k1" in store and store.get("k1")["result"] == {"r": 2.5}
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 1
        assert reopened.get("k1") == store.get("k1")

    def test_truncated_trailing_line_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("k1", {}, {"v": 1})
        store.put("k2", {}, {"v": 2})
        path = tmp_path / "s" / "results.jsonl"
        text = path.read_text()
        path.write_text(text[: len(text) - 9])  # cut into k2's record
        reopened = ResultStore(tmp_path / "s")
        assert "k1" in reopened and "k2" not in reopened

    def test_append_after_interrupted_writer_preserves_both(self, tmp_path):
        """Two writers, interleaved partial lines — the PR 4 tolerance
        claim: a killed writer loses *its own* unfinished trailing line,
        never a record another writer appends after it."""
        store_a = ResultStore(tmp_path / "s")
        store_a.put("k1", {}, {"v": 1})
        path = tmp_path / "s" / "results.jsonl"
        # Writer A dies mid-append: an unterminated partial record.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k-torn", "job": {}, "res')
        # Writer B opens the same store and appends a full record.
        store_b = ResultStore(tmp_path / "s")
        assert "k1" in store_b  # loader already drops the torn line
        store_b.put("k2", {}, {"v": 2})
        # And dies mid-append itself; writer C appends after it.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k-torn-2"')
        store_c = ResultStore(tmp_path / "s")
        store_c.put("k3", {}, {"v": 3})

        reopened = ResultStore(tmp_path / "s")
        assert {"k1", "k2", "k3"} <= set(reopened.keys())
        assert "k-torn" not in reopened and "k-torn-2" not in reopened
        assert reopened.get("k2")["result"] == {"v": 2}
        assert reopened.get("k3")["result"] == {"v": 3}

    def test_memory_store(self):
        store = ResultStore(None)
        store.put("k", {}, {})
        assert "k" in store

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


# -- resume determinism (the regression harness) ----------------------------


def _small_jobs(seed=0):
    spec = CampaignSpec(
        name="resume-test",
        codes=("surface_d3",),
        schedules=("nz", "poor"),
        p_values=(4e-3, 8e-3),
        bases=("z",),
        shots=320,
        chunk_size=128,
        seed=seed,
    )
    rare = CampaignJob(
        code="surface_d3",
        schedule="nz",
        basis="z",
        p=4e-3,
        estimator="rare-event",
        shots=1024,
        chunk_size=256,
        initial_shots=128,
        max_rounds=2,
        target_rel_halfwidth=0.5,
        seed=seed,
    )
    return spec.expand() + [rare]


def _estimates(report):
    """The determinism-relevant payload per key (timing excluded)."""
    out = {}
    for key, record in report.records.items():
        result = record["result"]
        payload = {
            "estimate": result["estimate"],
            "consumed_shots": result["consumed_shots"],
            "early_stopped": result["early_stopped"],
        }
        if "stratified" in result:
            payload["stratified"] = result["stratified"]
        out[key] = canonical_json(payload)
    return out


class TestResumeDeterminism:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_resume_is_byte_identical(self, tmp_path, workers):
        jobs = _small_jobs()

        full = run_campaign(jobs, store=tmp_path / "full", workers=workers)
        assert len(full.executed) == len(jobs)

        interrupted_dir = tmp_path / "interrupted"
        run_campaign(jobs, store=interrupted_dir, workers=workers)
        # Simulate the interruption: lose the last third of the store.
        path = interrupted_dir / "results.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        keep = len(lines) - max(1, len(lines) // 3)
        path.write_text("".join(lines[:keep]))

        resumed = run_campaign(jobs, store=interrupted_dir, workers=workers)
        assert len(resumed.executed) == len(lines) - keep
        assert resumed.hits == keep
        assert _estimates(resumed) == _estimates(full)

    def test_workers_do_not_change_results(self, tmp_path):
        jobs = _small_jobs()
        serial = run_campaign(jobs, store=tmp_path / "w1", workers=1)
        parallel = run_campaign(jobs, store=tmp_path / "w2", workers=2)
        assert _estimates(serial) == _estimates(parallel)

    def test_job_order_does_not_change_results(self, tmp_path):
        """Each job seeds from its own key: shuffling the grid (or
        running a subset first) cannot change any estimate."""
        jobs = _small_jobs()
        forward = run_campaign(jobs, store=tmp_path / "f")
        backward = run_campaign(list(reversed(jobs)), store=tmp_path / "b")
        assert _estimates(forward) == _estimates(backward)


class TestCompileCache:
    def test_dem_and_decoder_compile_once_per_config(self, tmp_path):
        cache = CompileCache()
        run_campaign(smoke_spec(), store=tmp_path / "s", cache=cache)
        # 1 code x 1 schedule x 1 p x 2 bases -> 2 DEMs, 2 decoders,
        # shared across both estimators (4 jobs).
        assert cache.stats["dem_misses"] == 2
        assert cache.stats["decoder_misses"] == 2
        assert cache.stats["dem_hits"] > 0

    def test_completed_campaign_skips_compilation(self, tmp_path):
        spec = smoke_spec()
        run_campaign(spec, store=tmp_path / "s")
        cache = CompileCache()
        report = run_campaign(spec, store=tmp_path / "s", cache=cache)
        assert report.executed == []
        assert cache.stats["dem_misses"] == 0
        assert cache.stats["decoder_misses"] == 0


class TestZeroRecompute:
    def test_second_invocation_never_samples(self, tmp_path, monkeypatch):
        jobs = _small_jobs()
        run_campaign(jobs, store=tmp_path / "s")

        def _boom(*args, **kwargs):
            raise AssertionError("sampling ran on a completed campaign")

        monkeypatch.setattr(campaign_mod, "execute_job", _boom)
        report = run_campaign(jobs, store=tmp_path / "s")
        assert report.executed == [] and report.hits == len(set(
            j.key() for j in jobs
        ))


class TestEarlyStopHonesty:
    def test_store_records_consumed_not_planned(self, tmp_path):
        job = CampaignJob(
            code="surface_d3",
            schedule="nz",
            basis="z",
            p=2e-2,
            shots=20_000,
            chunk_size=256,
            max_failures=10,
        )
        report = run_campaign([job], store=tmp_path / "s")
        result = report.record(job)["result"]
        est = RateEstimate.from_dict(result["estimate"])
        assert result["early_stopped"] is True
        assert result["consumed_shots"] == est.shots < result["planned_shots"]
        assert est.interval == wilson_interval(est.failures, est.shots)
        (row,) = export_rows(report.store, [job])
        assert row["shots"] == est.shots
        assert row["planned_shots"] == 20_000


# -- figure runners over the store ------------------------------------------


def _forbid_execution(monkeypatch):
    def _boom(*args, **kwargs):
        raise AssertionError("figure re-render sampled instead of using store")

    monkeypatch.setattr(campaign_mod, "execute_job", _boom)


class TestRunnersOverStore:
    def test_fig06_rerender_identical_zero_sampling(self, tmp_path, monkeypatch):
        kwargs = dict(p_values=(5e-3,), shots=640)
        first = fig06_schedules.run(store=tmp_path / "s", **kwargs).format_table()
        _forbid_execution(monkeypatch)
        second = fig06_schedules.run(store=tmp_path / "s", **kwargs).format_table()
        assert first == second

    def test_fig12_rerender_identical_zero_sampling(self, tmp_path, monkeypatch):
        kwargs = dict(
            codes=("surface_d3",),
            p_values=(3e-3,),
            shots=320,
            iterations=1,
            samples=5,
        )
        first = fig12_benchmarks.run(store=tmp_path / "s", **kwargs).format_table()
        _forbid_execution(monkeypatch)
        second = fig12_benchmarks.run(store=tmp_path / "s", **kwargs).format_table()
        assert first == second

    def test_fig14lowp_rerender_identical_zero_sampling(self, tmp_path, monkeypatch):
        kwargs = dict(
            codes=("surface_d3",),
            direct_shots=1024,
            max_strat_shots=4096,
            target_rel_halfwidth=0.5,
            deep_p=(1e-3,),
            deep=True,
        )
        first = fig14_lowp.run(store=tmp_path / "s", **kwargs).format_table()
        _forbid_execution(monkeypatch)
        second = fig14_lowp.run(store=tmp_path / "s", **kwargs).format_table()
        assert first == second


class TestLabeledRecords:
    def test_label_lives_on_envelope_not_in_hashed_payload(self, tmp_path):
        """key == job_key(record['job']) must hold for labeled records:
        display labels ride the record envelope, never the hash preimage."""
        job = CampaignJob(
            code="surface_d3", schedule="nz", basis="z", p=8e-3, shots=128
        )
        report = run_campaign(
            [job], store=tmp_path / "s", labels={job.key(): "pretty-name"}
        )
        record = report.record(job)
        assert record["label"] == "pretty-name"
        assert job_key(record["job"]) == record["key"] == job.key()
        assert CampaignJob.from_payload(record["job"]) == job
        (row,) = export_rows(report.store, [job])
        assert row["schedule"] == "pretty-name"


class TestSpecSerialization:
    def test_spec_json_roundtrip(self, tmp_path):
        spec = smoke_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_json_file(str(path))
        assert loaded == spec
        assert [j.key() for j in loaded.expand()] == [
            j.key() for j in spec.expand()
        ]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec fields"):
            CampaignSpec.from_dict(
                {"name": "x", "codes": [], "p_values": [], "wokers": 3}
            )
