"""Tests for DEM extraction: propagation rules, merging, provenance."""

import numpy as np
import pytest

from repro.circuits import Circuit, build_memory_experiment, nz_schedule, poor_schedule
from repro.codes import rotated_surface_code
from repro.noise import NoiseModel
from repro.sim import DemSampler, extract_dem


def single_error_circuit(pauli_gate_sequence):
    """One noisy qubit measured in Z, detector on the measurement."""
    c = Circuit()
    c.append("R", [0])
    for item in pauli_gate_sequence:
        c.append(*item)
    c.append("M", [0])
    c.append("DETECTOR", [0])
    return c


class TestPropagationRules:
    def test_x_before_measurement_flips_detector(self):
        c = single_error_circuit([("DEPOLARIZE1", [0], [0.3])])
        dem = extract_dem(c)
        # X and Y flip the Z measurement; Z does not -> they merge into one
        # mechanism with combined probability.
        assert dem.num_errors == 1
        p = 0.1  # each Pauli has probability 0.3/3
        assert dem.mechanisms[0].prob == pytest.approx(p * (1 - p) + p * (1 - p))

    def test_error_after_reset_is_cleared(self):
        c = Circuit()
        c.append("DEPOLARIZE1", [0], args=[0.3])
        c.append("R", [0])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = extract_dem(c)
        assert dem.num_errors == 0

    def test_x_propagates_control_to_target(self):
        """Paper §2.6: X_c -> X_c X_t."""
        c = Circuit()
        c.append("R", [0, 1])
        c.append("DEPOLARIZE1", [0], args=[0.3])  # X on control
        c.append("CNOT", [0, 1])
        c.append("M", [0, 1])
        c.append("DETECTOR", [0], label=("d0",))
        c.append("DETECTOR", [1], label=("d1",))
        dem = extract_dem(c)
        # X on qubit 0 flips both measurements; Z flips none; Y both.
        assert dem.num_errors == 1
        assert dem.mechanisms[0].detectors == (0, 1)

    def test_z_propagates_target_to_control(self):
        """Paper §2.6: Z_t -> Z_c Z_t, visible in X-basis measurements."""
        c = Circuit()
        c.append("RX", [0, 1])
        c.append("DEPOLARIZE1", [1], args=[0.3])
        c.append("CNOT", [0, 1])
        c.append("MX", [0, 1])
        c.append("DETECTOR", [0])
        c.append("DETECTOR", [1])
        dem = extract_dem(c)
        mechs = {m.detectors for m in dem.mechanisms}
        # Z (and Y, via its Z part) on the target spreads to the control;
        # a pure X on the target is invisible to X-basis measurements, so
        # the only signature is the two-detector one.
        assert mechs == {(0, 1)}

    def test_h_swaps_x_and_z(self):
        c = Circuit()
        c.append("R", [0])
        c.append("H", [0])
        c.append("DEPOLARIZE1", [0], args=[0.3])
        c.append("H", [0])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = extract_dem(c)
        # Between the H's, Z and Y flip the eventual Z measurement.
        assert dem.num_errors == 1
        sources = dem.mechanisms[0].sources
        paulis = {s.pauli for s in sources}
        assert paulis == {"Z0", "Y0"}


class TestMergingAndProvenance:
    def test_merge_combines_probabilities(self):
        c = Circuit()
        c.append("R", [0])
        c.append("DEPOLARIZE1", [0], args=[0.3])
        c.append("DEPOLARIZE1", [0], args=[0.3])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = extract_dem(c)
        assert dem.num_errors == 1
        assert len(dem.mechanisms[0].sources) == 4  # X,Y from both channels

    def test_no_merge_keeps_mechanisms_separate(self):
        c = Circuit()
        c.append("R", [0])
        c.append("DEPOLARIZE1", [0], args=[0.3])
        c.append("DEPOLARIZE1", [0], args=[0.3])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = extract_dem(c, merge=False)
        assert dem.num_errors == 4

    def test_cnot_labels_propagate_to_mechanisms(self):
        code = rotated_surface_code(3)
        exp = build_memory_experiment(code, nz_schedule(code), rounds=2)
        dem = extract_dem(NoiseModel(p=1e-3).apply(exp.circuit))
        cnot_sources = [
            s
            for m in dem.mechanisms
            for s in m.sources
            if s.label and s.label[0] == "cnot"
        ]
        assert cnot_sources
        # Labels carry (kind, stab, data qubit, round).
        _, kind, stab, q, rnd = cnot_sources[0].label
        assert kind in ("x", "z") and 0 <= q < code.n


class TestSurfaceCodeDem:
    @pytest.fixture(scope="class")
    def dem(self):
        code = rotated_surface_code(3)
        exp = build_memory_experiment(code, nz_schedule(code), rounds=3)
        return extract_dem(NoiseModel(p=1e-3).apply(exp.circuit))

    def test_no_undetectable_logicals(self, dem):
        assert dem.undetectable_logical_mechanisms() == []

    def test_graphlike_for_z_detectors(self, dem):
        """Every mechanism flips at most 2 same-type detectors (matchable)."""
        for m in dem.mechanisms:
            by_kind = {"x": 0, "z": 0}
            for d in m.detectors:
                by_kind[dem.detector_labels[d][1]] += 1
            assert by_kind["x"] <= 2 and by_kind["z"] <= 2

    def test_check_matrices_shapes(self, dem):
        h, l_mat = dem.check_matrices()
        assert h.shape == (dem.num_detectors, dem.num_errors)
        assert l_mat.shape == (1, dem.num_errors)
        assert l_mat.sum() > 0

    def test_poor_schedule_changes_dem(self):
        """Different CNOT orders give different circuit-level H (paper §2.7)."""
        code = rotated_surface_code(3)
        a = extract_dem(
            NoiseModel(p=1e-3).apply(
                build_memory_experiment(code, nz_schedule(code), rounds=2).circuit
            )
        )
        b = extract_dem(
            NoiseModel(p=1e-3).apply(
                build_memory_experiment(code, poor_schedule(code), rounds=2).circuit
            )
        )
        sig_a = {(m.detectors, m.observables) for m in a.mechanisms}
        sig_b = {(m.detectors, m.observables) for m in b.mechanisms}
        assert sig_a != sig_b


class TestSampler:
    def test_zero_noise_samples_zero(self):
        code = rotated_surface_code(3)
        exp = build_memory_experiment(code, nz_schedule(code), rounds=2)
        dem = extract_dem(NoiseModel(p=1e-3).apply(exp.circuit))
        # Zero out probabilities: no detection events.
        for m in dem.mechanisms:
            m.prob = 0.0
        batch = DemSampler(dem).sample(100, np.random.default_rng(0))
        assert not batch.detectors.any()
        assert not batch.observables.any()

    def test_sample_rates_match_probabilities(self):
        c = Circuit()
        c.append("R", [0])
        c.append("DEPOLARIZE1", [0], args=[0.3])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = extract_dem(c)
        batch = DemSampler(dem).sample(200_000, np.random.default_rng(0))
        expected = dem.mechanisms[0].prob
        assert batch.detectors.mean() == pytest.approx(expected, rel=0.05)

    def test_sample_errors_consistent_with_matrices(self):
        code = rotated_surface_code(3)
        exp = build_memory_experiment(code, nz_schedule(code), rounds=2)
        dem = extract_dem(NoiseModel(p=5e-3).apply(exp.circuit))
        sampler = DemSampler(dem)
        fires, batch = sampler.sample_errors(500, np.random.default_rng(1))
        h, l_mat = dem.check_matrices()
        det = np.asarray(fires.dot(h.T.tocsr()).todense()) % 2
        assert np.array_equal(det.astype(np.uint8), batch.detectors)
