"""Tests for analysis helpers: statistics and effective distance."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RateEstimate,
    lambda_factor,
    projected_logical_rate,
    rule_of_three_upper,
    wilson_interval,
    z_for_confidence,
)
from repro.analysis.deff import estimate_effective_distance
from repro.circuits import nz_schedule, poor_schedule
from repro.codes import rotated_surface_code


class TestWilson:
    def test_zero_shots(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(10, 100)
        assert lo < 0.1 < hi

    @given(st.integers(0, 50), st.integers(1, 1000))
    @settings(max_examples=50, deadline=None)
    def test_interval_bounds(self, failures, shots):
        failures = min(failures, shots)
        lo, hi = wilson_interval(failures, shots)
        assert 0.0 <= lo <= hi <= 1.0

    def test_narrows_with_shots(self):
        lo1, hi1 = wilson_interval(5, 50)
        lo2, hi2 = wilson_interval(500, 5000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_confidence_widens_interval(self):
        lo95, hi95 = wilson_interval(10, 100, confidence=0.95)
        lo99, hi99 = wilson_interval(10, 100, confidence=0.99)
        assert lo99 < lo95 and hi95 < hi99

    def test_z_for_confidence(self):
        assert z_for_confidence(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_for_confidence(0.99) == pytest.approx(2.575829, abs=1e-5)
        with pytest.raises(ValueError):
            z_for_confidence(1.0)

    def test_rule_of_three(self):
        # Classic approximation: upper ~ 3/n at 95%.
        assert rule_of_three_upper(1000) == pytest.approx(3.0 / 1000, rel=0.01)
        assert rule_of_three_upper(0) == 1.0
        # Exact: observing 0/n is exactly (1 - confidence)-likely at the bound.
        upper = rule_of_three_upper(50, confidence=0.9)
        assert (1 - upper) ** 50 == pytest.approx(0.1, rel=1e-9)


class TestRateEstimate:
    def test_rate(self):
        est = RateEstimate(5, 100)
        assert est.rate == 0.05

    def test_combine_with(self):
        a = RateEstimate(10, 100)
        b = RateEstimate(20, 100)
        combined = a.combine_with(b)
        assert isinstance(combined, RateEstimate)
        assert combined.rate == pytest.approx(1 - 0.9 * 0.8)
        assert combined.failures == 30
        assert combined.shots == 100

    def test_combine_with_propagates_interval(self):
        a = RateEstimate(10, 1000)
        b = RateEstimate(0, 1000)  # adds no failures, little width
        combined = a.combine_with(b)
        lo_a, hi_a = a.interval
        lo_c, hi_c = combined.interval
        assert lo_c < combined.rate < hi_c
        # Combining with a near-zero rate roughly preserves the width.
        assert (hi_c - lo_c) == pytest.approx(hi_a - lo_a, rel=0.35)

    def test_explicit_point_overrides_counts(self):
        est = RateEstimate(3, 100, point=1e-6, halfwidth=1e-7)
        assert est.rate == 1e-6
        assert est.interval == (9e-7, pytest.approx(1.1e-6))

    def test_with_confidence_rescales(self):
        est = RateEstimate(0, 0, point=1e-3, halfwidth=1e-4)
        wider = est.with_confidence(0.99)
        assert wider.halfwidth > est.halfwidth
        assert wider.rate == est.rate

    def test_zero_shots_rate(self):
        assert RateEstimate(0, 0).rate == 0.0


class TestScalingModel:
    def test_projected_rate(self):
        # P_L(d) = Lambda^{-(d+1)/2}
        assert projected_logical_rate(2.0, 3) == pytest.approx(0.25)
        assert projected_logical_rate(2.0, 5) == pytest.approx(0.125)

    def test_lambda_factor(self):
        assert lambda_factor(1e-3, 5e-4) == pytest.approx(2.0)
        assert math.isinf(lambda_factor(1e-3, 0.0))

    def test_consistency(self):
        lam = 3.0
        ratio = projected_logical_rate(lam, 5) / projected_logical_rate(lam, 7)
        assert ratio == pytest.approx(lam)


class TestEffectiveDistance:
    def test_nz_schedule_preserves_distance(self):
        code = rotated_surface_code(3)
        est = estimate_effective_distance(
            code, nz_schedule(code), samples=30, rng=np.random.default_rng(0)
        )
        assert est.deff == 3

    def test_poor_schedule_reduces_distance(self):
        code = rotated_surface_code(3)
        est = estimate_effective_distance(
            code, poor_schedule(code), samples=30, rng=np.random.default_rng(0)
        )
        assert est.deff == 2

    def test_weights_seen_are_sorted_unique(self):
        code = rotated_surface_code(3)
        est = estimate_effective_distance(
            code, nz_schedule(code), samples=20, rng=np.random.default_rng(1)
        )
        assert list(est.weights_seen) == sorted(set(est.weights_seen))


class TestSuppressionFit:
    def test_recovers_exact_lambda(self):
        from repro.analysis.stats import fit_suppression_factor

        lam = 2.5
        rates = {d: projected_logical_rate(lam, d) for d in (3, 5, 7, 9)}
        assert fit_suppression_factor(rates) == pytest.approx(lam, rel=1e-9)

    def test_tolerates_noise(self):
        from repro.analysis.stats import fit_suppression_factor

        rng = np.random.default_rng(0)
        lam = 3.0
        rates = {
            d: projected_logical_rate(lam, d) * float(rng.uniform(0.8, 1.2))
            for d in (3, 5, 7, 9, 11)
        }
        assert fit_suppression_factor(rates) == pytest.approx(lam, rel=0.2)

    def test_rejects_degenerate_input(self):
        from repro.analysis.stats import fit_suppression_factor

        with pytest.raises(ValueError):
            fit_suppression_factor({3: 1e-3})
        with pytest.raises(ValueError):
            fit_suppression_factor({3: 0.0, 5: 0.0})
