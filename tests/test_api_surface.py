"""Pins the ``repro.api`` compatibility contract.

The facade exists so internals can churn without breaking user code;
that only holds if its surface is *tested*.  These tests pin the
``__all__`` list, the call signatures of every facade function, and the
legacy-keyword shim of :class:`ExecutionConfig` — renaming a parameter
or dropping a name fails here before it fails downstream.
"""

import inspect
import warnings

import numpy as np
import pytest

import repro.api as api
from repro.experiments import shotrunner
from repro.experiments.shotrunner import ExecutionConfig, resolve_execution


def params(fn):
    return list(inspect.signature(fn).parameters)


class TestSurface:
    def test_all_is_pinned(self):
        assert sorted(api.__all__) == [
            "CampaignJob",
            "CampaignSpec",
            "ExecutionConfig",
            "ResultStore",
            "Session",
            "evaluate",
            "serve",
            "smoke_spec",
            "sweep",
            "worker",
        ]

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_evaluate_signature(self):
        assert params(api.evaluate) == [
            "code",
            "schedule",
            "p",
            "shots",
            "basis",
            "decoder",
            "idle_strength",
            "noise",
            "rounds",
            "config",
        ]

    def test_sweep_signature(self):
        assert params(api.sweep) == [
            "spec",
            "store",
            "config",
            "labels",
            "progress",
        ]

    def test_serve_signature(self):
        assert params(api.serve) == [
            "spec",
            "store",
            "n_workers",
            "ttl",
            "poll",
            "wait",
            "timeout",
            "labels",
            "config",
            "progress",
        ]

    def test_worker_signature(self):
        assert params(api.worker) == [
            "store",
            "worker_id",
            "ttl",
            "poll",
            "once",
            "max_jobs",
            "timeout",
            "config",
            "progress",
        ]

    def test_session_surface(self):
        assert params(api.Session.__init__) == ["self", "store", "config", "cache"]
        for method in (
            "reload",
            "evaluate",
            "sweep",
            "serve",
            "query",
            "compact",
            "telemetry",
        ):
            assert callable(getattr(api.Session, method))

    def test_execution_config_fields(self):
        assert [f for f in ExecutionConfig.__dataclass_fields__] == [
            "workers",
            "chunk_shots",
            "max_failures",
            "streaming",
            "dense_reference",
            "sampler",
            "dec",
            "syndrome_cache_dir",
            "syndrome_writer_tag",
        ]
        cfg = ExecutionConfig()
        assert cfg.workers == 1 and cfg.chunk_shots == 5_000
        assert cfg.replace(workers=3).workers == 3
        assert cfg.workers == 1  # frozen: replace returns a copy


class TestSessionBehavior:
    def test_session_shares_one_store_handle(self, tmp_path):
        sess = api.Session(store=tmp_path / "s")
        handle = sess.store
        sess.sweep(api.smoke_spec())
        assert sess.store is handle  # never reopened
        assert len(sess.query(estimator="direct")) == 2
        # A second session (fresh parse) sees the same records.
        assert len(api.Session(store=tmp_path / "s").query()) == 4

    def test_session_accepts_open_store(self, tmp_path):
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path / "s")
        assert api.Session(store=store).store is store

    def test_in_memory_session_cannot_serve(self):
        with pytest.raises(ValueError):
            api.Session().serve(api.smoke_spec(), n_workers=1)

    def test_in_memory_session_has_no_telemetry(self):
        with pytest.raises(ValueError):
            api.Session().telemetry()

    def test_on_disk_session_telemetry_shape(self, tmp_path):
        sess = api.Session(store=tmp_path / "s")
        summary = sess.telemetry()  # empty sidecar dir is a valid answer
        assert set(summary) >= {"dir", "stages", "metrics", "heartbeats"}
        assert summary["stages"] == {}

    def test_evaluate_single_basis(self):
        ler = api.evaluate("surface_d3", "nz", p=3e-3, shots=256, basis="z")
        assert list(ler.per_basis) == ["z"]


class TestLegacyKeywordShim:
    def setup_method(self):
        shotrunner._legacy_warned.clear()

    def test_legacy_keywords_warn_once_per_entry_point(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_execution("ep_a", None, {"workers": 2})
            resolve_execution("ep_a", None, {"workers": 3})
            resolve_execution("ep_b", None, {"workers": 2})
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2  # once per entry point, not per call

    def test_legacy_keywords_map_onto_config(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cfg = resolve_execution(
                "ep_map",
                None,
                {"workers": 4, "chunk_size": 100, "max_failures": 7},
            )
        assert (cfg.workers, cfg.chunk_shots, cfg.max_failures) == (4, 100, 7)

    def test_unknown_keyword_is_a_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            resolve_execution("ep_bad", None, {"wrokers": 2})

    def test_config_and_legacy_keywords_are_equivalent(self, tmp_path):
        dem = _smoke_dem()
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        new = shotrunner.run_shot_chunks(
            dem,
            shots=256,
            rng=rng_a,
            config=ExecutionConfig(chunk_shots=64, max_failures=None),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            old = shotrunner.run_shot_chunks(
                dem, shots=256, rng=rng_b, chunk_size=64
            )
        assert new.to_dict() == old.to_dict()

    def test_explicit_config_wins_over_defaults(self):
        cfg = resolve_execution(
            "ep_cfg", ExecutionConfig(workers=5), {}
        )
        assert cfg.workers == 5


def _smoke_dem():
    from repro.codes import rotated_surface_code
    from repro.circuits import nz_schedule
    from repro.decoders.metrics import dem_for
    from repro.noise.model import NoiseModel

    code = rotated_surface_code(3)
    return dem_for(code, nz_schedule(code), NoiseModel(p=3e-3), basis="z")
