"""Additional coverage: edge cases across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    build_memory_experiment,
    coloration_schedule,
    nz_schedule,
)
from repro.codes import (
    cyclic_group,
    hypergraph_product,
    random_regular_code,
    repetition_code,
    rotated_surface_code,
)
from repro.codes.groups import RingMatrix
from repro.core.decoding_graph import Subgraph
from repro.core.minweight import solve_min_weight_logical
from repro.decoders import MatchingDecoder, detector_subset_for_basis
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel
from repro.sim import DemSampler, extract_dem, verify_deterministic_detectors


class TestRingMatrixEdges:
    def test_kron_rejects_general_products(self):
        g = cyclic_group(3)
        m = RingMatrix.from_monomials(g, [[1]])
        other = RingMatrix.from_monomials(g, [[2]])
        with pytest.raises(ValueError, match="identity-patterned"):
            m.kron(other)

    def test_lift_left_is_circulant_for_cyclic(self):
        g = cyclic_group(4)
        m = RingMatrix.from_monomials(g, [[1]])  # the generator x
        lifted = m.lift("left")
        # L(x)[x*h, h] = 1: a cyclic shift matrix.
        expected = np.roll(np.eye(4, dtype=np.uint8), 1, axis=0)
        assert np.array_equal(lifted, expected)

    def test_ragged_matrix_rejected(self):
        g = cyclic_group(2)
        with pytest.raises(ValueError, match="ragged"):
            RingMatrix(g, [[frozenset()], [frozenset(), frozenset()]])


class TestSubgraphSolverEdges:
    def test_weight1_undetectable_logical(self):
        """A single undetected logical error column short-circuits."""
        h = np.zeros((1, 2), dtype=np.uint8)
        h[0, 1] = 1
        l_mat = np.array([[1, 0]], dtype=np.uint8)
        sub = Subgraph(detectors=[0], errors=[0, 1], h=h, l=l_mat)
        sol = solve_min_weight_logical(sub, method="graphlike")
        assert sol is not None and sol.weight == 1

    def test_no_logical_errors_returns_none(self):
        h = np.array([[1, 1]], dtype=np.uint8)
        l_mat = np.zeros((1, 2), dtype=np.uint8)
        sub = Subgraph(detectors=[0], errors=[0, 1], h=h, l=l_mat)
        assert solve_min_weight_logical(sub, method="graphlike") is None

    def test_two_boundary_edges_form_logical(self):
        """Two single-detector errors that differ on L: classic weight-2
        ambiguity through the boundary."""
        h = np.array([[1, 1]], dtype=np.uint8)
        l_mat = np.array([[1, 0]], dtype=np.uint8)
        sub = Subgraph(detectors=[0], errors=[0, 1], h=h, l=l_mat)
        sol = solve_min_weight_logical(sub, method="graphlike")
        assert sol is not None and sol.weight == 2


class TestMatchingEdges:
    def test_odd_defects_use_boundary(self):
        code = rotated_surface_code(3)
        dem = dem_for(code, nz_schedule(code), NoiseModel(p=2e-3), rounds=2)
        subset = detector_subset_for_basis(dem, "z")
        dec = MatchingDecoder(dem, subset)
        det = np.zeros((1, dem.num_detectors), dtype=np.uint8)
        det[0, subset[0]] = 1  # a single defect must match to boundary
        out = dec.decode_batch(det)
        assert out.shape == (1, 1)

    def test_cache_hits_are_consistent(self):
        code = rotated_surface_code(3)
        dem = dem_for(code, nz_schedule(code), NoiseModel(p=2e-3), rounds=2)
        dec = MatchingDecoder(dem, detector_subset_for_basis(dem, "z"))
        batch = DemSampler(dem).sample(300, np.random.default_rng(0))
        a = dec.decode_batch(batch.detectors)
        b = dec.decode_batch(batch.detectors)
        assert np.array_equal(a, b)


class TestSamplerDeterminism:
    def test_same_seed_same_samples(self):
        code = rotated_surface_code(3)
        dem = dem_for(code, nz_schedule(code), NoiseModel(p=3e-3), rounds=2)
        s = DemSampler(dem)
        a = s.sample(500, np.random.default_rng(42))
        b = s.sample(500, np.random.default_rng(42))
        assert np.array_equal(a.detectors, b.detectors)
        assert np.array_equal(a.observables, b.observables)


class TestDemForDefaults:
    def test_rounds_default_to_distance(self):
        code = rotated_surface_code(3)
        dem = dem_for(code, nz_schedule(code), NoiseModel(p=1e-3))
        # 3 rounds of a memory-z experiment: z(4) + 2*(8) + final z(4).
        assert dem.num_detectors == 4 + 2 * 8 + 4


class TestPauliChannelDem:
    def test_pauli_channel_mechanisms(self):
        c = Circuit()
        c.append("R", [0])
        c.append("PAULI_CHANNEL_1", [0], args=(0.1, 0.0, 0.05))
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = extract_dem(c)
        # Only the X mechanism flips the Z measurement (py=0, Z invisible).
        assert dem.num_errors == 1
        assert dem.mechanisms[0].prob == pytest.approx(0.1)


class TestRandomHgpCodesEndToEnd:
    @given(st.integers(0, 30))
    @settings(max_examples=6, deadline=None)
    def test_random_hgp_pipeline(self, seed):
        """Random hypergraph products run the whole pipeline: coloring,
        building, and noiseless determinism."""
        rng = np.random.default_rng(seed)
        c1 = random_regular_code(5, 3, 3, rng)
        c2 = repetition_code(3)
        code = hypergraph_product(c1, c2)
        if code.k == 0:
            return  # no logical qubits: nothing to protect
        sched = coloration_schedule(code)
        assert sched.is_valid()
        exp = build_memory_experiment(code, sched, rounds=2)
        assert verify_deterministic_detectors(exp.circuit, trials=2)
