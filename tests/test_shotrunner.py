"""Determinism and chunking tests for the parallel shot runner.

The contract under test: with the same ``SeedSequence`` root, the
runner's output — including streaming order and ``max_failures`` early
stopping — is independent of the worker count.  The same property is
pinned for :mod:`repro.core.parallel`, the other process fan-out in the
codebase.
"""

import threading
import time

import numpy as np
import pytest

from repro.analysis.stats import wilson_interval
from repro.circuits import nz_schedule
from repro.codes import rotated_surface_code
from repro.core import DecodingGraph
from repro.core.parallel import sample_and_solve
from repro.decoders.metrics import dem_for, estimate_logical_error_rate, make_decoder
from repro.experiments.shotrunner import (
    ExecutionConfig,
    estimate_logical_error_rate_chunked,
    plan_chunks,
    run_shot_chunks,
    spawn_chunk_seeds,
)
from repro.noise import NoiseModel
from repro.sim.bitbatch import BitSampleBatch
from repro.sim.sampler import DemSampler


@pytest.fixture(scope="module")
def d3_code():
    return rotated_surface_code(3)


@pytest.fixture(scope="module")
def d3_dem(d3_code):
    return dem_for(d3_code, nz_schedule(d3_code), NoiseModel(p=3e-3), basis="z")


@pytest.fixture(scope="module")
def noisy_dem(d3_code):
    """High error rate, so max_failures early stopping actually triggers."""
    return dem_for(d3_code, nz_schedule(d3_code), NoiseModel(p=2e-2), basis="z")


class TestPlanChunks:
    def test_covers_all_shots(self):
        assert sum(plan_chunks(10_000, 3000)) == 10_000

    def test_word_alignment(self):
        sizes = plan_chunks(10_000, 3000)
        assert all(s % 64 == 0 for s in sizes[:-1])

    def test_small_request_is_one_chunk(self):
        assert plan_chunks(100, 5000) == [100]

    def test_zero_shots(self):
        assert plan_chunks(0, 5000) == []

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            plan_chunks(100, 0)


class TestSeedSpawning:
    def test_deterministic_and_distinct(self):
        a = spawn_chunk_seeds(np.random.default_rng(42), 4)
        b = spawn_chunk_seeds(np.random.default_rng(42), 4)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        states = {tuple(s.generate_state(2)) for s in a}
        assert len(states) == 4

    def test_consecutive_calls_differ(self):
        rng = np.random.default_rng(42)
        first = spawn_chunk_seeds(rng, 2)
        second = spawn_chunk_seeds(rng, 2)
        assert [s.spawn_key for s in first] != [s.spawn_key for s in second]


class _NoSeedSeq(np.random.PCG64):
    """A bit generator that hides its seed sequence — the shape of
    third-party generators the fallback path exists for."""

    @property
    def seed_seq(self):  # numpy's is a plain attribute-backed property
        return None


class TestSeedSpawningFallback:
    """Generators without ``seed_seq`` must not have their stream
    consumed (the old fallback drew from the rng, silently perturbing
    every draw the caller made afterwards)."""

    def _rng(self, seed=42):
        return np.random.Generator(_NoSeedSeq(seed))

    def test_state_untouched_and_stream_unperturbed(self):
        rng = self._rng()
        control = self._rng()
        spawn_chunk_seeds(rng, 8)
        assert rng.bit_generator.state == control.bit_generator.state
        assert np.array_equal(rng.random(16), control.random(16))

    def test_deterministic_and_distinct(self):
        a = spawn_chunk_seeds(self._rng(), 4)
        b = spawn_chunk_seeds(self._rng(), 4)
        states_a = [tuple(s.generate_state(2)) for s in a]
        states_b = [tuple(s.generate_state(2)) for s in b]
        assert states_a == states_b
        assert len(set(states_a)) == 4

    def test_children_track_generator_state(self):
        rng = self._rng()
        first = spawn_chunk_seeds(rng, 2)
        # Documented fallback semantics: un-advanced generator, same
        # children (there is no spawn counter to bump without drawing).
        again = spawn_chunk_seeds(rng, 2)
        assert [tuple(s.generate_state(2)) for s in first] == [
            tuple(s.generate_state(2)) for s in again
        ]
        rng.random()  # caller advances the stream → new root
        moved = spawn_chunk_seeds(rng, 2)
        assert [tuple(s.generate_state(2)) for s in first] != [
            tuple(s.generate_state(2)) for s in moved
        ]

    def test_runner_reproducible_with_fallback_rng(self, d3_dem):
        runs = [
            run_shot_chunks(
                d3_dem, shots=640, rng=self._rng(7), chunk_size=256
            )
            for _ in range(2)
        ]
        assert (runs[0].failures, runs[0].shots) == (
            runs[1].failures,
            runs[1].shots,
        )


class TestTailWordBoundaries:
    """Shot counts straddling the 64-bit word boundary (satellite
    regression: garbage tail bits in the last word must never leak into
    failure counts)."""

    @pytest.mark.parametrize("shots", [63, 64, 65, 127, 128, 129])
    def test_packed_equals_dense_through_runner(self, noisy_dem, shots):
        counts = {}
        for dense in (False, True):
            est = run_shot_chunks(
                noisy_dem,
                shots=shots,
                rng=np.random.default_rng(31),
                chunk_size=64,
                dense_reference=dense,
            )
            counts[dense] = (est.failures, est.shots)
        assert counts[False] == counts[True]
        assert counts[False][1] == shots

    def test_failures_bounded_by_shots(self, noisy_dem):
        # With garbage tail bits, 63 shots could report up to 64
        # failures; the count must respect the true shot count.
        est = run_shot_chunks(
            noisy_dem, shots=63, rng=np.random.default_rng(2), chunk_size=64
        )
        assert 0 <= est.failures <= 63


class TestStreaming:
    """The prefetch overlap must be invisible: bit-identical results,
    in-order chunk streaming, and the same early-stop point."""

    def test_streaming_matches_sequential(self, d3_dem):
        results = {}
        for streaming in (False, True):
            est = run_shot_chunks(
                d3_dem,
                shots=2000,
                rng=np.random.default_rng(123),
                chunk_size=256,
                streaming=streaming,
            )
            results[streaming] = (est.failures, est.shots)
        assert results[False] == results[True]

    def test_streaming_chunks_in_order(self, d3_dem):
        seen = []
        est = run_shot_chunks(
            d3_dem,
            shots=1500,
            rng=np.random.default_rng(5),
            chunk_size=256,
            streaming=True,
            on_chunk=seen.append,
        )
        assert [c.index for c in seen] == list(range(len(seen)))
        assert sum(c.shots for c in seen) == est.shots == 1500

    def test_streaming_early_stop_identical(self, noisy_dem):
        results = {}
        for streaming in (False, True):
            est = run_shot_chunks(
                noisy_dem,
                shots=20_000,
                rng=np.random.default_rng(7),
                chunk_size=256,
                max_failures=10,
                streaming=streaming,
            )
            results[streaming] = (est.failures, est.shots)
        assert results[False] == results[True]
        assert results[True][1] < 20_000


class _GatedSampler:
    """Stub sampler: the first chunk samples instantly, every later one
    blocks on a gate — stands in for a slow prefetch in flight."""

    def __init__(self, gate: threading.Event):
        self.gate = gate
        self.calls = 0

    def sample_packed(self, shots: int, rng) -> BitSampleBatch:
        self.calls += 1
        if self.calls > 1:
            # Self-releases eventually so a regression can't hang the
            # whole test run — the assertion threshold is far smaller.
            self.gate.wait(timeout=20.0)
        nwords = (shots + 63) // 64
        return BitSampleBatch(
            detectors=np.zeros((1, nwords), dtype=np.uint64),
            observables=np.zeros((1, nwords), dtype=np.uint64),
            shots=shots,
        )


class _AllFailDecoder:
    """Every shot fails: trips max_failures on the first chunk."""

    def count_failures_packed(self, batch: BitSampleBatch) -> int:
        return batch.shots


class _RaisingDecoder:
    def count_failures_packed(self, batch: BitSampleBatch) -> int:
        raise RuntimeError("decode blew up")


class TestPrefetchShutdown:
    """An early exit from the streaming loop must not wait out the
    in-flight prefetch sample (the old executor context exit did)."""

    def test_early_stop_returns_without_waiting_for_prefetch(self, d3_dem):
        gate = threading.Event()
        sampler = _GatedSampler(gate)
        cfg = ExecutionConfig(
            streaming=True,
            chunk_shots=64,
            max_failures=1,
            sampler=sampler,
            dec=_AllFailDecoder(),
        )
        try:
            t0 = time.perf_counter()
            est = run_shot_chunks(d3_dem, shots=192, config=cfg)
            elapsed = time.perf_counter() - t0
        finally:
            gate.set()
        assert elapsed < 5.0
        assert (est.failures, est.shots) == (64, 64)

    def test_decode_exception_returns_without_waiting_for_prefetch(
        self, d3_dem
    ):
        gate = threading.Event()
        sampler = _GatedSampler(gate)
        cfg = ExecutionConfig(
            streaming=True,
            chunk_shots=64,
            sampler=sampler,
            dec=_RaisingDecoder(),
        )
        try:
            t0 = time.perf_counter()
            with pytest.raises(RuntimeError, match="decode blew up"):
                run_shot_chunks(d3_dem, shots=192, config=cfg)
            elapsed = time.perf_counter() - t0
        finally:
            gate.set()
        assert elapsed < 5.0


class TestRunnerDeterminism:
    def test_workers_1_vs_4_identical(self, d3_dem):
        results = {}
        for workers in (1, 4):
            est = run_shot_chunks(
                d3_dem,
                shots=4000,
                rng=np.random.default_rng(123),
                chunk_size=640,
                workers=workers,
            )
            results[workers] = (est.failures, est.shots)
        assert results[1] == results[4]
        assert results[1][1] == 4000

    def test_streams_chunks_in_order(self, d3_dem):
        seen = []
        est = run_shot_chunks(
            d3_dem,
            shots=2000,
            rng=np.random.default_rng(5),
            chunk_size=512,
            workers=2,
            on_chunk=seen.append,
        )
        assert [c.index for c in seen] == list(range(len(seen)))
        assert sum(c.shots for c in seen) == est.shots == 2000
        assert sum(c.failures for c in seen) == est.failures

    def test_early_stop_worker_independent(self, noisy_dem):
        results = {}
        for workers in (1, 3):
            est = run_shot_chunks(
                noisy_dem,
                shots=20_000,
                rng=np.random.default_rng(7),
                chunk_size=256,
                workers=workers,
                max_failures=10,
            )
            results[workers] = (est.failures, est.shots)
        assert results[1] == results[3]
        assert results[1][0] >= 10
        assert results[1][1] < 20_000

    def test_full_pipeline_workers_match(self, d3_code):
        rates = {}
        for workers in (1, 2):
            ler = estimate_logical_error_rate_chunked(
                d3_code,
                nz_schedule(d3_code),
                p=2e-3,
                shots=2000,
                chunk_size=512,
                rng=np.random.default_rng(0),
                workers=workers,
            )
            rates[workers] = (
                ler.rate,
                ler.shots,
                {b: r.estimate.failures for b, r in ler.per_basis.items()},
            )
        assert rates[1] == rates[2]

    def test_dense_reference_matches_packed(self, d3_dem):
        """The packed LER loop and the pinned dense-decode path are the
        same estimator — identical failure counts, chunk for chunk."""
        runs = {}
        for dense in (False, True):
            est = run_shot_chunks(
                d3_dem,
                shots=3000,
                rng=np.random.default_rng(17),
                chunk_size=640,
                dense_reference=dense,
            )
            runs[dense] = (est.failures, est.shots)
        assert runs[False] == runs[True]

    def test_dense_reference_matches_packed_across_workers(self, d3_dem):
        est_packed = run_shot_chunks(
            d3_dem,
            shots=2000,
            rng=np.random.default_rng(23),
            chunk_size=512,
            workers=2,
        )
        est_dense = run_shot_chunks(
            d3_dem,
            shots=2000,
            rng=np.random.default_rng(23),
            chunk_size=512,
            workers=2,
            dense_reference=True,
        )
        assert (est_packed.failures, est_packed.shots) == (
            est_dense.failures,
            est_dense.shots,
        )

    def test_injected_sampler_decoder_identical(self, d3_dem):
        """A campaign compile cache injecting sampler/decoder is pure
        reuse — bit-identical to the build-per-call path."""
        fresh = run_shot_chunks(
            d3_dem, shots=1000, rng=np.random.default_rng(9), chunk_size=256
        )
        injected = run_shot_chunks(
            d3_dem,
            shots=1000,
            rng=np.random.default_rng(9),
            chunk_size=256,
            sampler=DemSampler(d3_dem),
            dec=make_decoder(d3_dem, "z", "auto"),
        )
        assert (fresh.failures, fresh.shots) == (injected.failures, injected.shots)

    def test_metrics_wrapper_delegates(self, d3_code):
        """The decoders.metrics entry point is the same engine."""
        via_metrics = estimate_logical_error_rate(
            d3_code,
            nz_schedule(d3_code),
            p=2e-3,
            shots=1500,
            rng=np.random.default_rng(3),
            batch_size=500,
        )
        via_runner = estimate_logical_error_rate_chunked(
            d3_code,
            nz_schedule(d3_code),
            p=2e-3,
            shots=1500,
            rng=np.random.default_rng(3),
            chunk_size=500,
        )
        assert via_metrics.rate == via_runner.rate
        assert via_metrics.shots == via_runner.shots


class TestEarlyStopAccounting:
    """max_failures early stop must report exactly the shots consumed.

    A campaign stores the returned estimate verbatim: if the runner
    reported the planned budget instead of the accounted chunks, stored
    rates and Wilson CI widths would be silently wrong.  Pinned for
    both worker paths (inline and process pool).
    """

    @pytest.mark.parametrize("workers", [1, 2])
    def test_shots_equal_accounted_chunks_not_budget(self, noisy_dem, workers):
        planned = 20_000
        seen = []
        est = run_shot_chunks(
            noisy_dem,
            shots=planned,
            rng=np.random.default_rng(7),
            chunk_size=256,
            workers=workers,
            max_failures=10,
            on_chunk=seen.append,
        )
        assert est.shots == sum(c.shots for c in seen)
        assert est.shots < planned
        assert est.failures == sum(c.failures for c in seen)
        assert est.failures >= 10
        # The interval is computed from real consumption, not the plan.
        assert est.interval == wilson_interval(est.failures, est.shots)

    def test_no_early_stop_reports_full_budget(self, d3_dem):
        est = run_shot_chunks(
            d3_dem,
            shots=1280,
            rng=np.random.default_rng(1),
            chunk_size=256,
            max_failures=10_000,
        )
        assert est.shots == 1280


class TestCoreParallelDeterminism:
    def _canonical(self, results):
        return [
            (sub.detectors, sub.errors, sol.weight, sorted(sol.error_columns))
            for sub, sol in results
        ]

    def test_workers_1_vs_2_identical(self, d3_dem):
        graph = DecodingGraph(d3_dem)
        runs = {}
        for workers in (1, 2):
            out = sample_and_solve(
                graph, samples=4, base_seed=11, max_errors=30, workers=workers
            )
            runs[workers] = self._canonical(out)
        assert runs[1] == runs[2]
        assert runs[1]  # the seeds above do find ambiguous subgraphs
