"""Packed-native decoding must be bit-identical to the dense reference.

Three layers of cross-checks, in the spirit of the TransForm-style
litmus-test methodology: a hypothesis property test over random DEMs and
word-boundary shot counts, randomized checks on real circuit-level DEMs
for all three decoders, and the degenerate ``num_detectors == 0`` edge
case that used to crash BP+OSD and must now count failures exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, coloration_schedule, nz_schedule
from repro.codes import load_benchmark_code, rotated_surface_code
from repro.decoders import (
    BpOsdDecoder,
    LookupDecoder,
    MatchingDecoder,
    detector_subset_for_basis,
)
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel
from repro.sim import DemSampler, extract_dem
from repro.sim.bitbatch import unpack_shots
from repro.sim.dem import DetectorErrorModel, ErrorMechanism


def assert_packed_matches_dense(dem, decoder, shots, rng):
    """The contract: decode_batch_packed ≡ decode_batch, bit for bit."""
    batch = DemSampler(dem).sample_packed(shots, rng)
    want = decoder.decode_batch(batch.detectors_dense())
    predicted = decoder.decode_batch_packed(batch)
    got = unpack_shots(predicted.observables, shots)
    assert got.shape == want.shape
    assert np.array_equal(got, want)
    # Packed prediction words must keep the tail-bit invariant, or the
    # popcount in count_failures_packed would drift.
    assert predicted.shots == shots
    tail = shots % 64
    if tail:
        mask = ~((np.uint64(1) << np.uint64(tail)) - np.uint64(1))
        assert not (predicted.observables[:, -1] & mask).any()
    assert decoder.count_failures_packed(batch) == decoder.count_failures_dense(
        batch
    )


# -- hypothesis property test -------------------------------------------------


@st.composite
def random_dems(draw):
    """Small random DEMs that every decoder family accepts.

    Graph-like (each mechanism flips <= 2 detectors, so MatchingDecoder
    works), every detector covered (BpOsdDecoder's requirement), and few
    enough mechanisms for exact lookup.
    """
    num_detectors = draw(st.integers(min_value=1, max_value=5))
    num_observables = draw(st.integers(min_value=1, max_value=2))
    num_extra = draw(st.integers(min_value=1, max_value=6))
    mechanisms = []
    # Cover every detector with a single-detector mechanism.
    for d in range(num_detectors):
        prob = draw(st.floats(min_value=0.01, max_value=0.3))
        obs = draw(st.sets(st.integers(0, num_observables - 1), max_size=1))
        mechanisms.append(
            ErrorMechanism(
                prob=prob,
                detectors=(d,),
                observables=tuple(sorted(obs)),
                sources=(),
            )
        )
    for _ in range(num_extra):
        prob = draw(st.floats(min_value=0.01, max_value=0.3))
        dets = draw(
            st.sets(st.integers(0, num_detectors - 1), min_size=0, max_size=2)
        )
        obs = draw(st.sets(st.integers(0, num_observables - 1), max_size=1))
        mechanisms.append(
            ErrorMechanism(
                prob=prob,
                detectors=tuple(sorted(dets)),
                observables=tuple(sorted(obs)),
                sources=(),
            )
        )
    return DetectorErrorModel(
        mechanisms=mechanisms,
        num_detectors=num_detectors,
        num_observables=num_observables,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    dem=random_dems(),
    shots=st.sampled_from([1, 63, 64, 65, 200]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_packed_equals_dense_property(dem, shots, seed):
    """All three decoder families agree with their dense selves on random
    DEMs, including shot counts straddling the 64-bit word boundary."""
    rng = np.random.default_rng(seed)
    decoders = [
        LookupDecoder(dem),
        MatchingDecoder(dem),
        BpOsdDecoder(dem),
    ]
    for dec in decoders:
        assert_packed_matches_dense(
            dem, dec, shots, np.random.default_rng(rng.integers(2**63))
        )


# -- randomized cross-checks on real DEMs -------------------------------------


@pytest.fixture(scope="module")
def surface_dem():
    code = rotated_surface_code(3)
    return dem_for(code, nz_schedule(code), NoiseModel(p=3e-3), basis="z", rounds=3)


@pytest.fixture(scope="module")
def lp_dem():
    code = load_benchmark_code("lp39")
    return dem_for(
        code, coloration_schedule(code), NoiseModel(p=1e-3), basis="z", rounds=2
    )


@pytest.mark.parametrize("shots", [1, 63, 64, 65, 2000])
def test_matching_packed_equals_dense_surface(surface_dem, shots):
    dec = MatchingDecoder(
        surface_dem, detector_subset_for_basis(surface_dem, "z")
    )
    assert_packed_matches_dense(surface_dem, dec, shots, np.random.default_rng(shots))


@pytest.mark.parametrize("shots", [1, 63, 64, 65, 500])
def test_bposd_packed_equals_dense_lp39(lp_dem, shots):
    dec = BpOsdDecoder(lp_dem)
    assert_packed_matches_dense(lp_dem, dec, shots, np.random.default_rng(shots))


def test_lookup_packed_equals_dense_tiny():
    c = Circuit()
    c.append("R", [0, 1, 2])
    c.append("DEPOLARIZE1", [0, 1, 2], args=[0.05])
    c.append("CNOT", [0, 2])
    c.append("CNOT", [1, 2])
    c.append("M", [0, 1, 2])
    c.append("DETECTOR", [2])
    c.append("OBSERVABLE_INCLUDE", [0], args=[0])
    dem = extract_dem(c)
    dec = LookupDecoder(dem)
    for shots in (1, 63, 64, 65, 3000):
        assert_packed_matches_dense(dem, dec, shots, np.random.default_rng(shots))


def test_matching_packed_reuses_cache_across_batches(surface_dem):
    """Repeated packed decodes are consistent (warm-cache path)."""
    dec = MatchingDecoder(
        surface_dem, detector_subset_for_basis(surface_dem, "z")
    )
    batch = DemSampler(surface_dem).sample_packed(1000, np.random.default_rng(7))
    first = dec.decode_batch_packed(batch).observables
    second = dec.decode_batch_packed(batch).observables
    assert np.array_equal(first, second)
    assert_packed_matches_dense(surface_dem, dec, 1000, np.random.default_rng(7))


# -- degenerate empty-detector DEMs ------------------------------------------


def _empty_detector_dem(prob: float = 0.49) -> DetectorErrorModel:
    """A DEM whose single mechanism flips an observable but no detector."""
    return DetectorErrorModel(
        mechanisms=[
            ErrorMechanism(prob=prob, detectors=(), observables=(0,), sources=())
        ],
        num_detectors=0,
        num_observables=1,
    )


@pytest.mark.parametrize(
    "make",
    [LookupDecoder, MatchingDecoder, BpOsdDecoder],
    ids=["lookup", "matching", "bposd"],
)
@pytest.mark.parametrize("shots", [1, 63, 64, 65, 100])
def test_empty_detector_dem_counts_exactly(make, shots):
    """num_detectors == 0 batches must decode and count, not crash or
    miscount (BP+OSD used to die in its segment reductions here)."""
    dem = _empty_detector_dem()
    dec = make(dem)
    batch = DemSampler(dem).sample_packed(shots, np.random.default_rng(shots))
    dense = batch.to_dense()
    want = int(
        (dec.decode_batch(dense.detectors) != dense.observables).any(axis=1).sum()
    )
    assert dec.count_failures_packed(batch) == want
    assert dec.count_failures_dense(batch) == want


def test_empty_detector_dem_nonzero_prediction_broadcasts():
    """An MLE decoder may predict a flip for the empty syndrome; the
    packed broadcast must honor it (and keep tail bits zero)."""
    dem = _empty_detector_dem(prob=0.6)  # flip is now the likelier outcome

    class ConstantDecoder(LookupDecoder):
        def decode_batch(self, detectors):
            out = np.ones((detectors.shape[0], 1), dtype=np.uint8)
            return out

    dec = ConstantDecoder(dem)
    shots = 70
    batch = DemSampler(dem).sample_packed(shots, np.random.default_rng(3))
    predicted = dec.decode_batch_packed(batch)
    got = unpack_shots(predicted.observables, shots)
    assert got.all()
    tail_mask = ~((np.uint64(1) << np.uint64(shots % 64)) - np.uint64(1))
    assert not (predicted.observables[:, -1] & tail_mask).any()


def test_zero_observable_batch_counts_zero(surface_dem):
    dec = MatchingDecoder(
        surface_dem, detector_subset_for_basis(surface_dem, "z")
    )
    batch = DemSampler(surface_dem).sample_packed(100, np.random.default_rng(0))
    stripped = type(batch)(
        detectors=batch.detectors,
        observables=np.zeros((0, batch.num_words), dtype=np.uint64),
        shots=batch.shots,
    )
    assert dec.count_failures_packed(stripped) == 0
