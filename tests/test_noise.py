"""Tests for the noise model (paper §6.1 gate noise + §6.3 idle noise)."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, nz_schedule
from repro.codes import rotated_surface_code
from repro.noise import HARDWARE_IDLE_POINTS, NoiseModel


def tiny_circuit():
    c = Circuit()
    c.append("R", [0, 1])
    c.tick()
    c.append("H", [0])
    c.tick()
    c.append("CNOT", [0, 1])
    c.tick()
    c.append("M", [0, 1])
    return c


class TestGateNoise:
    def test_channel_placement(self):
        noisy = NoiseModel(p=0.01).apply(tiny_circuit())
        ops = [op.gate for op in noisy]
        # R -> D1, H -> D1, CNOT -> D2, D1 -> M (before measurement).
        assert ops.count("DEPOLARIZE1") == 3
        assert ops.count("DEPOLARIZE2") == 1
        i_m = ops.index("M")
        assert ops[i_m - 1] == "DEPOLARIZE1"
        i_cnot = ops.index("CNOT")
        assert ops[i_cnot + 1] == "DEPOLARIZE2"

    def test_noise_inherits_gate_labels(self):
        c = Circuit()
        c.append("CNOT", [0, 1], label=("cnot", "x", 0, 1, 0))
        noisy = NoiseModel(p=0.01).apply(c)
        d2 = [op for op in noisy if op.gate == "DEPOLARIZE2"][0]
        assert d2.label == ("cnot", "x", 0, 1, 0)

    def test_zero_p_adds_nothing(self):
        noisy = NoiseModel(p=0.0).apply(tiny_circuit())
        assert noisy == tiny_circuit()

    def test_refuses_double_noise(self):
        noisy = NoiseModel(p=0.01).apply(tiny_circuit())
        with pytest.raises(ValueError):
            NoiseModel(p=0.01).apply(noisy)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NoiseModel(p=1.5)
        with pytest.raises(ValueError):
            NoiseModel(p=0.1, idle_strength=-1)


class TestIdleNoise:
    def test_idle_pauli_probability_formula(self):
        m = NoiseModel(p=0.0, idle_strength=0.1)
        assert m.idle_pauli_prob == pytest.approx((1 - math.exp(-0.1)) / 4)

    def test_idle_channels_on_idle_qubits_only(self):
        c = Circuit()
        c.append("H", [0])  # qubits 1, 2 idle
        c.tick()
        c.append("H", [1])
        c.append("H", [2])  # qubit 0 idle
        c.tick()
        noisy = NoiseModel(p=0.0, idle_strength=0.5).apply(c)
        # num_qubits comes from the gates: 3 qubits.
        idles = [op for op in noisy if op.gate == "PAULI_CHANNEL_1"]
        assert len(idles) == 2
        assert idles[0].targets == (1, 2)
        assert idles[1].targets == (0,)

    def test_zero_idle_strength_adds_no_channels(self):
        noisy = NoiseModel(p=0.01, idle_strength=0.0).apply(tiny_circuit())
        assert all(op.gate != "PAULI_CHANNEL_1" for op in noisy)

    def test_idle_noise_increases_logical_error(self):
        """More idling must hurt — the premise of Figure 15."""
        from repro.decoders import estimate_logical_error_rate

        code = rotated_surface_code(3)
        sched = nz_schedule(code)
        rng = np.random.default_rng(0)
        quiet = estimate_logical_error_rate(
            code, sched, p=2e-3, shots=4000, idle_strength=0.0, rng=rng
        )
        noisy = estimate_logical_error_rate(
            code, sched, p=2e-3, shots=4000, idle_strength=0.05, rng=rng
        )
        assert noisy.rate > quiet.rate

    def test_hardware_points_ordering(self):
        """Relative idle strength: movement-based atoms worst, static
        neutral atoms best (their gates are fast relative to seconds-long
        coherence), superconducting in between (§6.3 / Figure 15)."""
        assert (
            HARDWARE_IDLE_POINTS["neutral_atom_movement"]
            > HARDWARE_IDLE_POINTS["superconducting"]
            > HARDWARE_IDLE_POINTS["neutral_atom"]
        )
