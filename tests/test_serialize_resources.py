"""Tests for schedule serialization and resource estimation."""

import numpy as np
import pytest

from repro.analysis.resources import (
    NEUTRAL_ATOM,
    NEUTRAL_ATOM_MOVEMENT,
    PROFILES,
    SUPERCONDUCTING,
    estimate_resources,
)
from repro.circuits import (
    build_memory_experiment,
    coloration_schedule,
    nz_schedule,
)
from repro.circuits.serialize import schedule_from_json, schedule_to_json
from repro.codes import load_benchmark_code, rotated_surface_code


class TestScheduleJson:
    def test_roundtrip_surface(self):
        code = rotated_surface_code(3)
        original = nz_schedule(code)
        restored = schedule_from_json(schedule_to_json(original), code)
        assert restored.stab_orders == original.stab_orders
        assert restored.qubit_orders == original.qubit_orders
        assert restored.cnot_depth() == original.cnot_depth()

    def test_roundtrip_ldpc(self):
        code = load_benchmark_code("lp39")
        original = coloration_schedule(code, np.random.default_rng(3))
        restored = schedule_from_json(schedule_to_json(original), code)
        assert restored.layers() == original.layers()

    def test_wrong_code_rejected(self):
        d3 = rotated_surface_code(3)
        d5 = rotated_surface_code(5)
        text = schedule_to_json(nz_schedule(d3))
        with pytest.raises(ValueError, match="n="):
            schedule_from_json(text, d5)

    def test_wrong_format_rejected(self):
        code = rotated_surface_code(3)
        with pytest.raises(ValueError, match="not a prophunt"):
            schedule_from_json('{"format": "something-else"}', code)


class TestResources:
    @pytest.fixture(scope="class")
    def experiment(self):
        code = rotated_surface_code(3)
        return build_memory_experiment(code, nz_schedule(code), rounds=3)

    def test_counts(self, experiment):
        report = estimate_resources(experiment, SUPERCONDUCTING)
        assert report.qubits == 17
        assert report.cnot_count == 3 * 24  # 3 rounds x 24 Tanner edges
        assert report.rounds == 3
        assert report.layers == experiment.circuit.num_layers()

    def test_movement_dominates_for_zoned_atoms(self, experiment):
        static = estimate_resources(experiment, NEUTRAL_ATOM)
        moving = estimate_resources(experiment, NEUTRAL_ATOM_MOVEMENT)
        assert moving.total_time_s > static.total_time_s
        assert moving.idle_strength > static.idle_strength

    def test_idle_strength_sane(self, experiment):
        """Per-platform idle strengths land in Figure 15's plotted range."""
        for profile in PROFILES.values():
            report = estimate_resources(experiment, profile)
            assert 0 < report.idle_strength < 0.1

    def test_total_time_is_rounds_times_round_time(self, experiment):
        report = estimate_resources(experiment, SUPERCONDUCTING)
        assert report.total_time_s == pytest.approx(
            report.time_per_round_s * report.rounds
        )
