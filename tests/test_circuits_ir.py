"""Tests for the circuit IR (gates + container)."""

import pytest

from repro.circuits import Circuit, Operation


class TestOperation:
    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            Operation("FOO", (0,))

    def test_cnot_arity(self):
        Operation("CNOT", (0, 1, 2, 3))  # two applications
        with pytest.raises(ValueError):
            Operation("CNOT", (0, 1, 2))

    def test_pauli_channel_args(self):
        Operation("PAULI_CHANNEL_1", (0,), (0.1, 0.1, 0.1))
        with pytest.raises(ValueError):
            Operation("PAULI_CHANNEL_1", (0,), (0.1,))

    def test_depolarize_args(self):
        with pytest.raises(ValueError):
            Operation("DEPOLARIZE1", (0,), ())

    def test_observable_include_needs_index(self):
        with pytest.raises(ValueError):
            Operation("OBSERVABLE_INCLUDE", (0,), ())

    def test_target_groups(self):
        op = Operation("CNOT", (0, 1, 2, 3))
        assert op.target_groups() == [(0, 1), (2, 3)]

    def test_str(self):
        op = Operation("DEPOLARIZE1", (3,), (0.01,))
        assert "DEPOLARIZE1" in str(op)
        assert "0.01" in str(op)

    def test_label_not_compared(self):
        a = Operation("H", (0,), label=("x",))
        b = Operation("H", (0,), label=("y",))
        assert a == b


class TestCircuit:
    def make_small(self):
        c = Circuit()
        c.append("R", [0, 1])
        c.tick()
        c.append("H", [0])
        c.tick()
        c.append("CNOT", [0, 1])
        c.tick()
        c.append("M", [0, 1])
        c.append("DETECTOR", [0])
        c.append("OBSERVABLE_INCLUDE", [1], args=[0])
        return c

    def test_counts(self):
        c = self.make_small()
        assert c.num_qubits == 2
        assert c.num_measurements == 2
        assert c.num_detectors == 1
        assert c.num_observables == 1
        assert c.count_gate("CNOT") == 1

    def test_num_layers(self):
        assert self.make_small().num_layers() == 4

    def test_validate_ok(self):
        self.make_small().validate()

    def test_validate_bad_measurement_reference(self):
        c = Circuit()
        c.append("M", [0])
        c.append("DETECTOR", [3])
        with pytest.raises(ValueError):
            c.validate()

    def test_validate_double_touch_in_layer(self):
        c = Circuit()
        c.append("H", [0])
        c.append("CNOT", [0, 1])
        with pytest.raises(ValueError):
            c.validate()

    def test_without_noise(self):
        c = self.make_small()
        c.append("DEPOLARIZE1", [0], args=[0.1])
        assert c.without_noise().count_gate("DEPOLARIZE1") == 0
        assert c.count_gate("DEPOLARIZE1") == 1

    def test_extend_and_eq(self):
        a = self.make_small()
        b = Circuit()
        b.extend(a)
        assert b == a

    def test_str_roundtrip_is_readable(self):
        text = str(self.make_small())
        assert "CNOT 0 1" in text
        assert "DETECTOR" in text
