"""Persistent syndrome→correction cache: durability and bit-identity.

The cache may only ever *accelerate* decoding.  These tests pin the two
halves of that contract: (1) any on-disk damage — truncated header,
garbled hex, torn trailing line, interleaved partial writes — degrades
to a cache miss (recompute), never a wrong correction; (2) a warm cache
produces bit-for-bit the same packed decode as a cold one, which itself
matches the dense reference (the litmus battery, extended to the
cache-hit path).
"""

import numpy as np
import pytest
from test_decoders_packed import assert_packed_matches_dense

from repro.circuits import nz_schedule
from repro.codes import rotated_surface_code
from repro.decoders import (
    BpOsdDecoder,
    LookupDecoder,
    MatchingDecoder,
    SyndromeCache,
    detector_subset_for_basis,
)
from repro.decoders.metrics import dem_for
from repro.decoders.syncache import summarize_cache_dir
from repro.noise import NoiseModel
from repro.sim import DemSampler
from repro.sim.bitbatch import unpack_shots


@pytest.fixture(scope="module")
def surface_dem():
    code = rotated_surface_code(3)
    return dem_for(code, nz_schedule(code), NoiseModel(p=3e-3), basis="z", rounds=3)


def _cache(directory, key_bytes=8, value_bytes=2):
    return SyndromeCache(
        directory,
        dem_key="a" * 64,
        namespace="test:ns",
        key_bytes=key_bytes,
        value_bytes=value_bytes,
    )


def _keys(n, nwords=1, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**63, size=(n, nwords), dtype=np.uint64)


class TestRoundTrip:
    def test_insert_lookup_persist_reopen(self, tmp_path):
        cache = _cache(tmp_path)
        keys = _keys(5)
        values = np.arange(10, dtype=np.uint8).reshape(5, 2)
        got, hit = cache.lookup(keys)
        assert not hit.any()
        cache.insert(keys, values)
        got, hit = cache.lookup(keys)
        assert hit.all() and np.array_equal(got, values)
        # A fresh instance reloads everything from disk.
        reopened = _cache(tmp_path)
        assert reopened.loaded == 5
        got, hit = reopened.lookup(keys)
        assert hit.all() and np.array_equal(got, values)

    def test_memory_mode(self):
        cache = _cache(None)
        keys = _keys(3)
        cache.insert(keys, np.ones((3, 2), dtype=np.uint8))
        _, hit = cache.lookup(keys)
        assert hit.all() and cache.path is None

    def test_duplicate_insert_not_reappended(self, tmp_path):
        cache = _cache(tmp_path)
        keys = _keys(4)
        values = np.zeros((4, 2), dtype=np.uint8)
        cache.insert(keys, values)
        size = (tmp_path / _name(cache)).stat().st_size
        cache.insert(keys, values)  # all already present
        assert (tmp_path / _name(cache)).stat().st_size == size

    def test_value_shape_validated(self, tmp_path):
        cache = _cache(tmp_path)
        with pytest.raises(ValueError):
            cache.insert(_keys(2), np.zeros((2, 3), dtype=np.uint8))

    def test_stats_count_hits_and_misses(self, tmp_path):
        cache = _cache(tmp_path)
        keys = _keys(4)
        cache.lookup(keys)
        cache.insert(keys, np.zeros((4, 2), dtype=np.uint8))
        cache.lookup(keys[:2])
        assert cache.stats == {"hits": 2, "misses": 4, "entries": 4, "loaded": 0}


def _name(cache):
    import os

    return os.path.basename(cache.path)


class TestCorruptionDegradesToMiss:
    def test_truncated_trailing_line_dropped(self, tmp_path):
        cache = _cache(tmp_path)
        keys = _keys(3)
        cache.insert(keys, np.full((3, 2), 7, dtype=np.uint8))
        path = tmp_path / _name(cache)
        text = path.read_text()
        path.write_text(text[:-5])  # tear into the last entry
        reopened = _cache(tmp_path)
        _, hit = reopened.lookup(keys)
        assert hit.sum() == 2  # torn entry is a miss, not garbage
        assert not reopened._read_only  # file is still ours to append to

    def test_garbled_lines_skipped(self, tmp_path):
        cache = _cache(tmp_path)
        keys = _keys(2)
        cache.insert(keys, np.full((2, 2), 9, dtype=np.uint8))
        path = tmp_path / _name(cache)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("nothexatall zz\n")  # bad hex
            fh.write("abcd\n")  # missing value column
            fh.write("00112233445566 aabb\n")  # wrong key width (7 bytes)
            fh.write("0011223344556677 aa\n")  # wrong value width (1 byte)
        reopened = _cache(tmp_path)
        assert len(reopened) == 2
        _, hit = reopened.lookup(keys)
        assert hit.all()

    def test_corrupt_header_means_read_only_misses(self, tmp_path):
        cache = _cache(tmp_path)
        cache.insert(_keys(2), np.zeros((2, 2), dtype=np.uint8))
        path = tmp_path / _name(cache)
        original = path.read_text()
        path.write_text("not json\n" + original)
        degraded = _cache(tmp_path)
        assert degraded._read_only and len(degraded) == 0
        _, hit = degraded.lookup(_keys(2))
        assert not hit.any()
        # Writes are refused: the unparseable file is never touched.
        degraded.insert(_keys(2, seed=1), np.ones((2, 2), dtype=np.uint8))
        assert path.read_text() == "not json\n" + original

    def test_parameter_drift_means_read_only(self, tmp_path):
        """Same filename, different widths in the header: treat as
        foreign, serve misses, never overwrite."""
        cache = _cache(tmp_path, value_bytes=2)
        cache.insert(_keys(1), np.zeros((1, 2), dtype=np.uint8))
        clashing = SyndromeCache(
            tmp_path,
            dem_key=cache.dem_key,
            namespace=cache.namespace,
            key_bytes=cache.key_bytes,
            value_bytes=4,
        )
        assert clashing._read_only and len(clashing) == 0

    def test_empty_file_means_read_only(self, tmp_path):
        cache = _cache(tmp_path)
        (tmp_path / _name(cache)).write_text("")
        reopened = _cache(tmp_path)
        assert reopened._read_only


class TestConcurrentWriters:
    def test_append_after_interrupted_writer_preserves_both(self, tmp_path):
        """Mirrors the ResultStore torn-line tolerance: a killed writer
        loses its own unfinished trailing line, never an entry another
        process appends after it."""
        a = _cache(tmp_path)
        keys_a = _keys(2, seed=1)
        a.insert(keys_a, np.full((2, 2), 1, dtype=np.uint8))
        path = tmp_path / _name(a)
        # Writer A dies mid-append: an unterminated partial entry.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("0011223344556677 a")
        # Writer B opens the same cache and appends a full entry.
        b = _cache(tmp_path)
        assert b.loaded == 2
        keys_b = _keys(2, seed=2)
        b.insert(keys_b, np.full((2, 2), 2, dtype=np.uint8))
        # B dies mid-append itself; writer C appends after it.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("8899aabbccddeeff")
        c = _cache(tmp_path)
        c.insert(_keys(1, seed=3), np.full((1, 2), 3, dtype=np.uint8))

        reopened = _cache(tmp_path)
        assert len(reopened) == 5
        for keys, fill in ((keys_a, 1), (keys_b, 2), (_keys(1, seed=3), 3)):
            got, hit = reopened.lookup(keys)
            assert hit.all() and (got == fill).all()

    def test_cross_process_writers(self, tmp_path):
        """Two real processes interleaving inserts keep the file
        loadable and complete."""
        import subprocess
        import sys

        script = """
import sys
import numpy as np
from repro.decoders import SyndromeCache
seed = int(sys.argv[2])
cache = SyndromeCache(sys.argv[1], dem_key="a" * 64,
                      namespace="test:ns", key_bytes=8, value_bytes=2)
rng = np.random.default_rng(seed)
for _ in range(20):
    keys = rng.integers(0, 2**63, size=(5, 1), dtype=np.uint64)
    cache.insert(keys, np.full((5, 2), seed, dtype=np.uint8))
"""
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), str(seed)],
            )
            for seed in (1, 2)
        ]
        for p in procs:
            assert p.wait() == 0
        reopened = _cache(tmp_path)
        # Every writer's entries survive (keys are disjoint w.h.p.).
        assert len(reopened) == 200


class TestDecoderBitIdentity:
    """Litmus extension: warm-cache decodes ≡ cold ≡ dense reference."""

    def _warm_vs_cold(self, dem, make_decoder, shots, tmp_path):
        rng_seed = shots
        cold = make_decoder()
        cold.attach_syndrome_cache(SyndromeCache.for_decoder(cold, tmp_path))
        assert_packed_matches_dense(dem, cold, shots, np.random.default_rng(rng_seed))
        assert cold.syndrome_cache.stats["entries"] > 0

        warm = make_decoder()  # fresh decoder, no in-memory state
        warm.attach_syndrome_cache(SyndromeCache.for_decoder(warm, tmp_path))
        assert warm.syndrome_cache.loaded == cold.syndrome_cache.stats["entries"]
        assert_packed_matches_dense(dem, warm, shots, np.random.default_rng(rng_seed))
        assert warm.syndrome_cache.stats["misses"] == 0

        batch = DemSampler(dem).sample_packed(shots, np.random.default_rng(rng_seed))
        got_cold = cold.decode_batch_packed(batch).observables
        got_warm = warm.decode_batch_packed(batch).observables
        assert np.array_equal(got_cold, got_warm)

    @pytest.mark.parametrize("shots", [65, 1000])
    def test_matching_warm_equals_cold(self, surface_dem, shots, tmp_path):
        self._warm_vs_cold(
            surface_dem,
            lambda: MatchingDecoder(
                surface_dem, detector_subset_for_basis(surface_dem, "z")
            ),
            shots,
            tmp_path,
        )

    @pytest.mark.parametrize("shots", [65, 500])
    def test_bposd_warm_equals_cold(self, surface_dem, shots, tmp_path):
        self._warm_vs_cold(
            surface_dem, lambda: BpOsdDecoder(surface_dem), shots, tmp_path
        )

    def test_lookup_warm_equals_cold(self, tmp_path):
        from repro.circuits import Circuit
        from repro.sim import extract_dem

        c = Circuit()
        c.append("R", [0, 1, 2])
        c.append("DEPOLARIZE1", [0, 1, 2], args=[0.05])
        c.append("CNOT", [0, 2])
        c.append("CNOT", [1, 2])
        c.append("M", [0, 1, 2])
        c.append("DETECTOR", [2])
        c.append("OBSERVABLE_INCLUDE", [0], args=[0])
        dem = extract_dem(c)
        self._warm_vs_cold(dem, lambda: LookupDecoder(dem), 200, tmp_path)

    def test_corrupted_cache_never_wrong_correction(self, surface_dem, tmp_path):
        """Damage every stored entry; the decode must recompute and
        still match the dense reference exactly."""
        dec = BpOsdDecoder(surface_dem)
        dec.attach_syndrome_cache(SyndromeCache.for_decoder(dec, tmp_path))
        assert_packed_matches_dense(
            surface_dem, dec, 500, np.random.default_rng(0)
        )
        path = dec.syndrome_cache.path
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        # Garble every entry's value column (not valid hex).
        damaged = [lines[0]] + [
            line.split(" ")[0] + " zz" for line in lines[1:]
        ]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(damaged) + "\n")
        fresh = BpOsdDecoder(surface_dem)
        fresh.attach_syndrome_cache(SyndromeCache.for_decoder(fresh, tmp_path))
        assert fresh.syndrome_cache.loaded == 0  # all damaged → misses
        assert_packed_matches_dense(
            surface_dem, fresh, 500, np.random.default_rng(0)
        )

    def test_namespaces_address_distinct_files(self, surface_dem, tmp_path):
        """Decoder parameters that change output must not share a file."""
        subset = detector_subset_for_basis(surface_dem, "z")
        a = MatchingDecoder(surface_dem, subset)
        b = BpOsdDecoder(surface_dem)
        c = BpOsdDecoder(surface_dem, max_iterations=7)
        paths = set()
        for dec in (a, b, c):
            dec.attach_syndrome_cache(SyndromeCache.for_decoder(dec, tmp_path))
            paths.add(dec.syndrome_cache.path)
        assert len(paths) == 3

    def test_base_path_roundtrips_observable_bits(self, surface_dem, tmp_path):
        """The generic Decoder cache path (used by lookup/bposd) packs
        and unpacks observable rows losslessly, including tail bits."""
        dec = BpOsdDecoder(surface_dem)
        dec.attach_syndrome_cache(SyndromeCache.for_decoder(dec, tmp_path))
        batch = DemSampler(surface_dem).sample_packed(
            300, np.random.default_rng(11)
        )
        want = dec.decode_batch(batch.detectors_dense())
        warm = BpOsdDecoder(surface_dem)
        warm.attach_syndrome_cache(SyndromeCache.for_decoder(warm, tmp_path))
        dec.decode_batch_packed(batch)  # populate
        got = unpack_shots(warm.decode_batch_packed(batch).observables, 300)
        assert np.array_equal(got, want)


def test_summarize_cache_dir(tmp_path):
    cache = _cache(tmp_path)
    cache.insert(_keys(5), np.zeros((5, 2), dtype=np.uint8))
    other = SyndromeCache(
        tmp_path, dem_key="b" * 64, namespace="other", key_bytes=8, value_bytes=1
    )
    other.insert(_keys(3, seed=9), np.zeros((3, 1), dtype=np.uint8))
    (tmp_path / "unrelated.txt").write_text("not a cache\n")
    assert summarize_cache_dir(tmp_path) == {"files": 2, "entries": 8}
    assert summarize_cache_dir(tmp_path / "missing") == {"files": 0, "entries": 0}
