"""Randomized cross-simulator litmus tests.

In the spirit of TransForm's synthesized litmus tests: instead of
checking the samplers only on the handful of structured memory circuits
the paper uses, generate a battery of small random Clifford+noise
circuits and pin down two properties on every one of them:

1. **Representation safety** — the bit-packed hot paths of
   :class:`FrameSimulator` and :class:`DemSampler` are *bit-identical*
   to the dense reference paths for the same RNG state (the packing is
   pure representation, no resampling).
2. **Cross-simulator agreement** — the two completely independent
   samplers (direct Pauli-frame propagation vs DEM mechanism XOR) give
   the same detector/observable marginals up to sampling noise plus the
   DEM's O(p^2) independence approximation (chi-square-style z
   tolerance with fixed seeds, so the suite is deterministic).
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import register_noise_gate, unregister_noise_gate
from repro.noise import (
    BiasedPauliChannel,
    CorrelatedPauliChannel,
    DepolarizingChannel,
    DeviceProfile,
    DriftSchedule,
    NoiseSpec,
)
from repro.sim import DemSampler, FrameSimulator, extract_dem
from repro.sim.bitbatch import BitSampleBatch, SampleBatch, pack_shots, unpack_shots

NUM_RANDOM_CIRCUITS = 50
MARGINAL_CIRCUITS = 12
SPEC_CIRCUITS = 10


def random_clifford_noise_circuit(
    rng: np.random.Generator,
    num_qubits: int = 4,
    layers: int = 5,
    p: float = 0.01,
    include_noise: bool = True,
) -> Circuit:
    """A small random noisy Clifford circuit with detectors/observables.

    Every layer applies a random disjoint mix of CNOT/H/R plus one noise
    channel; some layers measure a qubit mid-circuit.  Detectors and the
    observable reference random measurement subsets — both simulators
    compute *flips relative to the noiseless reference*, so agreement is
    well-defined even for physically non-deterministic detectors.

    ``include_noise=False`` skips the inline channels, producing the
    noiseless structural circuit a :class:`~repro.noise.NoiseSpec` can
    be applied to.
    """
    circ = Circuit()
    circ.append("R", tuple(range(num_qubits)))
    circ.tick()
    num_meas = 0
    for _ in range(layers):
        qubits = [int(q) for q in rng.permutation(num_qubits)]
        while len(qubits) >= 2 and rng.random() < 0.7:
            a, b = qubits.pop(), qubits.pop()
            circ.append("CNOT", (a, b))
        for q in qubits:
            r = rng.random()
            if r < 0.35:
                circ.append("H", (q,))
            elif r < 0.45:
                circ.append("M" if rng.random() < 0.5 else "MX", (q,))
                num_meas += 1
            elif r < 0.55:
                circ.append("R" if rng.random() < 0.5 else "RX", (q,))
        choice = rng.random()
        if not include_noise:
            pass
        elif choice < 0.4:
            circ.append("DEPOLARIZE1", tuple(range(num_qubits)), (p,))
        elif choice < 0.6:
            pair = tuple(int(q) for q in rng.choice(num_qubits, 2, replace=False))
            circ.append("DEPOLARIZE2", pair, (p,))
        elif choice < 0.75:
            pair = tuple(int(q) for q in rng.choice(num_qubits, 2, replace=False))
            probs = rng.dirichlet(np.ones(15)) * p
            circ.append("PAULI_CHANNEL_2", pair, tuple(float(x) for x in probs))
        else:
            circ.append(
                "PAULI_CHANNEL_1", tuple(range(num_qubits)), (p / 2, p / 4, p / 4)
            )
        circ.tick()
    circ.append("M", tuple(range(num_qubits)))
    num_meas += num_qubits
    for _ in range(int(rng.integers(1, 4))):
        k = int(rng.integers(1, num_meas + 1))
        targets = tuple(int(t) for t in rng.choice(num_meas, size=k, replace=False))
        circ.append("DETECTOR", targets)
    k = int(rng.integers(1, num_meas + 1))
    circ.append(
        "OBSERVABLE_INCLUDE",
        tuple(int(t) for t in rng.choice(num_meas, size=k, replace=False)),
        (0,),
    )
    circ.validate()
    return circ


def assert_batches_equal(a: SampleBatch, b: SampleBatch) -> None:
    np.testing.assert_array_equal(a.detectors, b.detectors)
    np.testing.assert_array_equal(a.observables, b.observables)


def rates_compatible(
    count_a: int, shots_a: int, count_b: int, shots_b: int, bias: float
) -> bool:
    """Two-sample z test with an absolute slack for the DEM approximation."""
    pa, pb = count_a / shots_a, count_b / shots_b
    se = np.sqrt(pa * (1 - pa) / shots_a + pb * (1 - pb) / shots_b) + 1e-9
    return abs(pa - pb) <= 5.0 * se + bias


class TestPackedDenseBitIdentity:
    """Packed hot paths must be bit-for-bit the dense reference paths."""

    # 517 shots: exercises the uint64 tail (517 = 8*64 + 5).
    SHOTS = 517

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_CIRCUITS))
    def test_frame_simulator(self, seed):
        circ = random_clifford_noise_circuit(np.random.default_rng(seed))
        sim = FrameSimulator(circ)
        packed = sim.sample_packed(self.SHOTS, np.random.default_rng(1000 + seed))
        dense = sim.sample_dense(self.SHOTS, np.random.default_rng(1000 + seed))
        assert_batches_equal(packed.to_dense(), dense)

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_CIRCUITS))
    def test_dem_sampler(self, seed):
        circ = random_clifford_noise_circuit(np.random.default_rng(seed))
        sampler = DemSampler(extract_dem(circ))
        packed = sampler.sample_packed(self.SHOTS, np.random.default_rng(2000 + seed))
        dense = sampler.sample_dense(self.SHOTS, np.random.default_rng(2000 + seed))
        assert_batches_equal(packed.to_dense(), dense)

    def test_sample_is_view_of_packed(self):
        """The public dense API is exactly the unpacked packed batch."""
        circ = random_clifford_noise_circuit(np.random.default_rng(3))
        sampler = DemSampler(extract_dem(circ))
        a = sampler.sample(300, np.random.default_rng(7))
        b = sampler.sample_packed(300, np.random.default_rng(7)).to_dense()
        assert_batches_equal(a, b)

    def test_sample_errors_matches_sample(self):
        """After the sparse-fires fix, sample_errors draws the identical
        fire pattern as sample for the same RNG state."""
        circ = random_clifford_noise_circuit(np.random.default_rng(5))
        sampler = DemSampler(extract_dem(circ))
        _, via_errors = sampler.sample_errors(400, np.random.default_rng(9))
        direct = sampler.sample(400, np.random.default_rng(9))
        assert_batches_equal(via_errors, direct)


class TestCrossSimulatorMarginals:
    """FrameSimulator and DemSampler must tell the same statistical story."""

    SHOTS = 8_000
    P = 0.01
    # DEM merges mechanisms under an independence approximation that is
    # exact to O(p); allow an O(p^2)-scale systematic offset on top of
    # the sampling-noise z bound.
    BIAS = 3e-3

    @pytest.mark.parametrize("seed", range(MARGINAL_CIRCUITS))
    def test_detector_and_observable_marginals(self, seed):
        circ = random_clifford_noise_circuit(np.random.default_rng(seed), p=self.P)
        frame = FrameSimulator(circ).sample_packed(
            self.SHOTS, np.random.default_rng(3000 + seed)
        )
        demb = DemSampler(extract_dem(circ)).sample_packed(
            self.SHOTS, np.random.default_rng(4000 + seed)
        )
        assert frame.num_detectors == demb.num_detectors
        assert frame.num_observables == demb.num_observables
        f_det, d_det = frame.detector_counts(), demb.detector_counts()
        for d in range(frame.num_detectors):
            assert rates_compatible(
                int(f_det[d]), self.SHOTS, int(d_det[d]), self.SHOTS, self.BIAS
            ), f"detector {d}: frame {f_det[d]} vs dem {d_det[d]} of {self.SHOTS}"
        f_obs, d_obs = frame.observable_counts(), demb.observable_counts()
        for o in range(frame.num_observables):
            assert rates_compatible(
                int(f_obs[o]), self.SHOTS, int(d_obs[o]), self.SHOTS, self.BIAS
            ), f"observable {o}: frame {f_obs[o]} vs dem {d_obs[o]} of {self.SHOTS}"

    def test_noiseless_random_circuit_all_zero(self):
        circ = random_clifford_noise_circuit(np.random.default_rng(11), p=0.0)
        batch = FrameSimulator(circ).sample_packed(600, np.random.default_rng(0))
        assert not batch.detectors.any()
        assert not batch.observables.any()
        assert int(batch.detector_counts().sum()) == 0


def random_noise_spec(rng: np.random.Generator) -> NoiseSpec:
    """Draw a random scenario mixing every registered channel axis."""

    def channel(two_qubit: bool = False):
        r = rng.random()
        if r < 0.25:
            return None
        p = float(rng.uniform(0.002, 0.015))
        if r < 0.55:
            return DepolarizingChannel(p)
        if two_qubit and r < 0.75:
            return CorrelatedPauliChannel.depolarizing(p)
        return BiasedPauliChannel(p, eta=float(rng.choice([0.5, 2.0, 10.0, 100.0])))

    profile = None
    if rng.random() < 0.4:
        # Modest multipliers: scaled rates stay in the O(p^2) regime the
        # marginal-agreement slack was tuned for.
        profile = DeviceProfile(
            qubits={
                q: round(float(rng.uniform(0.6, 1.6)), 3)
                for q in range(int(rng.integers(1, 5)))
            },
            gates={"cnot": 1.3} if rng.random() < 0.5 else {},
        )
    drift = None
    if rng.random() < 0.4:
        drift = DriftSchedule(
            multipliers=tuple(
                round(float(m), 3) for m in rng.uniform(0.6, 1.6, size=3)
            ),
            mode=str(rng.choice(["hold", "cycle"])),
        )
    return NoiseSpec(
        sq=channel(),
        cnot=channel(two_qubit=True),
        meas=channel(),
        readout=float(rng.choice([0.0, 0.004, 0.01])),
        idle_strength=float(rng.choice([0.0, 0.0, 0.01])),
        crosstalk=float(rng.choice([0.0, 0.003, 0.008])),
        profile=profile,
        drift=drift,
    )


# One spec per channel axis in isolation, plus kitchen-sink mixes drawn
# at random — "per channel" coverage the bit-identity contract demands.
TARGETED_SPECS = {
    "sq-depolarizing": NoiseSpec(sq=DepolarizingChannel(0.01)),
    "cnot-depolarizing": NoiseSpec(cnot=DepolarizingChannel(0.01)),
    "meas-depolarizing": NoiseSpec(meas=DepolarizingChannel(0.01)),
    "sq-biased": NoiseSpec(sq=BiasedPauliChannel(0.01, eta=10.0)),
    "cnot-biased": NoiseSpec(cnot=BiasedPauliChannel(0.01, eta=100.0)),
    "meas-biased": NoiseSpec(meas=BiasedPauliChannel(0.01, eta=0.5)),
    "readout-only": NoiseSpec(readout=0.01),
    "idle-only": NoiseSpec(idle_strength=0.01),
    "cnot-correlated": NoiseSpec(cnot=CorrelatedPauliChannel.depolarizing(0.01)),
    "cnot-correlated-sparse": NoiseSpec(
        cnot=CorrelatedPauliChannel.from_pairs(
            {"XX": 0.004, "IZ": 0.003, "ZY": 0.002}
        )
    ),
    "crosstalk-only": NoiseSpec(crosstalk=0.01),
    "profile-hot-qubit": NoiseSpec.depolarizing(
        0.01,
        readout=0.005,
        profile=DeviceProfile(qubits={0: 2.0, 2: 0.5}, gates={"cnot": 1.3}),
    ),
    "drift-ramp": NoiseSpec.depolarizing(
        0.01, drift=DriftSchedule.linear(0.5, 1.5, 4)
    ),
    "calibrated-kitchen-sink": NoiseSpec(
        sq=DepolarizingChannel(0.008),
        cnot=CorrelatedPauliChannel.depolarizing(0.01),
        meas=BiasedPauliChannel(0.006, eta=10.0),
        readout=0.005,
        idle_strength=0.01,
        crosstalk=0.004,
        profile=DeviceProfile(qubits={0: 1.6, 2: 0.7}, gates={"readout": 1.4}),
        drift=DriftSchedule((0.8, 1.2), mode="cycle"),
    ),
}


class TestNoiseSpecLitmus:
    """The litmus battery over random pluggable noise scenarios.

    Every channel the registry can express must satisfy the same two
    properties the fixed model satisfies: packed hot paths bit-identical
    to the dense references, and frame↔DEM statistical agreement.
    """

    SHOTS = 517

    def _spec_for(self, seed: int) -> tuple[Circuit, NoiseSpec]:
        rng = np.random.default_rng(seed)
        circ = random_clifford_noise_circuit(rng, include_noise=False)
        names = sorted(TARGETED_SPECS)
        if seed < len(names):
            spec = TARGETED_SPECS[names[seed]]
        else:
            spec = random_noise_spec(rng)
        return spec.apply(circ), spec

    @pytest.mark.parametrize("seed", range(len(TARGETED_SPECS) + SPEC_CIRCUITS))
    def test_packed_dense_bit_identity(self, seed):
        noisy, _ = self._spec_for(seed)
        sim = FrameSimulator(noisy)
        packed = sim.sample_packed(self.SHOTS, np.random.default_rng(5000 + seed))
        dense = sim.sample_dense(self.SHOTS, np.random.default_rng(5000 + seed))
        assert_batches_equal(packed.to_dense(), dense)
        sampler = DemSampler(extract_dem(noisy))
        packed = sampler.sample_packed(self.SHOTS, np.random.default_rng(6000 + seed))
        dense = sampler.sample_dense(self.SHOTS, np.random.default_rng(6000 + seed))
        assert_batches_equal(packed.to_dense(), dense)

    SHOTS_MARGINAL = 6_000
    # Same O(p^2) independence-approximation slack as the fixed-model
    # marginal check (channel rates here are capped at 0.015).
    BIAS = 3e-3

    @pytest.mark.parametrize("seed", range(len(TARGETED_SPECS) + SPEC_CIRCUITS))
    def test_frame_dem_marginal_agreement(self, seed):
        noisy, _ = self._spec_for(seed)
        frame = FrameSimulator(noisy).sample_packed(
            self.SHOTS_MARGINAL, np.random.default_rng(7000 + seed)
        )
        demb = DemSampler(extract_dem(noisy)).sample_packed(
            self.SHOTS_MARGINAL, np.random.default_rng(8000 + seed)
        )
        assert frame.num_detectors == demb.num_detectors
        assert frame.num_observables == demb.num_observables
        f_det, d_det = frame.detector_counts(), demb.detector_counts()
        for d in range(frame.num_detectors):
            assert rates_compatible(
                int(f_det[d]),
                self.SHOTS_MARGINAL,
                int(d_det[d]),
                self.SHOTS_MARGINAL,
                self.BIAS,
            ), f"detector {d}: frame {f_det[d]} vs dem {d_det[d]}"
        f_obs, d_obs = frame.observable_counts(), demb.observable_counts()
        for o in range(frame.num_observables):
            assert rates_compatible(
                int(f_obs[o]),
                self.SHOTS_MARGINAL,
                int(d_obs[o]),
                self.SHOTS_MARGINAL,
                self.BIAS,
            ), f"observable {o}: frame {f_obs[o]} vs dem {d_obs[o]}"

    def test_readout_flip_hits_only_its_measurement(self):
        """p_m on an ancilla-style measure-then-reset qubit flips exactly
        the detectors referencing that outcome — decoupled from gates."""
        circ = Circuit()
        circ.append("R", (0,))
        circ.tick()
        circ.append("M", (0,))
        circ.tick()
        circ.append("R", (0,))
        circ.tick()
        circ.append("M", (0,))
        circ.append("DETECTOR", (0,))
        circ.append("DETECTOR", (1,))
        noisy = NoiseSpec(readout=0.3).apply(circ)
        batch = FrameSimulator(noisy).sample_packed(4096, np.random.default_rng(0))
        counts = batch.detector_counts()
        # Each detector flips only through its own measurement's readout
        # channel: both marginals ~ p_m, independently.
        for d in range(2):
            assert 0.25 * 4096 < counts[d] < 0.35 * 4096
        dem = extract_dem(noisy)
        assert all(len(m.detectors) == 1 for m in dem.mechanisms)

    def test_correlated_uniform_split_matches_depolarize2_dem(self):
        """The correlated channel's uniform p/15 split enumerates the
        exact mechanism set DEPOLARIZE2 does — the two lowerings must
        produce fingerprint-identical error models."""
        circ = random_clifford_noise_circuit(
            np.random.default_rng(21), include_noise=False
        )
        legacy = NoiseSpec.depolarizing(0.01).apply(circ)
        correlated = NoiseSpec.correlated(0.01).apply(circ)
        assert (
            extract_dem(legacy).fingerprint()
            == extract_dem(correlated).fingerprint()
        )

    def test_crosstalk_mechanism_is_correlated_in_dem(self):
        """Measurement crosstalk must appear as ONE mechanism flipping
        both neighboring detectors — not two independent singles."""
        circ = Circuit()
        circ.append("R", (0, 1))
        circ.tick()
        circ.append("M", (0,))
        circ.append("M", (1,))
        circ.append("DETECTOR", (0,))
        circ.append("DETECTOR", (1,))
        dem = extract_dem(NoiseSpec(crosstalk=0.01).apply(circ))
        assert [m.detectors for m in dem.mechanisms] == [(0, 1)]
        assert dem.mechanisms[0].prob == pytest.approx(0.01)


class TestNoiseGateStrictness:
    """Unrecognized noise gates fail loudly in every lowering consumer.

    Before the fix, ``_enumerate_noise_sites`` silently skipped gates
    outside its handled set: the decoder would run happily against a DEM
    missing mechanisms.  The frame simulator mirrors the same guard.
    """

    def _stub_circuit(self) -> Circuit:
        circ = Circuit()
        circ.append("R", (0,))
        circ.append("STUB_NOISE", (0,), (0.01,))
        circ.tick()
        circ.append("M", (0,))
        circ.append("DETECTOR", (0,))
        return circ

    def test_unhandled_noise_gate_raises_everywhere(self):
        register_noise_gate("STUB_NOISE", arity=1, num_args=1)
        try:
            circ = self._stub_circuit()
            with pytest.raises(
                ValueError, match="no lowering for noise gate 'STUB_NOISE'"
            ):
                extract_dem(circ)
            sim = FrameSimulator(circ)
            with pytest.raises(
                ValueError, match="no lowering for noise gate 'STUB_NOISE'"
            ):
                sim.sample_packed(8, np.random.default_rng(0))
            with pytest.raises(
                ValueError, match="no lowering for noise gate 'STUB_NOISE'"
            ):
                sim.sample_dense(8, np.random.default_rng(0))
        finally:
            unregister_noise_gate("STUB_NOISE")

    def test_unregistered_gate_rejected_at_append(self):
        with pytest.raises(ValueError):
            self._stub_circuit()


class TestBitBatchRepresentation:
    """Unit checks of the packing layer itself."""

    def test_pack_unpack_roundtrip_with_tail(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((130, 7)) < 0.3).astype(np.uint8)
        words = pack_shots(dense)
        assert words.shape == (7, 3)  # ceil(130/64) == 3
        np.testing.assert_array_equal(unpack_shots(words, 130), dense)

    def test_counts_match_dense_sums(self):
        rng = np.random.default_rng(1)
        dense = SampleBatch(
            detectors=(rng.random((517, 5)) < 0.2).astype(np.uint8),
            observables=(rng.random((517, 2)) < 0.4).astype(np.uint8),
        )
        packed = BitSampleBatch.from_dense(dense)
        np.testing.assert_array_equal(
            packed.detector_counts(), dense.detectors.sum(axis=0)
        )
        np.testing.assert_array_equal(
            packed.observable_counts(), dense.observables.sum(axis=0)
        )

    @pytest.mark.parametrize("sizes", [(128, 64, 37), (100, 30)])
    def test_concat(self, sizes):
        """Word-aligned and unaligned concatenation agree with dense."""
        rng = np.random.default_rng(2)
        parts = [
            SampleBatch(
                detectors=(rng.random((n, 4)) < 0.3).astype(np.uint8),
                observables=(rng.random((n, 1)) < 0.3).astype(np.uint8),
            )
            for n in sizes
        ]
        merged = BitSampleBatch.concat(
            [BitSampleBatch.from_dense(p) for p in parts]
        ).to_dense()
        np.testing.assert_array_equal(
            merged.detectors, np.vstack([p.detectors for p in parts])
        )
        np.testing.assert_array_equal(
            merged.observables, np.vstack([p.observables for p in parts])
        )
