"""Tests for circuit text serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, build_memory_experiment, nz_schedule
from repro.circuits.text import circuit_from_text, circuit_to_text
from repro.codes import rotated_surface_code
from repro.noise import NoiseModel


class TestRoundTrip:
    def test_simple_roundtrip(self):
        c = Circuit()
        c.append("R", [0, 1])
        c.tick()
        c.append("H", [0])
        c.append("CNOT", [0, 1])
        c.append("DEPOLARIZE2", [0, 1], args=[0.001])
        c.append("M", [0, 1])
        c.append("DETECTOR", [0])
        c.append("OBSERVABLE_INCLUDE", [1], args=[0])
        parsed = circuit_from_text(circuit_to_text(c))
        assert parsed == c

    def test_full_memory_circuit_roundtrip(self):
        code = rotated_surface_code(3)
        exp = build_memory_experiment(code, nz_schedule(code), rounds=2)
        noisy = NoiseModel(p=1e-3).apply(exp.circuit)
        parsed = circuit_from_text(circuit_to_text(noisy))
        assert parsed == noisy

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        R 0 1

        M 0  # trailing comment
        """
        c = circuit_from_text(text)
        assert c.count_gate("R") == 2
        assert c.num_measurements == 1


class TestParserErrors:
    def test_unknown_gate(self):
        with pytest.raises(ValueError, match="unknown gate"):
            circuit_from_text("FROBNICATE 0")

    def test_bad_target(self):
        with pytest.raises(ValueError, match="bad target"):
            circuit_from_text("M zero")

    def test_malformed_args(self):
        with pytest.raises(ValueError, match="malformed"):
            circuit_from_text("DEPOLARIZE1(0.1 0")

    @given(st.text(alphabet="MRX 01()#.,\n", max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        """Fuzz: any input either parses or raises ValueError."""
        try:
            circuit_from_text(text)
        except ValueError:
            pass
