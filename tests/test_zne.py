"""Tests for ZNE: extrapolation, RB workloads, DS-ZNE vs Hook-ZNE."""

import numpy as np
import pytest

from repro.zne import (
    DS_ZNE_DISTANCE_SETS,
    DistanceScalingZNE,
    HOOK_ZNE_DISTANCE_SETS,
    HookZNE,
    RBWorkload,
    exponential_extrapolate,
    extrapolate_to_zero,
    linear_extrapolate,
    richardson_extrapolate,
)


class TestExtrapolation:
    def test_linear_exact_on_line(self):
        scales = np.array([1.0, 2.0, 3.0])
        values = 5.0 - 2.0 * scales
        assert linear_extrapolate(scales, values) == pytest.approx(5.0)

    def test_richardson_exact_on_polynomial(self):
        scales = np.array([1.0, 2.0, 3.0])
        values = 1.0 - 0.5 * scales + 0.1 * scales**2
        assert richardson_extrapolate(scales, values) == pytest.approx(1.0)

    def test_exponential_exact_on_exponential(self):
        scales = np.array([1.0, 2.0, 4.0])
        values = 0.9 * np.exp(-0.3 * scales)
        assert exponential_extrapolate(scales, values) == pytest.approx(0.9, rel=1e-4)

    def test_exponential_falls_back_on_garbage(self):
        scales = np.array([1.0, 2.0, 3.0])
        values = np.array([-0.5, 0.5, -0.5])
        out = exponential_extrapolate(scales, values)
        assert np.isfinite(out)

    def test_dispatch_rejects_unknown(self):
        with pytest.raises(ValueError):
            extrapolate_to_zero([1, 2], [0.5, 0.4], method="psychic")


class TestRBWorkload:
    def test_zero_noise_is_ideal(self):
        rb = RBWorkload(depth=50)
        assert rb.expectation(0.0) == pytest.approx(1.0)

    def test_decay_monotone_in_error(self):
        rb = RBWorkload(depth=50)
        es = [rb.expectation(e) for e in (1e-4, 1e-3, 1e-2)]
        assert es[0] > es[1] > es[2]

    def test_sample_concentrates(self):
        rb = RBWorkload(depth=50)
        rng = np.random.default_rng(0)
        est = rb.sample_expectation(1e-3, 200_000, rng)
        assert est == pytest.approx(rb.expectation(1e-3), abs=5e-3)

    def test_invalid_inputs(self):
        rb = RBWorkload()
        with pytest.raises(ValueError):
            rb.expectation(1.5)
        with pytest.raises(ValueError):
            rb.sample_expectation(0.1, 0, np.random.default_rng(0))


class TestDSZNE:
    def test_gate_error_scaling(self):
        ds = DistanceScalingZNE(lam=2.0)
        # P_L(d) = Lambda^{-(d+1)/2}: halves per unit... factor Lambda per
        # distance step of 2.
        assert ds.gate_error(7) / ds.gate_error(9) == pytest.approx(2.0)

    def test_run_shapes(self):
        ds = DistanceScalingZNE(lam=2.0)
        out = ds.run([9, 7, 5, 3], 20_000, np.random.default_rng(0))
        assert len(out.expectations) == 4
        assert min(out.scale_factors) == pytest.approx(1.0)
        assert out.ideal == 1.0

    def test_needs_two_scales(self):
        with pytest.raises(ValueError):
            DistanceScalingZNE(lam=2.0).run([9], 100, np.random.default_rng(0))

    def test_mitigation_beats_raw(self):
        """The extrapolated estimate must beat the unmitigated expectation."""
        ds = DistanceScalingZNE(lam=2.0)
        rng = np.random.default_rng(1)
        biases, raws = [], []
        for _ in range(30):
            out = ds.run([13, 11, 9, 7], 20_000, rng)
            biases.append(out.bias)
            raws.append(abs(ds.workload.expectation(ds.gate_error(13)) - 1.0))
        assert np.mean(biases) < np.mean(raws)


class TestHookZNE:
    def test_fine_scales_are_fine(self):
        hook = HookZNE(lam=2.0)
        out = hook.run([13, 12.5, 12, 11.5], 20_000, np.random.default_rng(0))
        # Scale factors stay within a factor Lambda^(1.5/2) ~ 1.68.
        assert max(out.scale_factors) < 2.0

    def test_amplification_range(self):
        hook = HookZNE(lam=4.0)
        lo, hi = hook.amplification_range(d=9, d_eff_min=5)
        assert lo == 1.0
        assert hi == pytest.approx(4.0 ** ((9 - 5) / 2))

    def test_distance_sets_align_with_paper(self):
        assert DS_ZNE_DISTANCE_SETS[0] == [13, 11, 9, 7]
        assert HOOK_ZNE_DISTANCE_SETS[0] == [13, 12.5, 12, 11.5]

    def test_hook_beats_ds_on_average(self):
        """The paper's Fig 16b claim: Hook-ZNE's bias is consistently lower
        under the same total shot budget."""
        lam = 2.0
        shots = 20_000
        trials = 60
        rng = np.random.default_rng(7)
        ds = DistanceScalingZNE(lam=lam)
        hook = HookZNE(lam=lam)
        for ds_set, hook_set in zip(DS_ZNE_DISTANCE_SETS, HOOK_ZNE_DISTANCE_SETS):
            ds_bias = np.mean(
                [ds.run(ds_set, shots, rng).bias for _ in range(trials)]
            )
            hook_bias = np.mean(
                [hook.run(hook_set, shots, rng).bias for _ in range(trials)]
            )
            assert hook_bias < ds_bias


class TestPropHuntIntegration:
    def test_noise_dials_from_real_optimization(self):
        """End-to-end: intermediate schedules give a decreasing noise dial."""
        from repro.codes import rotated_surface_code
        from repro.circuits import poor_schedule
        from repro.core import PropHunt, PropHuntConfig
        from repro.zne import noise_dials_from_prophunt

        code = rotated_surface_code(3)
        cfg = PropHuntConfig(iterations=3, samples_per_iteration=25, seed=1)
        result = PropHunt(code, cfg).optimize(poor_schedule(code))
        dials = noise_dials_from_prophunt(
            result, p=3e-3, shots=3000, rng=np.random.default_rng(0)
        )
        assert len(dials) == len(result.intermediate_schedules)
        first, last = dials[0][1], dials[-1][1]
        assert last < first  # optimization reduced the logical error rate
