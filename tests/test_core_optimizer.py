"""Tests for candidate changes, pruning, and the PropHunt loop."""

import numpy as np
import pytest

from repro.circuits import nz_schedule, poor_schedule
from repro.codes import rotated_surface_code
from repro.core import (
    DecodingGraph,
    PropHunt,
    PropHuntConfig,
    check_candidate,
    enumerate_candidates,
    find_ambiguous_subgraph,
    solve_min_weight_logical,
)
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel


@pytest.fixture(scope="module")
def setup_poor():
    code = rotated_surface_code(3)
    schedule = poor_schedule(code)
    dem = dem_for(code, schedule, NoiseModel(p=1e-3), basis="z", rounds=3)
    return code, schedule, dem


def first_problem(code, schedule, dem, seed=0):
    graph = DecodingGraph(dem)
    rng = np.random.default_rng(seed)
    for _ in range(50):
        sub = find_ambiguous_subgraph(graph, rng)
        if sub is None:
            continue
        sol = solve_min_weight_logical(sub, rng)
        if sol is not None:
            return sub, sol
    raise AssertionError("no ambiguous subgraph found")


class TestCandidateEnumeration:
    def test_candidates_exist_for_poor_schedule(self, setup_poor):
        code, schedule, dem = setup_poor
        sub, sol = first_problem(code, schedule, dem)
        cands = enumerate_candidates(
            code, schedule, dem, sol.global_errors(sub), np.random.default_rng(0)
        )
        assert cands
        kinds = {c.kind for c in cands}
        assert kinds <= {"reorder", "reschedule"}

    def test_candidates_are_deduplicated(self, setup_poor):
        code, schedule, dem = setup_poor
        sub, sol = first_problem(code, schedule, dem)
        cands = enumerate_candidates(
            code, schedule, dem, sol.global_errors(sub), np.random.default_rng(0)
        )
        sigs = [c.signature() for c in cands]
        assert len(sigs) == len(set(sigs))

    def test_apply_to_returns_copy(self, setup_poor):
        code, schedule, dem = setup_poor
        sub, sol = first_problem(code, schedule, dem)
        cands = enumerate_candidates(
            code, schedule, dem, sol.global_errors(sub), np.random.default_rng(0)
        )
        snapshot = {k: list(v) for k, v in schedule.stab_orders.items()}
        cands[0].apply_to(schedule)
        assert {k: list(v) for k, v in schedule.stab_orders.items()} == snapshot

    def test_mixed_type_reschedule_has_companion_swap(self, setup_poor):
        code, schedule, dem = setup_poor
        sub, sol = first_problem(code, schedule, dem)
        cands = enumerate_candidates(
            code, schedule, dem, sol.global_errors(sub), np.random.default_rng(0)
        )
        for c in cands:
            if c.kind != "reschedule":
                continue
            swaps = [e for e in c.edits if e[0] == "swap"]
            s1, s2 = swaps[0][2], swaps[0][3]
            if s1[0] != s2[0]:
                assert len(swaps) == 2  # commutation-preserving pair (§5.3.2)


class TestPruning:
    def test_some_candidate_is_verified(self, setup_poor):
        """Across a handful of ambiguous subgraphs, at least one candidate
        change must pass both §5.4 checks (not every subgraph has a local
        fix, but the poor schedule is fixable overall)."""
        code, schedule, dem = setup_poor
        noise = NoiseModel(p=1e-3)
        build = lambda s: dem_for(code, s, noise, basis="z", rounds=3)
        any_valid = False
        any_verified = False
        for seed in range(8):
            sub, sol = first_problem(code, schedule, dem, seed=seed)
            logical = sol.global_errors(sub)
            cands = enumerate_candidates(
                code, schedule, dem, logical, np.random.default_rng(seed)
            )
            for c in cands:
                o = check_candidate(code, schedule, c, sub, dem, logical, build)
                any_valid = any_valid or o.valid_circuit
                any_verified = any_verified or o.verified
            if any_verified:
                break
        assert any_valid
        assert any_verified

    def test_invalid_candidates_are_caught(self, setup_poor):
        """A raw single X/Z swap without its companion is invalid and must
        be rejected by the validity check."""
        from repro.core.changes import CandidateChange

        code, schedule, dem = setup_poor
        sub, sol = first_problem(code, schedule, dem)
        overlap = np.argwhere(code.hx.astype(int) @ code.hz.T.astype(int))[0]
        xs, zs = int(overlap[0]), int(overlap[1])
        q = int(np.nonzero(code.hx[xs] & code.hz[zs])[0][0])
        bad = CandidateChange(
            edits=[("swap", q, ("x", xs), ("z", zs))], source_error=0, kind="reschedule"
        )
        noise = NoiseModel(p=1e-3)
        build = lambda s: dem_for(code, s, noise, basis="z", rounds=3)
        outcome = check_candidate(
            code, schedule, bad, sub, dem, sol.global_errors(sub), build
        )
        assert not outcome.valid_circuit


class TestOptimizerLoop:
    def test_recovers_surface_code_performance(self):
        """Paper's headline result, scaled down: starting from the poor
        schedule, PropHunt reaches d_eff = 3 within a few iterations."""
        code = rotated_surface_code(3)
        cfg = PropHuntConfig(iterations=4, samples_per_iteration=30, seed=1)
        result = PropHunt(code, cfg).optimize(poor_schedule(code))
        assert result.final_schedule.is_valid()
        # The poor schedule has weight-2 logicals; they must be gone.
        last_weights = [
            r.min_logical_weight
            for r in result.history[-2:]
            if r.min_logical_weight is not None
        ]
        assert last_weights and min(last_weights) >= 3

    def test_history_records_intermediates(self):
        code = rotated_surface_code(3)
        cfg = PropHuntConfig(iterations=2, samples_per_iteration=10, seed=0)
        result = PropHunt(code, cfg).optimize(poor_schedule(code))
        assert len(result.history) <= 2
        assert len(result.intermediate_schedules) == len(result.history) + 1
        for record in result.history:
            assert record.schedule.is_valid()
            assert record.cnot_depth >= 4

    def test_rejects_invalid_start(self):
        code = rotated_surface_code(3)
        bad = nz_schedule(code)
        overlap = np.argwhere(code.hx.astype(int) @ code.hz.T.astype(int))[0]
        xs, zs = int(overlap[0]), int(overlap[1])
        q = int(np.nonzero(code.hx[xs] & code.hz[zs])[0][0])
        bad.swap_relative_order(q, ("x", xs), ("z", zs))
        with pytest.raises(ValueError):
            PropHunt(code).optimize(bad)

    def test_good_schedule_stays_good(self):
        """Optimizing an already-good schedule must not break it."""
        code = rotated_surface_code(3)
        cfg = PropHuntConfig(iterations=2, samples_per_iteration=15, seed=2)
        result = PropHunt(code, cfg).optimize(nz_schedule(code))
        assert result.final_schedule.is_valid()
        weights = [
            r.min_logical_weight
            for r in result.history
            if r.min_logical_weight is not None
        ]
        if weights:
            assert min(weights) == 3  # d_eff never drops below d
