"""Integration tests for specific claims made in the paper's text.

These go beyond unit behaviour: each test pins one sentence of the paper
to a measurable property of this implementation.
"""

import numpy as np
import pytest

from repro.analysis.deff import estimate_effective_distance
from repro.circuits import build_memory_experiment, coloration_schedule, nz_schedule
from repro.codes import (
    load_benchmark_code,
    rotated_surface_code,
    steane_code,
    toric_like_code,
)
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel


class TestSection2Claims:
    def test_d11_surface_resource_counts(self):
        """§1: 'a code distance of d=11 can be implemented with a SM
        circuit using 241 qubits and 440 CNOT gates' (per round)."""
        code = rotated_surface_code(11)
        assert code.n + code.num_x_stabs + code.num_z_stabs == 241
        cnots_per_round = int(code.hx.sum() + code.hz.sum())
        assert cnots_per_round == 440

    def test_d7_circuit_level_matrix_size(self):
        """§2.7: the d=7 circuit-level H has far more columns than the 49
        of the stabilizer matrix (paper quotes >15,000 before merging)."""
        code = rotated_surface_code(7)
        exp = build_memory_experiment(code, nz_schedule(code), rounds=7)
        dem_unmerged = __import__(
            "repro.sim.dem", fromlist=["extract_dem"]
        ).extract_dem(NoiseModel(p=1e-3).apply(exp.circuit), merge=False)
        assert dem_unmerged.num_errors > 15_000

    def test_hook_error_halves_weight(self):
        """§2.8: a weight-4 check's worst hook spreads to floor(4/2)=2
        data qubits after stabilizer reduction — so the poor d=3 schedule
        yields weight-2 logicals, not weight-1."""
        code = rotated_surface_code(3)
        from repro.circuits import poor_schedule

        est = estimate_effective_distance(
            code, poor_schedule(code), samples=40, rng=np.random.default_rng(0)
        )
        assert est.deff == 2  # = ceil(d/2) + ... reduced but not destroyed


class TestSection3Claims:
    def test_hypergraph_product_deff_equals_d(self):
        """§3.1: 'for hypergraph-product codes it's known that all SM
        circuits have d_eff = d' [34] — check a few random circuits."""
        code = toric_like_code(3)
        code.distance = 3
        for seed in range(3):
            sched = coloration_schedule(code, np.random.default_rng(seed))
            est = estimate_effective_distance(
                code, sched, samples=40, rng=np.random.default_rng(seed)
            )
            assert est.deff == 3, f"seed {seed} gave d_eff={est.deff}"

    def test_steane_code_always_distance_reducing(self):
        """§3.1: 'for the Steane code ... all CNOT orderings produce hook
        errors that are distance-reducing'."""
        code = steane_code()
        for seed in range(3):
            sched = coloration_schedule(code, np.random.default_rng(seed))
            est = estimate_effective_distance(
                code, sched, samples=50, rng=np.random.default_rng(seed)
            )
            assert est.deff is not None and est.deff < 3


class TestSection4Claims:
    def test_ambiguous_union_is_undetected_logical(self):
        """§4: if H e1 = H e2 and L e1 != L e2, then e1+e2 is an
        undetected logical error."""
        code = rotated_surface_code(3)
        dem = dem_for(code, nz_schedule(code), NoiseModel(p=1e-3), rounds=3)
        from repro.core import DecodingGraph, find_ambiguous_subgraph
        from repro.core.minweight import solve_min_weight_logical

        graph = DecodingGraph(dem)
        rng = np.random.default_rng(0)
        sub = None
        while sub is None:
            sub = find_ambiguous_subgraph(graph, rng)
        sol = solve_min_weight_logical(sub, rng)
        e_union = np.zeros(sub.num_errors, dtype=np.uint8)
        e_union[sol.error_columns] = 1
        # The union: same syndrome (0) on H', nonzero on L'.
        assert not (sub.h @ e_union % 2).any()
        assert (sub.l @ e_union % 2).any()

    def test_logical_error_rate_scales_with_deff(self):
        """§4: LER ~ O(p^ceil(deff/2)): halving d_eff (3->2) costs roughly
        a power of p at low p; just check the ordering is strict and large."""
        from repro.circuits import poor_schedule
        from repro.decoders import estimate_logical_error_rate

        code = rotated_surface_code(3)
        rng = np.random.default_rng(0)
        good = estimate_logical_error_rate(
            code, nz_schedule(code), p=1e-3, shots=12_000, rng=rng
        )
        poor = estimate_logical_error_rate(
            code, poor_schedule(code), p=1e-3, shots=12_000, rng=rng
        )
        assert poor.rate > 1.5 * good.rate


class TestSection6Claims:
    @pytest.mark.parametrize("name", ["lp39", "rqt60"])
    def test_coloration_baseline_is_valid_for_all_benchmarks(self, name):
        """§6.1: the coloration circuit is 'generally applicable' — it
        must produce valid circuits for every benchmark code."""
        code = load_benchmark_code(name)
        sched = coloration_schedule(code)
        assert sched.is_valid()
        exp = build_memory_experiment(code, sched, rounds=2)
        from repro.sim import verify_deterministic_detectors

        assert verify_deterministic_detectors(exp.circuit, trials=2)

    def test_coloration_depth_bounded_by_degrees(self):
        """Coloration uses at most Delta_X + Delta_Z CNOT layers."""
        for name in ("surface_d5", "lp39", "rqt60"):
            code = load_benchmark_code(name)
            sched = coloration_schedule(code)
            max_deg_x = max(
                int(code.hx.sum(axis=0).max()), int(code.hx.sum(axis=1).max())
            )
            max_deg_z = max(
                int(code.hz.sum(axis=0).max()), int(code.hz.sum(axis=1).max())
            )
            assert sched.cnot_depth() <= max_deg_x + max_deg_z
