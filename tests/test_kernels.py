"""Bit-for-bit parity of every kernel backend against the numpy reference.

The contract (ROADMAP item 2): whatever backend ``repro.gf2.kernels``
selects at import — numpy, threads, or the runtime-compiled C library —
the three hot-spot kernels produce results indistinguishable from the
pinned numpy reference.  ``transpose_words`` and ``popcount_words`` must
match exactly; ``unique_shot_words`` must produce the same *grouping*
(group order is arbitrary by contract, so equality is checked through
``inverse``).  On top of the kernel-level checks, the full packed≡dense
decoder litmus runs once per backend on a real circuit-level DEM.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import nz_schedule
from repro.codes import rotated_surface_code
from repro.decoders import MatchingDecoder, detector_subset_for_basis
from repro.decoders.metrics import dem_for
from repro.gf2 import kernels
from repro.gf2.bitmat import pack_rows, unpack_rows
from repro.noise import NoiseModel

from test_decoders_packed import assert_packed_matches_dense

BACKENDS = kernels.available_backends()
REFERENCE = kernels.NumpyBackend()


@pytest.fixture(params=BACKENDS)
def backend(request):
    with kernels.use_backend(request.param):
        yield request.param


def _random_packed(rng, m, ncols):
    """Packed words with the tail-column invariant every packer keeps."""
    nwords = max(1, (ncols + 63) // 64)
    words = rng.integers(0, 2**63, size=(m, nwords), dtype=np.uint64)
    tail = ncols % 64
    if tail:
        words[:, -1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
    return words


class TestBackendRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in BACKENDS

    def test_active_backend_is_listed(self):
        assert kernels.backend_name() in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fpga")

    def test_use_backend_restores(self):
        before = kernels.backend_name()
        with kernels.use_backend("numpy"):
            assert kernels.backend_name() == "numpy"
        assert kernels.backend_name() == before


class TestTransposeParity:
    @pytest.mark.parametrize(
        "m,ncols",
        [(0, 5), (1, 1), (63, 63), (64, 64), (65, 130), (200, 513), (1000, 17)],
    )
    def test_matches_reference(self, backend, m, ncols):
        words = _random_packed(np.random.default_rng(m * 1000 + ncols), m, ncols)
        got = kernels.transpose_words(words, ncols)
        want = REFERENCE.transpose_words(words, ncols)
        assert got.dtype == np.uint64
        assert np.array_equal(got, want)

    def test_roundtrip_through_dense(self, backend):
        rng = np.random.default_rng(7)
        dense = rng.integers(0, 2, size=(130, 75), dtype=np.uint8)
        packed = pack_rows(dense)
        transposed = kernels.transpose_words(packed, 75)
        assert np.array_equal(unpack_rows(transposed, 130), dense.T)

    def test_rejects_1d(self, backend):
        with pytest.raises(ValueError):
            kernels.transpose_words(np.zeros(4, dtype=np.uint64), 4)


class TestPopcountParity:
    @pytest.mark.parametrize("shape", [(0, 3), (1, 1), (63, 2), (513, 9)])
    def test_matches_reference(self, backend, shape):
        rng = np.random.default_rng(sum(shape))
        words = rng.integers(0, 2**63, size=shape, dtype=np.uint64)
        assert kernels.popcount_words(words) == REFERENCE.popcount_words(words)
        got = kernels.popcount_words(words, axis=1)
        assert np.array_equal(got, REFERENCE.popcount_words(words, axis=1))
        got0 = kernels.popcount_words(words, axis=0)
        assert np.array_equal(got0, REFERENCE.popcount_words(words, axis=0))

    def test_total_is_exact(self, backend):
        words = np.array([[np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64(1)]])
        assert kernels.popcount_words(words) == 65

    def test_popcount_u64_portable(self):
        # The numpy-1.x fallback table and np.bitwise_count agree.
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**63, size=(40, 3), dtype=np.uint64)
        want = np.array(
            [[bin(int(w)).count("1") for w in row] for row in words]
        )
        assert np.array_equal(
            np.asarray(kernels.popcount_u64(words), dtype=np.int64), want
        )


class TestUniqueParity:
    def _check_grouping(self, keys):
        unique, inverse = kernels.unique_shot_words(keys)
        # Reconstruction: scattering groups through inverse recovers input.
        assert np.array_equal(unique[inverse], keys)
        # Distinctness: no group row appears twice.
        assert len(np.unique(unique, axis=0)) == len(unique)
        # Every group is used.
        assert set(inverse.tolist()) == set(range(len(unique)))
        # Zero key, when present, is group 0.
        if (keys == 0).all(axis=1).any():
            assert not unique[0].any()
        # Same number of groups as the reference finds.
        ref_unique, _ = REFERENCE.unique_shot_words(keys)
        assert len(unique) == len(ref_unique)

    @pytest.mark.parametrize("shots", [1, 63, 64, 65, 500])
    @pytest.mark.parametrize("nwords", [1, 2, 5])
    def test_random_keys(self, backend, shots, nwords):
        rng = np.random.default_rng(shots * 10 + nwords)
        keys = rng.integers(0, 3, size=(shots, nwords), dtype=np.uint64)
        self._check_grouping(keys)

    def test_all_zero(self, backend):
        self._check_grouping(np.zeros((70, 2), dtype=np.uint64))

    def test_all_distinct(self, backend):
        keys = np.arange(1, 129, dtype=np.uint64).reshape(-1, 1)
        self._check_grouping(keys)

    def test_hash_collision_repair(self, backend):
        # Rows engineered to collide under the splitmix64 fold would be
        # astronomically hard to construct; instead exercise the repair
        # path directly with a fold that collides *everything*.
        keys = np.array([[1, 0], [2, 0], [1, 0], [3, 5]], dtype=np.uint64)
        unique, inverse = kernels._unique_hashfold(
            keys, lambda k: np.zeros(len(k), dtype=np.uint64)
        )
        assert np.array_equal(unique[inverse], keys)
        assert len(unique) == 3

    def test_rejects_1d(self, backend):
        with pytest.raises(ValueError):
            kernels.unique_shot_words(np.zeros(4, dtype=np.uint64))


@settings(max_examples=30, deadline=None)
@given(
    shots=st.sampled_from([1, 63, 64, 65, 127, 200]),
    nwords=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_unique_grouping_equivalent_across_backends(shots, nwords, seed):
    """Property: every backend induces the same partition of shots."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 4, size=(shots, nwords), dtype=np.uint64)
    partitions = []
    for name in BACKENDS:
        with kernels.use_backend(name):
            unique, inverse = kernels.unique_shot_words(keys)
        assert np.array_equal(unique[inverse], keys)
        # Canonical form: group id of each shot relabeled by first use.
        first_use = {}
        canon = [first_use.setdefault(g, len(first_use)) for g in inverse.tolist()]
        partitions.append(canon)
    assert all(p == partitions[0] for p in partitions)


class TestDecoderLitmusPerBackend:
    """The full packed≡dense battery must hold under every backend."""

    @pytest.fixture(scope="class")
    def surface_dem(self):
        code = rotated_surface_code(3)
        return dem_for(
            code, nz_schedule(code), NoiseModel(p=3e-3), basis="z", rounds=3
        )

    def test_matching_packed_equals_dense(self, backend, surface_dem):
        dec = MatchingDecoder(
            surface_dem, detector_subset_for_basis(surface_dem, "z")
        )
        assert_packed_matches_dense(
            surface_dem, dec, 1000, np.random.default_rng(11)
        )
        assert_packed_matches_dense(
            surface_dem, dec, 65, np.random.default_rng(12)
        )
