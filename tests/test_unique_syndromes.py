"""Unit tests for the unique-syndrome batching kernels.

Covers the shot-axis grouping helpers in :mod:`repro.sim.bitbatch` and
the exact pairing enumeration that replaced blossom for small defect
sets in :mod:`repro.decoders.matching`.
"""

import math

import numpy as np
import pytest

from repro.circuits import nz_schedule
from repro.codes import rotated_surface_code
from repro.decoders import MatchingDecoder, detector_subset_for_basis
from repro.decoders.matching import _pairings
from repro.decoders.metrics import dem_for
from repro.gf2.bitmat import pack_rows, unpack_rows
from repro.noise import NoiseModel
from repro.sim import DemSampler
from repro.sim.bitbatch import (
    scatter_unique,
    shot_words,
    unique_shot_words,
    unpack_shots,
)

# Telephone numbers: involutions of k elements.
_INVOLUTION_COUNTS = {1: 1, 2: 2, 3: 4, 4: 10, 5: 26, 6: 76, 7: 232, 8: 764}


class TestShotWords:
    def test_round_trips_through_transpose(self):
        rng = np.random.default_rng(0)
        for shots, k in [(63, 5), (64, 5), (65, 5), (200, 70), (1, 1)]:
            dense = (rng.random((shots, k)) < 0.2).astype(np.uint8)
            packed = pack_rows(np.ascontiguousarray(dense.T))  # (k, shot words)
            keys = shot_words(packed, shots)
            assert keys.shape == (shots, max(1, (k + 63) // 64))
            # Row s of the keys is shot s's syndrome, packed.
            assert np.array_equal(unpack_rows(keys, k), dense)


class TestUniqueShotWords:
    @pytest.mark.parametrize("shots,k", [(500, 10), (500, 70), (64, 130), (1, 5)])
    def test_grouping_matches_np_unique(self, shots, k):
        rng = np.random.default_rng(shots + k)
        dense = (rng.random((shots, k)) < 0.05).astype(np.uint8)
        per_shot = pack_rows(dense)
        unique, inverse = unique_shot_words(per_shot)
        # Scattering through inverse must reproduce every shot's key...
        assert np.array_equal(unique[inverse], per_shot)
        # ...and the groups must be exactly the distinct rows.
        assert len(unique) == len(np.unique(per_shot, axis=0))

    def test_all_zero(self):
        unique, inverse = unique_shot_words(np.zeros((7, 2), dtype=np.uint64))
        assert len(unique) == 1 and not unique.any()
        assert not inverse.any()

    def test_no_zero_rows(self):
        keys = np.array([[3], [5], [3]], dtype=np.uint64)
        unique, inverse = unique_shot_words(keys)
        assert len(unique) == 2
        assert np.array_equal(unique[inverse], keys)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            unique_shot_words(np.zeros(4, dtype=np.uint64))


class TestScatterUnique:
    def test_scatters_group_values(self):
        values = np.array([[0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        inverse = np.array([2, 0, 0, 1, 2])
        packed = scatter_unique(values, inverse)
        assert np.array_equal(unpack_shots(packed, 5), values[inverse])


class TestPairingEnumeration:
    @pytest.mark.parametrize("k", sorted(_INVOLUTION_COUNTS))
    def test_counts_are_telephone_numbers(self, k):
        assert len(_pairings(k)) == _INVOLUTION_COUNTS[k]

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_patterns_partition_all_elements(self, k):
        for pairs, singles in _pairings(k):
            elems = sorted(
                [e for pair in pairs for e in pair] + list(singles)
            )
            assert elems == list(range(k))

    def test_enum_match_cost_equals_blossom(self):
        """The enumerated matching reaches the same minimum cost as the
        blossom fallback (parities may differ only on exact cost ties)."""
        code = rotated_surface_code(3)
        dem = dem_for(code, nz_schedule(code), NoiseModel(p=8e-3), basis="z")
        dec = MatchingDecoder(dem, detector_subset_for_basis(dem, "z"))
        batch = DemSampler(dem).sample_packed(300, np.random.default_rng(4))
        sub = batch.detectors_dense()[:, dec.subset]
        checked = 0
        for row in sub:
            defects = tuple(int(d) for d in np.nonzero(row)[0])
            if not 3 <= len(defects) <= 6:
                continue
            best = min(
                self_cost(dec, pairs, singles, defects)
                for pairs, singles in _pairings(len(defects))
            )
            # The enumerated optimum must equal blossom's achieved cost:
            # both are exact minimum-weight matchings of the same set.
            assert math.isclose(best, blossom_cost(dec, defects), rel_tol=1e-9)
            checked += 1
        assert checked > 5


def self_cost(dec, pairs, singles, defects):
    cost = 0.0
    for i, j in pairs:
        cost += dec.dist[defects[i], defects[j]]
    for s in singles:
        cost += dec.dist[defects[s], dec.boundary]
    return cost


def blossom_cost(dec, defects):
    import networkx as nx

    b = dec.boundary
    graph = nx.Graph()
    for i, u in enumerate(defects):
        graph.add_edge(u, -u - 1000, weight=float(dec.dist[u, b]))
        for v in defects[i + 1 :]:
            graph.add_edge(u, v, weight=float(dec.dist[u, v]))
            graph.add_edge(-u - 1000, -v - 1000, weight=0.0)
    matching = nx.algorithms.matching.min_weight_matching(graph)
    return sum(graph[a][c]["weight"] for a, c in matching)
