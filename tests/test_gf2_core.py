"""Tests for the dense GF(2) helper functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import gf2


@st.composite
def matrices(draw, max_rows=10, max_cols=24):
    m = draw(st.integers(1, max_rows))
    n = draw(st.integers(1, max_cols))
    bits = draw(
        st.lists(
            st.lists(st.integers(0, 1), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    return np.array(bits, dtype=np.uint8)


class TestRankRref:
    def test_rank_zero_matrix(self):
        assert gf2.rank(np.zeros((3, 4), dtype=np.uint8)) == 0

    def test_rank_empty(self):
        assert gf2.rank(np.zeros((0, 0), dtype=np.uint8)) == 0

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_rref_preserves_rowspace(self, a):
        reduced, pivots = gf2.rref(a)
        assert gf2.rank(np.vstack([a, reduced])) == gf2.rank(a) == len(pivots)

    def test_row_basis(self):
        a = np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        basis = gf2.row_basis(a)
        assert basis.shape[0] == 2
        assert gf2.in_rowspace(basis, a)


class TestMatmulSolve:
    def test_matmul_mod2(self):
        a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        b = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        assert np.array_equal(gf2.matmul(a, b), np.array([[0, 1], [1, 1]]))

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_solve_roundtrip(self, a):
        rng = np.random.default_rng(0)
        x_true = rng.integers(0, 2, a.shape[1], dtype=np.uint8)
        b = a.astype(int) @ x_true % 2
        x = gf2.solve(a, b)
        assert x is not None
        assert np.array_equal(a.astype(int) @ x % 2, b)

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_nullspace_is_kernel(self, a):
        ns = gf2.nullspace(a)
        assert ns.shape[0] == a.shape[1] - gf2.rank(a)
        if ns.size:
            assert not (a.astype(int) @ ns.T % 2).any()


class TestRowspaceMembership:
    def test_in_rowspace_true_false(self):
        h = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert gf2.in_rowspace(h, np.array([[1, 0, 1]], dtype=np.uint8))
        assert not gf2.in_rowspace(h, np.array([[1, 0, 0]], dtype=np.uint8))

    def test_empty_vectors_trivially_contained(self):
        h = np.array([[1, 0]], dtype=np.uint8)
        assert gf2.in_rowspace(h, np.zeros((0, 2), dtype=np.uint8))

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf2.in_rowspace(
                np.ones((1, 3), dtype=np.uint8), np.ones((1, 4), dtype=np.uint8)
            )

    def test_ambiguity_semantics(self):
        # A 1-bit repetition-style toy: two errors hit the same syndrome but
        # differ on the logical — L outside rowspace(H) flags ambiguity.
        h = np.array([[1, 1]], dtype=np.uint8)
        l_ambiguous = np.array([[1, 0]], dtype=np.uint8)
        l_safe = np.array([[1, 1]], dtype=np.uint8)
        assert not gf2.in_rowspace(h, l_ambiguous)
        assert gf2.in_rowspace(h, l_safe)


class TestMinWeight:
    def test_min_weight_codeword(self):
        basis = np.array([[1, 1, 0, 0], [0, 0, 1, 1], [1, 1, 1, 1]], dtype=np.uint8)
        v = gf2.min_weight_in_affine(basis)
        assert v.sum() == 2

    def test_min_weight_affine(self):
        basis = np.array([[1, 1, 0]], dtype=np.uint8)
        offset = np.array([1, 1, 1], dtype=np.uint8)
        v = gf2.min_weight_in_affine(basis, offset)
        assert v.sum() == 1

    def test_limit_enforced(self):
        with pytest.raises(ValueError):
            gf2.min_weight_in_affine(np.eye(25, dtype=np.uint8))
