"""Tests for the memory-experiment builder, verified by the tableau sim."""

import numpy as np
import pytest

from repro.circuits import (
    build_memory_experiment,
    coloration_schedule,
    nz_schedule,
    poor_schedule,
)
from repro.codes import load_benchmark_code, rotated_surface_code, steane_code
from repro.sim import verify_deterministic_detectors


@pytest.fixture(scope="module")
def d3():
    return rotated_surface_code(3)


class TestStructure:
    def test_qubit_layout(self, d3):
        exp = build_memory_experiment(d3, nz_schedule(d3), rounds=2)
        assert exp.circuit.num_qubits == d3.n + d3.num_x_stabs + d3.num_z_stabs

    def test_measurement_count(self, d3):
        rounds = 3
        exp = build_memory_experiment(d3, nz_schedule(d3), rounds=rounds)
        expected = rounds * (d3.num_x_stabs + d3.num_z_stabs) + d3.n
        assert exp.circuit.num_measurements == expected

    def test_detector_count_memory_z(self, d3):
        rounds = 3
        exp = build_memory_experiment(d3, nz_schedule(d3), rounds=rounds, basis="z")
        # Round 0: z stabs only; rounds 1..r-1: all stabs; final: z stabs.
        expected = (
            d3.num_z_stabs
            + (rounds - 1) * (d3.num_x_stabs + d3.num_z_stabs)
            + d3.num_z_stabs
        )
        assert exp.circuit.num_detectors == expected
        assert len(exp.detector_labels) == expected

    def test_observable_count_matches_k(self):
        code = load_benchmark_code("lp39")
        exp = build_memory_experiment(code, coloration_schedule(code), rounds=2)
        assert exp.circuit.num_observables == code.k

    def test_cnot_count_is_rounds_times_tanner_edges(self, d3):
        rounds = 2
        exp = build_memory_experiment(d3, nz_schedule(d3), rounds=rounds)
        edges = int(d3.hx.sum() + d3.hz.sum())
        assert exp.circuit.count_gate("CNOT") == rounds * edges

    def test_rejects_invalid_schedule(self, d3):
        bad = nz_schedule(d3)
        overlap = np.argwhere(d3.hx.astype(int) @ d3.hz.T.astype(int))[0]
        xs, zs = int(overlap[0]), int(overlap[1])
        q = int(np.nonzero(d3.hx[xs] & d3.hz[zs])[0][0])
        bad.swap_relative_order(q, ("x", xs), ("z", zs))
        with pytest.raises(ValueError):
            build_memory_experiment(d3, bad, rounds=1)

    def test_rejects_bad_basis_and_rounds(self, d3):
        with pytest.raises(ValueError):
            build_memory_experiment(d3, nz_schedule(d3), rounds=1, basis="y")
        with pytest.raises(ValueError):
            build_memory_experiment(d3, nz_schedule(d3), rounds=0)

    def test_detector_labels_stable_across_schedules(self, d3):
        a = build_memory_experiment(d3, nz_schedule(d3), rounds=2)
        b = build_memory_experiment(d3, poor_schedule(d3), rounds=2)
        assert a.detector_labels == b.detector_labels


class TestDeterminism:
    """Noiseless detectors must always be zero — the §5.4 validity oracle."""

    @pytest.mark.parametrize("basis", ["z", "x"])
    def test_surface_nz(self, d3, basis):
        exp = build_memory_experiment(d3, nz_schedule(d3), rounds=2, basis=basis)
        assert verify_deterministic_detectors(exp.circuit)

    @pytest.mark.parametrize("basis", ["z", "x"])
    def test_surface_coloration(self, d3, basis):
        exp = build_memory_experiment(
            d3, coloration_schedule(d3), rounds=2, basis=basis
        )
        assert verify_deterministic_detectors(exp.circuit)

    @pytest.mark.parametrize("name", ["lp39", "rqt60"])
    def test_ldpc_codes(self, name):
        code = load_benchmark_code(name)
        exp = build_memory_experiment(code, coloration_schedule(code), rounds=2)
        assert verify_deterministic_detectors(exp.circuit, trials=2)

    def test_steane(self):
        code = steane_code()
        exp = build_memory_experiment(code, coloration_schedule(code), rounds=2)
        assert verify_deterministic_detectors(exp.circuit)

    def test_random_colorations_remain_deterministic(self, d3):
        for seed in range(3):
            sched = coloration_schedule(d3, np.random.default_rng(seed))
            exp = build_memory_experiment(d3, sched, rounds=2)
            assert verify_deterministic_detectors(exp.circuit, trials=2)

    def test_broken_commutation_breaks_detectors(self, d3):
        """A single X/Z swap (invalid circuit) must show up as random
        detectors — proving the oracle actually detects the failure mode."""
        from repro.circuits.builder import build_memory_experiment as build

        bad = nz_schedule(d3)
        overlap = np.argwhere(d3.hx.astype(int) @ d3.hz.T.astype(int))[0]
        xs, zs = int(overlap[0]), int(overlap[1])
        q = int(np.nonzero(d3.hx[xs] & d3.hz[zs])[0][0])
        bad.swap_relative_order(q, ("x", xs), ("z", zs))
        assert not bad.is_valid()
        # Bypass the builder's validity gate to test the oracle itself.
        bad_check = lambda: True
        orig = type(bad).is_valid
        try:
            type(bad).is_valid = lambda self: True
            exp = build(d3, bad, rounds=2, basis="z")
        finally:
            type(bad).is_valid = orig
        assert not verify_deterministic_detectors(exp.circuit, trials=4)
