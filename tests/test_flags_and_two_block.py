"""Tests for the flag-qubit extension and two-block (GB) codes."""

import numpy as np
import pytest

from repro import gf2
from repro.analysis.deff import estimate_effective_distance
from repro.circuits import (
    build_flagged_memory_experiment,
    build_memory_experiment,
    coloration_schedule,
    nz_schedule,
    poor_schedule,
)
from repro.circuits.flags import _flag_plan
from repro.codes import (
    cyclic_group,
    dihedral_group,
    gb18_code,
    gb24_code,
    rotated_surface_code,
    two_block_code,
)
from repro.codes.distance import estimate_distance
from repro.core import DecodingGraph, find_ambiguous_subgraph
from repro.core.minweight import solve_min_weight_logical
from repro.noise import NoiseModel
from repro.sim import extract_dem, verify_deterministic_detectors


class TestTwoBlockCodes:
    def test_gb18_parameters(self):
        code = gb18_code()
        assert (code.n, code.k, code.distance) == (18, 2, 3)
        est = estimate_distance(code, iterations=60, rng=np.random.default_rng(0))
        assert est == 3

    def test_gb24_parameters(self):
        code = gb24_code()
        assert (code.n, code.k, code.distance) == (24, 2, 4)

    def test_weight4_stabilizers(self):
        weights = gb18_code().stabilizer_weights()
        assert set(weights["x"]) == {4} and set(weights["z"]) == {4}

    def test_commutation_over_nonabelian_group(self):
        code = two_block_code(dihedral_group(4), [0, 2], [1, 5])
        assert code.n == 16
        assert not gf2.matmul(code.hx, code.hz.T).any()

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            two_block_code(cyclic_group(3), [], [0])

    def test_gb_code_circuit_builds_and_verifies(self):
        code = gb18_code()
        sched = coloration_schedule(code)
        assert sched.is_valid()
        exp = build_memory_experiment(code, sched, rounds=2)
        assert verify_deterministic_detectors(exp.circuit, trials=2)


class TestFlagPlan:
    def test_weight2_stabs_get_no_flag(self):
        code = rotated_surface_code(3)
        flag_of, _, _ = _flag_plan(code, nz_schedule(code), min_flag_weight=4)
        for (kind, s) in flag_of:
            matrix = code.hx if kind == "x" else code.hz
            assert int(matrix[s].sum()) >= 4

    def test_flag_count_for_d3(self):
        code = rotated_surface_code(3)
        flag_of, _, _ = _flag_plan(code, nz_schedule(code), min_flag_weight=4)
        # d=3 has 2 weight-4 X stabs and 2 weight-4 Z stabs.
        assert len(flag_of) == 4

    def test_open_before_close(self):
        code = rotated_surface_code(5)
        flag_of, opens, closes = _flag_plan(code, nz_schedule(code), 4)
        open_gap = {}
        for g, entries in opens.items():
            for key in entries:
                open_gap[key] = g
        for g, entries in closes.items():
            for key in entries:
                assert open_gap[key] <= g


class TestFlaggedCircuits:
    @pytest.mark.parametrize("basis", ["z", "x"])
    def test_detectors_deterministic(self, basis):
        code = rotated_surface_code(3)
        exp = build_flagged_memory_experiment(
            code, poor_schedule(code), rounds=2, basis=basis
        )
        assert verify_deterministic_detectors(exp.circuit, trials=3)

    def test_qubit_and_detector_counts(self):
        code = rotated_surface_code(3)
        exp = build_flagged_memory_experiment(code, nz_schedule(code), rounds=2)
        # 9 data + 8 ancilla + 4 flags.
        assert exp.circuit.num_qubits == 21
        flag_dets = [
            label for label in exp.detector_labels if str(label[1]).startswith("f")
        ]
        assert len(flag_dets) == 2 * 4  # 4 flags x 2 rounds

    def test_flags_restore_effective_distance(self):
        """The headline flag result: the poor schedule's weight-2 hooks
        become detected, pushing min logical weight back to d = 3."""
        code = rotated_surface_code(3)
        exp = build_flagged_memory_experiment(
            code, poor_schedule(code), rounds=3, basis="z"
        )
        dem = extract_dem(NoiseModel(p=1e-3).apply(exp.circuit))
        graph = DecodingGraph(dem)
        rng = np.random.default_rng(0)
        weights = []
        for _ in range(40):
            sub = find_ambiguous_subgraph(graph, rng)
            if sub is None:
                continue
            sol = solve_min_weight_logical(sub, rng)
            if sol is not None:
                weights.append(sol.weight)
        assert weights and min(weights) == 3

    def test_unflagged_poor_schedule_is_worse(self):
        """Control for the test above: without flags the same schedule
        has weight-2 logicals."""
        code = rotated_surface_code(3)
        est = estimate_effective_distance(
            code, poor_schedule(code), samples=30, rng=np.random.default_rng(0)
        )
        assert est.deff == 2

    def test_flagged_circuit_is_deeper(self):
        code = rotated_surface_code(3)
        plain = build_memory_experiment(code, nz_schedule(code), rounds=2)
        flagged = build_flagged_memory_experiment(code, nz_schedule(code), rounds=2)
        assert flagged.circuit.num_layers() > plain.circuit.num_layers()
        assert flagged.circuit.count_gate("CNOT") > plain.circuit.count_gate("CNOT")

    def test_invalid_inputs(self):
        code = rotated_surface_code(3)
        with pytest.raises(ValueError):
            build_flagged_memory_experiment(code, nz_schedule(code), rounds=0)
        with pytest.raises(ValueError):
            build_flagged_memory_experiment(
                code, nz_schedule(code), rounds=1, basis="y"
            )
