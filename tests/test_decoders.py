"""Tests for the decoders: matching, BP+OSD, lookup, and the LER pipeline."""

import numpy as np
import pytest

from repro.circuits import coloration_schedule, nz_schedule
from repro.codes import load_benchmark_code, rotated_surface_code
from repro.decoders import (
    BpOsdDecoder,
    LookupDecoder,
    MatchingDecoder,
    detector_subset_for_basis,
    estimate_logical_error_rate,
    make_decoder,
)
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel
from repro.sim import DemSampler, extract_dem


@pytest.fixture(scope="module")
def surface_dem():
    code = rotated_surface_code(3)
    return dem_for(code, nz_schedule(code), NoiseModel(p=2e-3), basis="z", rounds=3)


@pytest.fixture(scope="module")
def lp_dem():
    code = load_benchmark_code("lp39")
    return dem_for(
        code, coloration_schedule(code), NoiseModel(p=1e-3), basis="z", rounds=2
    )


class TestMatchingDecoder:
    def test_trivial_syndrome_decodes_trivially(self, surface_dem):
        dec = MatchingDecoder(
            surface_dem, detector_subset_for_basis(surface_dem, "z")
        )
        zeros = np.zeros((5, surface_dem.num_detectors), dtype=np.uint8)
        assert not dec.decode_batch(zeros).any()

    def test_single_mechanism_syndromes_decode_correctly(self, surface_dem):
        """Firing any single mechanism must be decoded without a logical
        error — weight-1 errors are always correctable at d=3."""
        subset = detector_subset_for_basis(surface_dem, "z")
        dec = MatchingDecoder(surface_dem, subset)
        for m in surface_dem.mechanisms[:80]:
            det = np.zeros((1, surface_dem.num_detectors), dtype=np.uint8)
            for d in m.detectors:
                det[0, d] = 1
            obs = np.zeros((1, surface_dem.num_observables), dtype=np.uint8)
            for o in m.observables:
                obs[0, o] = 1
            assert not dec.logical_failures(det, obs)[0]

    def test_monte_carlo_beats_raw_rate(self, surface_dem):
        sampler = DemSampler(surface_dem)
        batch = sampler.sample(5000, np.random.default_rng(0))
        dec = MatchingDecoder(
            surface_dem, detector_subset_for_basis(surface_dem, "z")
        )
        failures = dec.logical_failures(batch.detectors, batch.observables)
        assert failures.mean() < batch.observables.mean()

    def test_rejects_non_graphlike(self, lp_dem):
        with pytest.raises(ValueError):
            MatchingDecoder(lp_dem, detector_subset_for_basis(lp_dem, "z"))


class TestBpOsd:
    def test_trivial_syndrome(self, lp_dem):
        dec = BpOsdDecoder(lp_dem)
        zeros = np.zeros((3, lp_dem.num_detectors), dtype=np.uint8)
        assert not dec.decode_batch(zeros).any()

    def test_single_mechanisms_decode(self, lp_dem):
        dec = BpOsdDecoder(lp_dem)
        dets = []
        obss = []
        for m in lp_dem.mechanisms[:60]:
            det = np.zeros(lp_dem.num_detectors, dtype=np.uint8)
            det[list(m.detectors)] = 1
            obs = np.zeros(lp_dem.num_observables, dtype=np.uint8)
            obs[list(m.observables)] = 1
            dets.append(det)
            obss.append(obs)
        failures = dec.logical_failures(np.array(dets), np.array(obss))
        assert failures.mean() < 0.1  # single faults nearly always decoded

    def test_monte_carlo_decoding_works(self, lp_dem):
        sampler = DemSampler(lp_dem)
        batch = sampler.sample(1500, np.random.default_rng(0))
        dec = BpOsdDecoder(lp_dem)
        failures = dec.logical_failures(batch.detectors, batch.observables)
        assert failures.mean() < batch.observables.any(axis=1).mean()

    def test_cache_consistency(self, lp_dem):
        dec = BpOsdDecoder(lp_dem)
        batch = DemSampler(lp_dem).sample(200, np.random.default_rng(1))
        first = dec.decode_batch(batch.detectors)
        second = dec.decode_batch(batch.detectors)
        assert np.array_equal(first, second)

    def test_osd_disabled_still_runs(self, lp_dem):
        dec = BpOsdDecoder(lp_dem, osd=False)
        batch = DemSampler(lp_dem).sample(100, np.random.default_rng(2))
        out = dec.decode_batch(batch.detectors)
        assert out.shape == (100, lp_dem.num_observables)


class TestLookupDecoder:
    def test_exact_on_tiny_dem(self):
        from repro.circuits import Circuit

        c = Circuit()
        c.append("R", [0, 1, 2])
        c.append("DEPOLARIZE1", [0, 1, 2], args=[0.03])
        c.append("CNOT", [0, 2])
        c.append("CNOT", [1, 2])
        c.append("M", [0, 1, 2])
        c.append("DETECTOR", [2])
        c.append("OBSERVABLE_INCLUDE", [0], args=[0])
        dem = extract_dem(c)
        dec = LookupDecoder(dem)
        sampler = DemSampler(dem)
        batch = sampler.sample(4000, np.random.default_rng(0))
        failures = dec.logical_failures(batch.detectors, batch.observables)
        # MLE is optimal; failure rate bounded by the ambiguous mass.
        assert failures.mean() < 0.05

    def test_too_many_errors_rejected(self, surface_dem):
        with pytest.raises(ValueError):
            LookupDecoder(surface_dem)


class TestMakeDecoder:
    def test_auto_picks_matching_for_surface(self, surface_dem):
        assert isinstance(make_decoder(surface_dem, "z"), MatchingDecoder)

    def test_auto_falls_back_to_bposd(self, lp_dem):
        assert isinstance(make_decoder(lp_dem, "z"), BpOsdDecoder)

    def test_explicit_matching_raises_on_ldpc(self, lp_dem):
        with pytest.raises(ValueError):
            make_decoder(lp_dem, "z", "matching")

    def test_unknown_kind(self, surface_dem):
        with pytest.raises(ValueError):
            make_decoder(surface_dem, "z", "magic")


class TestPipeline:
    def test_distance_ordering_at_low_p(self):
        """d=5 must beat d=3 below threshold — the defining QEC property."""
        rng = np.random.default_rng(0)
        p = 1e-3
        d3 = rotated_surface_code(3)
        d5 = rotated_surface_code(5)
        r3 = estimate_logical_error_rate(
            d3, nz_schedule(d3), p=p, shots=6000, rng=rng
        )
        r5 = estimate_logical_error_rate(
            d5, nz_schedule(d5), p=p, shots=6000, rng=rng
        )
        assert r5.rate < r3.rate

    def test_rate_monotone_in_p(self):
        rng = np.random.default_rng(0)
        code = rotated_surface_code(3)
        sched = nz_schedule(code)
        lo = estimate_logical_error_rate(code, sched, p=1e-3, shots=6000, rng=rng)
        hi = estimate_logical_error_rate(code, sched, p=8e-3, shots=6000, rng=rng)
        assert hi.rate > lo.rate

    def test_max_failures_caps_work(self):
        code = rotated_surface_code(3)
        r = estimate_logical_error_rate(
            code,
            nz_schedule(code),
            p=2e-2,
            shots=50_000,
            max_failures=20,
            rng=np.random.default_rng(0),
            batch_size=500,
        )
        assert r.shots < 50_000

    def test_result_combines_bases(self):
        code = rotated_surface_code(3)
        r = estimate_logical_error_rate(
            code, nz_schedule(code), p=3e-3, shots=1000, rng=np.random.default_rng(0)
        )
        assert set(r.per_basis) == {"z", "x"}
        pz = r.per_basis["z"].estimate.rate
        px = r.per_basis["x"].estimate.rate
        assert r.rate == pytest.approx(1 - (1 - pz) * (1 - px))
