"""Sliding-window streaming decode: correctness and SLO accounting.

The load-bearing invariant: committed corrections out of
``WindowedDecoder`` are **bit-identical** to offline
``decode_batch_packed`` on the same shots — for all three decoder
families, any window/commit schedule, and shot counts straddling the
64-bit word boundary (the sub-word edges 1/63/64/65).  On top of that,
round-layout derivation from DEM labels, stream/report accounting
(latency lists, deadline misses, backlog), and the obs instruments.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.circuits import Circuit, coloration_schedule
from repro.circuits.builder import FINAL_ROUND
from repro.codes import load_benchmark_code, rotated_surface_code
from repro.decoders import (
    BpOsdDecoder,
    LookupDecoder,
    MatchingDecoder,
    detector_subset_for_basis,
)
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel
from repro.sim import DemSampler, extract_dem
from repro.sim.dem import DetectorErrorModel, ErrorMechanism
from repro.streaming import (
    RoundLayout,
    RoundStream,
    StreamReport,
    WindowConfig,
    WindowedDecoder,
    stream_decode,
)

SUBWORD_SHOTS = (1, 63, 64, 65)


@pytest.fixture(scope="module")
def surface_dem():
    code = rotated_surface_code(3)
    return dem_for(
        code, coloration_schedule(code), NoiseModel(p=3e-3), basis="z", rounds=3
    )


@pytest.fixture(scope="module")
def tiny_dem():
    """A DEM small enough for the exact lookup decoder."""
    c = Circuit()
    c.append("R", [0, 1, 2])
    c.append("DEPOLARIZE1", [0, 1, 2], args=[0.05])
    c.append("CNOT", [0, 2])
    c.append("CNOT", [1, 2])
    c.append("DEPOLARIZE1", [0, 1, 2], args=[0.05])
    c.append("M", [0, 1, 2])
    c.append("DETECTOR", [2])
    c.append("OBSERVABLE_INCLUDE", [0], args=[0])
    c.append("OBSERVABLE_INCLUDE", [1], args=[0])
    return extract_dem(c)


def windowed_corrections(dem, dec, batch, window, layout=None):
    layout = layout or RoundLayout.from_dem(dem)
    wd = WindowedDecoder(
        decoder=dec, layout=layout, shots=batch.shots, window=window
    )
    commits = [wd.push(rnd) for rnd in RoundStream(batch, layout)]
    committed = wd.finish()
    return committed, [c for c in commits if c is not None], wd


# -- round layout -------------------------------------------------------------


class TestRoundLayout:
    def test_from_dem_groups_by_label_round(self, surface_dem):
        layout = RoundLayout.from_dem(surface_dem)
        # 3 measurement rounds + the final data-parity group.
        assert layout.num_rounds == 4
        # Slices are contiguous and cover every detector exactly once.
        assert layout.slices[0][0] == 0
        for (_, stop), (start, _) in zip(layout.slices, layout.slices[1:]):
            assert stop == start
        assert layout.slices[-1][1] == surface_dem.num_detectors
        # The closing slice is the FINAL_ROUND data-parity group.
        start, _ = layout.slices[-1]
        assert surface_dem.detector_labels[start][0] == FINAL_ROUND

    def test_unlabeled_dem_falls_back_to_per_detector(self):
        dem = DetectorErrorModel(
            mechanisms=[
                ErrorMechanism(
                    prob=0.1, detectors=(d,), observables=(0,), sources=()
                )
                for d in range(5)
            ],
            num_detectors=5,
            num_observables=1,
        )
        layout = RoundLayout.from_dem(dem)
        assert layout.num_rounds == 5
        assert layout.slices == tuple((i, i + 1) for i in range(5))

    def test_even_split_covers_everything(self):
        layout = RoundLayout.even(10, 4)
        assert layout.num_rounds == 4
        assert layout.slices[0][0] == 0
        assert layout.slices[-1][1] == 10
        assert sum(stop - start for start, stop in layout.slices) == 10

    def test_even_rejects_nonpositive_rounds(self):
        with pytest.raises(ValueError):
            RoundLayout.even(10, 0)

    def test_stream_rejects_mismatched_layout(self, surface_dem):
        batch = DemSampler(surface_dem).sample_packed(
            8, np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="detectors"):
            RoundStream(batch, RoundLayout.per_detector(3))


# -- window/commit schedule validation ---------------------------------------


class TestWindowConfig:
    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            WindowConfig(window_rounds=0)

    @pytest.mark.parametrize("commit", [0, 4])
    def test_rejects_commit_outside_window(self, commit):
        with pytest.raises(ValueError):
            WindowConfig(window_rounds=3, commit_rounds=commit)

    def test_push_out_of_order_rejected(self, surface_dem):
        layout = RoundLayout.from_dem(surface_dem)
        batch = DemSampler(surface_dem).sample_packed(
            8, np.random.default_rng(0)
        )
        stream = RoundStream(batch, layout)
        dec = MatchingDecoder(
            surface_dem, detector_subset_for_basis(surface_dem, "z")
        )
        wd = WindowedDecoder(decoder=dec, layout=layout, shots=8)
        with pytest.raises(ValueError, match="order"):
            wd.push(stream.round(1))

    def test_finish_before_stream_end_rejected(self, surface_dem):
        layout = RoundLayout.from_dem(surface_dem)
        batch = DemSampler(surface_dem).sample_packed(
            8, np.random.default_rng(0)
        )
        dec = MatchingDecoder(
            surface_dem, detector_subset_for_basis(surface_dem, "z")
        )
        wd = WindowedDecoder(decoder=dec, layout=layout, shots=8)
        wd.push(RoundStream(batch, layout).round(0))
        with pytest.raises(ValueError, match="finish"):
            wd.finish()


# -- the pinned invariant: committed ≡ offline decode_batch_packed ------------


class TestBitIdentity:
    @pytest.mark.parametrize("shots", [*SUBWORD_SHOTS, 200])
    @pytest.mark.parametrize(
        "window", [(1, 1), (2, 1), (3, 2), (4, 4)], ids=lambda w: f"w{w[0]}c{w[1]}"
    )
    def test_matching_surface(self, surface_dem, shots, window):
        dec = MatchingDecoder(
            surface_dem, detector_subset_for_basis(surface_dem, "z")
        )
        batch = DemSampler(surface_dem).sample_packed(
            shots, np.random.default_rng(shots * 7 + window[0])
        )
        committed, commits, _ = windowed_corrections(
            surface_dem, dec, batch, WindowConfig(*window)
        )
        offline = dec.decode_batch_packed(batch)
        assert np.array_equal(committed.observables, offline.observables)
        assert commits, "window must have committed at least once via push"

    @pytest.mark.parametrize("shots", SUBWORD_SHOTS)
    def test_bposd_surface(self, surface_dem, shots):
        dec = BpOsdDecoder(surface_dem)
        batch = DemSampler(surface_dem).sample_packed(
            shots, np.random.default_rng(shots)
        )
        committed, _, _ = windowed_corrections(
            surface_dem, dec, batch, WindowConfig(2, 1)
        )
        offline = dec.decode_batch_packed(batch)
        assert np.array_equal(committed.observables, offline.observables)

    @pytest.mark.parametrize("shots", SUBWORD_SHOTS)
    def test_lookup_tiny(self, tiny_dem, shots):
        dec = LookupDecoder(tiny_dem)
        batch = DemSampler(tiny_dem).sample_packed(
            shots, np.random.default_rng(shots + 1)
        )
        committed, _, _ = windowed_corrections(
            tiny_dem, dec, batch, WindowConfig(1, 1)
        )
        offline = dec.decode_batch_packed(batch)
        assert np.array_equal(committed.observables, offline.observables)

    def test_revisions_are_counted_not_hidden(self, surface_dem):
        """Single-round commits at real noise revise some speculative
        corrections; the counter must see every changed shot."""
        dec = MatchingDecoder(
            surface_dem, detector_subset_for_basis(surface_dem, "z")
        )
        batch = DemSampler(surface_dem).sample_packed(
            2000, np.random.default_rng(5)
        )
        committed, commits, wd = windowed_corrections(
            surface_dem, dec, batch, WindowConfig(1, 1)
        )
        assert wd.revised_shots == sum(c.revised_shots for c in commits)
        assert np.array_equal(
            committed.observables, dec.decode_batch_packed(batch).observables
        )


@st.composite
def streaming_dems(draw):
    """Small unlabeled DEMs (per-detector fallback layout), graph-like so
    matching accepts them and tiny enough for exact lookup."""
    num_detectors = draw(st.integers(min_value=1, max_value=5))
    num_observables = draw(st.integers(min_value=1, max_value=2))
    mechanisms = []
    for d in range(num_detectors):
        mechanisms.append(
            ErrorMechanism(
                prob=draw(st.floats(min_value=0.01, max_value=0.3)),
                detectors=(d,),
                observables=tuple(
                    sorted(
                        draw(
                            st.sets(
                                st.integers(0, num_observables - 1), max_size=1
                            )
                        )
                    )
                ),
                sources=(),
            )
        )
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        dets = draw(
            st.sets(st.integers(0, num_detectors - 1), min_size=0, max_size=2)
        )
        mechanisms.append(
            ErrorMechanism(
                prob=draw(st.floats(min_value=0.01, max_value=0.3)),
                detectors=tuple(sorted(dets)),
                observables=tuple(
                    sorted(
                        draw(
                            st.sets(
                                st.integers(0, num_observables - 1), max_size=1
                            )
                        )
                    )
                ),
                sources=(),
            )
        )
    return DetectorErrorModel(
        mechanisms=mechanisms,
        num_detectors=num_detectors,
        num_observables=num_observables,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    dem=streaming_dems(),
    shots=st.sampled_from([1, 63, 64, 65, 200]),
    window_rounds=st.integers(min_value=1, max_value=4),
    commit_rounds=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_windowed_equals_offline_property(
    dem, shots, window_rounds, commit_rounds, seed
):
    """Any window/commit schedule, any word-boundary shot count, both
    cheap decoder families: committed ≡ offline, bit for bit."""
    window = WindowConfig(
        window_rounds, min(commit_rounds, window_rounds)
    )
    batch = DemSampler(dem).sample_packed(shots, np.random.default_rng(seed))
    for dec in (LookupDecoder(dem), MatchingDecoder(dem)):
        committed, _, _ = windowed_corrections(dem, dec, batch, window)
        offline = dec.decode_batch_packed(batch)
        assert np.array_equal(committed.observables, offline.observables)


# -- the paced runner and its SLO report --------------------------------------


class TestStreamDecode:
    def test_free_run_report(self, surface_dem):
        report = stream_decode(
            surface_dem,
            shots=200,
            rng=np.random.default_rng(0),
            window=WindowConfig(2, 1),
        )
        assert report.rounds == 4
        assert len(report.round_latencies_s) == report.rounds
        assert report.matches_offline is True
        assert report.deadline_s is None and report.deadline_misses == 0
        assert report.max_backlog == 0
        assert report.rounds_per_sec > 0
        assert report.p50_round_s <= report.p99_round_s <= report.max_round_s
        d = report.to_dict()
        assert d["rounds"] == 4 and d["matches_offline"] is True

    def test_paced_deadline_misses_are_counted(self, surface_dem):
        # An impossible deadline: every round must miss it.
        report = stream_decode(
            surface_dem,
            shots=64,
            rng=np.random.default_rng(1),
            rounds_per_sec=10_000.0,
            deadline_s=1e-12,
        )
        assert report.deadline_misses == report.rounds
        assert report.deadline_s == 1e-12

    def test_paced_default_deadline_is_round_period(self, surface_dem):
        report = stream_decode(
            surface_dem,
            shots=64,
            rng=np.random.default_rng(2),
            rounds_per_sec=50.0,
        )
        assert report.deadline_s == pytest.approx(1 / 50.0)
        assert report.target_rounds_per_sec == 50.0

    def test_failures_match_offline_count(self, surface_dem):
        rng_seed = 9
        report = stream_decode(
            surface_dem, shots=2000, rng=np.random.default_rng(rng_seed)
        )
        from repro.decoders.metrics import make_decoder

        dec = make_decoder(surface_dem, "z", "auto")
        batch = DemSampler(surface_dem).sample_packed(
            2000, np.random.default_rng(rng_seed)
        )
        assert report.failures == dec.count_failures_packed(batch)

    def test_empty_report_quantiles(self):
        report = StreamReport(
            shots=0, rounds=0, window_rounds=1, commit_rounds=1
        )
        assert report.p50_round_s == 0.0
        assert report.max_round_s == 0.0
        assert report.rounds_per_sec == 0.0

    def test_obs_instruments_record(self, surface_dem, tmp_path):
        obs.registry.reset()
        with obs.enabled_to(True):
            report = stream_decode(
                surface_dem, shots=64, rng=np.random.default_rng(3)
            )
            snap = obs.snapshot()
        hist = snap["histograms"]["stream.round_s"]
        assert hist["count"] >= report.rounds
        assert snap["histograms"]["stream.commit_s"]["count"] >= 1
        assert snap["counters"]["stream.rounds"] >= report.rounds
        obs.registry.reset()

    def test_stream_decode_off_instruments_is_bit_identical(self, surface_dem):
        """Telemetry must never change results: same seed, instrumented
        or not, same committed corrections and failure count."""
        a = stream_decode(
            surface_dem, shots=200, rng=np.random.default_rng(11)
        )
        obs.registry.reset()
        with obs.enabled_to(True):
            b = stream_decode(
                surface_dem, shots=200, rng=np.random.default_rng(11)
            )
        obs.registry.reset()
        assert a.failures == b.failures
        assert a.matches_offline is True and b.matches_offline is True


class TestDriftingScenarioStreaming:
    """The round-folding audit for round-indexed drift.

    Drift changes per-round mechanism *probabilities* but never touches
    detector labels, so (a) the layout derived from a drifting DEM must
    be identical to the uniform one, and (b) the windowed-commit
    bit-identity contract must hold unchanged on drifting syndromes.
    """

    def _dems(self):
        from repro.noise import DeviceProfile, DriftSchedule, NoiseSpec

        code = rotated_surface_code(3)
        sched = coloration_schedule(code)
        uniform = NoiseSpec.depolarizing(3e-3, readout=2e-3)
        drifting = NoiseSpec.depolarizing(
            3e-3,
            readout=2e-3,
            crosstalk=1e-3,
            profile=DeviceProfile(qubits={0: 1.8, 5: 0.6}),
            drift=DriftSchedule.linear(0.6, 1.8, 3),
        )
        return (
            dem_for(code, sched, uniform, basis="z", rounds=3),
            dem_for(code, sched, drifting, basis="z", rounds=3),
        )

    def test_drift_preserves_round_layout(self):
        uniform_dem, drifting_dem = self._dems()
        assert (
            RoundLayout.from_dem(drifting_dem).slices
            == RoundLayout.from_dem(uniform_dem).slices
        )
        # ...but the error model itself really is different physics.
        assert drifting_dem.fingerprint() != uniform_dem.fingerprint()
        assert drifting_dem.num_detectors == uniform_dem.num_detectors

    @pytest.mark.parametrize("shots", SUBWORD_SHOTS)
    def test_windowed_commit_bit_identity_under_drift(self, shots):
        _, drifting_dem = self._dems()
        batch = DemSampler(drifting_dem).sample_packed(
            shots, np.random.default_rng(17)
        )
        # Crosstalk mechanisms flip two readouts at once (hyperedges),
        # so the drifting DEM is not graph-like — BP+OSD decodes it.
        dec = BpOsdDecoder(drifting_dem)
        committed, _, _ = windowed_corrections(
            drifting_dem, dec, batch, WindowConfig(2, 1)
        )
        offline = dec.decode_batch_packed(batch)
        assert np.array_equal(committed.observables, offline.observables)
