"""Tests for the weight-stratified rare-event estimation subsystem.

Pins the three claims the subsystem rests on: the Poisson-binomial
weight distribution is *exact* (brute-force enumeration), the
fixed-weight sampler draws from the *true conditional* distribution
(marginal inclusion frequencies), and the stratified estimator is an
*unbiased, worker-count-independent* replacement for direct Monte
Carlo (cross-check within confidence intervals on real DEMs).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import coloration_schedule, nz_schedule
from repro.codes import load_benchmark_code, rotated_surface_code
from repro.decoders.metrics import dem_for
from repro.experiments.shotrunner import run_shot_chunks, run_stratified_chunks
from repro.noise import NoiseModel
from repro.rareevent import (
    WeightStratifiedSampler,
    estimate_ler_stratified,
    log_weight_distribution,
    plan_strata,
)
from repro.rareevent.estimator import StratifiedEstimate, StratumEstimate
from repro.sim.dem import DetectorErrorModel, ErrorMechanism


def brute_force_pmf(probs: np.ndarray, kmax: int) -> tuple[np.ndarray, float]:
    """Exact weight pmf by enumerating all 2^E subsets (E <= ~15)."""
    num = len(probs)
    masks = np.arange(1 << num, dtype=np.int64)
    bits = (masks[:, None] >> np.arange(num)) & 1
    weights = bits.sum(axis=1)
    terms = np.where(bits == 1, probs, 1.0 - probs).prod(axis=1)
    pmf = np.array(
        [terms[weights == k].sum() for k in range(kmax + 1)], dtype=np.float64
    )
    tail = terms[weights > kmax].sum()
    return pmf, float(tail)


def tiny_dem(probs, num_detectors=2) -> DetectorErrorModel:
    """A synthetic DEM whose mechanisms have the given probabilities."""
    mechanisms = [
        ErrorMechanism(
            prob=float(p),
            detectors=(j % num_detectors,),
            observables=(0,) if j % 3 == 0 else (),
            sources=(),
        )
        for j, p in enumerate(probs)
    ]
    return DetectorErrorModel(
        mechanisms=mechanisms, num_detectors=num_detectors, num_observables=1
    )


class TestWeightDistribution:
    @settings(max_examples=30, deadline=None)
    @given(
        probs=st.lists(
            st.floats(min_value=1e-6, max_value=0.95), min_size=1, max_size=12
        ),
        kmax=st.integers(min_value=0, max_value=6),
    )
    def test_matches_brute_force_enumeration(self, probs, kmax):
        probs = np.array(probs)
        dist = log_weight_distribution(probs, kmax)
        pmf, tail = brute_force_pmf(probs, kmax)
        np.testing.assert_allclose(
            np.exp(dist.log_pmf[: kmax + 1]), pmf, rtol=1e-10, atol=1e-300
        )
        assert math.exp(dist.log_tail) == pytest.approx(tail, rel=1e-10, abs=1e-15)

    def test_survival_function(self):
        probs = np.array([0.1, 0.2, 0.3, 0.05])
        dist = log_weight_distribution(probs, 3)
        pmf, tail = brute_force_pmf(probs, 3)
        for k in range(4):
            expected = pmf[k + 1 :].sum() + tail
            assert math.exp(dist.log_sf(k)) == pytest.approx(expected, rel=1e-10)

    def test_window_wider_than_mechanism_count_pads(self):
        dist = log_weight_distribution(np.array([0.25, 0.25]), 5)
        assert dist.max_weight == 5
        assert np.isneginf(dist.log_pmf[3:]).all()
        assert np.isneginf(dist.log_tail)

    def test_stable_for_many_mechanisms(self):
        rng = np.random.default_rng(0)
        probs = np.exp(rng.uniform(np.log(1e-7), np.log(1e-3), size=20_000))
        dist = log_weight_distribution(probs, 30)
        total = np.exp(dist.log_pmf).sum() + math.exp(dist.log_tail)
        assert total == pytest.approx(1.0, rel=1e-9)
        # Mean of the exact distribution reproduces sum of probabilities.
        mean = (np.exp(dist.log_pmf) * np.arange(31)).sum()
        assert mean == pytest.approx(probs.sum(), rel=1e-6)

    def test_rejects_certain_mechanisms(self):
        with pytest.raises(ValueError):
            log_weight_distribution(np.array([0.5, 1.0]), 2)


@pytest.fixture(scope="module")
def d3_dem():
    code = rotated_surface_code(3)
    return dem_for(code, nz_schedule(code), NoiseModel(p=3e-3), basis="z")


class TestConditionalSampler:
    def test_every_shot_has_exact_weight(self, d3_dem):
        sampler = WeightStratifiedSampler(d3_dem, max_weight=5)
        for k in (1, 3, 5):
            shot_idx, mech_idx = sampler.sample_fires_at_weight(
                k, 500, np.random.default_rng(k)
            )
            counts = np.bincount(shot_idx, minlength=500)
            assert (counts == k).all()
            # Mechanisms within one shot are distinct.
            for s in range(0, 500, 97):
                mechs = mech_idx[shot_idx == s]
                assert len(set(mechs.tolist())) == k

    def test_marginals_match_conditional_distribution(self, d3_dem):
        """Empirical P(j in S | W=k) vs the exact leave-one-out formula."""
        sampler = WeightStratifiedSampler(d3_dem, max_weight=4)
        k, shots = 2, 30_000
        shot_idx, mech_idx = sampler.sample_fires_at_weight(
            k, shots, np.random.default_rng(42)
        )
        local = np.searchsorted(sampler.mech_index, mech_idx)
        freq = np.bincount(local, minlength=len(sampler.probs)) / shots
        theory = np.empty(len(sampler.probs))
        for j in range(len(sampler.probs)):
            others = np.delete(sampler.probs, j)
            loo = log_weight_distribution(others, k)
            theory[j] = sampler.probs[j] * math.exp(
                loo.log_pmf[k - 1] - sampler.dist.log_pmf[k]
            )
        assert theory.sum() == pytest.approx(k, rel=1e-9)
        sigma = np.sqrt(theory * (1 - theory) / shots)
        assert (np.abs(freq - theory) < 5 * sigma + 5e-4).all()

    def test_packed_batch_matches_fires(self, d3_dem):
        """The emitted BitSampleBatch is exactly H @ x, L @ x (mod 2)."""
        sampler = WeightStratifiedSampler(d3_dem, max_weight=4)
        shots = 257  # deliberately not word-aligned
        shot_idx, mech_idx = sampler.sample_fires_at_weight(
            3, shots, np.random.default_rng(5)
        )
        batch = sampler.sample_at_weight(3, shots, np.random.default_rng(5))
        x = np.zeros((shots, d3_dem.num_errors), dtype=np.uint8)
        x[shot_idx, mech_idx] = 1
        h, l = d3_dem.check_matrices()
        np.testing.assert_array_equal(
            batch.to_dense().detectors, (x @ h.T.toarray()) % 2
        )
        np.testing.assert_array_equal(
            batch.to_dense().observables, (x @ l.T.toarray()) % 2
        )

    def test_uniform_mode_weights_are_unit_mean(self, d3_dem):
        sampler = WeightStratifiedSampler(d3_dem, max_weight=4)
        _, log_w = sampler.sample_at_weight_with_log_weights(
            3, 20_000, np.random.default_rng(3), mode="uniform"
        )
        assert np.exp(log_w).mean() == pytest.approx(1.0, abs=0.1)

    def test_uniform_mode_on_equal_probs_is_unweighted(self):
        dem = tiny_dem([0.01] * 9)
        sampler = WeightStratifiedSampler(dem, max_weight=3)
        _, log_w = sampler.sample_at_weight_with_log_weights(
            2, 100, np.random.default_rng(0), mode="uniform"
        )
        np.testing.assert_allclose(log_w, 0.0, atol=1e-9)

    def test_invalid_weight_rejected(self, d3_dem):
        sampler = WeightStratifiedSampler(d3_dem, max_weight=3)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sampler.sample_fires_at_weight(4, 10, rng)
        with pytest.raises(ValueError):
            sampler.sample_fires_at_weight(0, 10, rng)

    def test_weight_above_mechanism_count_rejected(self):
        dem = tiny_dem([0.1, 0.2])
        sampler = WeightStratifiedSampler(dem, max_weight=5)
        with pytest.raises(ValueError):
            sampler.sample_fires_at_weight(3, 10, np.random.default_rng(0))


class TestPlanner:
    def test_plan_partitions_probability(self, d3_dem):
        plan = plan_strata(d3_dem, min_failure_weight=2)
        total = (
            math.exp(plan.log_zero)
            + sum(s.prob for s in plan.strata)
            + math.exp(plan.log_tail)
        )
        assert total == pytest.approx(1.0, rel=1e-9)
        assert [s.weight for s in plan.audited] == [1]
        assert plan.sampled[0].weight == 2

    def test_tail_criterion(self, d3_dem):
        eps = 1e-8
        plan = plan_strata(d3_dem, min_failure_weight=2, tail_epsilon=eps)
        mass_at_risk = math.exp(plan.distribution.log_sf(1))
        assert math.exp(plan.log_tail) <= eps * mass_at_risk

    def test_max_weight_override(self, d3_dem):
        plan = plan_strata(d3_dem, max_weight=3)
        assert plan.max_weight == 3
        assert [s.weight for s in plan.strata] == [1, 2, 3]

    def test_empty_dem(self):
        dem = DetectorErrorModel(mechanisms=[], num_detectors=0, num_observables=0)
        plan = plan_strata(dem)
        assert plan.strata == ()
        assert math.exp(plan.log_zero) == 1.0


class TestStratifiedEstimate:
    def _single(self, **kwargs) -> StratifiedEstimate:
        defaults = dict(
            weight=2, log_prob=math.log(0.01), assume_zero=False, shots=1000
        )
        defaults.update(kwargs)
        return StratifiedEstimate(
            strata=[StratumEstimate(**defaults)],
            log_zero=math.log(0.9),
            zero_weight_fails=False,
            log_tail=math.log(1e-9),
        )

    def test_point_and_interval(self):
        est = self._single(failures=100, weighted_failures=100.0, weighted_sq=100.0)
        assert est.rate == pytest.approx(0.01 * 0.1)
        lo, hi = est.interval
        phat = 0.1
        hw = 1.959964 * math.sqrt(0.01**2 * phat * (1 - phat) / 1000)
        assert hi - est.rate == pytest.approx(hw + 1e-9, rel=1e-3)
        assert est.rate - lo == pytest.approx(hw, rel=1e-3)

    def test_zero_failure_stratum_uses_rule_of_three(self):
        est = self._single(failures=0)
        assert est.rate == 0.0
        lo, hi = est.interval
        assert lo == 0.0
        # Upper edge: P_k * (1 - 0.05**(1/1000)) + tail.
        assert hi == pytest.approx(0.01 * (1 - 0.05 ** (1 / 1000)) + 1e-9, rel=1e-6)

    def test_assumed_zero_contributes_nothing(self):
        est = self._single(assume_zero=True, failures=0)
        assert est.rate == 0.0
        _, hi = est.interval
        assert hi == pytest.approx(1e-9, rel=1e-6)  # only the tail bound

    def test_zero_weight_failure_dominates(self):
        est = self._single(failures=0)
        est.zero_weight_fails = True
        assert est.rate == pytest.approx(0.9)


class TestEstimatorOnRealDems:
    def test_agrees_with_direct_mc_surface_d3(self, d3_dem):
        strat = estimate_ler_stratified(
            d3_dem,
            rng=np.random.default_rng(7),
            min_failure_weight=2,
            target_rel_halfwidth=0.08,
            max_shots=400_000,
        )
        direct = run_shot_chunks(
            d3_dem, shots=120_000, rng=np.random.default_rng(11)
        )
        assert strat.converged
        s_lo, s_hi = strat.interval
        d_lo, d_hi = direct.interval
        assert s_lo <= d_hi and d_lo <= s_hi, (strat, direct)

    def test_agrees_with_direct_mc_surface_d5(self):
        code = load_benchmark_code("surface_d5")
        dem = dem_for(code, nz_schedule(code), NoiseModel(p=3e-3), basis="z")
        strat = estimate_ler_stratified(
            dem,
            rng=np.random.default_rng(1),
            min_failure_weight=3,
            target_rel_halfwidth=0.12,
            max_shots=200_000,
        )
        direct = run_shot_chunks(dem, shots=60_000, rng=np.random.default_rng(2))
        s_lo, s_hi = strat.interval
        d_lo, d_hi = direct.interval
        assert s_lo <= d_hi and d_lo <= s_hi, (strat, direct)

    def test_worker_count_independent(self, d3_dem):
        results = {}
        for workers in (1, 2):
            est = estimate_ler_stratified(
                d3_dem,
                rng=np.random.default_rng(3),
                min_failure_weight=2,
                target_rel_halfwidth=0.15,
                max_shots=60_000,
                workers=workers,
            )
            results[workers] = (
                est.rate,
                est.shots,
                [(s.weight, s.shots, s.failures) for s in est.strata],
            )
        assert results[1] == results[2]

    def test_audit_promotes_violated_assumption(self):
        """Coloration circuits mispredict some weight-1 errors; claiming
        min_failure_weight=2 anyway must be caught by the audit."""
        code = rotated_surface_code(3)
        dem = dem_for(
            code, coloration_schedule(code), NoiseModel(p=3e-3), basis="z"
        )
        est = estimate_ler_stratified(
            dem,
            rng=np.random.default_rng(0),
            min_failure_weight=2,
            target_rel_halfwidth=0.1,
            max_shots=60_000,
        )
        assert est.audit_violations == [1]
        one = next(s for s in est.strata if s.weight == 1)
        assert one.promoted and one.failures > 0
        assert one.prob * one.cond_rate > 0  # contributes to the estimate

    def test_run_stratified_chunks_worker_parity(self, d3_dem):
        alloc = [(2, 1280), (3, 640)]
        runs = {}
        for workers in (1, 2):
            tallies = run_stratified_chunks(
                d3_dem,
                alloc,
                rng=np.random.default_rng(9),
                chunk_size=512,
                workers=workers,
            )
            runs[workers] = {
                w: (t.shots, t.failures) for w, t in sorted(tallies.items())
            }
        assert runs[1] == runs[2]
        assert runs[1][2][0] == 1280 and runs[1][3][0] == 640

    def test_uniform_mode_agrees_with_proportional(self, d3_dem):
        ests = {}
        for mode in ("proportional", "uniform"):
            ests[mode] = estimate_ler_stratified(
                d3_dem,
                rng=np.random.default_rng(17),
                min_failure_weight=2,
                target_rel_halfwidth=0.1,
                max_shots=120_000,
                mode=mode,
            )
        p_lo, p_hi = ests["proportional"].interval
        u_lo, u_hi = ests["uniform"].interval
        assert p_lo <= u_hi and u_lo <= p_hi, ests
