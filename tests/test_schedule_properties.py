"""Property-based tests on schedule rewrites (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import coloration_schedule, nz_schedule
from repro.codes import load_benchmark_code, rotated_surface_code


def adjacent_same_type_pairs(schedule, q):
    """Adjacent same-type stabilizer pairs in qubit q's relative order."""
    order = schedule.qubit_orders[q]
    return [
        (a, b) for a, b in zip(order, order[1:]) if a[0] == b[0]
    ]


class TestRewriteInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_adjacent_same_type_swaps_preserve_commutation(self, seed):
        """Swapping *adjacent* same-type stabilizers on a shared qubit
        never changes any X-before-Z relation, hence never breaks
        commutation.  (Non-adjacent swaps can hop across an opposite-type
        stabilizer and flip two relations — which is why §5.3.2 pairs its
        X/Z swaps.)"""
        code = rotated_surface_code(3)
        sched = nz_schedule(code)
        rng = np.random.default_rng(seed)
        for _ in range(3):
            q = int(rng.integers(0, code.n))
            pairs = adjacent_same_type_pairs(sched, q)
            if not pairs:
                continue
            a, b = pairs[int(rng.integers(0, len(pairs)))]
            sched.swap_relative_order(q, a, b)
        assert not sched.commutation_violations()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_reorders_preserve_commutation(self, seed):
        """Reordering within one stabilizer never changes X-before-Z
        relations, hence never breaks commutation."""
        code = rotated_surface_code(3)
        sched = nz_schedule(code)
        rng = np.random.default_rng(seed)
        keys = list(sched.stab_orders)
        for _ in range(4):
            key = keys[int(rng.integers(0, len(keys)))]
            order = sched.stab_orders[key]
            if len(order) < 2:
                continue
            i, j = rng.choice(len(order), size=2, replace=False)
            sched.reorder(key[0], key[1], move=order[int(i)], before=order[int(j)])
        assert not sched.commutation_violations()

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_layers_always_cover_all_edges_when_schedulable(self, seed):
        code = load_benchmark_code("lp39")
        sched = coloration_schedule(code, np.random.default_rng(seed))
        layers = sched.layers()
        assert layers is not None
        assert set(layers) == set(sched.edges())

    @given(st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_depth_no_less_than_max_stab_weight(self, seed):
        """Each stabilizer's CNOTs are serialized, so depth >= max weight."""
        code = load_benchmark_code("rqt60")
        sched = coloration_schedule(code, np.random.default_rng(seed))
        max_weight = max(
            int(code.hx.sum(axis=1).max()), int(code.hz.sum(axis=1).max())
        )
        assert sched.cnot_depth() >= max_weight
