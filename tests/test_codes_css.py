"""Tests for the CSS code framework against the paper's worked examples."""

import numpy as np
import pytest

from repro import gf2
from repro.codes import CSSCode, CSSCodeError, rotated_surface_code, steane_code


def paper_d3_code():
    """The d=3 rotated surface code exactly as written in paper §2.2."""
    hx = np.array(
        [
            [1, 1, 0, 1, 1, 0, 0, 0, 0],
            [0, 0, 0, 0, 1, 1, 0, 1, 1],
            [0, 0, 0, 1, 0, 0, 1, 0, 0],
            [0, 0, 1, 0, 0, 1, 0, 0, 0],
        ],
        dtype=np.uint8,
    )
    hz = np.array(
        [
            [0, 1, 1, 0, 1, 1, 0, 0, 0],
            [0, 0, 0, 1, 1, 0, 1, 1, 0],
            [1, 1, 0, 0, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 0, 0, 1, 1],
        ],
        dtype=np.uint8,
    )
    code = CSSCode(hx=hx, hz=hz, name="paper_d3", distance=3)
    code.set_logicals(
        np.array([[0, 0, 0, 1, 1, 1, 0, 0, 0]], dtype=np.uint8),
        np.array([[0, 1, 0, 0, 1, 0, 0, 1, 0]], dtype=np.uint8),
    )
    return code


class TestPaperExample:
    def test_parameters(self):
        code = paper_d3_code()
        assert (code.n, code.k) == (9, 1)

    def test_correctable_error_example(self):
        """§2.5: X error on 'qubit 5' -> syndrome (1,1,0,0), logical flip.

        The paper says qubit 5 participates in rows 1 and 2 of H_Z; with
        0-based columns that is column 4 (ones in rows 0 and 1).
        """
        code = paper_d3_code()
        e_x = np.zeros(9, dtype=np.uint8)
        e_x[4] = 1
        syn = code.syndrome(x_errors=e_x, z_errors=np.zeros(9, dtype=np.uint8))
        assert list(syn["z"]) == [1, 1, 0, 0]
        eff = code.logical_effect(x_errors=e_x, z_errors=np.zeros(9, dtype=np.uint8))
        assert list(eff["x"]) == [1]

    def test_uncorrectable_error_example(self):
        """§2.5: a weight-3 X pattern that is undetected yet flips the logical.

        The paper prints e_X = (1,0,0,0,1,0,0,0,1), but that vector flips
        the {0,1} stabilizer of the paper's own H_Z — with these matrices
        the undetected diagonal is {2,4,6} (the anti-diagonal of the grid).
        The demonstrated property (undetected weight-3 logical X) is the
        same.
        """
        code = paper_d3_code()
        e_x = np.zeros(9, dtype=np.uint8)
        e_x[[2, 4, 6]] = 1
        syn = code.syndrome(x_errors=e_x, z_errors=np.zeros(9, dtype=np.uint8))
        assert not syn["z"].any()
        eff = code.logical_effect(x_errors=e_x, z_errors=np.zeros(9, dtype=np.uint8))
        assert list(eff["x"]) == [1]

    def test_matches_library_surface_code(self):
        ours = rotated_surface_code(3)
        paper = paper_d3_code()
        ours_hx = {tuple(np.nonzero(r)[0]) for r in ours.hx}
        paper_hx = {tuple(np.nonzero(r)[0]) for r in paper.hx}
        assert ours_hx == paper_hx
        ours_hz = {tuple(np.nonzero(r)[0]) for r in ours.hz}
        paper_hz = {tuple(np.nonzero(r)[0]) for r in paper.hz}
        assert ours_hz == paper_hz


class TestValidation:
    def test_rejects_noncommuting(self):
        hx = np.array([[1, 1, 0]], dtype=np.uint8)
        hz = np.array([[1, 0, 0]], dtype=np.uint8)
        with pytest.raises(CSSCodeError):
            CSSCode(hx=hx, hz=hz)

    def test_rejects_mismatched_qubits(self):
        with pytest.raises(CSSCodeError):
            CSSCode(
                hx=np.zeros((1, 3), dtype=np.uint8),
                hz=np.zeros((1, 4), dtype=np.uint8),
            )

    def test_set_logicals_validation(self):
        code = rotated_surface_code(3)
        bad = np.zeros((1, 9), dtype=np.uint8)
        bad[0, 0] = 1  # single X anticommutes with a Z stabilizer
        with pytest.raises(CSSCodeError):
            code.set_logicals(bad, code.lz)

    def test_rejects_stabilizer_as_logical(self):
        code = rotated_surface_code(3)
        with pytest.raises(CSSCodeError):
            code.set_logicals(code.hx[:1], code.lz)


class TestLogicals:
    @pytest.mark.parametrize("d", [3, 5])
    def test_surface_logicals_commute_properly(self, d):
        code = rotated_surface_code(d)
        assert code.lx.shape[0] == code.k == 1
        assert not gf2.matmul(code.hz, code.lx.T).any()
        assert not gf2.matmul(code.hx, code.lz.T).any()
        # lx and lz anticommute (odd overlap) — they form a logical pair.
        assert int(gf2.matmul(code.lx, code.lz.T)[0, 0]) == 1

    def test_auto_logicals_for_code_without_explicit_ones(self):
        code = CSSCode(hx=rotated_surface_code(3).hx, hz=rotated_surface_code(3).hz)
        assert code.lx.shape[0] == 1
        assert code.lz.shape[0] == 1
        assert not gf2.matmul(code.hz, code.lx.T).any()
        assert not gf2.in_rowspace(code.hx, code.lx)

    def test_steane(self):
        code = steane_code()
        assert (code.n, code.k) == (7, 1)
        assert set(code.stabilizer_weights()["x"]) == {4}


class TestStructureQueries:
    def test_supports(self):
        code = rotated_surface_code(3)
        for i in range(code.num_x_stabs):
            sup = code.x_stab_support(i)
            assert all(code.hx[i, q] == 1 for q in sup)
            assert len(sup) == int(code.hx[i].sum())

    def test_qubit_stabs_inverse_of_support(self):
        code = rotated_surface_code(3)
        for q in range(code.n):
            for s in code.data_qubit_x_stabs(q):
                assert q in code.x_stab_support(s)
            for s in code.data_qubit_z_stabs(q):
                assert q in code.z_stab_support(s)

    def test_label(self):
        assert rotated_surface_code(3).label() == "[[9,1,3]] surface_d3"
