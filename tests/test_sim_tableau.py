"""Tests for the CHP tableau simulator."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.sim import TableauSimulator


def sim(n, seed=0):
    return TableauSimulator(n, rng=np.random.default_rng(seed))


class TestBasics:
    def test_initial_state_measures_zero(self):
        s = sim(3)
        for q in range(3):
            value, random = s.measure_z(q)
            assert value == 0 and not random

    def test_x_flips_measurement(self):
        s = sim(1)
        s.x_gate(0)
        assert s.measure_z(0) == (1, False)

    def test_h_gives_random_outcome_then_collapses(self):
        s = sim(1)
        s.h(0)
        v1, random1 = s.measure_z(0)
        v2, random2 = s.measure_z(0)
        assert random1 and not random2
        assert v1 == v2

    def test_plus_state_measures_x_deterministically(self):
        s = sim(1)
        s.h(0)
        assert s.measure_x(0) == (0, False)

    def test_z_flips_x_measurement(self):
        s = sim(1)
        s.h(0)
        s.z_gate(0)
        assert s.measure_x(0) == (1, False)


class TestEntanglement:
    @pytest.mark.parametrize("seed", range(5))
    def test_bell_pair_correlated(self, seed):
        s = sim(2, seed)
        s.h(0)
        s.cnot(0, 1)
        a, r1 = s.measure_z(0)
        b, r2 = s.measure_z(1)
        assert r1 and not r2
        assert a == b

    @pytest.mark.parametrize("seed", range(5))
    def test_ghz_parity(self, seed):
        s = sim(3, seed)
        s.h(0)
        s.cnot(0, 1)
        s.cnot(1, 2)
        bits = [s.measure_z(q)[0] for q in range(3)]
        assert len(set(bits)) == 1

    def test_cnot_propagation_rules(self):
        """X on control spreads to target; Z on target spreads to control
        (paper §2.6)."""
        s = sim(2)
        s.x_gate(0)
        s.cnot(0, 1)
        assert s.measure_z(1) == (1, False)  # X_c -> X_c X_t

        s2 = sim(2)
        s2.h(0)
        s2.h(1)
        s2.z_gate(1)
        s2.cnot(0, 1)
        assert s2.measure_x(0) == (1, False)  # Z_t -> Z_c Z_t


class TestResets:
    def test_reset_z_from_one(self):
        s = sim(1)
        s.x_gate(0)
        s.reset_z(0)
        assert s.measure_z(0) == (0, False)

    def test_reset_x_gives_plus(self):
        s = sim(1, seed=3)
        s.reset_x(0)
        assert s.measure_x(0) == (0, False)

    def test_reset_from_superposition(self):
        for seed in range(4):
            s = sim(1, seed)
            s.h(0)
            s.reset_z(0)
            assert s.measure_z(0) == (0, False)


class TestCircuitRunner:
    def test_stabilizer_measurement_of_prepared_eigenstate(self):
        # Measure ZZ on |00>: ancilla-based parity check returns +1.
        c = Circuit()
        c.append("R", [0, 1, 2])
        c.append("CNOT", [0, 2])
        c.append("CNOT", [1, 2])
        c.append("M", [2])
        c.append("DETECTOR", [0])
        result = TableauSimulator(3, rng=np.random.default_rng(0)).run(c)
        assert result.measurements == [0]
        assert result.detectors == [0]

    def test_noise_rejected(self):
        c = Circuit()
        c.append("DEPOLARIZE1", [0], args=[0.1])
        with pytest.raises(ValueError):
            TableauSimulator(1).run(c)

    def test_observable_accumulates(self):
        c = Circuit()
        c.append("R", [0])
        c.append("M", [0])
        c.append("OBSERVABLE_INCLUDE", [0], args=[0])
        result = TableauSimulator(1, rng=np.random.default_rng(0)).run(c)
        assert result.observables == [0]
