"""Tests for the command-line interfaces."""

import pytest

from repro.cli import build_parser, main as cli_main
from repro.experiments.runner import main as runner_main


class TestCli:
    def test_codes_listing(self, capsys):
        assert cli_main(["codes"]) == 0
        out = capsys.readouterr().out
        assert "surface_d3" in out and "lp39" in out

    def test_evaluate_runs(self, capsys):
        args = ["evaluate", "surface_d3", "--shots", "400", "--samples", "6"]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "LER" in out

    def test_evaluate_rare_event_runs(self, capsys):
        args = [
            "evaluate",
            "surface_d3",
            "--rare-event",
            "--p",
            "3e-3",
            "--shots",
            "8000",
            "--samples",
            "5",
        ]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "stratified z-basis LER" in out
        assert "combined LER" in out
        assert "direct MC would need" in out

    def test_optimize_runs(self, capsys):
        args = [
            "optimize",
            "surface_d3",
            "--iterations",
            "1",
            "--samples",
            "6",
            "--shots",
            "400",
        ]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "improvement" in out or "->" in out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestRunnerCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner_main(["not-an-experiment"])

    def test_table1_runs(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestCampaignCli:
    def test_smoke_run_and_resume_check(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(["campaign", "run", "--smoke", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 executed" in out
        assert "resume check: 4 store hits, 0 recomputed" in out

    def test_spec_file_run_status_export(self, tmp_path, capsys):
        import json

        from repro.experiments.campaign import smoke_spec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(smoke_spec().to_dict()))
        store = str(tmp_path / "store")

        assert cli_main(["campaign", "run", str(spec_path), "--store", store]) == 0
        capsys.readouterr()

        assert (
            cli_main(["campaign", "status", str(spec_path), "--store", store]) == 0
        )
        assert "4/4 jobs complete" in capsys.readouterr().out

        assert cli_main(["campaign", "status", "--store", store]) == 0
        assert "4 records" in capsys.readouterr().out

        out_file = tmp_path / "rows.json"
        assert (
            cli_main(
                [
                    "campaign",
                    "export",
                    str(spec_path),
                    "--store",
                    store,
                    "--format",
                    "json",
                    "--output",
                    str(out_file),
                ]
            )
            == 0
        )
        rows = json.loads(out_file.read_text())
        assert len(rows) == 4
        assert {r["estimator"] for r in rows} == {"direct", "rare-event"}

    def test_run_without_spec_or_smoke_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "run", "--store", str(tmp_path / "s")])

    def test_export_csv_to_stdout(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(["campaign", "run", "--smoke", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["campaign", "export", "--store", store]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("key,code,schedule")


class TestScheduleOutput:
    def test_optimize_writes_schedule(self, tmp_path, capsys):
        out = tmp_path / "sched.json"
        args = [
            "optimize",
            "surface_d3",
            "--iterations",
            "1",
            "--samples",
            "5",
            "--shots",
            "200",
            "--output",
            str(out),
        ]
        assert cli_main(args) == 0
        from repro.circuits import schedule_from_json
        from repro.codes import rotated_surface_code

        schedule = schedule_from_json(out.read_text(), rotated_surface_code(3))
        assert schedule.is_valid()
